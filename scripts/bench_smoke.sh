#!/usr/bin/env bash
# Seconds-long benchmark smoke: the scheduler hold-model microbenchmark
# (calendar queue vs binary heap at 100k pending events) plus one small
# sensitivity sweep at 1 and 4 worker threads.
#
# Runs only the benchmarks whose names contain "smoke" — the full
# grids live in `cargo bench -p epnet-bench --bench scheduler`.
# The same paths are exercised in-process by tests/tests/bench_smoke.rs
# so `cargo test` keeps them honest without nesting cargo invocations.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo bench --offline -p epnet-bench --bench scheduler -- smoke
