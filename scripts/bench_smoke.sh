#!/usr/bin/env bash
# Seconds-long benchmark smoke: the scheduler hold-model microbenchmark
# (calendar queue vs binary heap at 100k pending events), one small
# sensitivity sweep at 1 and 4 worker threads, the canonical engine
# throughput scenario (rewrites BENCH_engine.json at the repo root),
# one traced run validated against the documented trace schema plus a
# line-identical EPNET_PAR=4 re-run of it, a Perfetto export and
# trace-analysis smoke over that capture (CSV headers pinned), the
# scaling sweep with its EPNET_PAR threads, hybrid-threads, and
# lookahead axes (the hybrid-threads axis runs the 2^20-host flat),
# and a rustdoc build with warnings denied.
#
# Runs only the benchmarks whose names contain "smoke" — the full
# grids live in `cargo bench -p epnet-bench --bench scheduler` and
# `--bench engine`. The same paths are exercised in-process by
# tests/tests/bench_smoke.rs so `cargo test` keeps them honest without
# nesting cargo invocations.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench --offline -p epnet-bench --bench scheduler -- smoke
cargo bench --offline -p epnet-bench --bench engine -- smoke

# One traced run of the canonical scenario: every JSONL line must pass
# the documented schema, with controller and reactivation events
# present. The bin then re-runs the scenario under EPNET_PAR=4 and
# exits non-zero unless the merged parallel trace is line-identical to
# the serial one (the reduced parallel-determinism check; the full
# width × mode matrix lives in tests/tests/par_modes.rs), and finishes
# by chrome-trace-exporting both captures: counts must match the
# TraceStats and the behavior-only exports must be byte-identical.
cargo run --offline --release -p epnet-bench --bin tracesmoke -- target/tracesmoke.jsonl

# Export + analysis smoke over the trace the canonical run just wrote:
# convert it to the Perfetto-loadable chrome-trace form with the
# canonical track layout (FBFLY(2,8,2): 16 hosts, 9 ports/switch), run
# every analysis command, and pin the CSV headers downstream plots key
# on. Table forms run too, so a formatter panic fails the smoke.
cargo run --offline --release -p epnet-bench --bin tracetool -- \
    export target/tracesmoke.jsonl target/tracesmoke.perfetto.json --layout 16,9
test -s target/tracesmoke.perfetto.json || { echo "perfetto export missing" >&2; exit 1; }
for cmd in residency churn reactivation credit outcomes; do
    cargo run --offline --release -p epnet-bench --bin tracetool -- \
        "$cmd" target/tracesmoke.jsonl --csv > "target/trace_${cmd}.csv"
    cargo run --offline --release -p epnet-bench --bin tracetool -- \
        "$cmd" target/tracesmoke.jsonl > /dev/null
done
python3 - <<'EOF'
import json
doc = json.load(open("target/tracesmoke.perfetto.json"))
events = doc["traceEvents"]
stats = doc["epnet"]
assert len(events) == stats["trace_events"] + stats["metadata_events"], (
    len(events), stats)
assert sum(stats["records"].values()) > 0, "export consumed no records"
print(f'perfetto export: {len(events)} events from '
      f'{sum(stats["records"].values())} records '
      f'({", ".join(f"{k}={v}" for k, v in stats["records"].items())})')
headers = {
    "residency": "rate,fraction",
    "churn": "channel,decisions,transitions,upshifts,downshifts,reversals",
    "reactivation": "count,unmatched,min_ps,p50_ps,p90_ps,p99_ps,max_ps,mean_ps",
    "credit": "channel,stalls,total_ps,max_ps,unmatched",
    "outcomes": "reason,count,share",
}
for cmd, header in headers.items():
    with open(f"target/trace_{cmd}.csv") as f:
        first = f.readline().strip()
    assert first == header, f"{cmd}: header {first!r} != {header!r}"
    print(f"trace_{cmd}.csv: header ok")
EOF

# Reduced topology-scaling sweep under the counting allocator (rewrites
# BENCH_scale.json at the repo root), plus the EPNET_PAR threads axis
# on the canonical point — every width's report is asserted
# byte-identical to serial before its timing is recorded — the v4
# hybrid-model additions (bulk-flow points, the models axis asserting
# hybrid-vs-packet delivered-bytes and relative-power agreement), and
# the v5 additions: a true 2^20-host hybrid point and its own
# hybrid_threads axis running that million-host flat under EPNET_PAR.
# The binary schema-validates its own output; the steady-state
# allocation bound, the hybrid memory bound, the million-host budgets,
# and all the axes are re-checked below.
cargo run --offline --release -p epnet-bench --bin scalebench -- --reduced

# Reduced offered-load sweep (rewrites BENCH_load.json at the repo
# root): both EPNET_EPOCH modes per point, byte-identity cross-checked
# by the binary itself; the epoch-work bound is re-checked below.
cargo run --offline --release -p epnet-bench --bin loadbench -- --reduced

# Docs must build clean — the observability docs are part of the API.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

# The engine smoke must have left a parseable BENCH_engine.json behind.
test -s BENCH_engine.json || { echo "BENCH_engine.json missing" >&2; exit 1; }
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_engine.json"))
assert doc["schema"] == "epnet-bench-engine/v1", doc["schema"]
assert doc["benches"], "no benches recorded"
for b in doc["benches"]:
    print(f'{b["name"]}: {b["events_per_sec"]:.3e} events/s, '
          f'{b["delivered_bytes_per_sec"]:.3e} delivered B/s')
EOF

# Same treatment for the scaling sweep artifact: schema plus the
# steady-state allocation bound every point must satisfy. Hybrid-model
# points get a looser ratio (their event count is ~10^3 smaller — one
# event per message plus epoch ticks, no per-packet events — so flow
# bookkeeping isn't amortized the way packet free-lists are) and a
# peak-memory bound instead: million-host scale only works if per-host
# state stays a few KiB.
test -s BENCH_scale.json || { echo "BENCH_scale.json missing" >&2; exit 1; }
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_scale.json"))
assert doc["schema"] == "epnet-bench-scale/v5", doc["schema"]
assert doc["benches"], "no benches recorded"
for b in doc["benches"]:
    for field in ("model", "hosts", "channels", "events_per_sec",
                  "delivered_bytes_per_sec", "allocs_per_event",
                  "peak_alloc_bytes", "measured_events", "measured_allocs"):
        assert field in b, f'{b["name"]}: missing {field}'
    limit = 0.1 if b["model"] == "hybrid" else 0.01
    assert b["allocs_per_event"] < limit, (
        f'{b["name"]}: {b["allocs_per_event"]:.4f} allocs/event '
        f'(>= {limit})')
    if b["model"] == "hybrid":
        per_host = b["peak_alloc_bytes"] / b["hosts"]
        assert per_host < 4096, (
            f'{b["name"]}: {per_host:.0f} peak bytes/host (>= 4096)')
    print(f'{b["name"]} [{b["model"]}]: {b["hosts"]} hosts, '
          f'{b["events_per_sec"]:.3e} events/s, '
          f'{b["allocs_per_event"]:.5f} allocs/event')
# The hybrid model's reason to exist: a sweep point past 10^5 hosts
# that actually completed its horizon.
big = [b for b in doc["benches"]
       if b["model"] == "hybrid" and b["hosts"] >= 100_000]
assert big, "no hybrid point at >= 1e5 hosts"
for b in big:
    assert b["sim_delivered_bytes"] > 0, f'{b["name"]}: delivered nothing'
    print(f'{b["name"]}: {b["hosts"]} hosts at '
          f'{b["peak_alloc_bytes"] / b["hosts"]:.0f} peak B/host')
# The v5 headline: a true 2^20-host hybrid point that completed the
# full horizon inside the pinned wall budget (mirrors validate()).
million = [b for b in big if b["hosts"] >= 1_048_576]
assert million, "no hybrid point at >= 2^20 hosts"
for b in million:
    assert b["wall_ms"] <= 120_000.0, (
        f'{b["name"]}: {b["wall_ms"]:.0f} ms exceeds the million-host '
        f'wall budget')
    print(f'{b["name"]}: million-host point in {b["wall_ms"]:.0f} ms')
# The models axis: every packet point re-run under both models, with
# agreement errors inside the documented tolerance.
models = doc["models"]
assert models["runs"], "models axis recorded no validation points"
for r in models["runs"]:
    for field in ("bytes_rel_err", "power_abs_err"):
        assert r[field] <= models["tolerance"], (
            f'{r["point"]}: {field} {r[field]:.4f} exceeds '
            f'{models["tolerance"]}')
    print(f'{r["point"]} models: bytes_err={r["bytes_rel_err"]:.4f} '
          f'power_err={r["power_abs_err"]:.4f}')
# The EPNET_PAR threads axis: serial baseline plus every width, with
# honest speedups (no scaling claim is asserted — the container may be
# single-core, where the axis measures determinism overhead instead).
axis = doc["threads"]
runs = axis["runs"]
assert axis["hw_threads"] >= 1, "threads axis must report hw_threads"
assert runs and runs[0]["threads"] == 0, "serial baseline must come first"
assert len(runs) >= 2, "threads axis needs at least one parallel width"
for r in runs:
    assert r["wall_ms"] > 0 and r["speedup_vs_serial"] > 0, r
    print(f'{axis["point"]} threads={r["threads"]}: '
          f'{r["events_per_sec"]:.3e} events/s, '
          f'{r["speedup_vs_serial"]:.2f}x '
          f'(host has {axis["hw_threads"]} hw threads)')
# The v5 hybrid-threads axis: the million-host flat re-run under
# EPNET_PAR, byte-identity asserted by the binary before timing.
haxis = doc["hybrid_threads"]
hruns = haxis["runs"]
assert hruns and hruns[0]["threads"] == 0, "hybrid serial baseline first"
assert len(hruns) >= 2, "hybrid threads axis needs a parallel width"
for r in hruns:
    assert r["wall_ms"] > 0 and r["speedup_vs_serial"] > 0, r
    print(f'{haxis["point"]} hybrid threads={r["threads"]}: '
          f'{r["wall_ms"]:.0f} ms, {r["speedup_vs_serial"]:.2f}x')
# The v3 lookahead probe: pairwise matrix vs the legacy global bound,
# window-shape diagnostics recorded per mode. The pairwise matrix must
# amortize each barrier over at least as many events as the global
# bound (the >= 5x claim is asserted on the full paper-scale sweep in
# EXPERIMENTS.md; the reduced smoke only checks shape and direction).
la = doc["lookahead"]
assert la["width"] >= 1, la
modes = {m["mode"]: m for m in la["modes"]}
assert set(modes) == {"pairwise", "global"}, sorted(modes)
for name, m in modes.items():
    for field in ("windows", "window_events", "mean_events_per_window",
                  "replay_events", "cross_batches", "cross_events",
                  "lookahead_ps"):
        assert field in m, f'lookahead/{name}: missing {field}'
    assert m["windows"] > 0, f'lookahead/{name}: zero windows'
    print(f'{la["point"]} lookahead={name}: '
          f'{m["mean_events_per_window"]:.1f} events/window, '
          f'bound {m["lookahead_ps"]} ps')
assert la["amortization_ratio"] >= 1.0, (
    f'pairwise lookahead amortizes worse than the global bound: '
    f'{la["amortization_ratio"]:.2f}x')
print(f'{la["point"]} barrier amortization: {la["amortization_ratio"]:.2f}x')
EOF

# And the load sweep artifact: schema, plus the activity-proportional
# bound — at low load the active-set epoch path must evaluate far fewer
# decisions per tick than the channel count (the sweep mode's O(links)
# work), not merely a constant factor fewer.
test -s BENCH_load.json || { echo "BENCH_load.json missing" >&2; exit 1; }
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_load.json"))
assert doc["schema"] == "epnet-bench-load/v1", doc["schema"]
assert doc["benches"], "no benches recorded"
for b in doc["benches"]:
    for mode in ("sweep", "active"):
        for field in ("wall_ms", "events_per_sec", "decisions_per_tick",
                      "epoch_ticks", "controller_decisions",
                      "controller_wall_ms"):
            assert field in b[mode], f'{b["name"]}/{mode}: missing {field}'
    if b["offered_load"] <= 0.1:
        active = b["active"]["decisions_per_tick"]
        assert active < b["channels"], (
            f'{b["name"]}: {active:.1f} decisions/tick not O(active) '
            f'against {b["channels"]} channels')
        assert b["decisions_speedup"] >= 2.0, (
            f'{b["name"]}: speedup {b["decisions_speedup"]:.2f}x < 2x '
            f'at {b["offered_load"]:.0%} load')
    print(f'{b["name"]}: sweep {b["sweep"]["decisions_per_tick"]:.1f} '
          f'-> active {b["active"]["decisions_per_tick"]:.1f} dec/tick '
          f'({b["decisions_speedup"]:.1f}x)')
EOF
