//! Converting simulated *relative* power into absolute watts and
//! dollars for a concrete network build.

use crate::{EnergyCostModel, SwitchPowerModel};
use epnet_topology::{FlattenedButterfly, FoldedClos, TwoTierClos};
use serde::{Deserialize, Serialize};

/// Absolute energy model of one concrete network: its chip and NIC
/// counts under a [`SwitchPowerModel`]. Feed it the relative power from
/// a simulation report to get watts, and a cost model to get dollars —
/// the chain behind the paper's "$2.4M additional savings" claims
/// (§4.2.2: "If we extrapolate this reduction to our full-scale
/// network...").
///
/// ```
/// use epnet_power::{EnergyCostModel, NetworkEnergyModel, SwitchPowerModel};
/// use epnet_topology::FlattenedButterfly;
///
/// let fbfly = FlattenedButterfly::paper_comparison_32k();
/// let model = NetworkEnergyModel::for_fbfly(&fbfly, SwitchPowerModel::paper_default());
/// assert_eq!(model.baseline_watts(), 737_280.0);
/// // A simulated 6x reduction (relative power 1/6):
/// let cost = EnergyCostModel::paper_default();
/// let saved = model.lifetime_savings_dollars(1.0 / 6.0, &cost);
/// assert!((2.3e6..2.5e6).contains(&saved));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkEnergyModel {
    switch_chips: f64,
    hosts: u64,
    power: SwitchPowerModel,
}

impl NetworkEnergyModel {
    /// Builds the model from raw part counts.
    pub fn new(switch_chips: f64, hosts: u64, power: SwitchPowerModel) -> Self {
        Self {
            switch_chips,
            hosts,
            power,
        }
    }

    /// Model for a flattened butterfly build.
    pub fn for_fbfly(f: &FlattenedButterfly, power: SwitchPowerModel) -> Self {
        Self::new(f.num_switches() as f64, f.num_hosts() as u64, power)
    }

    /// Model for the paper's chassis-based folded Clos (powered chips
    /// per its footnote 5).
    pub fn for_clos(c: &FoldedClos, power: SwitchPowerModel) -> Self {
        Self::new(c.chips_powered(), c.num_hosts(), power)
    }

    /// Model for a simulatable two-tier Clos.
    pub fn for_two_tier(c: &TwoTierClos, power: SwitchPowerModel) -> Self {
        Self::new(c.num_switches() as f64, c.num_hosts() as u64, power)
    }

    /// Network power with every link at full rate, in watts.
    pub fn baseline_watts(&self) -> f64 {
        self.power.network_watts(self.switch_chips, self.hosts)
    }

    /// Network power at a simulated relative power (switch SerDes scale
    /// with the relative figure; NICs scale with it too, since the host
    /// link's SerDes dominate NIC power at these rates).
    pub fn watts(&self, relative_power: f64) -> f64 {
        self.baseline_watts() * relative_power
    }

    /// Watts per host at the given relative power.
    pub fn watts_per_host(&self, relative_power: f64) -> f64 {
        self.watts(relative_power) / self.hosts as f64
    }

    /// Lifetime dollars saved by running at `relative_power` instead of
    /// full power.
    pub fn lifetime_savings_dollars(&self, relative_power: f64, cost: &EnergyCostModel) -> f64 {
        cost.lifetime_savings_dollars(self.baseline_watts(), self.watts(relative_power))
    }

    /// Lifetime dollars to run at `relative_power`.
    pub fn lifetime_cost_dollars(&self, relative_power: f64, cost: &EnergyCostModel) -> f64 {
        cost.lifetime_cost_dollars(self.watts(relative_power))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fbfly() -> NetworkEnergyModel {
        NetworkEnergyModel::for_fbfly(
            &FlattenedButterfly::paper_comparison_32k(),
            SwitchPowerModel::paper_default(),
        )
    }

    #[test]
    fn baselines_match_table1() {
        assert_eq!(paper_fbfly().baseline_watts(), 737_280.0);
        let clos = NetworkEnergyModel::for_clos(
            &FoldedClos::paper_comparison_32k(),
            SwitchPowerModel::paper_default(),
        );
        assert_eq!(clos.baseline_watts(), 1_146_880.0);
    }

    #[test]
    fn six_x_reduction_reproduces_2_4m() {
        let cost = EnergyCostModel::paper_default();
        let saved = paper_fbfly().lifetime_savings_dollars(1.0 / 6.0, &cost);
        assert!((2.35e6..2.45e6).contains(&saved), "${saved:.0}");
    }

    #[test]
    fn watts_scale_linearly() {
        let m = paper_fbfly();
        assert_eq!(m.watts(1.0), m.baseline_watts());
        assert_eq!(m.watts(0.5), m.baseline_watts() / 2.0);
        assert!((m.watts_per_host(1.0) - 737_280.0 / 32_768.0).abs() < 1e-9);
    }

    #[test]
    fn two_tier_model() {
        let clos = TwoTierClos::non_blocking(16).unwrap();
        let m = NetworkEnergyModel::for_two_tier(&clos, SwitchPowerModel::paper_default());
        // 48 chips x 100 W + 512 NICs x 10 W.
        assert_eq!(m.baseline_watts(), 4_800.0 + 5_120.0);
    }
}
