//! Topology power comparison — **Table 1** of the paper.

use crate::SwitchPowerModel;
use epnet_topology::{FlattenedButterfly, FoldedClos, Medium};
use serde::{Deserialize, Serialize};

/// One column of Table 1: the part counts and power of a topology at a
/// fixed bisection bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyPowerRow {
    /// Topology name as printed in the table header.
    pub name: String,
    /// Number of hosts `N`.
    pub hosts: u64,
    /// Bisection bandwidth in Gb/s (40 Gb/s links).
    pub bisection_gbps: f64,
    /// Electrical (copper / backplane) links.
    pub electrical_links: u64,
    /// Optical links.
    pub optical_links: u64,
    /// Switch chips (powered; for the Clos this is the fractional used
    /// count per the paper's footnote 5).
    pub switch_chips: f64,
    /// Total network power in watts.
    pub total_power_watts: f64,
}

impl TopologyPowerRow {
    /// Power per unit of bisection bandwidth, W/(Gb/s) — the last row of
    /// Table 1.
    pub fn watts_per_gbps(&self) -> f64 {
        self.total_power_watts / self.bisection_gbps
    }

    /// Network power refined with the electrical-port discount the
    /// paper's Table 1 deliberately leaves out: "the profile of an
    /// existing switch chip uses 25% less power to drive an electrical
    /// link compared to an optical link. This represents a second-order
    /// effect ... and is actually disadvantageous for the flattened
    /// butterfly" (§2.2). Switch-port power splits across the topology's
    /// link media; the discount applies to the electrical share.
    pub fn media_aware_power_watts(&self, model: &SwitchPowerModel) -> f64 {
        let nic_watts = self.hosts as f64 * model.nic_watts();
        let switch_watts = self.total_power_watts - nic_watts;
        let total_ports = 2.0 * (self.electrical_links + self.optical_links) as f64;
        if total_ports == 0.0 {
            return self.total_power_watts;
        }
        let electrical_share = 2.0 * self.electrical_links as f64 / total_ports;
        let discount = electrical_share * (1.0 - crate::profiles::COPPER_DISCOUNT);
        switch_watts * (1.0 - discount) + nic_watts
    }

    /// Builds the row for a flattened butterfly.
    pub fn from_fbfly(f: &FlattenedButterfly, model: &SwitchPowerModel, link_gbps: f64) -> Self {
        Self {
            name: format!("FBFLY ({}-ary {}-flat)", f.radix(), f.flat_n()),
            hosts: f.num_hosts() as u64,
            bisection_gbps: f.bisection_gbps(link_gbps),
            electrical_links: f.link_count(Medium::Electrical) as u64,
            optical_links: f.link_count(Medium::Optical) as u64,
            switch_chips: f.num_switches() as f64,
            total_power_watts: model.network_watts(f.num_switches() as f64, f.num_hosts() as u64),
        }
    }

    /// Builds the row for a folded Clos.
    pub fn from_clos(c: &FoldedClos, model: &SwitchPowerModel, link_gbps: f64) -> Self {
        Self {
            name: "Folded Clos".to_owned(),
            hosts: c.num_hosts(),
            bisection_gbps: c.bisection_gbps(link_gbps),
            electrical_links: c.link_count(Medium::Electrical),
            optical_links: c.link_count(Medium::Optical),
            switch_chips: c.chips_powered(),
            total_power_watts: model.network_watts(c.chips_powered(), c.num_hosts()),
        }
    }
}

/// A side-by-side comparison of a folded-Clos and a flattened butterfly
/// at equal host count and bisection bandwidth — **Table 1**.
///
/// ```
/// use epnet_power::TopologyPowerComparison;
/// let t = TopologyPowerComparison::paper_table1();
/// assert!((t.clos.watts_per_gbps() - 1.75).abs() < 0.005);
/// assert!((t.fbfly.watts_per_gbps() - 1.13).abs() < 0.005);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyPowerComparison {
    /// The folded-Clos column.
    pub clos: TopologyPowerRow,
    /// The flattened-butterfly column.
    pub fbfly: TopologyPowerRow,
}

impl TopologyPowerComparison {
    /// Builds the comparison for arbitrary same-size networks.
    pub fn new(
        clos: &FoldedClos,
        fbfly: &FlattenedButterfly,
        model: &SwitchPowerModel,
        link_gbps: f64,
    ) -> Self {
        Self {
            clos: TopologyPowerRow::from_clos(clos, model, link_gbps),
            fbfly: TopologyPowerRow::from_fbfly(fbfly, model, link_gbps),
        }
    }

    /// The paper's exact Table 1: 32k hosts, 40 Gb/s links, 100 W chips,
    /// 10 W NICs.
    pub fn paper_table1() -> Self {
        Self::new(
            &FoldedClos::paper_comparison_32k(),
            &FlattenedButterfly::paper_comparison_32k(),
            &SwitchPowerModel::paper_default(),
            40.0,
        )
    }

    /// Power saved by choosing the flattened butterfly, in watts
    /// (the paper: "the cluster with the flattened butterfly interconnect
    /// uses 409,600 fewer watts").
    pub fn savings_watts(&self) -> f64 {
        self.clos.total_power_watts - self.fbfly.total_power_watts
    }

    /// Renders the comparison as an aligned text table matching the
    /// paper's rows.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let rows: [(&str, String, String); 7] = [
            (
                "Number of hosts (N)",
                self.clos.hosts.to_string(),
                self.fbfly.hosts.to_string(),
            ),
            (
                "Bisection B/W (Tb/s)",
                format!("{:.0}", self.clos.bisection_gbps / 1000.0),
                format!("{:.0}", self.fbfly.bisection_gbps / 1000.0),
            ),
            (
                "Electrical links",
                self.clos.electrical_links.to_string(),
                self.fbfly.electrical_links.to_string(),
            ),
            (
                "Optical links",
                self.clos.optical_links.to_string(),
                self.fbfly.optical_links.to_string(),
            ),
            (
                "Switch chips",
                format!("{:.0}", self.clos.switch_chips),
                format!("{:.0}", self.fbfly.switch_chips),
            ),
            (
                "Total power (W)",
                format!("{:.0}", self.clos.total_power_watts),
                format!("{:.0}", self.fbfly.total_power_watts),
            ),
            (
                "Power per bisection B/W (W/Gb/s)",
                format!("{:.2}", self.clos.watts_per_gbps()),
                format!("{:.2}", self.fbfly.watts_per_gbps()),
            ),
        ];
        s.push_str(&format!(
            "{:<34} {:>14} {:>20}\n",
            "Parameter", "Folded Clos", &self.fbfly.name
        ));
        for (label, clos, fbfly) in rows {
            s.push_str(&format!("{label:<34} {clos:>14} {fbfly:>20}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_exact_values() {
        let t = TopologyPowerComparison::paper_table1();
        // Folded-Clos column.
        assert_eq!(t.clos.hosts, 32_768);
        assert_eq!(t.clos.bisection_gbps, 655_360.0);
        assert_eq!(t.clos.electrical_links, 49_152);
        assert_eq!(t.clos.optical_links, 65_536);
        assert_eq!(t.clos.switch_chips, 8_192.0);
        assert_eq!(t.clos.total_power_watts, 1_146_880.0);
        assert!((t.clos.watts_per_gbps() - 1.75).abs() < 1e-9);
        // FBFLY column.
        assert_eq!(t.fbfly.hosts, 32_768);
        assert_eq!(t.fbfly.bisection_gbps, 655_360.0);
        assert_eq!(t.fbfly.electrical_links, 47_104);
        assert_eq!(t.fbfly.optical_links, 43_008);
        assert_eq!(t.fbfly.switch_chips, 4_096.0);
        assert_eq!(t.fbfly.total_power_watts, 737_280.0);
        assert!((t.fbfly.watts_per_gbps() - 1.125).abs() < 1e-9);
        // Headline: 409,600 fewer watts.
        assert_eq!(t.savings_watts(), 409_600.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = TopologyPowerComparison::paper_table1();
        let text = t.to_table();
        assert!(text.contains("32768"));
        assert!(text.contains("1146880"));
        assert!(text.contains("737280"));
        assert!(text.contains("1.75"));
        assert!(text.contains("1.13") || text.contains("1.12"));
        assert_eq!(text.lines().count(), 8);
    }

    #[test]
    fn media_aware_power_favors_fbfly_even_more() {
        // §2.2 says ignoring the electrical discount "does not favor the
        // FBFLY topology": with the discount applied, the butterfly's
        // larger electrical share must widen its advantage.
        let t = TopologyPowerComparison::paper_table1();
        let model = SwitchPowerModel::paper_default();
        let clos = t.clos.media_aware_power_watts(&model);
        let fbfly = t.fbfly.media_aware_power_watts(&model);
        assert!(clos < t.clos.total_power_watts);
        assert!(fbfly < t.fbfly.total_power_watts);
        let naive_gap = t.clos.total_power_watts - t.fbfly.total_power_watts;
        let refined_gap = clos - fbfly;
        assert!(
            refined_gap > naive_gap * 0.85,
            "discount should not erase the advantage: {refined_gap} vs {naive_gap}"
        );
        // The FBFLY's packaging locality gives it the larger electrical
        // share, so its *switch* power drops by a larger fraction
        // (52.3% of its ports are electrical vs the Clos's 42.9%).
        let nic = |row: &TopologyPowerRow| row.hosts as f64 * model.nic_watts();
        let fbfly_drop =
            1.0 - (fbfly - nic(&t.fbfly)) / (t.fbfly.total_power_watts - nic(&t.fbfly));
        let clos_drop = 1.0 - (clos - nic(&t.clos)) / (t.clos.total_power_watts - nic(&t.clos));
        assert!(
            fbfly_drop > clos_drop,
            "fbfly switch-power drop {fbfly_drop:.4} vs clos {clos_drop:.4}"
        );
    }

    #[test]
    fn smaller_network_keeps_fbfly_advantage() {
        // §2.2: "the trends shown in Table 1 continue to hold for this
        // scale of cluster."
        use epnet_topology::{ChassisSpec, FoldedClos};
        let fbfly = FlattenedButterfly::new(8, 8, 4).unwrap(); // 4096 hosts
        let clos = FoldedClos::new(4_096, ChassisSpec::paper_324_port()).unwrap();
        let t =
            TopologyPowerComparison::new(&clos, &fbfly, &SwitchPowerModel::paper_default(), 40.0);
        assert!(t.savings_watts() > 0.0);
        assert!(t.fbfly.watts_per_gbps() < t.clos.watts_per_gbps());
    }
}
