//! ITRS bandwidth trend data — **Figure 6** of the paper.
//!
//! "Bandwidth trends from International Roadmap for Semiconductors
//! (ITRS)": aggregate switch-package I/O bandwidth grows toward
//! 160 Tb/s and off-chip signaling toward 70 Gb/s by 2023, while package
//! pin counts grow only slowly — the motivation for the paper's warning
//! that "going forward we expect more I/Os per switch package, operating
//! at higher data rates, further increasing chip power consumption"
//! (§3.1).

use serde::{Deserialize, Serialize};

/// One sample of the ITRS roadmap series plotted in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItrsSample {
    /// Roadmap year.
    pub year: u16,
    /// Aggregate package I/O bandwidth in Tb/s.
    pub io_bandwidth_tbps: f64,
    /// Off-chip signaling rate in Gb/s.
    pub offchip_clock_gbps: f64,
    /// Package pin count in thousands.
    pub package_pins_thousands: f64,
}

/// The Figure-6 series, reconstructed from the chart's anchor labels
/// (1 Tb/s-class I/O in 2008 rising to "160 Tb/s" by 2023; off-chip
/// signaling reaching "70 Gb/s"; pin counts growing ~10%/year from ~1k).
/// Intermediate years follow the roadmap's exponential cadence.
pub fn itrs_trends() -> Vec<ItrsSample> {
    const YEARS: [u16; 4] = [2008, 2013, 2018, 2023];
    // Geometric interpolation between the chart's end points.
    const IO_TBPS: [f64; 4] = [1.0, 5.5, 30.0, 160.0];
    const CLOCK_GBPS: [f64; 4] = [10.0, 19.0, 37.0, 70.0];
    const PINS_K: [f64; 4] = [1.0, 1.6, 2.6, 4.2];
    YEARS
        .iter()
        .enumerate()
        .map(|(i, &year)| ItrsSample {
            year,
            io_bandwidth_tbps: IO_TBPS[i],
            offchip_clock_gbps: CLOCK_GBPS[i],
            package_pins_thousands: PINS_K[i],
        })
        .collect()
}

/// Compound annual growth rate between the first and last samples of a
/// series, used to sanity-check the reconstruction: I/O bandwidth grows
/// much faster than pins, implying per-pin rates (and power) must climb.
pub fn cagr(first: f64, last: f64, years: f64) -> f64 {
    (last / first).powf(1.0 / years) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_figure6_labels() {
        let t = itrs_trends();
        assert_eq!(t.first().unwrap().year, 2008);
        let last = t.last().unwrap();
        assert_eq!(last.year, 2023);
        assert_eq!(last.io_bandwidth_tbps, 160.0);
        assert_eq!(last.offchip_clock_gbps, 70.0);
    }

    #[test]
    fn series_is_monotone_increasing() {
        let t = itrs_trends();
        for w in t.windows(2) {
            assert!(w[1].io_bandwidth_tbps > w[0].io_bandwidth_tbps);
            assert!(w[1].offchip_clock_gbps > w[0].offchip_clock_gbps);
            assert!(w[1].package_pins_thousands > w[0].package_pins_thousands);
        }
    }

    #[test]
    fn bandwidth_outpaces_pins() {
        // The core Figure-6 message: I/O bandwidth grows far faster than
        // pin counts, so per-pin signaling (and power) must rise.
        let t = itrs_trends();
        let years = f64::from(t.last().unwrap().year - t[0].year);
        let bw = cagr(
            t[0].io_bandwidth_tbps,
            t.last().unwrap().io_bandwidth_tbps,
            years,
        );
        let pins = cagr(
            t[0].package_pins_thousands,
            t.last().unwrap().package_pins_thousands,
            years,
        );
        assert!(bw > 3.0 * pins);
    }

    #[test]
    fn cagr_examples() {
        assert!((cagr(1.0, 2.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((cagr(100.0, 100.0, 5.0)).abs() < 1e-12);
    }
}
