//! Whole-datacenter power model — **Figure 1** of the paper.

use serde::{Deserialize, Serialize};

/// Server + network power of a cluster under different energy
/// proportionality assumptions, reproducing Figure 1.
///
/// The paper's target system: "each of 32k servers consumes 250 watts at
/// peak load" next to the folded-Clos network of Table 1 (1,146,880 W),
/// so "the network consumes only 12% of overall power at full
/// utilization" but "nearly 50%" at 15% utilization with
/// energy-proportional servers.
///
/// ```
/// use epnet_power::DatacenterPowerModel;
/// let m = DatacenterPowerModel::paper_figure1();
/// let full = m.scenario(1.0, true, false);
/// assert!((full.network_fraction() - 0.123).abs() < 0.005);
/// let idleish = m.scenario(0.15, true, false);
/// assert!((idleish.network_fraction() - 0.48).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatacenterPowerModel {
    servers: u64,
    server_peak_watts: f64,
    network_peak_watts: f64,
}

/// The power breakdown of one utilization scenario (one bar group of
/// Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatacenterScenario {
    /// Utilization this scenario assumes (0.0–1.0).
    pub utilization: f64,
    /// Aggregate server power in watts.
    pub server_watts: f64,
    /// Network power in watts.
    pub network_watts: f64,
}

impl DatacenterScenario {
    /// Total cluster IT power.
    pub fn total_watts(&self) -> f64 {
        self.server_watts + self.network_watts
    }

    /// Fraction of total power consumed by the network.
    pub fn network_fraction(&self) -> f64 {
        self.network_watts / self.total_watts()
    }
}

impl DatacenterPowerModel {
    /// Builds a model from server count, per-server peak watts, and the
    /// network's full-utilization power.
    pub fn new(servers: u64, server_peak_watts: f64, network_peak_watts: f64) -> Self {
        Self {
            servers,
            server_peak_watts,
            network_peak_watts,
        }
    }

    /// The paper's Figure-1 system: 32k servers at 250 W and the
    /// folded-Clos network of Table 1.
    pub fn paper_figure1() -> Self {
        Self::new(32_768, 250.0, 1_146_880.0)
    }

    /// Peak server fleet power in watts.
    pub fn server_peak_watts(&self) -> f64 {
        self.servers as f64 * self.server_peak_watts
    }

    /// Network power at full utilization in watts.
    #[inline]
    pub fn network_peak_watts(&self) -> f64 {
        self.network_peak_watts
    }

    /// Computes one scenario. Energy-proportional components scale
    /// linearly with `utilization`; non-proportional ones stay at peak
    /// (the paper's "always on" network).
    pub fn scenario(
        &self,
        utilization: f64,
        servers_proportional: bool,
        network_proportional: bool,
    ) -> DatacenterScenario {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be within [0, 1]"
        );
        let server_scale = if servers_proportional {
            utilization
        } else {
            1.0
        };
        let network_scale = if network_proportional {
            utilization
        } else {
            1.0
        };
        DatacenterScenario {
            utilization,
            server_watts: self.server_peak_watts() * server_scale,
            network_watts: self.network_peak_watts * network_scale,
        }
    }

    /// The three bar groups of Figure 1: full utilization; 15% with
    /// energy-proportional servers; 15% with energy-proportional servers
    /// *and* network.
    pub fn figure1_scenarios(&self) -> [DatacenterScenario; 3] {
        [
            self.scenario(1.0, true, false),
            self.scenario(0.15, true, false),
            self.scenario(0.15, true, true),
        ]
    }

    /// Watts saved at `utilization` by making the network energy
    /// proportional — "at 15% load, making the network energy
    /// proportional results in a savings of 975,000 watts regardless of
    /// whether servers are energy proportional" (§1).
    pub fn network_ep_savings_watts(&self, utilization: f64) -> f64 {
        self.network_peak_watts * (1.0 - utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DatacenterPowerModel {
        DatacenterPowerModel::paper_figure1()
    }

    #[test]
    fn network_is_12_percent_at_full_utilization() {
        let s = model().scenario(1.0, true, false);
        assert!((s.network_fraction() - 0.1228).abs() < 0.001);
        assert_eq!(s.server_watts, 8_192_000.0);
    }

    #[test]
    fn network_is_nearly_half_at_15_percent() {
        // §1: "if the system is 15% utilized ... the network will then
        // consume nearly 50% of overall power."
        let s = model().scenario(0.15, true, false);
        assert!(s.network_fraction() > 0.47 && s.network_fraction() < 0.50);
    }

    #[test]
    fn ep_network_saves_975_kw_at_15_percent() {
        let w = model().network_ep_savings_watts(0.15);
        assert!((w - 974_848.0).abs() < 1.0);
    }

    #[test]
    fn figure1_scenarios_ordering() {
        let [full, ep_servers, ep_both] = model().figure1_scenarios();
        assert!(full.total_watts() > ep_servers.total_watts());
        assert!(ep_servers.total_watts() > ep_both.total_watts());
        // With both proportional at equal utilization, the network share
        // returns to its full-utilization share.
        assert!((ep_both.network_fraction() - full.network_fraction()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn utilization_out_of_range_panics() {
        let _ = model().scenario(1.5, true, true);
    }

    #[test]
    fn non_proportional_servers_stay_at_peak() {
        let s = model().scenario(0.15, false, false);
        assert_eq!(s.server_watts, model().server_peak_watts());
        assert_eq!(s.network_watts, model().network_peak_watts());
    }
}
