//! Power, energy, and cost models for energy-proportional datacenter
//! networks (Abts et&nbsp;al., ISCA 2010).
//!
//! The crate covers the analytical half of the paper:
//!
//! * [`LinkRate`] and [`LinkPowerProfile`] — the multi-rate plesiochronous
//!   channel model (§3.1, Table 2, Figure 5), including the measured
//!   InfiniBand-switch profile and the *ideal* energy-proportional channel.
//! * [`SwitchPowerModel`] — per-chip and per-NIC power (§2.2's 100 W
//!   switches and 10 W NICs).
//! * [`TopologyPowerComparison`] — reproduces **Table 1** (folded-Clos vs
//!   flattened butterfly at fixed bisection bandwidth).
//! * [`DatacenterPowerModel`] — reproduces **Figure 1** (server vs network
//!   power as servers become energy proportional).
//! * [`EnergyCostModel`] — electricity + PUE cost model behind the paper's
//!   $1.6 M / $2.4 M / $3.8 M savings claims.
//! * [`itrs_trends`](trends::itrs_trends) — the ITRS bandwidth trend data
//!   of **Figure 6**.
//!
//! # Example: Table 1 in four lines
//!
//! ```
//! use epnet_power::TopologyPowerComparison;
//! let table1 = TopologyPowerComparison::paper_table1();
//! assert_eq!(table1.fbfly.total_power_watts, 737_280.0);
//! assert_eq!(table1.clos.total_power_watts, 1_146_880.0);
//! assert_eq!(table1.savings_watts(), 409_600.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod comparison;
mod cost;
mod datacenter;
mod energy;
mod profiles;
mod switch;
pub mod trends;

pub use comparison::{TopologyPowerComparison, TopologyPowerRow};
pub use cost::EnergyCostModel;
pub use datacenter::{DatacenterPowerModel, DatacenterScenario};
pub use energy::NetworkEnergyModel;
pub use profiles::{
    InfinibandMode, LaneWidth, LinkPowerProfile, LinkRate, SignalingRate, RATE_LADDER,
};
pub use switch::SwitchPowerModel;
