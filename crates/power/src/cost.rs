//! Electricity cost model (§1, §2.2, §4.2.2).

use serde::{Deserialize, Serialize};

/// Converts watts of IT load into operating expenditure, following the
/// paper's assumptions: "an average industrial electricity rate of $0.07
/// per kilowatt-hour and a datacenter PUE of 1.6" over a four-year
/// service life.
///
/// ```
/// use epnet_power::EnergyCostModel;
/// let m = EnergyCostModel::paper_default();
/// // §2.2: the FBFLY saves 409,600 W over the Clos → "over $1.6M of
/// // energy savings over a four-year lifetime".
/// let dollars = m.cost_dollars(409_600.0, m.service_life_hours());
/// assert!((1.55e6..1.65e6).contains(&dollars));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyCostModel {
    dollars_per_kwh: f64,
    pue: f64,
    service_life_years: f64,
}

/// Mean hours per year including leap years.
const HOURS_PER_YEAR: f64 = 8_766.0;

impl EnergyCostModel {
    /// Builds a cost model.
    pub fn new(dollars_per_kwh: f64, pue: f64, service_life_years: f64) -> Self {
        Self {
            dollars_per_kwh,
            pue,
            service_life_years,
        }
    }

    /// The paper's parameters: $0.07/kWh, PUE 1.6 ("the middle-point
    /// between industry-leading datacenters (1.2) and the EPA's 2007
    /// survey (2.0)"), four-year service life.
    pub fn paper_default() -> Self {
        Self::new(0.07, 1.6, 4.0)
    }

    /// Electricity price in $/kWh.
    #[inline]
    pub fn dollars_per_kwh(&self) -> f64 {
        self.dollars_per_kwh
    }

    /// Power usage effectiveness multiplier.
    #[inline]
    pub fn pue(&self) -> f64 {
        self.pue
    }

    /// Service life in years.
    #[inline]
    pub fn service_life_years(&self) -> f64 {
        self.service_life_years
    }

    /// Hours in the configured service life.
    pub fn service_life_hours(&self) -> f64 {
        self.service_life_years * HOURS_PER_YEAR
    }

    /// Cost in dollars of drawing `watts` of IT load for `hours`,
    /// including the PUE overhead for delivery and cooling.
    pub fn cost_dollars(&self, watts: f64, hours: f64) -> f64 {
        watts / 1_000.0 * hours * self.dollars_per_kwh * self.pue
    }

    /// Cost over the full service life.
    pub fn lifetime_cost_dollars(&self, watts: f64) -> f64 {
        self.cost_dollars(watts, self.service_life_hours())
    }

    /// Lifetime savings from reducing power `from_watts → to_watts`.
    pub fn lifetime_savings_dollars(&self, from_watts: f64, to_watts: f64) -> f64 {
        self.lifetime_cost_dollars(from_watts - to_watts)
    }
}

impl Default for EnergyCostModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyCostModel {
        EnergyCostModel::paper_default()
    }

    #[test]
    fn topology_savings_match_paper_1_6m() {
        // §2.2: 409,600 W → "over $1.6M".
        let d = model().lifetime_cost_dollars(409_600.0);
        assert!((1.6e6..1.7e6).contains(&d), "got ${d:.0}");
    }

    #[test]
    fn baseline_fbfly_lifetime_cost_matches_paper_2_89m() {
        // §2.2: "the baseline FBFLY network consumes 737,280 watts
        // resulting in a four year power cost of $2.89M".
        let d = model().lifetime_cost_dollars(737_280.0);
        assert!((2.85e6..2.95e6).contains(&d), "got ${d:.0}");
    }

    #[test]
    fn ep_network_at_15pct_saves_3_8m() {
        // §1: at 15% load an energy proportional network saves 975 kW
        // and "approximately $3.8M".
        let saved_watts = 1_146_880.0 * 0.85;
        assert!((974_000.0..976_000.0).contains(&saved_watts));
        let d = model().lifetime_cost_dollars(saved_watts);
        assert!((3.75e6..3.9e6).contains(&d), "got ${d:.0}");
    }

    #[test]
    fn six_x_reduction_saves_2_4m() {
        // §1/§4.2.2: a 6× power reduction on the 737 kW FBFLY saves
        // "an additional $2.4M"; 6.6× saves "$2.5M".
        let m = model();
        let six = m.lifetime_savings_dollars(737_280.0, 737_280.0 / 6.0);
        assert!((2.35e6..2.45e6).contains(&six), "got ${six:.0}");
        let six_six = m.lifetime_savings_dollars(737_280.0, 737_280.0 / 6.6);
        assert!((2.4e6..2.55e6).contains(&six_six), "got ${six_six:.0}");
    }

    #[test]
    fn pue_multiplies_cost() {
        let lean = EnergyCostModel::new(0.07, 1.2, 4.0);
        let epa = EnergyCostModel::new(0.07, 2.0, 4.0);
        let w = 100_000.0;
        assert!(lean.lifetime_cost_dollars(w) < model().lifetime_cost_dollars(w));
        assert!(model().lifetime_cost_dollars(w) < epa.lifetime_cost_dollars(w));
        assert!(
            (epa.lifetime_cost_dollars(w) / lean.lifetime_cost_dollars(w) - 2.0 / 1.2).abs() < 1e-9
        );
    }

    #[test]
    fn accessors_expose_parameters() {
        let m = model();
        assert_eq!(m.dollars_per_kwh(), 0.07);
        assert_eq!(m.pue(), 1.6);
        assert_eq!(m.service_life_years(), 4.0);
        assert_eq!(m.service_life_hours(), 4.0 * 8_766.0);
        assert_eq!(EnergyCostModel::default(), m);
    }
}
