//! Multi-rate link model and channel power profiles (§3.1, Table 2,
//! Figure 5).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The data rates a channel can be configured for, matching the paper's
/// evaluation ladder: "Links have a maximum bandwidth of 40 Gb/s, and can
/// be detuned to 20, 10, 5 and 2.5 Gb/s, similar to the InfiniBand switch
/// in Figure 5" (§4.1).
///
/// Rates are stored exactly in Mb/s so serialization times in the
/// simulator are exact integer picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkRate {
    /// 2.5 Gb/s — one lane at single data rate (1× SDR).
    R2_5,
    /// 5 Gb/s — one lane at double data rate (1× DDR).
    R5,
    /// 10 Gb/s — one lane at quad data rate or four lanes at SDR.
    R10,
    /// 20 Gb/s — four lanes at double data rate (4× DDR).
    R20,
    /// 40 Gb/s — four lanes at quad data rate (4× QDR): full speed.
    R40,
}

/// The detune ladder from fastest to slowest.
pub const RATE_LADDER: [LinkRate; 5] = [
    LinkRate::R40,
    LinkRate::R20,
    LinkRate::R10,
    LinkRate::R5,
    LinkRate::R2_5,
];

impl LinkRate {
    /// The rate in Mb/s (exact).
    #[inline]
    pub const fn mbps(self) -> u64 {
        match self {
            Self::R2_5 => 2_500,
            Self::R5 => 5_000,
            Self::R10 => 10_000,
            Self::R20 => 20_000,
            Self::R40 => 40_000,
        }
    }

    /// The rate in Gb/s.
    #[inline]
    pub fn gbps(self) -> f64 {
        self.mbps() as f64 / 1_000.0
    }

    /// Dense index into [`RATE_LADDER`]-sized tables (0 = slowest).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Self::R2_5 => 0,
            Self::R5 => 1,
            Self::R10 => 2,
            Self::R20 => 3,
            Self::R40 => 4,
        }
    }

    /// Number of distinct rates.
    pub const COUNT: usize = 5;

    /// The next rate down the ladder ("detune the speed of the link to
    /// half the current rate, down to the minimum", §3.3), saturating at
    /// the slowest rate.
    #[inline]
    pub const fn halved(self) -> Self {
        match self {
            Self::R40 => Self::R20,
            Self::R20 => Self::R10,
            Self::R10 => Self::R5,
            Self::R5 | Self::R2_5 => Self::R2_5,
        }
    }

    /// The next rate up the ladder ("the link rate is doubled up to the
    /// maximum", §3.3), saturating at full speed.
    #[inline]
    pub const fn doubled(self) -> Self {
        match self {
            Self::R2_5 => Self::R5,
            Self::R5 => Self::R10,
            Self::R10 => Self::R20,
            Self::R20 | Self::R40 => Self::R40,
        }
    }

    /// Slowest configurable rate.
    pub const MIN: Self = Self::R2_5;
    /// Fastest configurable rate.
    pub const MAX: Self = Self::R40;

    /// The canonical InfiniBand mode realising this ladder rate, fixing
    /// the lane count the detune ladder uses: 40/20/10 Gb/s run all
    /// four lanes (QDR/DDR/SDR), 5/2.5 Gb/s drop to one lane (DDR/SDR).
    /// Two rates differing in lane count need the slower lane-alignment
    /// resynchronization; same-width transitions only relock the CDR
    /// (§3.1).
    pub const fn canonical_mode(self) -> InfinibandMode {
        match self {
            Self::R40 => InfinibandMode {
                width: LaneWidth::X4,
                signaling: SignalingRate::Qdr,
            },
            Self::R20 => InfinibandMode {
                width: LaneWidth::X4,
                signaling: SignalingRate::Ddr,
            },
            Self::R10 => InfinibandMode {
                width: LaneWidth::X4,
                signaling: SignalingRate::Sdr,
            },
            Self::R5 => InfinibandMode {
                width: LaneWidth::X1,
                signaling: SignalingRate::Ddr,
            },
            Self::R2_5 => InfinibandMode {
                width: LaneWidth::X1,
                signaling: SignalingRate::Sdr,
            },
        }
    }

    /// Whether retuning from `self` to `other` changes the active lane
    /// count (the slow kind of reactivation, §3.1).
    pub fn transition_changes_lanes(self, other: Self) -> bool {
        self.canonical_mode().lanes() != other.canonical_mode().lanes()
    }

    /// Picoseconds to serialize `bytes` at this rate (exact integer for
    /// every ladder rate).
    #[inline]
    pub const fn serialize_ps(self, bytes: u64) -> u64 {
        // bytes · 8 bits · 1e6 ps-per-μs / rate_mbps; 8e6 is divisible by
        // every ladder rate in Mb/s.
        bytes * (8_000_000 / self.mbps())
    }

    /// Fraction of full (40 Gb/s) speed.
    #[inline]
    pub fn speed_fraction(self) -> f64 {
        self.mbps() as f64 / Self::MAX.mbps() as f64
    }
}

impl fmt::Display for LinkRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::R2_5 => write!(f, "2.5 Gb/s"),
            Self::R5 => write!(f, "5 Gb/s"),
            Self::R10 => write!(f, "10 Gb/s"),
            Self::R20 => write!(f, "20 Gb/s"),
            Self::R40 => write!(f, "40 Gb/s"),
        }
    }
}

/// Lane width of an InfiniBand-style link (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaneWidth {
    /// A single serial lane.
    X1,
    /// Four bonded lanes.
    X4,
}

/// Per-lane signaling rate of an InfiniBand-style link (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalingRate {
    /// Single data rate: 2.5 Gb/s per lane.
    Sdr,
    /// Double data rate: 5 Gb/s per lane.
    Ddr,
    /// Quad data rate: 10 Gb/s per lane.
    Qdr,
}

/// One row of the paper's Table 2: an InfiniBand operational mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InfinibandMode {
    /// Lane count.
    pub width: LaneWidth,
    /// Per-lane signaling rate.
    pub signaling: SignalingRate,
}

impl InfinibandMode {
    /// All six modes of Table 2, slowest first.
    pub const ALL: [Self; 6] = [
        Self {
            width: LaneWidth::X1,
            signaling: SignalingRate::Sdr,
        },
        Self {
            width: LaneWidth::X1,
            signaling: SignalingRate::Ddr,
        },
        Self {
            width: LaneWidth::X1,
            signaling: SignalingRate::Qdr,
        },
        Self {
            width: LaneWidth::X4,
            signaling: SignalingRate::Sdr,
        },
        Self {
            width: LaneWidth::X4,
            signaling: SignalingRate::Ddr,
        },
        Self {
            width: LaneWidth::X4,
            signaling: SignalingRate::Qdr,
        },
    ];

    /// Aggregate data rate in Gb/s (Table 2's "Data rate" column).
    pub fn gbps(self) -> f64 {
        let lanes = match self.width {
            LaneWidth::X1 => 1.0,
            LaneWidth::X4 => 4.0,
        };
        let per_lane = match self.signaling {
            SignalingRate::Sdr => 2.5,
            SignalingRate::Ddr => 5.0,
            SignalingRate::Qdr => 10.0,
        };
        lanes * per_lane
    }

    /// The [`LinkRate`] ladder entry this mode realises, if any
    /// (1×QDR and 4×SDR both realise 10 Gb/s).
    pub fn link_rate(self) -> LinkRate {
        match self.gbps() as u32 {
            2 => LinkRate::R2_5,
            5 => LinkRate::R5,
            10 => LinkRate::R10,
            20 => LinkRate::R20,
            _ => LinkRate::R40,
        }
    }

    /// Lane count as a number.
    pub fn lanes(self) -> u8 {
        match self.width {
            LaneWidth::X1 => 1,
            LaneWidth::X4 => 4,
        }
    }

    /// Table-2 style name, e.g. `"4x QDR"`.
    pub fn name(self) -> String {
        let w = match self.width {
            LaneWidth::X1 => "1x",
            LaneWidth::X4 => "4x",
        };
        let s = match self.signaling {
            SignalingRate::Sdr => "SDR",
            SignalingRate::Ddr => "DDR",
            SignalingRate::Qdr => "QDR",
        };
        format!("{w} {s}")
    }
}

/// Normalized power of a channel as a function of its configured rate.
///
/// Two built-in profiles bracket the design space the paper explores:
///
/// * [`LinkPowerProfile::Measured`] — derived from the off-the-shelf
///   InfiniBand switch of Figure 5. The anchor points come from the text:
///   the slowest mode consumes **42%** of full power (§4.2.1: "a network
///   that always operated in the slowest and lowest power mode would
///   consume 42% of the baseline power"; §5.3: "a switch chip today still
///   consumes 42% the power when in the lower performance mode").
///   Intermediate modes are interpolated from the Figure 5 bar heights.
/// * [`LinkPowerProfile::Ideal`] — a perfectly energy-proportional
///   channel: power scales linearly with rate, so 2.5 Gb/s costs
///   2.5/40 = 6.25% of full power (§5.3 rounds this to "6.25%"; §4.2
///   quotes "6.125%"/"6.1%" — we use the exact ratio and record the
///   half-percent discrepancy in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkPowerProfile {
    /// Figure-5-derived profile of a real switch chip (optical mode).
    Measured,
    /// Perfectly energy-proportional channel: `P(r) = r / 40 Gb/s`.
    Ideal,
    /// Custom normalized power per ladder rate, slowest first
    /// (index with [`LinkRate::index`]).
    Custom([f64; LinkRate::COUNT]),
}

/// Figure-5-derived normalized power (optical mode), indexed slowest
/// rate first. End points are the paper's 42% and 100%; interior points
/// estimated from the bar chart.
const MEASURED_OPTICAL: [f64; LinkRate::COUNT] = [0.42, 0.46, 0.55, 0.72, 1.0];

/// Electrical ports draw about 25% less than optical ones (§2.2: the
/// switch "uses 25% less power to drive an electrical link compared to an
/// optical link").
pub(crate) const COPPER_DISCOUNT: f64 = 0.75;

/// Normalized power of the chip with links idled (Figure 5's
/// "IDLE Mode" / STATIC bar): close to the slowest active mode, which is
/// why the paper finds "very little additional power savings in shutting
/// off a link entirely" (§5.2).
pub(crate) const MEASURED_IDLE: f64 = 0.36;

impl LinkPowerProfile {
    /// Normalized power (fraction of full-speed power) at `rate`.
    ///
    /// ```
    /// use epnet_power::{LinkPowerProfile, LinkRate};
    /// assert_eq!(LinkPowerProfile::Measured.relative_power(LinkRate::R40), 1.0);
    /// assert_eq!(LinkPowerProfile::Measured.relative_power(LinkRate::R2_5), 0.42);
    /// assert_eq!(LinkPowerProfile::Ideal.relative_power(LinkRate::R2_5), 0.0625);
    /// ```
    pub fn relative_power(&self, rate: LinkRate) -> f64 {
        match self {
            Self::Measured => MEASURED_OPTICAL[rate.index()],
            Self::Ideal => rate.speed_fraction(),
            Self::Custom(table) => table[rate.index()],
        }
    }

    /// Normalized power of a powered-off / idle link, for the dynamic
    /// topology extension (§5.2). The measured chip barely drops below
    /// its slowest active mode; an ideal channel drops to zero.
    pub fn idle_relative_power(&self) -> f64 {
        match self {
            Self::Measured => MEASURED_IDLE,
            Self::Ideal => 0.0,
            Self::Custom(table) => table[0].min(MEASURED_IDLE),
        }
    }

    /// The paper's Figure-5 bar heights for one link medium: pairs of
    /// (mode, normalized power). `copper` applies the 25% electrical
    /// discount.
    pub fn figure5_bars(copper: bool) -> Vec<(InfinibandMode, f64)> {
        let scale = if copper { COPPER_DISCOUNT } else { 1.0 };
        InfinibandMode::ALL
            .iter()
            .map(|&mode| {
                let p = MEASURED_OPTICAL[mode.link_rate().index()];
                (mode, p * scale)
            })
            .collect()
    }

    /// Dynamic range in power: `1 − P(min)/P(max)`.
    pub fn power_dynamic_range(&self) -> f64 {
        1.0 - self.relative_power(LinkRate::MIN) / self.relative_power(LinkRate::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_halving() {
        for w in RATE_LADDER.windows(2) {
            assert_eq!(w[0].mbps(), 2 * w[1].mbps());
            assert_eq!(w[0].halved(), w[1]);
            assert_eq!(w[1].doubled(), w[0]);
        }
        assert_eq!(LinkRate::MIN.halved(), LinkRate::MIN);
        assert_eq!(LinkRate::MAX.doubled(), LinkRate::MAX);
    }

    #[test]
    fn serialize_times_are_exact() {
        // 1500 B at 40 Gb/s = 300 ns.
        assert_eq!(LinkRate::R40.serialize_ps(1500), 300_000);
        // 16x slower at 2.5 Gb/s.
        assert_eq!(LinkRate::R2_5.serialize_ps(1500), 4_800_000);
        for r in RATE_LADDER {
            assert_eq!(8_000_000 % r.mbps(), 0, "{r} must divide evenly");
        }
    }

    #[test]
    fn table2_rates() {
        // Table 2 of the paper.
        let gbps: Vec<f64> = InfinibandMode::ALL.iter().map(|m| m.gbps()).collect();
        assert_eq!(gbps, vec![2.5, 5.0, 10.0, 10.0, 20.0, 40.0]);
        assert_eq!(InfinibandMode::ALL[0].name(), "1x SDR");
        assert_eq!(InfinibandMode::ALL[5].name(), "4x QDR");
    }

    #[test]
    fn performance_dynamic_range_is_16x() {
        // §3.1: "16X in terms of performance".
        assert_eq!(LinkRate::MAX.mbps() / LinkRate::MIN.mbps(), 16,);
    }

    #[test]
    fn measured_profile_anchors() {
        let p = LinkPowerProfile::Measured;
        assert_eq!(p.relative_power(LinkRate::R40), 1.0);
        assert_eq!(p.relative_power(LinkRate::R2_5), 0.42);
        // §7: "nearly 60% power savings compared to full utilization".
        assert!((p.power_dynamic_range() - 0.58).abs() < 1e-12);
        // Idle barely below slowest active mode (§5.2).
        assert!(p.idle_relative_power() < p.relative_power(LinkRate::R2_5));
        assert!(p.idle_relative_power() > 0.3);
    }

    #[test]
    fn ideal_profile_is_linear() {
        let p = LinkPowerProfile::Ideal;
        for r in RATE_LADDER {
            assert!((p.relative_power(r) - r.gbps() / 40.0).abs() < 1e-12);
        }
        assert_eq!(p.relative_power(LinkRate::R2_5), 0.0625);
        assert_eq!(p.idle_relative_power(), 0.0);
    }

    #[test]
    fn measured_profile_is_monotone() {
        let p = LinkPowerProfile::Measured;
        for w in RATE_LADDER.windows(2) {
            assert!(p.relative_power(w[0]) > p.relative_power(w[1]));
        }
    }

    #[test]
    fn custom_profile_is_used_verbatim() {
        let p = LinkPowerProfile::Custom([0.1, 0.2, 0.3, 0.4, 1.0]);
        assert_eq!(p.relative_power(LinkRate::R5), 0.2);
        assert_eq!(p.idle_relative_power(), 0.1);
    }

    #[test]
    fn figure5_copper_discount() {
        let optical = LinkPowerProfile::figure5_bars(false);
        let copper = LinkPowerProfile::figure5_bars(true);
        assert_eq!(optical.len(), 6);
        for (o, c) in optical.iter().zip(&copper) {
            assert!((c.1 - 0.75 * o.1).abs() < 1e-12);
        }
        // Full-speed optical bar is the normalization point.
        assert_eq!(optical[5].1, 1.0);
    }

    #[test]
    fn rate_display_and_index() {
        assert_eq!(LinkRate::R2_5.to_string(), "2.5 Gb/s");
        assert_eq!(LinkRate::R40.to_string(), "40 Gb/s");
        for (i, r) in [
            LinkRate::R2_5,
            LinkRate::R5,
            LinkRate::R10,
            LinkRate::R20,
            LinkRate::R40,
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn canonical_modes_round_trip() {
        for r in RATE_LADDER {
            assert_eq!(r.canonical_mode().link_rate(), r);
        }
        // Lane changes happen exactly when crossing the 10 / 5 Gb/s
        // boundary of the ladder.
        assert!(!LinkRate::R40.transition_changes_lanes(LinkRate::R20));
        assert!(!LinkRate::R20.transition_changes_lanes(LinkRate::R10));
        assert!(LinkRate::R10.transition_changes_lanes(LinkRate::R5));
        assert!(!LinkRate::R5.transition_changes_lanes(LinkRate::R2_5));
        assert!(LinkRate::R40.transition_changes_lanes(LinkRate::R2_5));
    }

    #[test]
    fn infiniband_modes_map_to_ladder() {
        use LinkRate::*;
        let rates: Vec<LinkRate> = InfinibandMode::ALL.iter().map(|m| m.link_rate()).collect();
        assert_eq!(rates, vec![R2_5, R5, R10, R10, R20, R40]);
    }
}
