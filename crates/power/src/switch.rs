//! Switch-chip and NIC power model (§2.2).

use serde::{Deserialize, Serialize};

/// First-order power model of the network's building blocks, following
/// the paper's assumptions in §2.2:
///
/// * a 36-port switch chip consumes 100 W regardless of which "always on"
///   links it drives ("we arrive at 100 Watts by assuming each of 144
///   SerDes (one per lane per port) consume ≈0.7 Watts"),
/// * a host NIC consumes 10 W at full utilization,
/// * the same switch chips are used throughout the interconnect.
///
/// ```
/// use epnet_power::SwitchPowerModel;
/// let m = SwitchPowerModel::paper_default();
/// assert_eq!(m.switch_watts(), 100.0);
/// assert!((m.serdes_watts() - 0.694).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchPowerModel {
    ports: u16,
    lanes_per_port: u16,
    watts_per_serdes: f64,
    nic_watts: f64,
}

impl SwitchPowerModel {
    /// Builds a model for chips with `ports` ports of `lanes_per_port`
    /// lanes, each lane's SerDes drawing `watts_per_serdes`, and NICs
    /// drawing `nic_watts`.
    pub fn new(ports: u16, lanes_per_port: u16, watts_per_serdes: f64, nic_watts: f64) -> Self {
        Self {
            ports,
            lanes_per_port,
            watts_per_serdes,
            nic_watts,
        }
    }

    /// The paper's configuration: 36 ports × 4 lanes at ≈0.694 W per
    /// SerDes so the chip totals exactly 100 W, and 10 W NICs.
    pub fn paper_default() -> Self {
        Self {
            ports: 36,
            lanes_per_port: 4,
            watts_per_serdes: 100.0 / 144.0,
            nic_watts: 10.0,
        }
    }

    /// Ports per chip.
    #[inline]
    pub fn ports(&self) -> u16 {
        self.ports
    }

    /// SerDes (lanes) per chip.
    pub fn serdes_per_chip(&self) -> u32 {
        u32::from(self.ports) * u32::from(self.lanes_per_port)
    }

    /// Power of one SerDes in watts.
    #[inline]
    pub fn serdes_watts(&self) -> f64 {
        self.watts_per_serdes
    }

    /// Full power of one switch chip in watts.
    pub fn switch_watts(&self) -> f64 {
        f64::from(self.serdes_per_chip()) * self.watts_per_serdes
    }

    /// Power of one host NIC at full utilization in watts.
    #[inline]
    pub fn nic_watts(&self) -> f64 {
        self.nic_watts
    }

    /// Total network power for `chips` switch chips and `hosts` NICs, the
    /// quantity tabulated in Table 1.
    pub fn network_watts(&self, chips: f64, hosts: u64) -> f64 {
        chips * self.switch_watts() + hosts as f64 * self.nic_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_is_100_watts() {
        let m = SwitchPowerModel::paper_default();
        assert_eq!(m.serdes_per_chip(), 144);
        assert!((m.switch_watts() - 100.0).abs() < 1e-9);
        assert_eq!(m.nic_watts(), 10.0);
    }

    #[test]
    fn network_power_scales_linearly() {
        let m = SwitchPowerModel::paper_default();
        // FBFLY row of Table 1: 4,096 chips + 32k NICs = 737,280 W.
        assert!((m.network_watts(4_096.0, 32_768) - 737_280.0).abs() < 1e-6);
        // Clos row: 8,192 powered chips + 32k NICs = 1,146,880 W.
        assert!((m.network_watts(8_192.0, 32_768) - 1_146_880.0).abs() < 1e-6);
    }

    #[test]
    fn custom_chip_configuration() {
        // A 64-port YARC-like chip with 3 lanes per port.
        let m = SwitchPowerModel::new(64, 3, 0.5, 8.0);
        assert_eq!(m.serdes_per_chip(), 192);
        assert_eq!(m.switch_watts(), 96.0);
        assert_eq!(m.network_watts(10.0, 100), 960.0 + 800.0);
        assert_eq!(m.ports(), 64);
    }
}
