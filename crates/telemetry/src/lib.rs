//! Observability layer for the epnet simulator.
//!
//! Three independent facilities, designed so each costs nothing when
//! unused:
//!
//! - [`trace`] — a structured trace layer: typed, sim-timestamped
//!   events (controller decisions, link reactivations, credit
//!   block/unblock, route-table rebuilds, adaptive-routing detours)
//!   written as JSONL through a pluggable [`trace::TraceSink`].
//!   Enabled per run by `EPNET_TRACE=<path>` and narrowed with
//!   `EPNET_TRACE_FILTER=<cat>,<cat>,...`.
//! - [`metrics`] — a registry of monotonic counters and gauges,
//!   registered once at simulator construction and snapshotted into
//!   the final report as a sorted name→value map.
//! - [`profile`] — wall-clock phase timers (RAII or explicit) that
//!   attribute host time to the coarse phases of a run: topology
//!   build, route-table construction, warmup, measurement, report
//!   finalization.
//!
//! [`schema`] validates trace files against the documented per-category
//! key sets (see DESIGN.md "Observability"), [`export`] converts parsed
//! traces to the Chrome Trace Event / Perfetto JSON format for
//! interactive viewing, and [`summary`] renders the one-line end-of-run
//! summary the CLI and bench binaries print to stderr unless
//! `EPNET_QUIET=1`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod export;
pub mod metrics;
pub mod profile;
pub mod schema;
pub mod summary;
pub mod trace;

pub use export::{chrome_trace, chrome_trace_from_jsonl, ChromeTrace, TrackLayout};
pub use metrics::{CounterId, MetricsRegistry};
pub use profile::{Phase, PhaseTimer, Profiler};
pub use schema::{parse_jsonl, validate_jsonl, TraceRecord, TraceStats};
pub use summary::RunTotals;
pub use trace::{FileSink, MemorySink, TraceCategory, TraceSink, Tracer};
