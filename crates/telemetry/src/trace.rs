//! Structured trace layer: typed simulator events serialized as JSONL.
//!
//! Every record is one JSON object per line with two common keys —
//! `at_ps` (simulated picoseconds) and `cat` (the category name) —
//! followed by the category's own fields. The full schema is
//! documented in DESIGN.md ("Observability") and enforced by
//! [`crate::schema::validate_jsonl`].
//!
//! A [`Tracer`] owns a category bitmask and a sink; emitters are
//! no-ops for masked-out categories. The simulator keeps the mask
//! cached so that a disabled tracer costs a single branch on the hot
//! path.

use serde::Value;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Trace event categories, one bit each in the tracer's filter mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Per-epoch link-rate controller decisions (§3.3 heuristics).
    Controller,
    /// Link reactivation windows: a `start` when a rate change begins
    /// charging its penalty, an `end` when the link carries traffic
    /// again.
    Reactivation,
    /// Channel flow control: `block` when a packet stalls on credits,
    /// `unblock` when the credit wake fires.
    Credit,
    /// Route-table (re)builds after a topology-mask invalidation.
    Routes,
    /// Adaptive-routing (UGAL) detours chosen over the minimal path.
    Detour,
    /// Parallel-engine execution shape (`EPNET_PAR`): one record per
    /// coordinator lookahead window, carrying the window span and its
    /// event / replay / cross-shard batch counts. Serial runs emit
    /// none, and the records vary with the worker width, so — like
    /// `routes` — the category is exempt from the serial↔parallel
    /// trace byte-identity contract.
    Parallel,
}

impl TraceCategory {
    /// Every category, in mask-bit order.
    pub const ALL: [TraceCategory; 6] = [
        TraceCategory::Controller,
        TraceCategory::Reactivation,
        TraceCategory::Credit,
        TraceCategory::Routes,
        TraceCategory::Detour,
        TraceCategory::Parallel,
    ];

    /// Mask with every category enabled.
    pub const ALL_MASK: u32 = (1 << Self::ALL.len()) - 1;

    /// This category's bit in a filter mask.
    #[inline]
    pub const fn bit(self) -> u32 {
        1 << self as u32
    }

    /// Stable lowercase name, used as the `cat` field and accepted by
    /// `EPNET_TRACE_FILTER`.
    pub const fn name(self) -> &'static str {
        match self {
            TraceCategory::Controller => "controller",
            TraceCategory::Reactivation => "reactivation",
            TraceCategory::Credit => "credit",
            TraceCategory::Routes => "routes",
            TraceCategory::Detour => "detour",
            TraceCategory::Parallel => "parallel",
        }
    }

    /// Parses a category name as written in `EPNET_TRACE_FILTER`.
    pub fn from_name(name: &str) -> Option<TraceCategory> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Every valid category name, comma-separated — the vocabulary
    /// quoted by [`parse_filter`]'s error message.
    pub fn name_list() -> String {
        Self::ALL
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Parses a comma-separated `EPNET_TRACE_FILTER` value into a mask.
///
/// Whitespace around entries is ignored; an empty string (or only
/// separators) means "everything".
///
/// # Errors
///
/// An unknown name is rejected with a message naming the offender and
/// listing every valid category — a typo must fail loudly rather than
/// silently narrowing the filter and producing a trace that is missing
/// the categories the user asked for.
pub fn parse_filter(filter: &str) -> Result<u32, String> {
    let mut mask = 0u32;
    let mut saw_any = false;
    for part in filter.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        saw_any = true;
        match TraceCategory::from_name(part) {
            Some(cat) => mask |= cat.bit(),
            None => {
                return Err(format!(
                    "unknown trace category '{part}' in EPNET_TRACE_FILTER; \
                     valid categories: {}",
                    TraceCategory::name_list()
                ))
            }
        }
    }
    Ok(if saw_any {
        mask
    } else {
        TraceCategory::ALL_MASK
    })
}

/// Destination for rendered trace lines (no trailing newline).
pub trait TraceSink: Send {
    /// Writes one JSONL record.
    fn line(&mut self, line: &str);
    /// Flushes buffered output, if any.
    fn flush(&mut self) {}
}

/// Buffered file sink; flushed on drop.
#[derive(Debug)]
pub struct FileSink {
    writer: BufWriter<File>,
}

impl FileSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error when the file cannot be
    /// created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileSink> {
        Ok(FileSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl TraceSink for FileSink {
    fn line(&mut self, line: &str) {
        // A full disk mid-trace should not abort a simulation that is
        // otherwise deterministic; drop the line instead.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        TraceSink::flush(self);
    }
}

/// In-memory sink for tests and programmatic consumers. Cloning
/// shares the buffer, so keep a clone to read what the tracer wrote.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    buf: Arc<Mutex<String>>,
}

impl MemorySink {
    /// An empty shared buffer.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Everything written so far, newline-terminated per record.
    pub fn contents(&self) -> String {
        self.buf.lock().expect("trace buffer lock").clone()
    }

    /// Bytes written so far. The parallel engine samples this after
    /// every event dispatch to attribute trace records to the dispatch
    /// that emitted them.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("trace buffer lock").len()
    }

    /// Whether nothing has been written (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the buffer, returning everything written since the last
    /// take. The parallel engine empties each worker's sink at every
    /// window barrier, so recorded byte offsets are window-relative.
    pub fn take_contents(&self) -> String {
        std::mem::take(&mut *self.buf.lock().expect("trace buffer lock"))
    }

    /// Drains the buffer into `out`, swapping storage so both the sink
    /// and the caller's buffer keep their capacity — the allocation-free
    /// form of [`MemorySink::take_contents`] for per-window draining.
    pub fn take_into(&self, out: &mut String) {
        out.clear();
        std::mem::swap(&mut *self.buf.lock().expect("trace buffer lock"), out);
    }
}

impl TraceSink for MemorySink {
    fn line(&mut self, line: &str) {
        let mut buf = self.buf.lock().expect("trace buffer lock");
        buf.push_str(line);
        buf.push('\n');
    }
}

/// Emits typed trace records for enabled categories into a sink.
pub struct Tracer {
    mask: u32,
    sink: Box<dyn TraceSink>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("mask", &self.mask).finish()
    }
}

impl Tracer {
    /// A tracer writing categories in `mask` to `sink`.
    pub fn new(sink: impl TraceSink + 'static, mask: u32) -> Tracer {
        Tracer {
            mask,
            sink: Box::new(sink),
        }
    }

    /// Builds a tracer from `EPNET_TRACE` (file path) and
    /// `EPNET_TRACE_FILTER` (category list; absent means all).
    ///
    /// Returns `None` when tracing is not requested; an unwritable
    /// path or an unknown filter name is reported on stderr and also
    /// yields `None` so a bad trace configuration never aborts a run —
    /// but a bad filter disables tracing entirely instead of silently
    /// producing a trace missing the asked-for categories.
    pub fn from_env() -> Option<Tracer> {
        let path = std::env::var("EPNET_TRACE")
            .ok()
            .filter(|p| !p.is_empty())?;
        let mask = match std::env::var("EPNET_TRACE_FILTER") {
            Ok(filter) => match parse_filter(&filter) {
                Ok(mask) => mask,
                Err(e) => {
                    eprintln!("epnet-telemetry: {e}");
                    return None;
                }
            },
            Err(_) => TraceCategory::ALL_MASK,
        };
        match FileSink::create(&path) {
            Ok(sink) => Some(Tracer::new(sink, mask)),
            Err(e) => {
                eprintln!("epnet-telemetry: cannot create EPNET_TRACE file '{path}': {e}");
                None
            }
        }
    }

    /// The category filter mask.
    #[inline]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Whether `cat` passes the filter.
    #[inline]
    pub fn enabled(&self, cat: TraceCategory) -> bool {
        self.mask & cat.bit() != 0
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }

    /// Writes one pre-rendered JSONL record straight to the sink,
    /// bypassing the category filter.
    ///
    /// The parallel simulation engine captures each worker's records in
    /// per-shard [`MemorySink`]s (already filtered at emission time),
    /// merges them deterministically by event key, and replays the
    /// merged stream through the user's real tracer with this method.
    pub fn write_line(&mut self, line: &str) {
        self.sink.line(line);
    }

    fn emit(&mut self, cat: TraceCategory, at_ps: u64, fields: Vec<(String, Value)>) {
        if !self.enabled(cat) {
            return;
        }
        let mut record = Vec::with_capacity(fields.len() + 2);
        record.push(("at_ps".into(), Value::U64(at_ps)));
        record.push(("cat".into(), Value::Str(cat.name().into())));
        record.extend(fields);
        let line = serde_json::to_string(&Value::Map(record)).expect("value tree serializes");
        self.sink.line(&line);
    }

    /// Records an epoch controller decision on one channel.
    pub fn controller(
        &mut self,
        at_ps: u64,
        channel: u32,
        utilization: f64,
        old_rate: &str,
        new_rate: &str,
        reason: &str,
    ) {
        self.emit(
            TraceCategory::Controller,
            at_ps,
            vec![
                ("channel".into(), Value::U64(channel as u64)),
                ("utilization".into(), Value::F64(utilization)),
                ("old_rate".into(), Value::Str(old_rate.into())),
                ("new_rate".into(), Value::Str(new_rate.into())),
                ("reason".into(), Value::Str(reason.into())),
            ],
        );
    }

    /// Records a reactivation window boundary (`phase` is `start` or
    /// `end`); `until_ps` carries the scheduled end for `start`
    /// records.
    pub fn reactivation(
        &mut self,
        at_ps: u64,
        channel: u32,
        phase: &str,
        rate: &str,
        until_ps: Option<u64>,
    ) {
        let mut fields = vec![
            ("channel".into(), Value::U64(channel as u64)),
            ("phase".into(), Value::Str(phase.into())),
            ("rate".into(), Value::Str(rate.into())),
        ];
        if let Some(until) = until_ps {
            fields.push(("until_ps".into(), Value::U64(until)));
        }
        self.emit(TraceCategory::Reactivation, at_ps, fields);
    }

    /// Records a channel stalling on credits (`block`) or waking after
    /// a credit return (`unblock`).
    pub fn credit(&mut self, at_ps: u64, channel: u32, phase: &str, needed: u64, credits: u64) {
        self.emit(
            TraceCategory::Credit,
            at_ps,
            vec![
                ("channel".into(), Value::U64(channel as u64)),
                ("phase".into(), Value::Str(phase.into())),
                ("needed".into(), Value::U64(needed)),
                ("credits".into(), Value::U64(credits)),
            ],
        );
    }

    /// Records a route-table (re)build: the new generation, wall time
    /// spent building, and total port entries in the table.
    pub fn routes(&mut self, at_ps: u64, generation: u64, build_ns: u64, entries: u64) {
        self.emit(
            TraceCategory::Routes,
            at_ps,
            vec![
                ("generation".into(), Value::U64(generation)),
                ("build_ns".into(), Value::U64(build_ns)),
                ("entries".into(), Value::U64(entries)),
            ],
        );
    }

    /// Records one parallel-engine lookahead window, emitted at the
    /// window's barrier: `at_ps` is the window's (exclusive) close,
    /// `start_ps` the time of its first event, and the counters cover
    /// only this window — shards touched, events executed, merge
    /// records walked, cross-shard batches and the arrivals they
    /// carried. Emitted at close time so a merged parallel trace stays
    /// time-monotone.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_window(
        &mut self,
        at_ps: u64,
        start_ps: u64,
        shards: u32,
        events: u64,
        replay_events: u64,
        cross_batches: u64,
        cross_events: u64,
    ) {
        self.emit(
            TraceCategory::Parallel,
            at_ps,
            vec![
                ("start_ps".into(), Value::U64(start_ps)),
                ("shards".into(), Value::U64(shards as u64)),
                ("events".into(), Value::U64(events)),
                ("replay_events".into(), Value::U64(replay_events)),
                ("cross_batches".into(), Value::U64(cross_batches)),
                ("cross_events".into(), Value::U64(cross_events)),
            ],
        );
    }

    /// Records an adaptive-routing detour: the switch where it was
    /// taken, the output port chosen, and the occupancies that tipped
    /// the UGAL comparison.
    pub fn detour(
        &mut self,
        at_ps: u64,
        switch: u32,
        port: u32,
        detour_occupancy: u64,
        minimal_occupancy: u64,
    ) {
        self.emit(
            TraceCategory::Detour,
            at_ps,
            vec![
                ("switch".into(), Value::U64(switch as u64)),
                ("port".into(), Value::U64(port as u64)),
                ("detour_occupancy".into(), Value::U64(detour_occupancy)),
                ("minimal_occupancy".into(), Value::U64(minimal_occupancy)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing_covers_names_blanks_and_unknowns() {
        assert_eq!(parse_filter(""), Ok(TraceCategory::ALL_MASK));
        assert_eq!(parse_filter(" , ,"), Ok(TraceCategory::ALL_MASK));
        assert_eq!(
            parse_filter("controller"),
            Ok(TraceCategory::Controller.bit())
        );
        assert_eq!(
            parse_filter("controller, reactivation"),
            Ok(TraceCategory::Controller.bit() | TraceCategory::Reactivation.bit())
        );
        assert_eq!(parse_filter("parallel"), Ok(TraceCategory::Parallel.bit()));
    }

    /// An unknown name must be rejected with a message naming the
    /// offender and the full valid vocabulary — pinned exactly so the
    /// error stays useful.
    #[test]
    fn filter_parsing_rejects_unknown_names_listing_the_vocabulary() {
        let err = parse_filter("bogus").unwrap_err();
        assert_eq!(
            err,
            "unknown trace category 'bogus' in EPNET_TRACE_FILTER; valid categories: \
             controller, reactivation, credit, routes, detour, parallel"
        );
        // Valid names before the offender don't rescue the parse, and
        // case matters (names are stable lowercase identifiers).
        assert!(parse_filter("credit,bogus").is_err());
        assert!(parse_filter("Controller").is_err());
    }

    #[test]
    fn category_names_round_trip() {
        for cat in TraceCategory::ALL {
            assert_eq!(TraceCategory::from_name(cat.name()), Some(cat));
        }
        assert_eq!(TraceCategory::from_name("Controller"), None);
    }

    #[test]
    fn masked_categories_are_not_written() {
        let sink = MemorySink::new();
        let mut tracer = Tracer::new(sink.clone(), TraceCategory::Controller.bit());
        tracer.controller(10, 3, 0.75, "10 Gb/s", "20 Gb/s", "upshift");
        tracer.detour(20, 1, 2, 5, 9);
        let lines: Vec<String> = sink.contents().lines().map(str::to_owned).collect();
        assert_eq!(lines.len(), 1, "masked detour record must not appear");
        assert!(lines[0].contains("\"cat\":\"controller\""));
        assert!(lines[0].contains("\"at_ps\":10"));
    }

    #[test]
    fn records_parse_back_as_json() {
        let sink = MemorySink::new();
        let mut tracer = Tracer::new(sink.clone(), TraceCategory::ALL_MASK);
        tracer.controller(1, 0, 0.5, "10 Gb/s", "5 Gb/s", "downshift");
        tracer.reactivation(2, 0, "start", "5 Gb/s", Some(12));
        tracer.reactivation(12, 0, "end", "5 Gb/s", None);
        tracer.credit(3, 7, "block", 2048, 100);
        tracer.routes(4, 2, 1234, 512);
        tracer.detour(5, 3, 1, 4, 9);
        tracer.parallel_window(6, 2, 3, 40, 44, 2, 5);
        let text = sink.contents();
        assert_eq!(text.lines().count(), 7);
        for line in text.lines() {
            let v: serde::Value = serde_json::from_str(line).expect("line parses");
            assert!(v.get("at_ps").and_then(serde::Value::as_u64).is_some());
            assert!(v.get("cat").and_then(serde::Value::as_str).is_some());
        }
    }
}
