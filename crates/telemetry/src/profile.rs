//! Wall-clock phase profiling.
//!
//! A [`Profiler`] accumulates host time by phase name — topology
//! build, route-table construction, warmup, measurement, report
//! finalization — either through the RAII [`PhaseTimer`] guard or by
//! recording an explicitly measured [`std::time::Duration`] (the run
//! loop straddles the warmup/measurement boundary, so the engine
//! times those phases itself and records the split). Phases keep
//! registration order, which matches a run's chronology.
//!
//! Wall-clock numbers are inherently nondeterministic, so phase
//! breakdowns are *excluded* from serialized reports; they surface
//! only through binaries' stderr summaries and bench output.

use std::time::{Duration, Instant};

/// One named phase and its accumulated wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase name, e.g. `route_table_build`.
    pub name: &'static str,
    /// Accumulated wall-clock nanoseconds.
    pub wall_ns: u64,
}

impl Phase {
    /// Accumulated wall time in (fractional) milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }
}

/// Accumulates wall time per phase name.
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Vec<Phase>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Adds `wall` to the named phase, creating it on first use.
    pub fn record(&mut self, name: &'static str, wall: Duration) {
        let ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        match self.phases.iter_mut().find(|p| p.name == name) {
            Some(p) => p.wall_ns = p.wall_ns.saturating_add(ns),
            None => self.phases.push(Phase { name, wall_ns: ns }),
        }
    }

    /// Starts an RAII timer that records into this profiler on drop.
    pub fn scope(&mut self, name: &'static str) -> PhaseTimer<'_> {
        PhaseTimer {
            profiler: self,
            name,
            start: Instant::now(),
        }
    }

    /// Times `f`, attributing its wall time to `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Recorded phases, in first-use order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Consumes the profiler, yielding its phases.
    pub fn into_phases(self) -> Vec<Phase> {
        self.phases
    }
}

/// RAII guard from [`Profiler::scope`]; records elapsed time on drop.
#[derive(Debug)]
pub struct PhaseTimer<'a> {
    profiler: &'a mut Profiler,
    name: &'static str,
    start: Instant,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let wall = self.start.elapsed();
        self.profiler.record(self.name, wall);
    }
}

/// Renders phases as `name 1.23ms, name2 0.45ms` for summaries.
pub fn format_phases(phases: &[Phase]) -> String {
    phases
        .iter()
        .map(|p| format!("{} {:.2}ms", p.name, p.wall_ms()))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_name_in_first_use_order() {
        let mut prof = Profiler::new();
        prof.record("warmup", Duration::from_nanos(10));
        prof.record("measurement", Duration::from_nanos(5));
        prof.record("warmup", Duration::from_nanos(7));
        let names: Vec<&str> = prof.phases().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["warmup", "measurement"]);
        assert_eq!(prof.phases()[0].wall_ns, 17);
        assert_eq!(prof.phases()[1].wall_ns, 5);
    }

    #[test]
    fn scope_and_time_attribute_nonzero_wall_time() {
        let mut prof = Profiler::new();
        {
            let _guard = prof.scope("build");
            std::hint::black_box(vec![0u8; 1024]);
        }
        let out = prof.time("also_build", || 42);
        assert_eq!(out, 42);
        assert_eq!(prof.phases().len(), 2);
    }

    #[test]
    fn wall_ms_is_fractional_milliseconds() {
        let p = Phase {
            name: "x",
            wall_ns: 1_234_567,
        };
        assert!((p.wall_ms() - 1.234567).abs() < 1e-12);
        assert_eq!(
            Phase {
                name: "x",
                wall_ns: 0
            }
            .wall_ms(),
            0.0
        );
    }

    #[test]
    fn accumulation_saturates_instead_of_wrapping() {
        let mut prof = Profiler::new();
        // A duration whose nanosecond count exceeds u64 clamps on
        // entry, and further accumulation pins at the ceiling.
        prof.record("big", Duration::from_secs(u64::MAX));
        assert_eq!(prof.phases()[0].wall_ns, u64::MAX);
        prof.record("big", Duration::from_nanos(1));
        assert_eq!(prof.phases()[0].wall_ns, u64::MAX);
    }

    #[test]
    fn into_phases_yields_first_use_order() {
        let mut prof = Profiler::new();
        prof.record("c", Duration::from_nanos(3));
        prof.record("a", Duration::from_nanos(1));
        prof.record("b", Duration::from_nanos(2));
        let phases = prof.into_phases();
        let names: Vec<&str> = phases.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["c", "a", "b"],
            "order is chronology, not sorted"
        );
    }

    #[test]
    fn formatting_is_stable() {
        let phases = vec![
            Phase {
                name: "warmup",
                wall_ns: 1_500_000,
            },
            Phase {
                name: "measurement",
                wall_ns: 250_000,
            },
        ];
        assert_eq!(format_phases(&phases), "warmup 1.50ms, measurement 0.25ms");
        assert_eq!(format_phases(&[]), "");
    }
}
