//! Trace-file schema: typed parsing and validation of JSONL traces.
//!
//! The documented contract (DESIGN.md "Observability") is: every line
//! is a JSON object carrying `at_ps` (u64) and `cat` (a known
//! category name), plus the category's required keys. This module is
//! the single source of truth the smoke suite validates against, so
//! emitter drift fails fast instead of silently producing charts from
//! garbage.

use crate::trace::TraceCategory;
use serde::Value;
use std::collections::BTreeMap;

/// One parsed trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A per-epoch controller decision.
    Controller {
        /// Simulated time of the epoch boundary, picoseconds.
        at_ps: u64,
        /// Channel index the decision applies to.
        channel: u32,
        /// Measured utilization over the closing epoch, 0.0..=1.0.
        utilization: f64,
        /// Rate before the decision (display form, e.g. `10 Gb/s`).
        old_rate: String,
        /// Rate chosen by the policy.
        new_rate: String,
        /// Why: `hold`, `upshift`, `downshift`, `drain_deferred`, or
        /// `drain_cancelled`.
        reason: String,
    },
    /// A reactivation window boundary.
    Reactivation {
        /// Simulated time, picoseconds.
        at_ps: u64,
        /// Channel index.
        channel: u32,
        /// `start` or `end`.
        phase: String,
        /// Rate the link is transitioning to.
        rate: String,
        /// Scheduled end of the window (on `start` records).
        until_ps: Option<u64>,
    },
    /// A credit-flow stall or wake.
    Credit {
        /// Simulated time, picoseconds.
        at_ps: u64,
        /// Channel index.
        channel: u32,
        /// `block` or `unblock`.
        phase: String,
        /// Bytes of credit the stalled packet needs.
        needed: u64,
        /// Credits available when the record was emitted.
        credits: u64,
    },
    /// A route-table (re)build.
    Routes {
        /// Simulated time, picoseconds.
        at_ps: u64,
        /// Link-mask generation the table was built against.
        generation: u64,
        /// Wall-clock nanoseconds spent building.
        build_ns: u64,
        /// Total port entries in the rebuilt table.
        entries: u64,
    },
    /// An adaptive-routing detour.
    Detour {
        /// Simulated time, picoseconds.
        at_ps: u64,
        /// Switch where the detour was taken.
        switch: u32,
        /// Output port chosen.
        port: u32,
        /// Queue occupancy of the detour port (bytes).
        detour_occupancy: u64,
        /// Queue occupancy of the best minimal port (bytes).
        minimal_occupancy: u64,
    },
    /// One parallel-engine lookahead window (`EPNET_PAR`), emitted at
    /// its barrier. Execution-shape only: serial runs emit none, and
    /// the records vary with worker width and lookahead mode.
    Parallel {
        /// Exclusive close of the window, picoseconds (emission time).
        at_ps: u64,
        /// Simulated time of the window's first event.
        start_ps: u64,
        /// Shards touched by the window.
        shards: u32,
        /// Events executed inside the window.
        events: u64,
        /// Execution records walked by the barrier merge (cross-shard
        /// arrivals contribute one per half).
        replay_events: u64,
        /// Batched cross-shard mirror messages, one per active
        /// (sender, receiver) shard pair.
        cross_batches: u64,
        /// Cross-shard arrivals carried by those batches.
        cross_events: u64,
    },
}

impl TraceRecord {
    /// Simulated timestamp of the record.
    pub fn at_ps(&self) -> u64 {
        match *self {
            TraceRecord::Controller { at_ps, .. }
            | TraceRecord::Reactivation { at_ps, .. }
            | TraceRecord::Credit { at_ps, .. }
            | TraceRecord::Routes { at_ps, .. }
            | TraceRecord::Detour { at_ps, .. }
            | TraceRecord::Parallel { at_ps, .. } => at_ps,
        }
    }

    /// The record's category.
    pub fn category(&self) -> TraceCategory {
        match self {
            TraceRecord::Controller { .. } => TraceCategory::Controller,
            TraceRecord::Reactivation { .. } => TraceCategory::Reactivation,
            TraceRecord::Credit { .. } => TraceCategory::Credit,
            TraceRecord::Routes { .. } => TraceCategory::Routes,
            TraceRecord::Detour { .. } => TraceCategory::Detour,
            TraceRecord::Parallel { .. } => TraceCategory::Parallel,
        }
    }
}

/// Per-category line counts from a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total records parsed.
    pub lines: usize,
    /// Records per category name.
    pub per_category: BTreeMap<String, usize>,
}

impl TraceStats {
    /// Records counted for `cat`.
    pub fn count(&self, cat: TraceCategory) -> usize {
        self.per_category.get(cat.name()).copied().unwrap_or(0)
    }
}

fn req_u64(v: &Value, line_no: usize, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer '{key}'"))
}

fn req_u32(v: &Value, line_no: usize, key: &str) -> Result<u32, String> {
    u32::try_from(req_u64(v, line_no, key)?)
        .map_err(|_| format!("line {line_no}: '{key}' out of u32 range"))
}

fn req_f64(v: &Value, line_no: usize, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line {line_no}: missing or non-numeric '{key}'"))
}

fn req_str(v: &Value, line_no: usize, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("line {line_no}: missing or non-string '{key}'"))
}

fn req_one_of(v: &Value, line_no: usize, key: &str, allowed: &[&str]) -> Result<String, String> {
    let s = req_str(v, line_no, key)?;
    if allowed.contains(&s.as_str()) {
        Ok(s)
    } else {
        Err(format!(
            "line {line_no}: '{key}' is '{s}', expected one of {allowed:?}"
        ))
    }
}

/// Parses a JSONL trace into typed records, rejecting the first
/// malformed line.
///
/// # Errors
///
/// Describes the first offending line (1-based) and what it is
/// missing. Blank lines are allowed (and skipped) so a trailing
/// newline never fails a trace.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {line_no}: not JSON: {e}"))?;
        let at_ps = req_u64(&v, line_no, "at_ps")?;
        let cat_name = req_str(&v, line_no, "cat")?;
        let cat = TraceCategory::from_name(&cat_name)
            .ok_or_else(|| format!("line {line_no}: unknown category '{cat_name}'"))?;
        let record = match cat {
            TraceCategory::Controller => TraceRecord::Controller {
                at_ps,
                channel: req_u32(&v, line_no, "channel")?,
                utilization: req_f64(&v, line_no, "utilization")?,
                old_rate: req_str(&v, line_no, "old_rate")?,
                new_rate: req_str(&v, line_no, "new_rate")?,
                reason: req_str(&v, line_no, "reason")?,
            },
            TraceCategory::Reactivation => TraceRecord::Reactivation {
                at_ps,
                channel: req_u32(&v, line_no, "channel")?,
                phase: req_one_of(&v, line_no, "phase", &["start", "end"])?,
                rate: req_str(&v, line_no, "rate")?,
                until_ps: v.get("until_ps").and_then(Value::as_u64),
            },
            TraceCategory::Credit => TraceRecord::Credit {
                at_ps,
                channel: req_u32(&v, line_no, "channel")?,
                phase: req_one_of(&v, line_no, "phase", &["block", "unblock"])?,
                needed: req_u64(&v, line_no, "needed")?,
                credits: req_u64(&v, line_no, "credits")?,
            },
            TraceCategory::Routes => TraceRecord::Routes {
                at_ps,
                generation: req_u64(&v, line_no, "generation")?,
                build_ns: req_u64(&v, line_no, "build_ns")?,
                entries: req_u64(&v, line_no, "entries")?,
            },
            TraceCategory::Detour => TraceRecord::Detour {
                at_ps,
                switch: req_u32(&v, line_no, "switch")?,
                port: req_u32(&v, line_no, "port")?,
                detour_occupancy: req_u64(&v, line_no, "detour_occupancy")?,
                minimal_occupancy: req_u64(&v, line_no, "minimal_occupancy")?,
            },
            TraceCategory::Parallel => TraceRecord::Parallel {
                at_ps,
                start_ps: req_u64(&v, line_no, "start_ps")?,
                shards: req_u32(&v, line_no, "shards")?,
                events: req_u64(&v, line_no, "events")?,
                replay_events: req_u64(&v, line_no, "replay_events")?,
                cross_batches: req_u64(&v, line_no, "cross_batches")?,
                cross_events: req_u64(&v, line_no, "cross_events")?,
            },
        };
        records.push(record);
    }
    Ok(records)
}

/// Validates a JSONL trace against the documented schema, returning
/// per-category counts.
///
/// # Errors
///
/// Same contract as [`parse_jsonl`].
pub fn validate_jsonl(text: &str) -> Result<TraceStats, String> {
    let records = parse_jsonl(text)?;
    let mut stats = TraceStats {
        lines: records.len(),
        per_category: BTreeMap::new(),
    };
    for r in &records {
        *stats
            .per_category
            .entry(r.category().name().to_owned())
            .or_insert(0) += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MemorySink, Tracer};

    fn sample_trace() -> String {
        let sink = MemorySink::new();
        let mut t = Tracer::new(sink.clone(), TraceCategory::ALL_MASK);
        t.controller(1_000, 2, 0.82, "10 Gb/s", "20 Gb/s", "upshift");
        t.reactivation(1_000, 2, "start", "20 Gb/s", Some(2_000));
        t.reactivation(2_000, 2, "end", "20 Gb/s", None);
        t.credit(1_500, 4, "block", 2048, 512);
        t.credit(1_700, 4, "unblock", 2048, 4096);
        t.routes(0, 1, 42_000, 1024);
        t.detour(1_800, 3, 5, 100, 900);
        t.parallel_window(2_100, 1_900, 4, 128, 132, 3, 9);
        sink.contents()
    }

    #[test]
    fn emitted_records_round_trip_through_the_parser() {
        let text = sample_trace();
        let records = parse_jsonl(&text).expect("emitter output validates");
        assert_eq!(records.len(), 8);
        assert_eq!(
            records[0],
            TraceRecord::Controller {
                at_ps: 1_000,
                channel: 2,
                utilization: 0.82,
                old_rate: "10 Gb/s".into(),
                new_rate: "20 Gb/s".into(),
                reason: "upshift".into(),
            }
        );
        assert_eq!(records[1].category(), TraceCategory::Reactivation);
        assert_eq!(records[1].at_ps(), 1_000);
    }

    /// The schema-drift tripwire: every `TraceRecord` variant, emitted
    /// through its `Tracer` method, must parse back to exactly the
    /// record that describes the emission — field for field, including
    /// optional keys in both states. A mismatch means `trace.rs` and
    /// `schema.rs` disagree about the wire format.
    #[test]
    fn every_variant_round_trips_exactly() {
        let expected = vec![
            TraceRecord::Controller {
                at_ps: 1_000,
                channel: 2,
                utilization: 0.82,
                old_rate: "10 Gb/s".into(),
                new_rate: "20 Gb/s".into(),
                reason: "upshift".into(),
            },
            TraceRecord::Reactivation {
                at_ps: 1_000,
                channel: 2,
                phase: "start".into(),
                rate: "20 Gb/s".into(),
                until_ps: Some(2_000),
            },
            TraceRecord::Reactivation {
                at_ps: 2_000,
                channel: 2,
                phase: "end".into(),
                rate: "20 Gb/s".into(),
                until_ps: None,
            },
            TraceRecord::Credit {
                at_ps: 1_500,
                channel: 4,
                phase: "block".into(),
                needed: 2048,
                credits: 512,
            },
            TraceRecord::Credit {
                at_ps: 1_700,
                channel: 4,
                phase: "unblock".into(),
                needed: 2048,
                credits: 4096,
            },
            TraceRecord::Routes {
                at_ps: 0,
                generation: 1,
                build_ns: 42_000,
                entries: 1024,
            },
            TraceRecord::Detour {
                at_ps: 1_800,
                switch: 3,
                port: 5,
                detour_occupancy: 100,
                minimal_occupancy: 900,
            },
            TraceRecord::Parallel {
                at_ps: 2_100,
                start_ps: 1_900,
                shards: 4,
                events: 128,
                replay_events: 132,
                cross_batches: 3,
                cross_events: 9,
            },
        ];
        let parsed = parse_jsonl(&sample_trace()).expect("emitter output validates");
        assert_eq!(parsed, expected, "emitters and schema drifted apart");
        // Each emitted variant carries the category its record claims.
        for (r, cat) in parsed.iter().zip([
            TraceCategory::Controller,
            TraceCategory::Reactivation,
            TraceCategory::Reactivation,
            TraceCategory::Credit,
            TraceCategory::Credit,
            TraceCategory::Routes,
            TraceCategory::Detour,
            TraceCategory::Parallel,
        ]) {
            assert_eq!(r.category(), cat);
        }
    }

    #[test]
    fn stats_count_per_category_and_tolerate_blank_lines() {
        let mut text = sample_trace();
        text.push('\n');
        let stats = validate_jsonl(&text).expect("validates");
        assert_eq!(stats.lines, 8);
        assert_eq!(stats.count(TraceCategory::Controller), 1);
        assert_eq!(stats.count(TraceCategory::Reactivation), 2);
        assert_eq!(stats.count(TraceCategory::Credit), 2);
        assert_eq!(stats.count(TraceCategory::Routes), 1);
        assert_eq!(stats.count(TraceCategory::Detour), 1);
        assert_eq!(stats.count(TraceCategory::Parallel), 1);
        assert_eq!(validate_jsonl("").expect("empty is valid").lines, 0);
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = validate_jsonl("not json").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = validate_jsonl(r#"{"cat":"controller"}"#).unwrap_err();
        assert!(err.contains("at_ps"), "{err}");
        let err = validate_jsonl(r#"{"at_ps":5,"cat":"nope"}"#).unwrap_err();
        assert!(err.contains("unknown category"), "{err}");
        // A controller record missing its reason must fail.
        let err = validate_jsonl(
            r#"{"at_ps":5,"cat":"controller","channel":1,"utilization":0.5,"old_rate":"a","new_rate":"b"}"#,
        )
        .unwrap_err();
        assert!(err.contains("reason"), "{err}");
        // Phase fields are constrained to their vocabulary.
        let err = validate_jsonl(
            r#"{"at_ps":5,"cat":"credit","channel":1,"phase":"stall","needed":1,"credits":0}"#,
        )
        .unwrap_err();
        assert!(err.contains("expected one of"), "{err}");
        // A parallel window record missing a counter must fail.
        let err = validate_jsonl(
            r#"{"at_ps":5,"cat":"parallel","start_ps":1,"shards":2,"events":3,"cross_batches":0,"cross_events":0}"#,
        )
        .unwrap_err();
        assert!(err.contains("replay_events"), "{err}");
    }
}
