//! End-of-run summaries for CLI and bench binaries.
//!
//! The simulator records each finished run's totals into a
//! process-wide accumulator; a binary then prints one line to stderr
//! when it exits — delivered bytes, events, wall seconds, and the
//! wall-clock phase breakdown — unless `EPNET_QUIET=1`. Keeping the
//! summary on stderr (and suppressible) means sweeps that pipe JSON
//! or CSV through stdout stay machine-clean.

use crate::profile::{format_phases, Phase};
use std::sync::Mutex;

/// Accumulated totals across every simulator run in this process.
#[derive(Debug, Clone, Default)]
pub struct RunTotals {
    /// Number of finished simulator runs.
    pub runs: u64,
    /// Payload bytes delivered, summed over runs.
    pub delivered_bytes: u64,
    /// Engine events popped, summed over runs.
    pub events: u64,
    /// Wall-clock phase breakdown, merged by phase name.
    pub phases: Vec<Phase>,
}

static TOTALS: Mutex<RunTotals> = Mutex::new(RunTotals {
    runs: 0,
    delivered_bytes: 0,
    events: 0,
    phases: Vec::new(),
});

/// Clears the process-wide accumulator (start of a measured section).
pub fn reset() {
    *TOTALS.lock().expect("summary totals lock") = RunTotals::default();
}

/// Folds one finished run into the accumulator.
pub fn record_run(delivered_bytes: u64, events: u64, phases: &[Phase]) {
    let mut t = TOTALS.lock().expect("summary totals lock");
    t.runs += 1;
    t.delivered_bytes = t.delivered_bytes.saturating_add(delivered_bytes);
    t.events = t.events.saturating_add(events);
    for p in phases {
        match t.phases.iter_mut().find(|q| q.name == p.name) {
            Some(q) => q.wall_ns = q.wall_ns.saturating_add(p.wall_ns),
            None => t.phases.push(p.clone()),
        }
    }
}

/// A copy of the current accumulated totals.
pub fn totals() -> RunTotals {
    TOTALS.lock().expect("summary totals lock").clone()
}

/// Whether `EPNET_QUIET=1` suppresses the stderr summary.
pub fn quiet() -> bool {
    quiet_value(std::env::var("EPNET_QUIET").ok().as_deref())
}

/// Pure form of [`quiet`]: any non-empty value other than `0` means
/// quiet. Split out so the parse is testable without mutating the
/// process environment.
fn quiet_value(var: Option<&str>) -> bool {
    matches!(var, Some(v) if !v.is_empty() && v != "0")
}

/// Renders the one-line summary.
pub fn format_summary(label: &str, totals: &RunTotals, wall_secs: f64) -> String {
    let mut line = format!(
        "[epnet] {label}: {:.1} MB delivered, {} events, {} run{}, {:.2} s wall",
        totals.delivered_bytes as f64 / 1e6,
        totals.events,
        totals.runs,
        if totals.runs == 1 { "" } else { "s" },
        wall_secs,
    );
    if !totals.phases.is_empty() {
        line.push_str(" | phases: ");
        line.push_str(&format_phases(&totals.phases));
    }
    line
}

/// Prints the accumulated summary to stderr unless `EPNET_QUIET=1`.
pub fn eprint_summary(label: &str, wall_secs: f64) {
    if quiet() {
        return;
    }
    eprintln!("{}", format_summary(label, &totals(), wall_secs));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_is_one_line_with_phase_breakdown() {
        let totals = RunTotals {
            runs: 2,
            delivered_bytes: 123_456_789,
            events: 42,
            phases: vec![
                Phase {
                    name: "warmup",
                    wall_ns: 1_000_000,
                },
                Phase {
                    name: "measurement",
                    wall_ns: 2_000_000,
                },
            ],
        };
        let line = format_summary("repro", &totals, 1.5);
        assert_eq!(
            line,
            "[epnet] repro: 123.5 MB delivered, 42 events, 2 runs, 1.50 s wall \
             | phases: warmup 1.00ms, measurement 2.00ms"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn single_run_without_phases_stays_minimal() {
        let totals = RunTotals {
            runs: 1,
            delivered_bytes: 1_000_000,
            events: 7,
            phases: Vec::new(),
        };
        assert_eq!(
            format_summary("x", &totals, 0.25),
            "[epnet] x: 1.0 MB delivered, 7 events, 1 run, 0.25 s wall"
        );
    }

    #[test]
    fn quiet_accepts_any_nonzero_nonempty_value() {
        assert!(!quiet_value(None));
        assert!(!quiet_value(Some("")));
        assert!(!quiet_value(Some("0")));
        assert!(quiet_value(Some("1")));
        assert!(quiet_value(Some("true")));
    }

    #[test]
    fn accumulator_merges_runs_and_phases() {
        // Totals are process-global; this is the only test in this
        // crate that touches them, so no lock juggling is needed.
        reset();
        record_run(
            100,
            10,
            &[Phase {
                name: "warmup",
                wall_ns: 5,
            }],
        );
        record_run(
            200,
            20,
            &[
                Phase {
                    name: "warmup",
                    wall_ns: 7,
                },
                Phase {
                    name: "finalize",
                    wall_ns: 1,
                },
            ],
        );
        let t = totals();
        assert_eq!(t.runs, 2);
        assert_eq!(t.delivered_bytes, 300);
        assert_eq!(t.events, 30);
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[0].wall_ns, 12);
        // Byte/event totals saturate rather than wrap when a sweep
        // overflows u64.
        record_run(u64::MAX, u64::MAX, &[]);
        let t = totals();
        assert_eq!(t.delivered_bytes, u64::MAX);
        assert_eq!(t.events, u64::MAX);
        reset();
        assert_eq!(totals().runs, 0);
    }
}
