//! Chrome Trace Event / Perfetto export of structured JSONL traces.
//!
//! Converts parsed [`TraceRecord`]s into the Chrome Trace Event JSON
//! object format (the format `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) both load), so a
//! captured `EPNET_TRACE` run can be scrubbed interactively instead of
//! grepped. The export is purely post-hoc: it reads a finished trace
//! and never touches the simulator, so enabling it cannot perturb a
//! run.
//!
//! # Record → track mapping (normative; mirrored in DESIGN.md)
//!
//! | record | event | track (process / thread) |
//! |---|---|---|
//! | `controller` | instant (`ph:"i"`), named by `reason` | `engine` / `controller decisions` |
//! | `controller` | counter sample (`ph:"C"`) `ch<N> Gb/s` = new rate | owning channel's process |
//! | `reactivation` `start`→`end` | duration slice (`ph:"X"`) `reactivation` | channel's thread |
//! | `credit` `block`→`unblock` | duration slice (`ph:"X"`) `credit stall` | channel's thread |
//! | `routes` | instant `route rebuild` | `engine` / `route rebuilds` |
//! | `detour` | instant `detour` | switch process / `detours` (or `engine` / `detours` without a layout) |
//! | `parallel` | duration slice `window` spanning `start_ps`→`at_ps` | `parallel engine` / `windows` |
//!
//! Channels are grouped into one process per switch when a
//! [`TrackLayout`] is provided (channel numbering is positional:
//! `0..hosts` are host injection channels, then `ports_per_switch`
//! consecutive output channels per switch — see
//! `epnet_topology::Fabric::output_channel`), which is what keeps a
//! 15-ary 2-flat trace with thousands of channels navigable. Without a
//! layout every channel lands in one flat `channels` process.
//!
//! Timestamps are microseconds (the Chrome trace unit) as exact
//! `f64`s: a picosecond is 1e-6 µs, far inside `f64` resolution for
//! any simulated horizon this engine reaches. Slices are appended when
//! their *closing* record arrives, so the array is not globally
//! ts-sorted — both consumers sort on load, as the format allows.
//!
//! The top-level object carries an `epnet` key with per-category
//! source-record counts; `tracesmoke` cross-checks them against the
//! [`crate::schema::TraceStats`] of the input so an export that
//! silently drops records fails the smoke suite.

use crate::schema::TraceRecord;
use crate::trace::TraceCategory;
use serde::Value;
use std::collections::{BTreeMap, HashSet};

/// Process id for controller decisions and route rebuilds.
const PID_ENGINE: u64 = 1;
/// Process id for parallel-engine window slices.
const PID_PARALLEL: u64 = 2;
/// Process id for host injection channels (with a layout) or for the
/// single flat channel group (without one).
const PID_CHANNELS: u64 = 3;
/// First switch process id; switch `s` is `PID_SWITCH_BASE + s`.
const PID_SWITCH_BASE: u64 = 4;

/// Positional channel numbering of the fabric, used to group channel
/// tracks into one process per switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackLayout {
    /// Host count: channels `0..hosts` are injection channels.
    pub hosts: u32,
    /// Output channels per switch, consecutive after the hosts.
    pub ports_per_switch: u32,
}

impl TrackLayout {
    /// `(pid, tid, process name, thread name)` of a channel's track.
    fn channel_home(&self, channel: u32) -> (u64, u64, String, String) {
        if channel < self.hosts {
            (
                PID_CHANNELS,
                u64::from(channel) + 1,
                "hosts".to_string(),
                format!("ch{channel} host{channel}"),
            )
        } else {
            let local = channel - self.hosts;
            let switch = local / self.ports_per_switch;
            let port = local % self.ports_per_switch;
            (
                PID_SWITCH_BASE + u64::from(switch),
                u64::from(port) + 1,
                format!("switch {switch}"),
                format!("ch{channel} port{port}"),
            )
        }
    }

    /// `(pid, tid, process name, thread name)` of a switch's marker
    /// thread (detours); sorts after the channel threads.
    fn switch_markers(&self, switch: u32) -> (u64, u64, String, String) {
        (
            PID_SWITCH_BASE + u64::from(switch),
            u64::from(self.ports_per_switch) + 1,
            format!("switch {switch}"),
            "detours".to_string(),
        )
    }
}

/// A rendered chrome-trace export plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct ChromeTrace {
    /// The trace as one JSON object (`traceEvents`, `displayTimeUnit`,
    /// `epnet` stats).
    pub json: String,
    /// Trace events emitted (instants, slices, counter samples).
    pub trace_events: usize,
    /// Metadata events emitted (process/thread names).
    pub metadata_events: usize,
    /// Source records consumed, per category name — comparable to
    /// [`crate::schema::TraceStats::per_category`].
    pub records: BTreeMap<String, usize>,
}

/// Picoseconds → chrome-trace microseconds.
fn us(ps: u64) -> Value {
    Value::F64(ps as f64 / 1e6)
}

/// Parses the numeric prefix of a rate's display form (`"2.5 Gb/s"`).
fn parse_gbps(rate: &str) -> Option<f64> {
    rate.split_whitespace().next()?.parse().ok()
}

/// Incremental builder: events plus lazily registered track metadata.
struct Builder {
    layout: Option<TrackLayout>,
    events: Vec<Value>,
    meta: Vec<Value>,
    named_processes: HashSet<u64>,
    named_threads: HashSet<(u64, u64)>,
    /// Open reactivation window per channel: `(start_ps, rate, until)`.
    open_reactivation: BTreeMap<u32, (u64, String, Option<u64>)>,
    /// Open credit stall per channel: `(block_ps, needed, credits)`.
    open_credit: BTreeMap<u32, (u64, u64, u64)>,
}

impl Builder {
    fn new(layout: Option<TrackLayout>) -> Builder {
        Builder {
            layout,
            events: Vec::new(),
            meta: Vec::new(),
            named_processes: HashSet::new(),
            named_threads: HashSet::new(),
            open_reactivation: BTreeMap::new(),
            open_credit: BTreeMap::new(),
        }
    }

    /// Registers process/thread names the first time a track is used.
    /// Metadata lands at the front of `traceEvents` in first-use
    /// order, which is deterministic for a given record stream.
    fn name_track(&mut self, pid: u64, tid: u64, process: &str, thread: &str) {
        if self.named_processes.insert(pid) {
            self.meta.push(Value::Map(vec![
                ("name".into(), Value::Str("process_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::U64(pid)),
                (
                    "args".into(),
                    Value::Map(vec![("name".into(), Value::Str(process.into()))]),
                ),
            ]));
        }
        if tid != 0 && self.named_threads.insert((pid, tid)) {
            self.meta.push(Value::Map(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::U64(pid)),
                ("tid".into(), Value::U64(tid)),
                (
                    "args".into(),
                    Value::Map(vec![("name".into(), Value::Str(thread.into()))]),
                ),
            ]));
        }
    }

    /// One thread-scoped instant event.
    fn instant(&mut self, name: &str, at_ps: u64, pid: u64, tid: u64, args: Vec<(String, Value)>) {
        self.events.push(Value::Map(vec![
            ("name".into(), Value::Str(name.into())),
            ("ph".into(), Value::Str("i".into())),
            ("ts".into(), us(at_ps)),
            ("pid".into(), Value::U64(pid)),
            ("tid".into(), Value::U64(tid)),
            ("s".into(), Value::Str("t".into())),
            ("args".into(), Value::Map(args)),
        ]));
    }

    /// One complete duration slice (`ph:"X"`).
    fn slice(
        &mut self,
        name: &str,
        start_ps: u64,
        end_ps: u64,
        pid: u64,
        tid: u64,
        args: Vec<(String, Value)>,
    ) {
        self.events.push(Value::Map(vec![
            ("name".into(), Value::Str(name.into())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), us(start_ps)),
            ("dur".into(), us(end_ps.saturating_sub(start_ps))),
            ("pid".into(), Value::U64(pid)),
            ("tid".into(), Value::U64(tid)),
            ("args".into(), Value::Map(args)),
        ]));
    }

    /// One counter sample (`ph:"C"`; counters are per-process tracks).
    fn counter(&mut self, name: &str, at_ps: u64, pid: u64, key: &str, value: f64) {
        self.events.push(Value::Map(vec![
            ("name".into(), Value::Str(name.into())),
            ("ph".into(), Value::Str("C".into())),
            ("ts".into(), us(at_ps)),
            ("pid".into(), Value::U64(pid)),
            (
                "args".into(),
                Value::Map(vec![(key.into(), Value::F64(value))]),
            ),
        ]));
    }

    /// The channel's track, registering its names on first use.
    fn channel_track(&mut self, channel: u32) -> (u64, u64) {
        let (pid, tid, process, thread) = match self.layout {
            Some(l) => l.channel_home(channel),
            None => (
                PID_CHANNELS,
                u64::from(channel) + 1,
                "channels".to_string(),
                format!("ch{channel}"),
            ),
        };
        self.name_track(pid, tid, &process, &thread);
        (pid, tid)
    }
}

/// Converts parsed trace records to a chrome-trace JSON object.
///
/// Pass a [`TrackLayout`] to group channel tracks into one process per
/// switch; without one, channels share a flat process. The conversion
/// is a pure function of the record stream — identical records always
/// render identical bytes, which is what lets the smoke suite assert
/// serial and parallel captures export identically.
pub fn chrome_trace(records: &[TraceRecord], layout: Option<TrackLayout>) -> ChromeTrace {
    let mut b = Builder::new(layout);
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for rec in records {
        *counts.entry(rec.category().name().to_owned()).or_insert(0) += 1;
        match rec {
            TraceRecord::Controller {
                at_ps,
                channel,
                utilization,
                old_rate,
                new_rate,
                reason,
            } => {
                b.name_track(PID_ENGINE, 1, "engine", "controller decisions");
                b.instant(
                    reason,
                    *at_ps,
                    PID_ENGINE,
                    1,
                    vec![
                        ("channel".into(), Value::U64(u64::from(*channel))),
                        ("utilization".into(), Value::F64(*utilization)),
                        ("old_rate".into(), Value::Str(old_rate.clone())),
                        ("new_rate".into(), Value::Str(new_rate.clone())),
                    ],
                );
                if let Some(gbps) = parse_gbps(new_rate) {
                    let (pid, _) = b.channel_track(*channel);
                    b.counter(&format!("ch{channel} Gb/s"), *at_ps, pid, "Gb/s", gbps);
                }
            }
            TraceRecord::Reactivation {
                at_ps,
                channel,
                phase,
                rate,
                until_ps,
            } => {
                let (pid, tid) = b.channel_track(*channel);
                if phase == "start" {
                    // A start over an open window should not happen;
                    // flush the stale one so no record is dropped.
                    if let Some((s, r, u)) = b.open_reactivation.remove(channel) {
                        flush_reactivation(&mut b, *channel, s, &r, u);
                    }
                    b.open_reactivation
                        .insert(*channel, (*at_ps, rate.clone(), *until_ps));
                } else {
                    match b.open_reactivation.remove(channel) {
                        Some((start, r, _)) => b.slice(
                            "reactivation",
                            start,
                            *at_ps,
                            pid,
                            tid,
                            vec![("rate".into(), Value::Str(r))],
                        ),
                        // An end with no start (e.g. a filtered or
                        // truncated capture) degrades to a marker.
                        None => b.instant(
                            "reactivation end",
                            *at_ps,
                            pid,
                            tid,
                            vec![("rate".into(), Value::Str(rate.clone()))],
                        ),
                    }
                }
            }
            TraceRecord::Credit {
                at_ps,
                channel,
                phase,
                needed,
                credits,
            } => {
                let (pid, tid) = b.channel_track(*channel);
                if phase == "block" {
                    if let Some((s, n, c)) = b.open_credit.remove(channel) {
                        flush_credit(&mut b, *channel, s, n, c);
                    }
                    b.open_credit.insert(*channel, (*at_ps, *needed, *credits));
                } else {
                    match b.open_credit.remove(channel) {
                        Some((start, n, c)) => b.slice(
                            "credit stall",
                            start,
                            *at_ps,
                            pid,
                            tid,
                            vec![
                                ("needed".into(), Value::U64(n)),
                                ("credits_blocked".into(), Value::U64(c)),
                                ("credits_wake".into(), Value::U64(*credits)),
                            ],
                        ),
                        None => b.instant(
                            "credit unblock",
                            *at_ps,
                            pid,
                            tid,
                            vec![("credits".into(), Value::U64(*credits))],
                        ),
                    }
                }
            }
            TraceRecord::Routes {
                at_ps,
                generation,
                build_ns,
                entries,
            } => {
                b.name_track(PID_ENGINE, 2, "engine", "route rebuilds");
                b.instant(
                    "route rebuild",
                    *at_ps,
                    PID_ENGINE,
                    2,
                    vec![
                        ("generation".into(), Value::U64(*generation)),
                        ("build_ns".into(), Value::U64(*build_ns)),
                        ("entries".into(), Value::U64(*entries)),
                    ],
                );
            }
            TraceRecord::Detour {
                at_ps,
                switch,
                port,
                detour_occupancy,
                minimal_occupancy,
            } => {
                let (pid, tid, process, thread) = match b.layout {
                    Some(l) => l.switch_markers(*switch),
                    None => (PID_ENGINE, 3, "engine".to_string(), "detours".to_string()),
                };
                b.name_track(pid, tid, &process, &thread);
                b.instant(
                    "detour",
                    *at_ps,
                    pid,
                    tid,
                    vec![
                        ("switch".into(), Value::U64(u64::from(*switch))),
                        ("port".into(), Value::U64(u64::from(*port))),
                        ("detour_occupancy".into(), Value::U64(*detour_occupancy)),
                        ("minimal_occupancy".into(), Value::U64(*minimal_occupancy)),
                    ],
                );
            }
            TraceRecord::Parallel {
                at_ps,
                start_ps,
                shards,
                events,
                replay_events,
                cross_batches,
                cross_events,
            } => {
                b.name_track(PID_PARALLEL, 1, "parallel engine", "windows");
                b.slice(
                    "window",
                    *start_ps,
                    *at_ps,
                    PID_PARALLEL,
                    1,
                    vec![
                        ("shards".into(), Value::U64(u64::from(*shards))),
                        ("events".into(), Value::U64(*events)),
                        ("replay_events".into(), Value::U64(*replay_events)),
                        ("cross_batches".into(), Value::U64(*cross_batches)),
                        ("cross_events".into(), Value::U64(*cross_events)),
                    ],
                );
            }
        }
    }

    // Flush windows left open at end of capture (deterministic: the
    // maps iterate in channel order).
    for (ch, (start, rate, until)) in std::mem::take(&mut b.open_reactivation) {
        flush_reactivation(&mut b, ch, start, &rate, until);
    }
    for (ch, (start, needed, credits)) in std::mem::take(&mut b.open_credit) {
        flush_credit(&mut b, ch, start, needed, credits);
    }

    let trace_events = b.events.len();
    let metadata_events = b.meta.len();
    let mut all = b.meta;
    all.extend(b.events);
    let stats = Value::Map(vec![
        (
            "records".into(),
            Value::Map(
                counts
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::U64(v as u64)))
                    .collect(),
            ),
        ),
        ("trace_events".into(), Value::U64(trace_events as u64)),
        ("metadata_events".into(), Value::U64(metadata_events as u64)),
    ]);
    let doc = Value::Map(vec![
        ("traceEvents".into(), Value::Seq(all)),
        ("displayTimeUnit".into(), Value::Str("ns".into())),
        ("epnet".into(), stats),
    ]);
    ChromeTrace {
        json: serde_json::to_string(&doc).expect("value tree serializes"),
        trace_events,
        metadata_events,
        records: counts,
    }
}

/// Emits a reactivation window whose `end` never arrived: the
/// scheduled `until_ps` bounds the slice when present, else the window
/// degrades to a zero-length slice at its start.
fn flush_reactivation(b: &mut Builder, channel: u32, start: u64, rate: &str, until: Option<u64>) {
    let (pid, tid) = b.channel_track(channel);
    let end = until.filter(|&u| u >= start).unwrap_or(start);
    b.slice(
        "reactivation",
        start,
        end,
        pid,
        tid,
        vec![
            ("rate".into(), Value::Str(rate.to_string())),
            ("truncated".into(), Value::Bool(true)),
        ],
    );
}

/// Emits a credit stall whose `unblock` never arrived as a zero-length
/// truncated slice.
fn flush_credit(b: &mut Builder, channel: u32, start: u64, needed: u64, credits: u64) {
    let (pid, tid) = b.channel_track(channel);
    b.slice(
        "credit stall",
        start,
        start,
        pid,
        tid,
        vec![
            ("needed".into(), Value::U64(needed)),
            ("credits_blocked".into(), Value::U64(credits)),
            ("truncated".into(), Value::Bool(true)),
        ],
    );
}

/// Convenience: `TraceStats`-shaped per-category counts of `records`,
/// for asserting an export consumed everything its source held.
pub fn count_by_category(records: &[TraceRecord]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for r in records {
        *counts.entry(r.category().name().to_owned()).or_insert(0) += 1;
    }
    counts
}

/// Convenience: parse + export in one step.
///
/// # Errors
///
/// Propagates [`crate::schema::parse_jsonl`]'s description of the
/// first malformed line.
pub fn chrome_trace_from_jsonl(
    text: &str,
    layout: Option<TrackLayout>,
) -> Result<ChromeTrace, String> {
    Ok(chrome_trace(&crate::schema::parse_jsonl(text)?, layout))
}

/// Marks categories that describe *how* a run executed rather than
/// what the simulated network did: `routes` carries wall-clock build
/// times (nondeterministic even between two serial runs) and
/// `parallel` exists only under `EPNET_PAR`. These are exactly the
/// categories exempt from the serial↔parallel trace byte-identity
/// contract, so a byte-comparable export filters them first — see
/// [`behavior_records`].
pub fn is_execution_shape(cat: TraceCategory) -> bool {
    matches!(cat, TraceCategory::Routes | TraceCategory::Parallel)
}

/// Drops execution-shape records ([`is_execution_shape`]), leaving the
/// simulated-behavior stream that is byte-identical across `EPNET_PAR`
/// widths.
pub fn behavior_records(records: &[TraceRecord]) -> Vec<TraceRecord> {
    records
        .iter()
        .filter(|r| !is_execution_shape(r.category()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MemorySink, Tracer};

    fn sample_records() -> Vec<TraceRecord> {
        let sink = MemorySink::new();
        let mut t = Tracer::new(sink.clone(), TraceCategory::ALL_MASK);
        t.routes(0, 1, 42_000, 1024);
        t.controller(1_000, 2, 0.82, "10 Gb/s", "20 Gb/s", "upshift");
        t.reactivation(1_000, 2, "start", "20 Gb/s", Some(2_000));
        t.credit(1_500, 4, "block", 2048, 512);
        t.credit(1_700, 4, "unblock", 2048, 4096);
        t.reactivation(2_000, 2, "end", "20 Gb/s", None);
        t.detour(1_800, 3, 5, 100, 900);
        t.parallel_window(2_100, 1_900, 4, 128, 132, 3, 9);
        crate::schema::parse_jsonl(&sink.contents()).expect("sample parses")
    }

    #[test]
    fn export_is_valid_json_and_counts_every_record() {
        let records = sample_records();
        let out = chrome_trace(&records, None);
        let doc: Value = serde_json::from_str(&out.json).expect("export is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        assert_eq!(events.len(), out.trace_events + out.metadata_events);
        assert_eq!(out.records, count_by_category(&records));
        // The embedded stats mirror the returned bookkeeping.
        let embedded = doc.get("epnet").expect("epnet stats");
        assert_eq!(
            embedded.get("trace_events").and_then(Value::as_u64),
            Some(out.trace_events as u64)
        );
        for (cat, &n) in &out.records {
            assert_eq!(
                embedded
                    .get("records")
                    .and_then(|r| r.get(cat))
                    .and_then(Value::as_u64),
                Some(n as u64),
                "embedded count for {cat}"
            );
        }
    }

    #[test]
    fn pairing_produces_slices_and_counters() {
        let records = sample_records();
        let out = chrome_trace(&records, None);
        let doc: Value = serde_json::from_str(&out.json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        let named = |name: &str| -> Vec<&Value> {
            events
                .iter()
                .filter(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .collect()
        };
        // start(1000)→end(2000) paired into one 1000 ps = 0.001 µs slice.
        let react = named("reactivation");
        assert_eq!(react.len(), 1);
        assert_eq!(react[0].get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(react[0].get("ts").and_then(Value::as_f64), Some(0.001));
        assert_eq!(react[0].get("dur").and_then(Value::as_f64), Some(0.001));
        // block(1500)→unblock(1700) paired likewise.
        let stall = named("credit stall");
        assert_eq!(stall.len(), 1);
        assert_eq!(
            stall[0]
                .get("args")
                .and_then(|a| a.get("credits_wake"))
                .and_then(Value::as_u64),
            Some(4096)
        );
        // The controller decision yields an instant named by reason
        // plus a rate counter sample parsed from the display form.
        assert_eq!(named("upshift").len(), 1);
        let counter = named("ch2 Gb/s");
        assert_eq!(counter.len(), 1);
        assert_eq!(counter[0].get("ph").and_then(Value::as_str), Some("C"));
        assert_eq!(
            counter[0]
                .get("args")
                .and_then(|a| a.get("Gb/s"))
                .and_then(Value::as_f64),
            Some(20.0)
        );
        // Parallel window spans start_ps→at_ps on its own process.
        let window = named("window");
        assert_eq!(window.len(), 1);
        assert_eq!(
            window[0].get("pid").and_then(Value::as_u64),
            Some(PID_PARALLEL)
        );
    }

    #[test]
    fn layout_groups_channels_by_switch() {
        // 4 hosts, 3 ports per switch: ch2 is host 2, ch4+3·1+2 = 9 is
        // switch 1 port 2; the detour's switch 3 gets a marker thread
        // past its channel tids.
        let layout = TrackLayout {
            hosts: 4,
            ports_per_switch: 3,
        };
        assert_eq!(
            layout.channel_home(2),
            (PID_CHANNELS, 3, "hosts".into(), "ch2 host2".into())
        );
        assert_eq!(
            layout.channel_home(9),
            (
                PID_SWITCH_BASE + 1,
                3,
                "switch 1".into(),
                "ch9 port2".into()
            )
        );
        assert_eq!(
            layout.switch_markers(3),
            (PID_SWITCH_BASE + 3, 4, "switch 3".into(), "detours".into())
        );

        let records = sample_records();
        let out = chrome_trace(&records, Some(layout));
        let doc: Value = serde_json::from_str(&out.json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        let process_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
            })
            .collect();
        assert!(process_names.contains(&"hosts"), "{process_names:?}");
        assert!(process_names.contains(&"switch 3"), "{process_names:?}");
        assert!(process_names.contains(&"parallel engine"));
    }

    #[test]
    fn unmatched_windows_flush_as_truncated_slices() {
        let records = vec![
            TraceRecord::Reactivation {
                at_ps: 100,
                channel: 1,
                phase: "start".into(),
                rate: "40 Gb/s".into(),
                until_ps: Some(600),
            },
            TraceRecord::Credit {
                at_ps: 200,
                channel: 2,
                phase: "block".into(),
                needed: 512,
                credits: 0,
            },
        ];
        let out = chrome_trace(&records, None);
        let doc: Value = serde_json::from_str(&out.json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        let truncated: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("args").and_then(|a| a.get("truncated")).is_some())
            .collect();
        assert_eq!(truncated.len(), 2, "both open windows flushed");
        // The reactivation uses its scheduled end: 100→600 ps.
        let react = truncated
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("reactivation"))
            .expect("truncated reactivation");
        assert_eq!(react.get("dur").and_then(Value::as_f64), Some(0.0005));
    }

    #[test]
    fn behavior_filter_drops_exactly_the_shape_categories() {
        let records = sample_records();
        let kept = behavior_records(&records);
        assert_eq!(kept.len(), records.len() - 2, "routes + parallel dropped");
        assert!(kept.iter().all(|r| !is_execution_shape(r.category())));
        // Identical behavior streams export to identical bytes even
        // when the shape records differ — the serial↔parallel export
        // contract.
        let a = chrome_trace(&kept, None);
        let b = chrome_trace(&behavior_records(&kept), None);
        assert_eq!(a.json, b.json);
    }

    #[test]
    fn rate_display_forms_parse() {
        assert_eq!(parse_gbps("2.5 Gb/s"), Some(2.5));
        assert_eq!(parse_gbps("40 Gb/s"), Some(40.0));
        assert_eq!(parse_gbps("off"), None);
    }
}
