//! A small metrics registry: named monotonic counters and gauges.
//!
//! Names are registered once (at simulator construction), yielding a
//! dense [`CounterId`] so hot-path updates are a bounds-checked array
//! add — no hashing, no string comparison. The final snapshot sorts
//! by name so reports serialize deterministically.

use std::collections::BTreeMap;

/// Handle to a registered counter or gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Registry of named `u64` metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, u64)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers `name`, returning its id. Metrics exist to be read
    /// by humans, so a duplicate registration is a programming error
    /// and panics rather than silently aliasing two call sites.
    pub fn counter(&mut self, name: &str) -> CounterId {
        assert!(
            self.entries.iter().all(|(n, _)| n != name),
            "metric '{name}' registered twice"
        );
        self.entries.push((name.to_owned(), 0));
        CounterId(self.entries.len() as u32 - 1)
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.entries[id.0 as usize].1 += delta;
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.entries[id.0 as usize].1 = value;
    }

    /// Raises a high-watermark gauge to `value` if it is larger.
    #[inline]
    pub fn observe_max(&mut self, id: CounterId, value: u64) {
        let slot = &mut self.entries[id.0 as usize].1;
        if value > *slot {
            *slot = value;
        }
    }

    /// Current value of a metric.
    pub fn get(&self, id: CounterId) -> u64 {
        self.entries[id.0 as usize].1
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All metrics as a name-sorted map.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.entries.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let mut reg = MetricsRegistry::new();
        let b = reg.counter("zz_last");
        let a = reg.counter("aa_first");
        reg.add(b, 2);
        reg.add(b, 3);
        reg.set(a, 10);
        reg.observe_max(a, 7);
        reg.observe_max(a, 12);
        assert_eq!(reg.get(a), 12);
        assert_eq!(reg.get(b), 5);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["aa_first", "zz_last"]);
        assert_eq!(snap["zz_last"], 5);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("events_popped");
        reg.counter("events_popped");
    }
}
