//! A small metrics registry: named monotonic counters and gauges.
//!
//! Names are registered once (at simulator construction), yielding a
//! dense [`CounterId`] so hot-path updates are a bounds-checked array
//! add — no hashing, no string comparison. The final snapshot sorts
//! by name so reports serialize deterministically.
//!
//! Metrics come in two visibility classes: regular entries feed the
//! serialized report surface ([`MetricsRegistry::snapshot`]), while
//! *diagnostic* entries ([`MetricsRegistry::diagnostic`]) describe how
//! a run executed rather than what it simulated — e.g. the parallel
//! engine's window counters, which vary with `EPNET_PAR` width and
//! would break the byte-identical-report contract if serialized. They
//! surface separately via [`MetricsRegistry::diagnostics_snapshot`].

use std::collections::BTreeMap;

/// Handle to a registered counter or gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Registry of named `u64` metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, u64)>,
    /// Parallel to `entries`: whether each metric is diagnostic-only.
    diag: Vec<bool>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers `name`, returning its id. Metrics exist to be read
    /// by humans, so a duplicate registration is a programming error
    /// and panics rather than silently aliasing two call sites.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.register(name, false)
    }

    /// Registers `name` as a diagnostic-only metric: excluded from
    /// [`MetricsRegistry::snapshot`] (and therefore from serialized
    /// reports), visible in [`MetricsRegistry::diagnostics_snapshot`].
    pub fn diagnostic(&mut self, name: &str) -> CounterId {
        self.register(name, true)
    }

    fn register(&mut self, name: &str, diagnostic: bool) -> CounterId {
        assert!(
            self.entries.iter().all(|(n, _)| n != name),
            "metric '{name}' registered twice"
        );
        self.entries.push((name.to_owned(), 0));
        self.diag.push(diagnostic);
        CounterId(self.entries.len() as u32 - 1)
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.entries[id.0 as usize].1 += delta;
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.entries[id.0 as usize].1 = value;
    }

    /// Raises a high-watermark gauge to `value` if it is larger.
    #[inline]
    pub fn observe_max(&mut self, id: CounterId, value: u64) {
        let slot = &mut self.entries[id.0 as usize].1;
        if value > *slot {
            *slot = value;
        }
    }

    /// Current value of a metric.
    pub fn get(&self, id: CounterId) -> u64 {
        self.entries[id.0 as usize].1
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All report-surface metrics as a name-sorted map. Diagnostic
    /// entries are excluded — they describe the execution strategy,
    /// not the simulation, and must not reach serialized reports.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.entries
            .iter()
            .zip(&self.diag)
            .filter(|(_, &d)| !d)
            .map(|(e, _)| e.clone())
            .collect()
    }

    /// All diagnostic metrics as a name-sorted map.
    pub fn diagnostics_snapshot(&self) -> BTreeMap<String, u64> {
        self.entries
            .iter()
            .zip(&self.diag)
            .filter(|(_, &d)| d)
            .map(|(e, _)| e.clone())
            .collect()
    }

    /// Folds another registry with the *same registration sequence*
    /// into this one: counters are summed, except the ids listed in
    /// `max_ids`, which are high-watermark gauges and merge by maximum.
    ///
    /// This is the deterministic per-worker metrics merge of the
    /// parallel simulation engine: every shard registers the identical
    /// metric set in the identical order, so a positional merge is
    /// exact. Mismatched registries are a programming error and panic.
    pub fn merge_from(&mut self, other: &MetricsRegistry, max_ids: &[CounterId]) {
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "merging registries with different metric sets"
        );
        debug_assert_eq!(
            self.diag, other.diag,
            "merging registries with different diagnostic flags"
        );
        for (i, (name, value)) in other.entries.iter().enumerate() {
            debug_assert_eq!(
                &self.entries[i].0, name,
                "metric registration order diverged at index {i}"
            );
            if max_ids.iter().any(|id| id.0 as usize == i) {
                self.observe_max(CounterId(i as u32), *value);
            } else {
                self.entries[i].1 += value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let mut reg = MetricsRegistry::new();
        let b = reg.counter("zz_last");
        let a = reg.counter("aa_first");
        reg.add(b, 2);
        reg.add(b, 3);
        reg.set(a, 10);
        reg.observe_max(a, 7);
        reg.observe_max(a, 12);
        assert_eq!(reg.get(a), 12);
        assert_eq!(reg.get(b), 5);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["aa_first", "zz_last"]);
        assert_eq!(snap["zz_last"], 5);
    }

    #[test]
    fn merge_sums_counters_and_maxes_watermarks() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter("events");
            let m = reg.counter("peak");
            (reg, c, m)
        };
        let (mut a, ca, ma) = build();
        let (mut b, cb, mb) = build();
        a.add(ca, 10);
        a.observe_max(ma, 7);
        b.add(cb, 5);
        b.observe_max(mb, 3);
        a.merge_from(&b, &[ma]);
        assert_eq!(a.get(ca), 15, "counters sum");
        assert_eq!(a.get(ma), 7, "watermarks take the max");
        b.observe_max(mb, 99);
        a.merge_from(&b, &[ma]);
        assert_eq!(a.get(ma), 99);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("events_popped");
        reg.counter("events_popped");
    }

    #[test]
    fn diagnostics_split_from_the_report_snapshot() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("events");
        let d = reg.diagnostic("par_windows");
        reg.add(c, 3);
        reg.set(d, 42);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1, "diagnostics stay off the report surface");
        assert_eq!(snap["events"], 3);
        let diag = reg.diagnostics_snapshot();
        assert_eq!(diag.len(), 1);
        assert_eq!(diag["par_windows"], 42);
        // Reads and merges treat both classes identically.
        assert_eq!(reg.get(d), 42);
        let mut other = MetricsRegistry::new();
        other.counter("events");
        other.diagnostic("par_windows");
        other.merge_from(&reg, &[]);
        assert_eq!(other.get(d), 42);
    }
}
