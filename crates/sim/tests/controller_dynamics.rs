//! Controller dynamics at epoch granularity: utilization attribution,
//! the paired-link max rule, and reactivation bookkeeping.

use epnet_power::{LinkPowerProfile, LinkRate};
use epnet_sim::{ControlMode, Message, ReplaySource, SimConfig, SimTime, Simulator};
use epnet_topology::{FlattenedButterfly, HostId};

fn pair_fabric() -> epnet_topology::FabricGraph {
    FlattenedButterfly::new(2, 2, 2).unwrap().build_fabric()
}

/// Regression for a subtle bug: a transmission that outlasts the
/// measurement epoch must charge each epoch its share of busy time. At
/// 2.5 Gb/s a 2 KiB packet serializes for 6.55 µs — most of a 10 µs
/// epoch — so with broken attribution a steadily loaded slow link looks
/// idle every other epoch and the controller never upgrades it.
#[test]
fn multi_epoch_transmissions_keep_utilization_visible() {
    // Steady 12 Gb/s stream: must drive the link back toward a fast
    // rate and keep delivering.
    let mut msgs = Vec::new();
    let mut t = SimTime::from_us(1);
    while t < SimTime::from_ms(4) {
        msgs.push(Message {
            at: t,
            src: HostId::new(0),
            dst: HostId::new(2),
            bytes: 64 * 1024,
        });
        t += SimTime::from_us(43); // ~12.2 Gb/s
    }
    let report = Simulator::new(pair_fabric(), SimConfig::default(), ReplaySource::new(msgs))
        .run_until(SimTime::from_ms(5));
    assert!(
        report.delivery_ratio() > 0.98,
        "sustained stream must not collapse, got {}",
        report.delivery_ratio()
    );
    // 12 Gb/s needs at least the 20 Gb/s mode on the loaded path; the
    // loaded channels show up as fast residency.
    let fr = report.time_at_speed_fractions();
    assert!(
        fr[LinkRate::R20.index()] + fr[LinkRate::R40.index()] > 0.05,
        "loaded channels should ride fast modes: {fr:?}"
    );
}

/// The §3.3 heuristic walks one ladder step per epoch, so a freshly
/// idle network takes four epochs to reach the floor.
#[test]
fn rate_descends_one_step_per_epoch() {
    // Epoch 10 µs: after ~45 µs of silence every link is at 2.5 Gb/s.
    // Residency over a 55 µs run must show every intermediate rate.
    let mut cfg = SimConfig::builder();
    cfg.warmup(SimTime::ZERO);
    let report = Simulator::new(
        pair_fabric(),
        cfg.build(),
        ReplaySource::new(vec![Message {
            at: SimTime::from_us(1),
            src: HostId::new(0),
            dst: HostId::new(3),
            bytes: 1024,
        }]),
    )
    .run_until(SimTime::from_us(55));
    let fr = report.time_at_speed_fractions();
    for rate in epnet_power::RATE_LADDER {
        assert!(
            fr[rate.index()] > 0.0,
            "rate {rate} skipped on the way down: {fr:?}"
        );
    }
    // Roughly one epoch (10 of 55 µs) per intermediate step.
    assert!((fr[LinkRate::R20.index()] - 10.0 / 55.0).abs() < 0.05);
}

/// Paired control obeys the max rule: a hot forward channel keeps the
/// idle reverse channel fast too.
#[test]
fn paired_max_rule_holds_both_directions_up() {
    let mut msgs = Vec::new();
    let mut t = SimTime::from_us(1);
    while t < SimTime::from_ms(3) {
        msgs.push(Message {
            at: t,
            src: HostId::new(0),
            dst: HostId::new(2),
            bytes: 128 * 1024,
        });
        t += SimTime::from_us(38); // ~27.6 Gb/s forward, nothing back
    }
    let run = |mode: ControlMode| {
        let mut cfg = SimConfig::builder();
        cfg.control(mode).tune_host_links(false);
        Simulator::new(pair_fabric(), cfg.build(), ReplaySource::new(msgs.clone()))
            .run_until(SimTime::from_ms(3))
    };
    let paired = run(ControlMode::PairedLink);
    let independent = run(ControlMode::IndependentChannel);
    // Between the two switches there is exactly one link (two
    // channels). Paired: both ride fast -> high fast-residency.
    // Independent: the reverse channel sinks to 2.5.
    let fast = |r: &epnet_sim::SimReport| {
        let fr = r.time_at_speed_fractions();
        fr[LinkRate::R40.index()] + fr[LinkRate::R20.index()]
    };
    assert!(
        fast(&paired) > fast(&independent) + 0.05,
        "paired {:.3} vs independent {:.3}",
        fast(&paired),
        fast(&independent)
    );
    // Only 1 of the fabric's 5 links is inter-switch (host links are
    // exempted above), so the asymmetric fraction tops out at 0.2.
    assert!(
        independent.asymmetric_link_fraction > 0.1,
        "got {}",
        independent.asymmetric_link_fraction
    );
    assert_eq!(paired.asymmetric_link_fraction, 0.0);
}

/// Reconfigurations are counted once per channel rate change.
#[test]
fn quiet_network_reconfiguration_count_is_exact() {
    // One packet wakes the fabric; afterwards every tunable channel
    // steps down 4 times (40 -> 2.5). With no further traffic no other
    // reconfigurations can occur, except the loaded channels stepping
    // back up briefly.
    let g = pair_fabric();
    // 4 host links (8 channels) + 1 inter-switch link (2 channels).
    let channels = 10;
    assert_eq!(g.num_channels(), channels);
    let report = Simulator::new(
        g,
        SimConfig::default(),
        ReplaySource::new(vec![Message {
            at: SimTime::from_us(1),
            src: HostId::new(0),
            dst: HostId::new(3),
            bytes: 1024,
        }]),
    )
    .run_until(SimTime::from_ms(2));
    // Descent alone accounts for 4 changes per channel; brief upshifts
    // on the loaded path add a few.
    assert!(
        report.reconfigurations >= 4 * channels as u64,
        "expected at least the full descent, got {}",
        report.reconfigurations
    );
    assert!(
        report.reconfigurations <= 6 * channels as u64,
        "suspiciously many reconfigurations: {}",
        report.reconfigurations
    );
}

/// The measured-profile power of a long-idle network converges to the
/// 42% floor from above, never below.
#[test]
fn power_converges_to_floor_from_above() {
    let horizons = [
        SimTime::from_us(200),
        SimTime::from_ms(1),
        SimTime::from_ms(5),
    ];
    let mut last = f64::MAX;
    for h in horizons {
        let report = Simulator::new(
            pair_fabric(),
            SimConfig::default(),
            ReplaySource::new(vec![Message {
                at: SimTime::from_us(1),
                src: HostId::new(0),
                dst: HostId::new(3),
                bytes: 1024,
            }]),
        )
        .run_until(h);
        let p = report.relative_power(&LinkPowerProfile::Measured);
        assert!(p >= 0.42 - 1e-9, "below floor at {h}: {p}");
        assert!(p <= last, "power must fall with horizon: {p} after {last}");
        last = p;
    }
    assert!(last < 0.45, "long horizon approaches the floor: {last}");
}
