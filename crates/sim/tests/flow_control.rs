//! Credit-based flow-control behaviour: credits bound the bytes in
//! flight on a channel, and the bound shapes throughput exactly as a
//! bandwidth-delay-product argument predicts.

use epnet_sim::{Message, ReplaySource, SimConfig, SimTime, Simulator};
use epnet_topology::{FlattenedButterfly, HostId};

fn two_switch_fabric() -> epnet_topology::FabricGraph {
    // 2 switches, 2 hosts each, one inter-switch link.
    FlattenedButterfly::new(2, 2, 2).unwrap().build_fabric()
}

/// One long transfer across the single inter-switch link.
fn one_stream(bytes: u64) -> Vec<Message> {
    vec![Message {
        at: SimTime::from_us(60),
        src: HostId::new(0),
        dst: HostId::new(2),
        bytes,
    }]
}

#[test]
fn ample_credits_run_at_line_rate() {
    let total = 4 * 1024 * 1024u64; // 4 MiB
    let mut cfg = SimConfig::builder();
    cfg.input_buffer_bytes(256 * 1024);
    let report = Simulator::new(
        two_switch_fabric(),
        cfg.control(epnet_sim::ControlMode::AlwaysFull).build(),
        ReplaySource::new(one_stream(total)),
    )
    .run_until(SimTime::from_ms(3));
    assert_eq!(report.delivered_bytes, total);
    // 4 MiB at 40 Gb/s is ~839 µs of serialization; the message latency
    // should be close to that (pipelined across hops).
    let ser_us = total as f64 * 8.0 / 40e9 * 1e6;
    let lat = report.mean_message_latency.as_us_f64();
    assert!(
        lat < ser_us * 1.2,
        "pipelined transfer took {lat:.0} us vs {ser_us:.0} us of serialization"
    );
}

#[test]
fn tight_credits_throttle_a_channel() {
    // One packet of credit: the channel must stop and wait a full
    // credit round trip (2 x propagation) between packets.
    let total = 512 * 1024u64;
    let run = |buf: u32| {
        let mut cfg = SimConfig::builder();
        cfg.packet_bytes(2048).input_buffer_bytes(buf);
        Simulator::new(
            two_switch_fabric(),
            cfg.control(epnet_sim::ControlMode::AlwaysFull).build(),
            ReplaySource::new(one_stream(total)),
        )
        .run_until(SimTime::from_ms(10))
    };
    let ample = run(64 * 1024);
    let tight = run(2048);
    assert_eq!(ample.delivered_bytes, total);
    assert_eq!(tight.delivered_bytes, total, "credits delay, never drop");
    assert!(
        tight.mean_message_latency > ample.mean_message_latency,
        "a one-packet window must be slower ({} vs {})",
        tight.mean_message_latency,
        ample.mean_message_latency
    );
}

#[test]
fn credit_conservation_under_churn() {
    // Random-ish bidirectional churn with small credit pools: nothing
    // is lost and nothing deadlocks.
    let mut msgs = Vec::new();
    for r in 0..200u64 {
        for h in 0..4u32 {
            msgs.push(Message {
                at: SimTime::from_us(1 + r * 17),
                src: HostId::new(h),
                dst: HostId::new((h + 1 + (r as u32 % 3)) % 4),
                bytes: 1 + (r * 997) % 9_000,
            });
        }
    }
    let offered: u64 = msgs.iter().map(|m| m.bytes).sum();
    let mut cfg = SimConfig::builder();
    cfg.packet_bytes(1024).input_buffer_bytes(2048);
    let report = Simulator::new(two_switch_fabric(), cfg.build(), ReplaySource::new(msgs))
        .run_until(SimTime::from_ms(40));
    assert_eq!(report.delivered_bytes, offered);
}

#[test]
fn zero_byte_messages_still_complete() {
    let report = Simulator::new(
        two_switch_fabric(),
        SimConfig::baseline(),
        ReplaySource::new(vec![Message {
            at: SimTime::from_us(60),
            src: HostId::new(0),
            dst: HostId::new(3),
            bytes: 0,
        }]),
    )
    .run_until(SimTime::from_ms(1));
    assert_eq!(report.messages_delivered, 1);
    assert_eq!(
        report.packets_delivered, 1,
        "empty messages ride a minimal packet"
    );
    assert_eq!(
        report.delivered_bytes, 1,
        "the minimal packet carries one wire byte"
    );
}
