//! Behavioural tests of the simulation engine: conservation, energy
//! proportionality mechanics, paired vs independent control, and
//! reactivation-latency effects.

use epnet_power::{LinkPowerProfile, LinkRate};
use epnet_sim::{ControlMode, Message, RatePolicy, ReplaySource, SimConfig, SimTime, Simulator};
use epnet_topology::{FlattenedButterfly, HostId, RoutingTopology};

fn fabric(c: u16, k: u16, n: usize) -> epnet_topology::FabricGraph {
    FlattenedButterfly::new(c, k, n).unwrap().build_fabric()
}

fn msg(at_us: u64, src: u32, dst: u32, bytes: u64) -> Message {
    Message {
        at: SimTime::from_us(at_us),
        src: HostId::new(src),
        dst: HostId::new(dst),
        bytes,
    }
}

/// A steady all-pairs shuffle at a given per-host message cadence.
fn shuffle_traffic(hosts: u32, messages_per_host: u64, gap_us: u64, bytes: u64) -> Vec<Message> {
    let mut v = Vec::new();
    for m in 0..messages_per_host {
        for h in 0..hosts {
            let dst = (h + 1 + (m as u32 % (hosts - 1))) % hosts;
            v.push(msg(1 + m * gap_us, h, dst, bytes));
        }
    }
    v
}

#[test]
fn every_offered_byte_is_delivered() {
    let traffic = shuffle_traffic(32, 20, 50, 16 * 1024);
    let offered: u64 = traffic.iter().map(|m| m.bytes).sum();
    let report = Simulator::new(
        fabric(2, 4, 3),
        SimConfig::baseline(),
        ReplaySource::new(traffic),
    )
    .run_until(SimTime::from_ms(10));
    assert_eq!(report.delivered_bytes, offered);
    assert_eq!(report.offered_bytes, offered);
    assert!((report.delivery_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn baseline_power_is_exactly_one() {
    let report = Simulator::new(
        fabric(2, 4, 2),
        SimConfig::baseline(),
        ReplaySource::new(shuffle_traffic(8, 5, 100, 8192)),
    )
    .run_until(SimTime::from_ms(2));
    assert_eq!(report.reconfigurations, 0);
    for profile in [LinkPowerProfile::Measured, LinkPowerProfile::Ideal] {
        assert!((report.relative_power(&profile) - 1.0).abs() < 1e-12);
    }
    let fr = report.time_at_speed_fractions();
    assert!((fr[LinkRate::R40.index()] - 1.0).abs() < 1e-12);
}

#[test]
fn idle_network_detunes_to_the_floor() {
    // One early message, then silence: every link should walk down the
    // ladder and spend almost all time at 2.5 Gb/s.
    let report = Simulator::new(
        fabric(2, 4, 2),
        SimConfig::default(),
        ReplaySource::new(vec![msg(1, 0, 7, 4096)]),
    )
    .run_until(SimTime::from_ms(5));
    let fr = report.time_at_speed_fractions();
    assert!(fr[LinkRate::R2_5.index()] > 0.95, "slow fraction {fr:?}");
    // Measured profile approaches the paper's 42% floor (§4.2.1).
    let p = report.relative_power(&LinkPowerProfile::Measured);
    assert!((0.42..0.45).contains(&p), "measured power {p}");
    // Ideal profile approaches 6.25%.
    let pi = report.relative_power(&LinkPowerProfile::Ideal);
    assert!((0.0625..0.075).contains(&pi), "ideal power {pi}");
}

#[test]
fn busy_network_stays_fast() {
    // Saturating traffic between neighbours keeps utilization above any
    // target, so links must hold (or return to) full rate.
    let mut traffic = Vec::new();
    for m in 0..200u64 {
        // Hosts 0..8, each sending 64 KiB every 40 µs = ~13 Gb/s, so a
        // switch's two senders put ~26 Gb/s on one 40 Gb/s link: above
        // the 50% target but below saturation.
        for h in 0..8u32 {
            traffic.push(msg(1 + m * 40, h, (h + 8) % 16, 64 * 1024));
        }
    }
    let report = Simulator::new(
        fabric(2, 8, 2),
        SimConfig::default(),
        ReplaySource::new(traffic),
    )
    .run_until(SimTime::from_ms(8));
    let fr = report.time_at_speed_fractions();
    // The loaded path's channels stay fast; idle ones sink. At minimum,
    // delivery must keep up.
    assert!(
        report.delivery_ratio() > 0.95,
        "ratio {}",
        report.delivery_ratio()
    );
    assert!(fr[LinkRate::R40.index()] > 0.05);
}

#[test]
fn independent_control_beats_paired_on_asymmetric_traffic() {
    // One-directional flows (reads from a file server, §4.2.1): the
    // reverse channels are idle, so independent control can sink them to
    // 2.5 Gb/s while paired control must keep both directions fast.
    let mut traffic = Vec::new();
    for m in 0..200u64 {
        for src in 0..4u32 {
            traffic.push(msg(1 + m * 30, src, src + 12, 128 * 1024));
        }
    }
    let run = |mode: ControlMode| {
        let mut cfg = SimConfig::builder();
        cfg.control(mode);
        Simulator::new(
            fabric(2, 8, 2),
            cfg.build(),
            ReplaySource::new(traffic.clone()),
        )
        .run_until(SimTime::from_ms(7))
    };
    let paired = run(ControlMode::PairedLink);
    let independent = run(ControlMode::IndependentChannel);
    let pp = paired.relative_power(&LinkPowerProfile::Ideal);
    let ip = independent.relative_power(&LinkPowerProfile::Ideal);
    assert!(
        ip < pp,
        "independent ({ip:.4}) should consume less than paired ({pp:.4})"
    );
}

#[test]
fn longer_reactivation_increases_latency() {
    // Bursty traffic (the regime of Figure 9(b)): a burst every 500 µs
    // finds the links parked at a low rate and pays the reactivation
    // ramp, so the penalty grows with the reactivation latency.
    let mut traffic = Vec::new();
    for p in 0..10u64 {
        for h in 0..16u32 {
            for b in 0..6u64 {
                let dst = (h + 1 + (p as u32 % 15)) % 16;
                traffic.push(msg(10 + p * 500 + b * 15, h, dst, 64 * 1024));
            }
        }
    }
    let run = |reactivation: SimTime| {
        let mut cfg = SimConfig::builder();
        cfg.reactivation(reactivation);
        Simulator::new(
            fabric(2, 8, 2),
            cfg.build(),
            ReplaySource::new(traffic.clone()),
        )
        .run_until(SimTime::from_ms(6))
    };
    let baseline = Simulator::new(
        fabric(2, 8, 2),
        SimConfig::baseline(),
        ReplaySource::new(traffic.clone()),
    )
    .run_until(SimTime::from_ms(6));
    let fast = run(SimTime::from_ns(100));
    let slow = run(SimTime::from_us(100));
    let d_fast = fast.added_latency_vs(&baseline);
    let d_slow = slow.added_latency_vs(&baseline);
    assert!(
        d_slow > d_fast,
        "100 µs reactivation ({d_slow}) must cost more than 100 ns ({d_fast})"
    );
}

#[test]
fn jump_to_extremes_reaches_floor_faster() {
    // After a single burst, JumpToExtremes needs one epoch to hit the
    // floor; HalveDouble needs four.
    let traffic = vec![msg(1, 0, 7, 4096)];
    let run = |policy: RatePolicy| {
        let mut cfg = SimConfig::builder();
        cfg.policy(policy);
        Simulator::new(
            fabric(2, 4, 2),
            cfg.build(),
            ReplaySource::new(traffic.clone()),
        )
        .run_until(SimTime::from_us(200))
    };
    let hd = run(RatePolicy::HalveDouble);
    let jte = run(RatePolicy::JumpToExtremes);
    let hd_slow = hd.time_at_speed_fractions()[LinkRate::R2_5.index()];
    let jte_slow = jte.time_at_speed_fractions()[LinkRate::R2_5.index()];
    assert!(
        jte_slow > hd_slow,
        "jump ({jte_slow:.3}) should exceed halve/double ({hd_slow:.3}) early on"
    );
}

#[test]
fn hysteresis_reconfigures_less_than_halve_double() {
    let traffic = shuffle_traffic(16, 40, 60, 32 * 1024);
    let run = |policy: RatePolicy| {
        let mut cfg = SimConfig::builder();
        cfg.policy(policy);
        Simulator::new(
            fabric(2, 8, 2),
            cfg.build(),
            ReplaySource::new(traffic.clone()),
        )
        .run_until(SimTime::from_ms(5))
    };
    let hd = run(RatePolicy::HalveDouble);
    let hy = run(RatePolicy::Hysteresis {
        low: 0.15,
        high: 0.75,
    });
    assert!(
        hy.reconfigurations < hd.reconfigurations,
        "hysteresis ({}) should reconfigure less than halve/double ({})",
        hy.reconfigurations,
        hd.reconfigurations
    );
}

#[test]
fn host_link_tuning_can_be_disabled() {
    let traffic = vec![msg(1, 0, 7, 4096)];
    let mut cfg = SimConfig::builder();
    cfg.tune_host_links(false);
    let report = Simulator::new(fabric(2, 4, 2), cfg.build(), ReplaySource::new(traffic))
        .run_until(SimTime::from_ms(2));
    // Host channels (half of a c=k/2 fabric's links... here 16 of 28
    // links) stay at 40 Gb/s, so the fast fraction stays substantial.
    let fr = report.time_at_speed_fractions();
    let g = fabric(2, 4, 2);
    let host_channels = 2 * g.num_hosts();
    let expected_fast = host_channels as f64 / g.num_channels() as f64;
    assert!(
        fr[LinkRate::R40.index()] >= expected_fast * 0.99,
        "fast fraction {:.3} below host-channel share {:.3}",
        fr[LinkRate::R40.index()],
        expected_fast
    );
}

#[test]
fn mean_latency_reflects_hop_count() {
    // A same-switch message beats a two-dimension-away message.
    // Messages are sent after the 50 µs warm-up so they are measured.
    let local = Simulator::new(
        fabric(2, 4, 3),
        SimConfig::baseline(),
        ReplaySource::new(vec![msg(60, 0, 1, 2048)]),
    )
    .run_until(SimTime::from_ms(1));
    let remote = Simulator::new(
        fabric(2, 4, 3),
        SimConfig::baseline(),
        ReplaySource::new(vec![msg(60, 0, 31, 2048)]),
    )
    .run_until(SimTime::from_ms(1));
    assert_eq!(local.packets_delivered, 1);
    assert_eq!(remote.packets_delivered, 1);
    assert!(local.mean_packet_latency < remote.mean_packet_latency);
}

#[test]
fn message_latency_covers_all_packets() {
    // An 8 KiB message at 2 KiB packets: message latency is the last
    // packet's delivery, so it exceeds the mean packet latency.
    let report = Simulator::new(
        fabric(2, 4, 2),
        SimConfig::baseline(),
        ReplaySource::new(vec![msg(60, 0, 7, 8 * 2048)]),
    )
    .run_until(SimTime::from_ms(1));
    assert_eq!(report.packets_delivered, 8);
    assert_eq!(report.messages_delivered, 1);
    assert!(report.mean_message_latency > report.mean_packet_latency);
}

#[test]
fn warmup_excludes_early_packets_from_latency() {
    let traffic = vec![msg(1, 0, 7, 2048), msg(200, 0, 7, 2048)];
    let mut cfg = SimConfig::builder();
    cfg.warmup(SimTime::from_us(100));
    let report = Simulator::new(
        fabric(2, 4, 2),
        cfg.control(ControlMode::AlwaysFull).build(),
        ReplaySource::new(traffic),
    )
    .run_until(SimTime::from_ms(1));
    assert_eq!(report.packets_delivered, 1, "warm-up packet excluded");
    assert_eq!(
        report.delivered_bytes, 4096,
        "but still counted as delivered"
    );
}

#[test]
fn overload_shows_up_in_delivery_ratio() {
    // Two hosts on the same switch blast a third at 2× line rate.
    let mut traffic = Vec::new();
    for m in 0..100u64 {
        traffic.push(msg(1 + m * 110, 0, 3, 512 * 1024)); // ~38 Gb/s
        traffic.push(msg(1 + m * 110, 1, 3, 512 * 1024)); // another ~38 Gb/s
    }
    let report = Simulator::new(
        fabric(2, 4, 2),
        SimConfig::baseline(),
        ReplaySource::new(traffic),
    )
    .run_until(SimTime::from_ms(11));
    assert!(
        report.delivery_ratio() < 0.8,
        "a 2x-overloaded ejection port cannot keep up, got {}",
        report.delivery_ratio()
    );
}
