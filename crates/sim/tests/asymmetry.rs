//! Channel-asymmetry measurements (§3.3.1): one-directional traffic
//! should drive a link's two channels to different rates under
//! independent control, never under paired control.

use epnet_sim::{ControlMode, Message, ReplaySource, SimConfig, SimTime, Simulator};
use epnet_topology::{FlattenedButterfly, HostId};

fn one_way_traffic() -> Vec<Message> {
    // File-server reads: hosts 0..4 stream to hosts 12..16, nothing
    // flows back.
    let mut v = Vec::new();
    for r in 0..100u64 {
        for src in 0..4u32 {
            v.push(Message {
                at: SimTime::from_us(1 + r * 40),
                src: HostId::new(src),
                dst: HostId::new(src + 12),
                bytes: 128 * 1024,
            });
        }
    }
    v
}

fn run(mode: ControlMode) -> epnet_sim::SimReport {
    let fabric = FlattenedButterfly::new(2, 8, 2).unwrap().build_fabric();
    let mut cfg = SimConfig::builder();
    cfg.control(mode);
    Simulator::new(fabric, cfg.build(), ReplaySource::new(one_way_traffic()))
        .run_until(SimTime::from_ms(6))
}

#[test]
fn independent_control_exposes_asymmetry() {
    let report = run(ControlMode::IndependentChannel);
    assert!(
        report.asymmetric_link_fraction > 0.05,
        "one-way traffic must split link rates, got {:.4}",
        report.asymmetric_link_fraction
    );
}

#[test]
fn paired_control_never_splits_a_link() {
    let report = run(ControlMode::PairedLink);
    assert_eq!(
        report.asymmetric_link_fraction, 0.0,
        "paired links are tuned together by definition"
    );
    assert!(report.reconfigurations > 0, "tuning still happens");
}

#[test]
fn baseline_reports_no_asymmetry_samples() {
    let report = run(ControlMode::AlwaysFull);
    assert_eq!(report.asymmetric_link_fraction, 0.0);
}

#[test]
fn peak_queue_depth_is_reported() {
    let report = run(ControlMode::PairedLink);
    assert!(
        report.peak_queue_bytes >= 128 * 1024,
        "a 128 KiB message must queue at least once, got {}",
        report.peak_queue_bytes
    );
}
