//! §3.2's two tolerance strategies for non-instantaneous reactivation:
//! route-around (evaluated by the paper) vs drain-first.

use epnet_sim::{
    Message, ReactivationStrategy, ReplaySource, SimConfig, SimReport, SimTime, Simulator,
};
use epnet_topology::{FlattenedButterfly, HostId};

/// Bursts against a long reactivation: the regime where strategy
/// matters.
fn bursty() -> Vec<Message> {
    let mut v = Vec::new();
    for p in 0..8u64 {
        for h in 0..16u32 {
            for b in 0..4u64 {
                v.push(Message {
                    at: SimTime::from_us(10 + p * 600 + b * 20),
                    src: HostId::new(h),
                    dst: HostId::new((h + 1 + (p as u32 % 15)) % 16),
                    bytes: 64 * 1024,
                });
            }
        }
    }
    v
}

fn run(strategy: ReactivationStrategy) -> SimReport {
    let fabric = FlattenedButterfly::new(2, 8, 2).unwrap().build_fabric();
    let mut cfg = SimConfig::builder();
    cfg.reactivation(SimTime::from_us(50))
        .reactivation_strategy(strategy);
    Simulator::new(fabric, cfg.build(), ReplaySource::new(bursty())).run_until(SimTime::from_ms(7))
}

#[test]
fn both_strategies_deliver_everything() {
    for strategy in [
        ReactivationStrategy::RouteAround,
        ReactivationStrategy::DrainFirst,
    ] {
        let r = run(strategy);
        assert!(
            r.delivery_ratio() > 0.999,
            "{strategy:?} lost traffic: {}",
            r.delivery_ratio()
        );
        assert!(r.reconfigurations > 0, "{strategy:?} never retuned");
    }
}

#[test]
fn drain_first_shields_queued_packets_from_reactivation() {
    // With a 50 µs reactivation, route-around makes queued packets wait
    // out the retrain; drain-first never does, so its worst-case packet
    // latency is lower.
    let around = run(ReactivationStrategy::RouteAround);
    let drain = run(ReactivationStrategy::DrainFirst);
    let p99_around = around.packet_latency_hist.quantile_ns(0.99);
    let p99_drain = drain.packet_latency_hist.quantile_ns(0.99);
    assert!(
        p99_drain <= p99_around,
        "drain-first p99 {p99_drain} ns should not exceed route-around {p99_around} ns"
    );
}

#[test]
fn drain_first_trades_power_for_latency() {
    // Delaying the downshift until queues empty keeps links fast
    // longer, so drain-first saves no more (usually less) power.
    let around = run(ReactivationStrategy::RouteAround);
    let drain = run(ReactivationStrategy::DrainFirst);
    let p_around = around.relative_power(&epnet_power::LinkPowerProfile::Ideal);
    let p_drain = drain.relative_power(&epnet_power::LinkPowerProfile::Ideal);
    assert!(
        p_drain >= p_around * 0.95,
        "drain-first ({p_drain:.4}) should not magically beat route-around ({p_around:.4})"
    );
}
