//! The §3.1 transition-aware reactivation model: same-width rate
//! changes relock the CDR in ~100 ns, lane-count changes take
//! microseconds — and §5.1 suggests heuristics could "take into account
//! the difference in link resynchronization latency".

use epnet_power::LinkRate;
use epnet_sim::{Message, ReactivationModel, ReplaySource, SimConfig, SimTime, Simulator};
use epnet_topology::{FlattenedButterfly, HostId};

#[test]
fn model_charges_by_transition_kind() {
    let m = ReactivationModel::TransitionAware {
        cdr_relock: SimTime::from_ns(100),
        lane_change: SimTime::from_us(3),
    };
    // Within the 4-lane family: fast.
    assert_eq!(
        m.latency(LinkRate::R40, LinkRate::R20),
        SimTime::from_ns(100)
    );
    assert_eq!(
        m.latency(LinkRate::R20, LinkRate::R10),
        SimTime::from_ns(100)
    );
    // Crossing into the 1-lane family: slow.
    assert_eq!(m.latency(LinkRate::R10, LinkRate::R5), SimTime::from_us(3));
    assert_eq!(m.latency(LinkRate::R5, LinkRate::R10), SimTime::from_us(3));
    // Within the 1-lane family: fast again.
    assert_eq!(
        m.latency(LinkRate::R5, LinkRate::R2_5),
        SimTime::from_ns(100)
    );
    assert_eq!(m.worst_case(), SimTime::from_us(3));
    assert_eq!(
        ReactivationModel::Uniform(SimTime::from_us(1)).worst_case(),
        SimTime::from_us(1)
    );
}

fn bursty() -> Vec<Message> {
    let mut v = Vec::new();
    for p in 0..10u64 {
        for h in 0..16u32 {
            for b in 0..4u64 {
                v.push(Message {
                    at: SimTime::from_us(10 + p * 500 + b * 20),
                    src: HostId::new(h),
                    dst: HostId::new((h + 1 + (p as u32 % 15)) % 16),
                    bytes: 64 * 1024,
                });
            }
        }
    }
    v
}

#[test]
fn transition_aware_beats_uniform_worst_case_latency() {
    // Uniform at the slow (lane-change) value vs transition-aware with
    // the same slow value but fast CDR relocks: most ladder steps are
    // same-width, so the aware model pays far less reactivation.
    let fabric = || FlattenedButterfly::new(2, 8, 2).unwrap().build_fabric();
    let baseline = Simulator::new(fabric(), SimConfig::baseline(), ReplaySource::new(bursty()))
        .run_until(SimTime::from_ms(7));

    let mut uni = SimConfig::builder();
    uni.reactivation(SimTime::from_us(5));
    let uniform = Simulator::new(fabric(), uni.build(), ReplaySource::new(bursty()))
        .run_until(SimTime::from_ms(7));

    let mut aware = SimConfig::builder();
    aware.transition_aware_reactivation(SimTime::from_ns(100), SimTime::from_us(5));
    let cfg = aware.build();
    assert_eq!(cfg.epoch, SimTime::from_us(50), "epoch sized by worst case");
    let transition =
        Simulator::new(fabric(), cfg, ReplaySource::new(bursty())).run_until(SimTime::from_ms(7));

    let d_uniform = uniform.added_latency_vs(&baseline);
    let d_aware = transition.added_latency_vs(&baseline);
    assert!(
        d_aware < d_uniform,
        "transition-aware ({d_aware}) should cost less than uniform worst-case ({d_uniform})"
    );
    assert!(uniform.delivery_ratio() > 0.99);
    assert!(transition.delivery_ratio() > 0.99);
}

#[test]
fn lane_aware_policy_pays_fewer_lane_changes_than_halve_double() {
    // Under the transition-aware model, count how much reactivation
    // stall each policy induces: the lane-aware policy should cut added
    // latency on bursty traffic by avoiding repeated boundary
    // crossings.
    let fabric = || FlattenedButterfly::new(2, 8, 2).unwrap().build_fabric();
    let baseline = Simulator::new(fabric(), SimConfig::baseline(), ReplaySource::new(bursty()))
        .run_until(SimTime::from_ms(7));
    let run = |policy: epnet_sim::RatePolicy| {
        let mut cfg = SimConfig::builder();
        cfg.transition_aware_reactivation(SimTime::from_ns(100), SimTime::from_us(5))
            .policy(policy);
        Simulator::new(fabric(), cfg.build(), ReplaySource::new(bursty()))
            .run_until(SimTime::from_ms(7))
    };
    let hd = run(epnet_sim::RatePolicy::HalveDouble);
    let la = run(epnet_sim::RatePolicy::LaneAware);
    let d_hd = hd.added_latency_vs(&baseline);
    let d_la = la.added_latency_vs(&baseline);
    assert!(
        d_la <= d_hd + SimTime::from_us(2),
        "lane-aware ({d_la}) should not pay more stall than halve/double ({d_hd})"
    );
    assert!(la.delivery_ratio() > 0.99);
    // And it still saves real power.
    assert!(la.relative_power(&epnet_power::LinkPowerProfile::Ideal) < 0.5);
}

#[test]
fn jump_to_extremes_pays_one_lane_change_per_swing() {
    // 40 <-> 2.5 is a single lane-change transition; the stepwise
    // ladder pays the lane change once (10 -> 5) plus three relocks.
    // Either way the simulation stays consistent — this is a smoke
    // check that policies compose with the model.
    let fabric = FlattenedButterfly::new(2, 4, 2).unwrap().build_fabric();
    let mut cfg = SimConfig::builder();
    cfg.transition_aware_reactivation(SimTime::from_ns(100), SimTime::from_us(3))
        .policy(epnet_sim::RatePolicy::JumpToExtremes);
    let report = Simulator::new(
        fabric,
        cfg.build(),
        ReplaySource::new(vec![Message {
            at: SimTime::from_us(1),
            src: HostId::new(0),
            dst: HostId::new(7),
            bytes: 4096,
        }]),
    )
    .run_until(SimTime::from_ms(2));
    assert_eq!(report.delivery_ratio(), 1.0);
    let fr = report.time_at_speed_fractions();
    assert!(fr[LinkRate::R2_5.index()] > 0.9);
}
