//! Non-minimal (UGAL) adaptive routing: the load balancing a flattened
//! butterfly "requires ... to load balance arbitrary traffic patterns"
//! (§2.1).

use epnet_sim::{Message, ReplaySource, RoutingPolicy, SimConfig, SimTime, Simulator};
use epnet_topology::{FlattenedButterfly, HostId};

fn fabric() -> epnet_topology::FabricGraph {
    FlattenedButterfly::new(4, 4, 3).unwrap().build_fabric()
}

/// An adversarial fixed permutation: every host of switch `s` sends to
/// switch `s + 4` (one dimension hop), concentrating 4 hosts' traffic
/// onto a single 40 Gb/s minimal link.
fn adversarial(rate_per_host_gbps: f64, duration: SimTime) -> Vec<Message> {
    let bytes = 64 * 1024u64;
    let gap_ps = (bytes as f64 * 8.0 / (rate_per_host_gbps * 1e9) * 1e12) as u64;
    let mut msgs = Vec::new();
    let mut t = SimTime::from_us(1);
    while t < duration {
        for h in 0..64u32 {
            msgs.push(Message {
                at: t,
                src: HostId::new(h),
                dst: HostId::new((h + 16) % 64),
                bytes,
            });
        }
        t += SimTime::from_ps(gap_ps);
    }
    msgs
}

fn ugal_config() -> SimConfig {
    let mut b = SimConfig::builder();
    b.ugal();
    let mut cfg = b.build();
    cfg.control = epnet_sim::ControlMode::AlwaysFull;
    cfg
}

#[test]
fn ugal_sustains_adversarial_permutations_minimal_cannot() {
    // 20 Gb/s per host = 80 Gb/s from each switch onto what minimal
    // routing sees as one 40 Gb/s link.
    let end = SimTime::from_ms(6);
    let traffic = adversarial(20.0, SimTime::from_ms(5));
    let minimal = Simulator::new(
        fabric(),
        SimConfig::baseline(),
        ReplaySource::new(traffic.clone()),
    )
    .run_until(end);
    let ugal = Simulator::new(fabric(), ugal_config(), ReplaySource::new(traffic)).run_until(end);
    assert!(
        minimal.delivery_ratio() < 0.8,
        "minimal routing should saturate, got {}",
        minimal.delivery_ratio()
    );
    assert!(
        ugal.delivery_ratio() > 0.95,
        "UGAL should sustain the permutation, got {}",
        ugal.delivery_ratio()
    );
}

#[test]
fn ugal_stays_minimal_on_benign_traffic() {
    // On light shuffled traffic the detour condition should essentially
    // never fire, so latency matches minimal routing closely.
    let mut msgs = Vec::new();
    for r in 0..40u64 {
        for h in 0..64u32 {
            msgs.push(Message {
                at: SimTime::from_us(60 + r * 100),
                src: HostId::new(h),
                dst: HostId::new((h + 1 + (r as u32 % 63)) % 64),
                bytes: 16 * 1024,
            });
        }
    }
    let end = SimTime::from_ms(6);
    let minimal = Simulator::new(
        fabric(),
        SimConfig::baseline(),
        ReplaySource::new(msgs.clone()),
    )
    .run_until(end);
    let ugal = Simulator::new(fabric(), ugal_config(), ReplaySource::new(msgs)).run_until(end);
    assert_eq!(minimal.packets_delivered, ugal.packets_delivered);
    let d = ugal
        .mean_packet_latency
        .saturating_sub(minimal.mean_packet_latency);
    assert!(
        d < SimTime::from_us(2),
        "UGAL should not detour on light load (added {d})"
    );
}

#[test]
fn ugal_composes_with_rate_tuning() {
    // Energy-proportional control plus UGAL: still delivers and still
    // saves power on a lightly loaded fabric.
    let mut b = SimConfig::builder();
    b.ugal();
    let cfg = b.build();
    assert!(matches!(cfg.routing, RoutingPolicy::Ugal { .. }));
    let mut msgs = Vec::new();
    for r in 0..20u64 {
        for h in 0..16u32 {
            msgs.push(Message {
                at: SimTime::from_us(60 + r * 200),
                src: HostId::new(h * 4),
                dst: HostId::new((h * 4 + 9) % 64),
                bytes: 32 * 1024,
            });
        }
    }
    let end = SimTime::from_ms(6);
    let report = Simulator::new(fabric(), cfg, ReplaySource::new(msgs)).run_until(end);
    assert!(
        report.delivery_ratio() > 0.999,
        "ratio {}",
        report.delivery_ratio()
    );
    assert!(report.reconfigurations > 0);
}
