//! Simulating the two-tier folded Clos: routing correctness, spine
//! load-balancing, and §3.3's observation that "exploiting links'
//! dynamic range is possible with other topologies, such as a
//! folded-Clos".

use epnet_power::{LinkPowerProfile, LinkRate};
use epnet_sim::{Message, ReplaySource, SimConfig, SimTime, Simulator};
use epnet_topology::{HostId, TwoTierClos};

fn fabric() -> epnet_topology::FabricGraph {
    TwoTierClos::non_blocking(8).unwrap().build_fabric() // 128 hosts
}

fn msgs(rounds: u64, gap_us: u64, bytes: u64) -> Vec<Message> {
    let mut v = Vec::new();
    for r in 0..rounds {
        for h in 0..128u32 {
            v.push(Message {
                at: SimTime::from_us(60 + r * gap_us),
                src: HostId::new(h),
                dst: HostId::new((h + 1 + (r as u32 % 127)) % 128),
                bytes,
            });
        }
    }
    v
}

#[test]
fn clos_delivers_everything() {
    let traffic = msgs(30, 50, 16 * 1024);
    let offered: u64 = traffic.iter().map(|m| m.bytes).sum();
    let report = Simulator::new(fabric(), SimConfig::baseline(), ReplaySource::new(traffic))
        .run_until(SimTime::from_ms(10));
    assert_eq!(report.delivered_bytes, offered);
}

#[test]
fn clos_handles_permutations_minimally() {
    // The fixed permutation that saturates minimal FBFLY routing is
    // harmless in a Clos: "a folded-Clos has multiple physical paths to
    // each destination" (§2.1). All 8 hosts of a leaf send across the
    // fabric at 20 Gb/s each.
    let mut traffic = Vec::new();
    let mut t = SimTime::from_us(1);
    while t < SimTime::from_ms(4) {
        for h in 0..64u32 {
            traffic.push(Message {
                at: t,
                src: HostId::new(h),
                dst: HostId::new(h + 64),
                bytes: 64 * 1024,
            });
        }
        t += SimTime::from_ps(64 * 1024 * 8 * 1000 / 20); // 20 Gb/s cadence
    }
    let report = Simulator::new(fabric(), SimConfig::baseline(), ReplaySource::new(traffic))
        .run_until(SimTime::from_ms(6));
    assert!(
        report.delivery_ratio() > 0.97,
        "spine diversity should absorb the permutation, got {}",
        report.delivery_ratio()
    );
}

#[test]
fn energy_proportional_control_works_on_clos_too() {
    let traffic = msgs(10, 400, 16 * 1024); // light load
    let report = Simulator::new(fabric(), SimConfig::default(), ReplaySource::new(traffic))
        .run_until(SimTime::from_ms(6));
    assert!(report.reconfigurations > 0);
    let p = report.relative_power(&LinkPowerProfile::Ideal);
    assert!(
        p < 0.4,
        "EP control should save power on a Clos, got {p:.3}"
    );
    let fr = report.time_at_speed_fractions();
    assert!(fr[LinkRate::R2_5.index()] > 0.5);
}

#[test]
fn clos_packet_latency_is_two_switch_hops() {
    // One cross-fabric packet: host -> leaf -> spine -> leaf -> host.
    let report = Simulator::new(
        fabric(),
        SimConfig::baseline(),
        ReplaySource::new(vec![Message {
            at: SimTime::from_us(60),
            src: HostId::new(0),
            dst: HostId::new(127),
            bytes: 2048,
        }]),
    )
    .run_until(SimTime::from_ms(1));
    assert_eq!(report.packets_delivered, 1);
    // 4 serializations + 4 propagation legs + 3 router traversals:
    // comfortably under 3 µs at 40 Gb/s, above 1.6 µs of serialization.
    let lat = report.mean_packet_latency;
    assert!(lat > SimTime::from_ns(1_600), "latency {lat}");
    assert!(lat < SimTime::from_us(4), "latency {lat}");
}

#[test]
fn local_leaf_traffic_skips_the_spine() {
    let local = Simulator::new(
        fabric(),
        SimConfig::baseline(),
        ReplaySource::new(vec![Message {
            at: SimTime::from_us(60),
            src: HostId::new(0),
            dst: HostId::new(7), // same leaf
            bytes: 2048,
        }]),
    )
    .run_until(SimTime::from_ms(1));
    let remote = Simulator::new(
        fabric(),
        SimConfig::baseline(),
        ReplaySource::new(vec![Message {
            at: SimTime::from_us(60),
            src: HostId::new(0),
            dst: HostId::new(127),
            bytes: 2048,
        }]),
    )
    .run_until(SimTime::from_ms(1));
    assert!(local.mean_packet_latency < remote.mean_packet_latency);
}
