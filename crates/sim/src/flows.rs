//! Fluid per-flow state for the hybrid simulation model
//! (`EPNET_MODEL=hybrid`; see DESIGN.md "Hybrid flow/packet model").
//!
//! The packet engine's cost is proportional to *bytes moved*: a 4 MiB
//! transfer at the paper's scale is two thousand packet events before
//! it even contends. The hybrid model absorbs large messages whose path
//! is currently *steady* — no channel powered off, draining, or
//! congested — into a compact struct-of-arrays table and advances them
//! analytically once per controller epoch: each flow moves
//! `min_over_path(window / (serialize_ps_per_byte · sharers))` bytes,
//! the max-min fair share of the slowest channel on its fixed path.
//! The busy picoseconds that movement implies are charged to each
//! channel's epoch accumulator *before* the controller reads
//! utilization, so the §3.3 rate controller, the power model, and
//! telemetry run unmodified on top of either regime.
//!
//! Regime boundaries are explicit and conservative:
//!
//! * **Absorb** (promotion to fluid) happens at injection, only for
//!   messages of at least [`FLOW_MIN_BYTES`] whose greedy minimal path
//!   (at most [`MAX_FLOW_HOPS`] channels) is steady. Everything else —
//!   small messages, paths through transitioning or congested channels
//!   — takes the packet path unchanged.
//! * **Reactivation windows** do not demote: a channel unavailable
//!   until `available_at` simply contributes a shorter capacity window
//!   (`now − max(last_advance, available_at)`), which is exactly the
//!   §3.2 cost a packet stream would pay waiting out the relock.
//! * **Demote** (back to packets) happens when a path channel powers
//!   off / starts draining, or develops a standing queue above the
//!   congestion threshold — the dynamics the packet model must own.
//!   The flow's remaining bytes re-enter the injection queue as
//!   ordinary packets carrying the original offer time, so latency and
//!   warmup accounting match a message that had always been packets.

use crate::channels::{F_DRAINING, F_OFF};
use crate::engine::Core;
use crate::traffic::Message;
use crate::SimTime;
use epnet_topology::{ChannelId, HostId, PortIndex, PortTarget};

/// Smallest message the hybrid model will absorb as a fluid flow.
/// Below this, per-packet dynamics dominate and aggregation saves
/// little; 64 KiB is 32 packets at the default 2 KiB packet size.
pub(crate) const FLOW_MIN_BYTES: u64 = 64 * 1024;

/// Longest absorbable path, in channels (injection + switch hops +
/// ejection). Both simulated families are diameter-2 fabrics (≤ 5
/// channels); 8 leaves headroom without widening the SoA row.
pub(crate) const MAX_FLOW_HOPS: usize = 8;

/// A flow's path channel occupancy beyond this many packet payloads
/// counts as congestion onset and forces the packet regime.
const CONGESTION_PACKETS: u64 = 4;

/// Struct-of-arrays store of live fluid flows, recycled through a free
/// list like the engine's message table. Columns grow by amortized
/// doubling up to the high-water mark of concurrently live flows and
/// are never shrunk, so a warmed-up run allocates only when that mark
/// moves.
#[derive(Debug, Default)]
pub(crate) struct FlowTable {
    /// Bytes still to deliver.
    remaining: Vec<u64>,
    /// Original workload offer time (warmup gating, message latency).
    offered_at: Vec<SimTime>,
    /// Destination host (raw id).
    dst: Vec<u32>,
    /// Simulated time up to which this flow has been advanced.
    last_advance: Vec<SimTime>,
    /// Channels used, `path[..path_len]` (raw channel ids).
    path: Vec<[u32; MAX_FLOW_HOPS]>,
    path_len: Vec<u8>,
    /// Retired slots awaiting reuse.
    free: Vec<u32>,
    /// Slots currently live, iterated each advancement.
    live: Vec<u32>,
    /// Scratch: flows sharing each channel (indexed by channel, sized
    /// at construction in hybrid mode; empty in packet mode).
    per_channel: Vec<u32>,
    /// Scratch: channels with a non-zero `per_channel` entry, so
    /// clearing between advancements is O(touched), not O(channels).
    touched: Vec<u32>,
    /// Scratch for the absorb-time greedy path walk.
    path_scratch: Vec<PortIndex>,
    /// High-water mark of `live.len()` (diagnostics).
    peak_live: usize,
}

impl FlowTable {
    /// An empty table whose fair-share scratch covers `num_channels`
    /// (pass 0 in packet mode — the table is never consulted there).
    pub(crate) fn new(num_channels: usize) -> Self {
        Self {
            per_channel: vec![0; num_channels],
            ..Self::default()
        }
    }

    /// Flows currently in the fluid regime (test observability).
    #[cfg(test)]
    pub(crate) fn live_count(&self) -> usize {
        self.live.len()
    }

    /// High-water mark of concurrently live flows over the run.
    pub(crate) fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Column capacity high-water: slots ever allocated. The free list
    /// recycles released slots, so this only moves when `peak_live`
    /// does — pinned by the recycle test below.
    pub(crate) fn capacity(&self) -> usize {
        self.remaining.len()
    }

    fn alloc(
        &mut self,
        remaining: u64,
        offered_at: SimTime,
        dst: u32,
        path: [u32; MAX_FLOW_HOPS],
        path_len: u8,
    ) {
        let slot = match self.free.pop() {
            Some(s) => {
                let f = s as usize;
                self.remaining[f] = remaining;
                self.offered_at[f] = offered_at;
                self.dst[f] = dst;
                self.last_advance[f] = offered_at;
                self.path[f] = path;
                self.path_len[f] = path_len;
                s
            }
            None => {
                let s = u32::try_from(self.remaining.len()).expect("flow table overflow");
                self.remaining.push(remaining);
                self.offered_at.push(offered_at);
                self.dst.push(dst);
                self.last_advance.push(offered_at);
                self.path.push(path);
                self.path_len.push(path_len);
                s
            }
        };
        self.live.push(slot);
        self.peak_live = self.peak_live.max(self.live.len());
    }

    fn release(&mut self, live_idx: usize) {
        let slot = self.live.swap_remove(live_idx);
        self.free.push(slot);
    }
}

impl Core {
    /// Standing-queue bytes beyond which a channel is "congestion
    /// onset" for regime decisions.
    pub(crate) fn flow_congestion_limit(&self) -> u64 {
        CONGESTION_PACKETS * u64::from(self.config.packet_bytes)
    }

    /// The greedy minimal path `m` would pin if absorbed — injection
    /// channel, switch hops, ejection channel. Reads only the fabric
    /// and the dyntopo mask (never live channel state), so the parallel
    /// coordinator can run it on the master core and apply the
    /// steadiness gate against shard-owned channel copies. `None` when
    /// the walk exceeds [`MAX_FLOW_HOPS`] or dead-ends under the mask.
    pub(crate) fn flow_path(&mut self, m: &Message) -> Option<([u32; MAX_FLOW_HOPS], u8)> {
        let dst_switch = self.host_switch[m.dst.index()];
        let mut path = [0u32; MAX_FLOW_HOPS];
        path[0] = self.fabric.injection_channel(m.src).raw();
        let mut len = 1usize;
        let mut at = self.host_switch[m.src.index()];
        let mut scratch = std::mem::take(&mut self.flows.path_scratch);
        let mut routable = true;
        while at != dst_switch {
            // The ejection channel still needs a slot after this walk.
            if len + 1 >= MAX_FLOW_HOPS {
                routable = false;
                break;
            }
            self.fabric
                .candidate_ports_masked(at, m.dst, self.mask.as_ref(), &mut scratch);
            let Some(&port) = scratch.first() else {
                routable = false;
                break;
            };
            let ch = self.fabric.output_channel(at, port);
            path[len] = ch.raw();
            len += 1;
            match self.targets[ch.index()] {
                PortTarget::Switch { switch, .. } => at = switch,
                PortTarget::Host(_) => {
                    routable = false;
                    break;
                }
            }
        }
        self.flows.path_scratch = scratch;
        if !routable {
            return None;
        }
        path[len] = self.eject_channel[m.dst.index()].raw();
        Some((path, (len + 1) as u8))
    }

    /// Steadiness gate over this core's channel state: any interesting
    /// dynamics on the path keep the message at packet fidelity.
    pub(crate) fn flow_path_is_steady(&self, path: &[u32]) -> bool {
        let limit = self.flow_congestion_limit();
        path.iter().all(|&c| {
            let i = c as usize;
            self.channels.flags[i] & (F_OFF | F_DRAINING) == 0
                && self.channels.occupancy[i] <= limit
        })
    }

    /// Commits `m` into the flow table on an already-validated path.
    pub(crate) fn absorb_flow(&mut self, m: &Message, path: [u32; MAX_FLOW_HOPS], len: u8) {
        self.flows.alloc(m.bytes, m.at, m.dst.raw(), path, len);
        self.inst.metrics.add(self.inst.ids.flows_absorbed, 1);
    }

    /// Attempts to absorb `m` into the fluid regime. Returns `false` —
    /// send it down the packet path — when the greedy minimal path
    /// exceeds [`MAX_FLOW_HOPS`] or crosses a channel that is powered
    /// off, draining, or congested. Caller has already gated on the
    /// hybrid model and [`FLOW_MIN_BYTES`].
    pub(crate) fn try_absorb_flow(&mut self, m: &Message) -> bool {
        let Some((path, len)) = self.flow_path(m) else {
            return false;
        };
        if !self.flow_path_is_steady(&path[..len as usize]) {
            return false;
        }
        self.absorb_flow(m, path, len);
        true
    }

    /// Advances every live flow to `self.now` — called at the top of
    /// each epoch tick (before the controller reads per-channel
    /// utilization) and once more at finish for the partial window up
    /// to the horizon.
    ///
    /// Each flow moves the max-min fair share of its slowest path
    /// channel: `min_over_path(capacity_window / (ps_per_byte ·
    /// sharers))`, where a channel mid-reactivation contributes only
    /// the window after `available_at`. The implied busy picoseconds
    /// are charged per channel exactly as packet serialization would
    /// be, so `epoch_utilization` is regime-independent.
    pub(crate) fn advance_flows(&mut self) {
        if self.flows.live.is_empty() {
            return;
        }
        let now = self.now;
        let ids = self.inst.ids;
        let limit = self.flow_congestion_limit();
        // Snapshot of fair-share counts at this advancement.
        for &c in &self.flows.touched {
            self.flows.per_channel[c as usize] = 0;
        }
        self.flows.touched.clear();
        for k in 0..self.flows.live.len() {
            let f = self.flows.live[k] as usize;
            let path = self.flows.path[f];
            for &c in &path[..self.flows.path_len[f] as usize] {
                let i = c as usize;
                if self.flows.per_channel[i] == 0 {
                    self.flows.touched.push(c);
                }
                self.flows.per_channel[i] += 1;
            }
        }
        let mut k = 0usize;
        while k < self.flows.live.len() {
            let f = self.flows.live[k] as usize;
            let path = self.flows.path[f];
            let len = self.flows.path_len[f] as usize;
            let mut demote = false;
            for &c in &path[..len] {
                let i = c as usize;
                if self.channels.flags[i] & (F_OFF | F_DRAINING) != 0
                    || self.channels.occupancy[i] > limit
                {
                    demote = true;
                    break;
                }
            }
            if demote {
                let remaining = self.flows.remaining[f];
                let offered_at = self.flows.offered_at[f];
                let dst = HostId::new(self.flows.dst[f]);
                self.flows.release(k);
                // `swap_remove` moved the tail flow into index k; do
                // not advance k.
                self.inject_packets(ChannelId::new(path[0]), dst, remaining, offered_at);
                self.inst.metrics.add(ids.flows_demoted, 1);
                continue;
            }
            let last = self.flows.last_advance[f];
            let mut budget = self.flows.remaining[f];
            for &c in &path[..len] {
                let i = c as usize;
                let from = last.max(self.channels.available_at[i]).min(now);
                let window_ps = (now - from).as_ps();
                let ppb = self.channels.rate[i].serialize_ps(1);
                let share = u64::from(self.flows.per_channel[i]);
                budget = budget.min(window_ps / (ppb * share));
                if budget == 0 {
                    break;
                }
            }
            if budget > 0 {
                for &c in &path[..len] {
                    let i = c as usize;
                    let busy = budget * self.channels.rate[i].serialize_ps(1);
                    self.channels.busy_ps_epoch[i] += busy;
                    self.channels.mark_active(i);
                    self.stats.busy_ps_total += u128::from(busy);
                }
                let offered_at = self.flows.offered_at[f];
                self.flows.remaining[f] -= budget;
                self.stats.record_flow_bytes(offered_at, budget);
                self.inst.metrics.add(ids.flow_fluid_bytes, budget);
                if !self.pod_bytes.is_empty() {
                    let dst = self.flows.dst[f] as usize;
                    self.pod_bytes[self.pod_of_host[dst] as usize] += budget;
                }
            }
            self.flows.last_advance[f] = now;
            if self.flows.remaining[f] == 0 {
                self.stats.record_message(self.flows.offered_at[f], now);
                self.inst.metrics.add(ids.flows_completed, 1);
                self.flows.release(k);
                continue;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::env::SimModel;
    use crate::traffic::ReplaySource;
    use crate::Simulator;
    use epnet_topology::FlattenedButterfly;

    fn hybrid_sim(messages: Vec<Message>) -> Simulator<ReplaySource> {
        let fabric = FlattenedButterfly::new(2, 4, 2).unwrap().build_fabric();
        Simulator::with_model(
            fabric,
            SimConfig::default(),
            ReplaySource::new(messages),
            SimModel::Hybrid,
        )
    }

    #[test]
    fn large_steady_message_is_absorbed_and_delivered_as_fluid() {
        let m = Message {
            at: SimTime::from_us(60),
            src: HostId::new(0),
            dst: HostId::new(7),
            bytes: 512 * 1024,
        };
        let report = hybrid_sim(vec![m]).run_until(SimTime::from_ms(2));
        assert_eq!(report.delivered_bytes, 512 * 1024);
        assert_eq!(report.messages_delivered, 1);
        // Fluid delivery produces no packet-latency samples.
        assert_eq!(report.packets_delivered, 0);
        assert_eq!(report.diagnostics["flows_absorbed"], 1);
        assert_eq!(report.diagnostics["flows_completed"], 1);
        assert_eq!(report.diagnostics["flows_demoted"], 0);
        assert_eq!(report.diagnostics["flow_fluid_bytes"], 512 * 1024);
        // Per-pod rollups account for every delivered byte.
        assert_eq!(
            report.pod_delivered_bytes.iter().sum::<u64>(),
            report.delivered_bytes
        );
    }

    #[test]
    fn pod_rollup_clamps_at_sixty_four_pods_and_covers_them_all() {
        // FBFLY(1, 16, 3) has 256 switches — past the 64-pod clamp —
        // so the hybrid report's per-pod vector must stay exactly 64
        // entries (the bound that keeps reports O(1) at the bench's
        // 2^20-host grouped(32, 32, 4) point, where 32,768 switches
        // fold into the same 64 pods).
        let fabric = FlattenedButterfly::new(1, 16, 3).unwrap().build_fabric();
        let sim = Simulator::with_model(
            fabric,
            SimConfig::default(),
            ReplaySource::new(Vec::new()),
            SimModel::Hybrid,
        );
        let report = sim.run_until(SimTime::from_us(1));
        assert_eq!(report.pod_delivered_bytes.len(), 64);
        // The mapping `switch * pods / num_switches` lands every
        // switch in range and leaves no pod unreachable.
        let (ns, pods) = (256usize, 64usize);
        let mut hit = [false; 64];
        for sw in 0..ns {
            let pod = sw * pods / ns;
            assert!(pod < pods, "switch {sw} maps out of range");
            hit[pod] = true;
        }
        assert!(hit.iter().all(|&h| h), "a pod is unreachable");
    }

    #[test]
    fn small_messages_keep_packet_fidelity() {
        let m = Message {
            at: SimTime::from_us(60),
            src: HostId::new(0),
            dst: HostId::new(7),
            bytes: FLOW_MIN_BYTES - 1,
        };
        let report = hybrid_sim(vec![m]).run_until(SimTime::from_ms(1));
        assert_eq!(report.delivered_bytes, FLOW_MIN_BYTES - 1);
        assert!(
            report.packets_delivered > 0,
            "below-threshold stays packets"
        );
        assert_eq!(report.diagnostics["flows_absorbed"], 0);
    }

    #[test]
    fn fluid_utilization_drives_the_controller_like_packets_would() {
        // A single long-lived flow must keep its path channels busy in
        // the controller's eyes: utilization-driven retuning (and hence
        // residency/power) has to see fluid movement. Saturate one
        // host pair for the whole horizon and check the fabric does not
        // collapse to the floor rate everywhere.
        let m = Message {
            at: SimTime::ZERO,
            src: HostId::new(0),
            dst: HostId::new(7),
            bytes: 100 * 1024 * 1024, // far more than the horizon can move
        };
        let report = hybrid_sim(vec![m]).run_until(SimTime::from_ms(1));
        assert!(report.delivered_bytes > 0);
        assert!(
            report.avg_channel_utilization > 0.0,
            "fluid busy time must reach the utilization rollup"
        );
        // The flow's channels ride above the floor while idle channels
        // still detune — the energy-proportional shape survives.
        assert!(report.reconfigurations > 0);
    }

    #[test]
    fn free_list_recycles_slots_under_absorb_demote_churn() {
        // Two flows live sequentially: the second must reuse the slot
        // the first released (demotion), so the column capacity
        // high-water stays at one while two absorptions happened.
        let mk = |at_us: u64| Message {
            at: SimTime::from_us(at_us),
            src: HostId::new(0),
            dst: HostId::new(7),
            bytes: 256 * 1024,
        };
        // The second offer waits out the first flow's demoted packets
        // (256 KiB serializes in well under 900 µs even at the floor
        // rate), so its path is steady again when it arrives.
        let mut sim = hybrid_sim(vec![mk(60), mk(1000)]);
        sim.prime(SimTime::from_ms(2));
        sim.advance_until(SimTime::from_us(61));
        assert_eq!(sim.core.flows.live_count(), 1);
        let inj = sim.core.fabric.injection_channel(HostId::new(0));
        sim.core.channels.set_flag(inj.index(), F_DRAINING);
        sim.advance_until(SimTime::from_us(75));
        assert_eq!(sim.core.flows.live_count(), 0, "first flow must demote");
        sim.core.channels.clear_flag(inj.index(), F_DRAINING);
        sim.advance_until(SimTime::from_us(1001));
        assert_eq!(sim.core.flows.live_count(), 1, "second flow absorbed");
        assert_eq!(
            sim.core.flows.capacity(),
            1,
            "free list must recycle the released slot, not grow a column"
        );
        assert_eq!(sim.core.flows.peak_live(), 1);
        sim.advance_until(SimTime::from_ms(2));
        let report = sim.finalize();
        assert_eq!(report.diagnostics["flows_absorbed"], 2);
        assert_eq!(report.diagnostics["flow_table_peak"], 1);
        assert_eq!(report.diagnostics["flow_table_capacity"], 1);
        assert!(report.delivered_bytes >= 2 * 256 * 1024);
    }

    #[test]
    fn draining_path_channel_demotes_the_flow_to_packets() {
        // Offered after the 50 µs warmup so the demoted packets land in
        // the measured window.
        let m = Message {
            at: SimTime::from_us(60),
            src: HostId::new(0),
            dst: HostId::new(7),
            bytes: 256 * 1024,
        };
        let mut sim = hybrid_sim(vec![m]);
        sim.prime(SimTime::from_ms(2));
        // Deliver the workload pull, then force the flow's injection
        // channel into a draining state before the next epoch tick.
        sim.advance_until(SimTime::from_us(61));
        assert_eq!(sim.core.flows.live_count(), 1);
        let inj = sim.core.fabric.injection_channel(HostId::new(0));
        sim.core.channels.set_flag(inj.index(), F_DRAINING);
        sim.advance_until(SimTime::from_us(75));
        assert_eq!(sim.core.flows.live_count(), 0, "flow must demote");
        sim.core.channels.clear_flag(inj.index(), F_DRAINING);
        sim.advance_until(SimTime::from_ms(2));
        let report = sim.finalize();
        assert_eq!(report.delivered_bytes, 256 * 1024);
        assert_eq!(report.diagnostics["flows_demoted"], 1);
        assert!(
            report.packets_delivered > 0,
            "demoted bytes travel as packets"
        );
    }
}
