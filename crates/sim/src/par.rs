//! The deterministic sharded parallel engine (`EPNET_PAR`).
//!
//! `EPNET_PAR=N` partitions the fabric across `N` shards — contiguous
//! switch-group ranges, each owning its switches' output channels and
//! the hosts hanging off them (see [`epnet_topology::ShardMap`]) — and
//! executes shard-local events on worker threads. The hard contract:
//! the serialized [`SimReport`] (and, when tracing, the trace stream)
//! is **byte-identical to the serial engine at every width**.
//!
//! # How determinism is kept exact
//!
//! The coordinator owns the global event order. It holds every pending
//! event in two [`KeyedQueue`]s keyed by `(time, seq)` — `qlocal` for
//! shard-dispatchable events (`TxDone`, `Arrive`, `CreditWake`,
//! `Retry`) and `qcoord` for global ones (`Workload`, `EpochTick`) —
//! sharing one monotone `next_seq` counter that replicates the serial
//! event queue's FIFO tie-break exactly.
//!
//! The main loop alternates two steps:
//!
//! * **Coordinator phase** — when the globally-next event is
//!   `Workload` or `EpochTick`, it runs on the coordinator (injection
//!   replays the serial `inject` against a replica arena so global
//!   packet-slot numbers — and with them the routing tie-break keys —
//!   match the serial engine bit for bit; the epoch tick gathers all
//!   channel state onto the master core, runs the serial `on_epoch` in
//!   sweep mode, and scatters the result back to the owning shards).
//! * **Window** — otherwise, a batch of shard events strictly before
//!   `min(first_time + L, next_global_event, horizon)` is popped,
//!   where the lookahead `L` is the minimum propagation delay over all
//!   channels: every `Arrive` a shard can generate lands at least `L`
//!   past its cause, so batch events can only spawn *shard-local*
//!   events inside the window. Shards execute their slices
//!   concurrently; a barrier **replay** then re-runs the window's
//!   event order on the coordinator — without re-executing anything —
//!   to assign exact serial sequence numbers to every generated event,
//!   count popped events, apply packet/message frees to the replica
//!   arena in serial order (reproducing the serial free list, slot
//!   assignment, and `peak_live_packets`), and emit per-event trace
//!   slices in serial order.
//!
//! A cross-shard `Arrive` (the consuming channel is owned by one
//! shard, its target switch by another) is split at batch time: the
//! sender's shard runs the credit half, the receiver's shard runs the
//! route half against a payload mirrored into its arena at the same
//! global slot. The serial handler runs credit-before-route, so the
//! replay advances the sender's execution record first.
//!
//! # Exemptions and fallbacks
//!
//! * Route-table rebuild trace lines (`category: routes`) carry a
//!   wall-clock build time and are nondeterministic even between two
//!   serial runs; under a dynamic link mask each shard also rebuilds
//!   (and traces) its own table. These lines are exempt from the
//!   byte-identical trace contract.
//! * A configuration with a zero minimum propagation delay (no
//!   lookahead) or a zero reactivation latency (the master's
//!   epoch-phase `try_tx` must never reach the serialization path,
//!   which a zero-latency retune would allow) falls back to the serial
//!   pop loop — same report, no parallelism.

use std::sync::mpsc;

use epnet_telemetry::{MemorySink, Tracer};
use epnet_topology::{ChannelId, RoutingTopology, ShardMap};

use crate::config::{EpochMode, ReactivationModel, RoutingPolicy};
use crate::engine::{Core, CoreQueue, MessageRec, Simulator};
use crate::event::Event;
use crate::instrument::Instruments;
use crate::packet::{MessageId, Packet};
use crate::sched::KeyedQueue;
use crate::stats::SimReport;
use crate::time::SimTime;
use crate::traffic::{Message, TrafficSource};

/// Which halves of an `Arrive` a dispatch runs (see
/// [`Core::on_arrive`]): the serial engine always runs both; a
/// cross-shard arrival splits into a credit half on the sender's shard
/// and a route half on the receiver's.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ArriveHalf {
    /// Credit bookkeeping and forwarding/delivery (serial behavior).
    Full,
    /// Credit bookkeeping only (sending side of a cross-shard arrival).
    Credit,
    /// Forwarding/delivery only (receiving side).
    Route,
}

/// One entry of a shard's in-window queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LocalEv {
    pub(crate) ev: Event,
    pub(crate) half: ArriveHalf,
}

/// One generated event, logged in generation order so the barrier
/// replay can assign it the exact serial sequence number.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenRec {
    pub(crate) at: SimTime,
    pub(crate) ev: Event,
}

/// Per-dispatch high-water marks of a shard's side-effect logs,
/// recorded by [`Core::exec_window`]. The barrier replay walks these
/// in replay order, applying each dispatch's slice of generated
/// events, frees, timeline entries, and trace bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecRec {
    /// Simulated time of the dispatch (cross-checked against replay).
    pub(crate) t: SimTime,
    pub(crate) gen_end: u32,
    pub(crate) pkt_free_end: u32,
    pub(crate) msg_free_end: u32,
    pub(crate) timeline_end: u32,
    /// Trace-sink byte length after the dispatch (window-relative).
    pub(crate) trace_end: u32,
}

/// A window-mode core's event-capture state (the `Window` arm of
/// [`CoreQueue`]). During a window, generated events that land before
/// `window_end` join the shard-local ordered queue under pseudo
/// sequence numbers; *every* generated event is also logged for the
/// coordinator. During coordinator phases `window_end` is `ZERO`, so
/// everything is captured and nothing executes locally.
#[derive(Debug)]
pub(crate) struct WindowQueue {
    /// Shard-local `(time, seq)` heap for the current window.
    pub(crate) local: KeyedQueue<LocalEv>,
    /// Next pseudo sequence number. Reset each window to the global
    /// `next_seq` watermark, which exceeds every batch seq — so, like
    /// the serial queue, generated events order after pre-existing
    /// ones at the same time, and among themselves by generation
    /// order. Replay later assigns true seqs in the same relative
    /// order, so the shard's execution order is exactly serial.
    pub(crate) pseudo_seq: u64,
    /// Exclusive upper bound of the current window (`ZERO` outside).
    pub(crate) window_end: SimTime,
    /// Every event generated this window/phase, in generation order.
    pub(crate) gens: Vec<GenRec>,
    /// One record per dispatch, in execution order.
    pub(crate) execs: Vec<ExecRec>,
    /// Global packet slots freed this window, in free order.
    pub(crate) freed_packets: Vec<u32>,
    /// Message slots freed this window, in free order.
    pub(crate) freed_messages: Vec<u32>,
}

impl WindowQueue {
    pub(crate) fn new() -> Self {
        Self {
            local: KeyedQueue::new(),
            pseudo_seq: 0,
            window_end: SimTime::ZERO,
            gens: Vec::new(),
            execs: Vec::new(),
            freed_packets: Vec::new(),
            freed_messages: Vec::new(),
        }
    }

    /// Captures one generated event — the window-mode body of
    /// [`Core::schedule`].
    pub(crate) fn record(&mut self, at: SimTime, ev: Event) {
        if at < self.window_end {
            // Only strictly shard-local kinds can land inside a
            // window: an Arrive is at least one lookahead away, and
            // Workload/EpochTick are never shard-generated.
            debug_assert!(
                matches!(
                    ev,
                    Event::TxDone { .. } | Event::CreditWake { .. } | Event::Retry { .. }
                ),
                "non-local event generated inside a window"
            );
            let seq = self.pseudo_seq;
            self.pseudo_seq += 1;
            self.local.push(
                at,
                seq,
                LocalEv {
                    ev,
                    half: ArriveHalf::Full,
                },
            );
        }
        self.gens.push(GenRec { at, ev });
    }

    /// Opens a window ending (exclusively) at `window_end`, with
    /// pseudo sequence numbers starting at the global watermark.
    fn begin_window(&mut self, window_end: SimTime, seq_watermark: u64) {
        debug_assert!(
            self.local.is_empty()
                && self.gens.is_empty()
                && self.execs.is_empty()
                && self.freed_packets.is_empty()
                && self.freed_messages.is_empty(),
            "window state not drained"
        );
        self.window_end = window_end;
        self.pseudo_seq = seq_watermark;
    }

    /// Clears window state after the barrier replay consumed it.
    fn end_window(&mut self) {
        debug_assert!(self.local.is_empty(), "window left events unexecuted");
        self.window_end = SimTime::ZERO;
        self.gens.clear();
        self.execs.clear();
        self.freed_packets.clear();
        self.freed_messages.clear();
    }
}

/// One worker shard: a full engine core (mirror arena, full-size
/// channel state — only the owned ranges are authoritative) plus its
/// window-local trace sink.
#[derive(Debug)]
struct Shard {
    id: usize,
    core: Core,
    sink: Option<MemorySink>,
}

impl Shard {
    fn exec(&mut self) {
        self.core.exec_window(self.sink.as_ref());
    }

    fn wq(&mut self) -> &mut WindowQueue {
        match &mut self.core.queue {
            CoreQueue::Window(w) => w,
            CoreQueue::Serial(_) => unreachable!("shard core in serial mode"),
        }
    }
}

/// What one batched event touches, for the barrier replay.
#[derive(Debug, Clone, Copy)]
enum Tag {
    /// Executed wholly on one shard.
    Single(usize, Event),
    /// A cross-shard `Arrive`: credit half on `snd`, route half on
    /// `rcv` — replayed in that order, matching the serial handler.
    Cross { snd: usize, rcv: usize, ev: Event },
}

/// Per-shard replay cursors: how far into the shard's window logs the
/// replay has advanced.
#[derive(Debug, Default, Clone, Copy)]
struct ReplayCursor {
    exec: usize,
    gen: u32,
    pkt: u32,
    msg: u32,
    timeline: u32,
    trace: u32,
}

/// Pushes one event into the coordinator's global queues under the
/// next serial sequence number.
fn push_global(
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
    at: SimTime,
    ev: Event,
) {
    let seq = *next_seq;
    *next_seq += 1;
    match ev {
        Event::Workload | Event::EpochTick => qcoord.push(at, seq, ev),
        _ => qlocal.push(at, seq, ev),
    }
}

/// Drains a core's phase capture — events generated while
/// `window_end == ZERO` — into the global queues in generation order
/// (which is the serial scheduling order), and forwards any trace
/// lines to the real tracer.
fn drain_phase_capture(
    core: &mut Core,
    sink: Option<&MemorySink>,
    real_tracer: &mut Option<Tracer>,
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
) {
    let CoreQueue::Window(w) = &mut core.queue else {
        unreachable!("phase capture on a serial core")
    };
    debug_assert!(w.local.is_empty(), "phase generated an in-window event");
    debug_assert!(
        w.execs.is_empty() && w.freed_packets.is_empty() && w.freed_messages.is_empty(),
        "phase produced window-only side effects"
    );
    for g in w.gens.drain(..) {
        push_global(qlocal, qcoord, next_seq, g.at, g.ev);
    }
    if let Some(s) = sink {
        if !s.is_empty() {
            let text = s.take_contents();
            let tr = real_tracer
                .as_mut()
                .expect("memory sinks exist only when a real tracer does");
            for line in text.lines() {
                tr.write_line(line);
            }
        }
    }
}

/// Runs a primed simulation to `end` on `width` shards and reports.
///
/// Called by [`Simulator::run_until`] after [`Simulator::prime`]; the
/// report is byte-identical to the serial engine's.
pub(crate) fn run<S: TrafficSource>(
    mut sim: Simulator<S>,
    end: SimTime,
    width: usize,
) -> SimReport {
    // Conservative lookahead: the minimum propagation delay over all
    // channels. Every Arrive lands at least this far past its cause.
    let lookahead = (0..sim.core.channels.len())
        .map(|i| sim.core.channels.prop[i])
        .min()
        .unwrap_or(SimTime::ZERO);
    let reactivation_floor = match sim.core.config.reactivation {
        ReactivationModel::Uniform(t) => t,
        ReactivationModel::TransitionAware {
            cdr_relock,
            lane_change,
        } => cdr_relock.min(lane_change),
    };
    if lookahead == SimTime::ZERO || reactivation_floor == SimTime::ZERO {
        // No usable lookahead, or the master's epoch-phase try_tx
        // could reach the serialization path (see module docs): run
        // the serial pop loop — the output contract is trivially met.
        sim.advance_until(end);
        return sim.finalize();
    }

    let map = ShardMap::build(&sim.core.fabric, width);
    let nsh = map.num_shards();
    let num_channels = sim.core.channels.len();
    // Events at exactly `end` still execute; the horizon key is the
    // first key strictly past it.
    let horizon_key = (SimTime::from_ps(end.as_ps() + 1), 0u64);

    // Re-number the primed serial queue into the coordinator's global
    // queues. Draining in pop order and re-seeding with seq 0, 1, …
    // preserves all relative orderings: the drain order *is* the
    // serial order among current events, and every later event gets a
    // larger seq under both numbering schemes.
    let mut next_seq: u64 = 0;
    let mut qlocal: KeyedQueue<Event> = KeyedQueue::new();
    let mut qcoord: KeyedQueue<Event> = KeyedQueue::new();
    while let Some((t, ev)) = sim.core.serial_pop() {
        push_global(&mut qlocal, &mut qcoord, &mut next_seq, t, ev);
    }
    sim.core.queue = CoreQueue::Window(WindowQueue::new());
    // The master core runs epoch ticks over gathered (all-active)
    // state; the sweep implementation is the one whose output is
    // independent of active-set bookkeeping, and the determinism suite
    // pins sweep ≡ active-set.
    sim.core.epoch_mode = EpochMode::Sweep;

    // Swap the real tracer out for per-core memory sinks; every line
    // reaches it in exact serial order via phase drains and the
    // barrier replay. (The construction-time route-table line already
    // went to the real tracer, as in the serial engine.)
    let mut real_tracer = sim.core.inst.take_tracer();
    let trace_mask = real_tracer.as_ref().map_or(0, Tracer::mask);
    let master_sink = if trace_mask != 0 {
        let sink = MemorySink::new();
        sim.core
            .inst
            .set_tracer(Tracer::new(sink.clone(), trace_mask));
        Some(sink)
    } else {
        None
    };

    let mut shards: Vec<Option<Box<Shard>>> = (0..nsh)
        .map(|id| {
            // Tracer-less construction suppresses the per-shard
            // route-table build line; the sink is installed after.
            let mut core = Core::build(
                sim.core.fabric.clone(),
                sim.core.config.clone(),
                Instruments::with_tracer(None),
            );
            core.queue = CoreQueue::Window(WindowQueue::new());
            core.end = end;
            core.controller_active = sim.core.controller_active;
            core.epoch_end = sim.core.epoch_end;
            core.stats.timeline_channels = sim.core.stats.timeline_channels;
            // Mirrors see only their owned slice of each link; the
            // incremental asymmetry counter is recomputed on gathered
            // master state at each tick instead.
            core.channels.disable_asym_tracking();
            core.mask = sim.core.mask.clone();
            let sink = if trace_mask != 0 {
                let s = MemorySink::new();
                core.inst.set_tracer(Tracer::new(s.clone(), trace_mask));
                Some(s)
            } else {
                None
            };
            Some(Box::new(Shard { id, core, sink }))
        })
        .collect();

    // Event-kind counters flush into the metrics registry once at the
    // end, exactly like the serial pop loop's register accumulators.
    let mut n_workload = 0u64;
    let mut n_tx_done = 0u64;
    let mut n_arrive = 0u64;
    let mut n_credit_wake = 0u64;
    let mut n_retry = 0u64;
    let mut n_epoch_tick = 0u64;

    let mut batch: Vec<((SimTime, u64), Tag)> = Vec::new();
    let mut replay: KeyedQueue<Tag> = KeyedQueue::new();
    let mut window_trace: Vec<String> = vec![String::new(); nsh];
    let mut cursors: Vec<ReplayCursor> = vec![ReplayCursor::default(); nsh];

    std::thread::scope(|scope| {
        // Persistent per-shard workers; shards ping-pong as boxes so a
        // window's handoff is two pointer sends. Windows with at most
        // one busy shard execute inline instead.
        let (res_tx, res_rx) = mpsc::channel::<Box<Shard>>();
        let mut work_tx: Vec<mpsc::Sender<Box<Shard>>> = Vec::with_capacity(nsh);
        for _ in 0..nsh {
            let (tx, rx) = mpsc::channel::<Box<Shard>>();
            let res = res_tx.clone();
            scope.spawn(move || {
                while let Ok(mut shard) = rx.recv() {
                    shard.exec();
                    if res.send(shard).is_err() {
                        break;
                    }
                }
            });
            work_tx.push(tx);
        }

        loop {
            let kl = qlocal.peek_key();
            let kg = qcoord.peek_key();
            let next = match (kl, kg) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if next.0 > end {
                break;
            }

            if kg == Some(next) {
                // ---- coordinator phase ----
                let ((t, _seq), ev) = qcoord.pop().expect("peeked event vanished");
                sim.core.now = t;
                sim.core.stats.events += 1;
                match ev {
                    Event::Workload => {
                        n_workload += 1;
                        workload_phase(
                            &mut sim,
                            &mut shards,
                            &map,
                            t,
                            end,
                            &mut real_tracer,
                            &mut qlocal,
                            &mut qcoord,
                            &mut next_seq,
                        );
                    }
                    Event::EpochTick => {
                        n_epoch_tick += 1;
                        epoch_phase(
                            &mut sim.core,
                            &mut shards,
                            &map,
                            master_sink.as_ref(),
                            &mut real_tracer,
                            &mut qlocal,
                            &mut qcoord,
                            &mut next_seq,
                        );
                    }
                    _ => unreachable!("only global events live in qcoord"),
                }
                continue;
            }

            // ---- window ----
            let mut wkey = (next.0 + lookahead, 0u64);
            if let Some(g) = kg {
                if g < wkey {
                    wkey = g;
                }
            }
            if horizon_key < wkey {
                wkey = horizon_key;
            }
            let wend = wkey.0;

            for slot in shards.iter_mut() {
                let sh = slot.as_mut().expect("shard checked out past the barrier");
                sh.wq().begin_window(wend, next_seq);
            }
            debug_assert!(batch.is_empty());
            while let Some(k) = qlocal.peek_key() {
                if k >= wkey {
                    break;
                }
                let (k, ev) = qlocal.pop().expect("peeked event vanished");
                match ev {
                    Event::Arrive { channel, packet } => {
                        let snd = map.channel_shard(channel);
                        let rcv = map.target_shard(channel);
                        if snd == rcv {
                            let sh = shards[snd].as_mut().expect("shard at barrier");
                            sh.wq().local.push(
                                k.0,
                                k.1,
                                LocalEv {
                                    ev,
                                    half: ArriveHalf::Full,
                                },
                            );
                            batch.push((k, Tag::Single(snd, ev)));
                        } else {
                            // Mirror the payload into the receiver's
                            // arena at the same global slot. Safe to
                            // read from the sender now: every event
                            // referencing this slot executes at or
                            // before the delivery time, and the slot
                            // cannot be re-injected until a later
                            // Workload phase.
                            let payload = *shards[snd]
                                .as_ref()
                                .expect("shard at barrier")
                                .core
                                .arena
                                .get(packet);
                            let rsh = shards[rcv].as_mut().expect("shard at barrier");
                            let local_id = rsh.core.arena.place(packet.index() as u32, payload);
                            rsh.wq().local.push(
                                k.0,
                                k.1,
                                LocalEv {
                                    ev: Event::Arrive {
                                        channel,
                                        packet: local_id,
                                    },
                                    half: ArriveHalf::Route,
                                },
                            );
                            let ssh = shards[snd].as_mut().expect("shard at barrier");
                            ssh.wq().local.push(
                                k.0,
                                k.1,
                                LocalEv {
                                    ev,
                                    half: ArriveHalf::Credit,
                                },
                            );
                            batch.push((k, Tag::Cross { snd, rcv, ev }));
                        }
                    }
                    Event::TxDone { channel }
                    | Event::CreditWake { channel }
                    | Event::Retry { channel } => {
                        let s = map.channel_shard(channel);
                        let sh = shards[s].as_mut().expect("shard at barrier");
                        sh.wq().local.push(
                            k.0,
                            k.1,
                            LocalEv {
                                ev,
                                half: ArriveHalf::Full,
                            },
                        );
                        batch.push((k, Tag::Single(s, ev)));
                    }
                    Event::Workload | Event::EpochTick => {
                        unreachable!("global events live in qcoord")
                    }
                }
            }

            // Execute busy shards concurrently (inline when at most
            // one has work — no handoff cost at width 1).
            let mut busy = 0usize;
            let mut only = usize::MAX;
            for (s, slot) in shards.iter_mut().enumerate() {
                let sh = slot.as_mut().expect("shard at barrier");
                if !sh.wq().local.is_empty() {
                    busy += 1;
                    only = s;
                }
            }
            if busy == 1 {
                shards[only].as_mut().expect("shard at barrier").exec();
            } else if busy > 1 {
                let mut outstanding = 0usize;
                for s in 0..nsh {
                    let has_work = {
                        let sh = shards[s].as_mut().expect("shard at barrier");
                        !sh.wq().local.is_empty()
                    };
                    if has_work {
                        let sh = shards[s].take().expect("shard at barrier");
                        work_tx[s].send(sh).expect("worker thread died");
                        outstanding += 1;
                    }
                }
                for _ in 0..outstanding {
                    let sh = res_rx.recv().expect("worker thread died");
                    let id = sh.id;
                    shards[id] = Some(sh);
                }
            }

            // ---- barrier replay ----
            for s in 0..nsh {
                let sh = shards[s].as_mut().expect("shard at barrier");
                window_trace[s].clear();
                if let Some(sink) = &sh.sink {
                    if !sink.is_empty() {
                        window_trace[s] = sink.take_contents();
                    }
                }
                cursors[s] = ReplayCursor::default();
            }
            debug_assert!(replay.is_empty());
            for (k, tag) in batch.drain(..) {
                replay.push(k.0, k.1, tag);
            }
            while let Some(((t, _seq), tag)) = replay.pop() {
                sim.core.stats.events += 1;
                let (parts, ev) = match tag {
                    Tag::Single(s, ev) => ([Some(s), None], ev),
                    Tag::Cross { snd, rcv, ev } => ([Some(snd), Some(rcv)], ev),
                };
                match ev {
                    Event::TxDone { .. } => n_tx_done += 1,
                    Event::Arrive { .. } => n_arrive += 1,
                    Event::CreditWake { .. } => n_credit_wake += 1,
                    Event::Retry { .. } => n_retry += 1,
                    Event::Workload | Event::EpochTick => {
                        unreachable!("global events never enter a window")
                    }
                }
                for s in parts.into_iter().flatten() {
                    let cur = &mut cursors[s];
                    let sh = shards[s].as_ref().expect("shard at barrier");
                    let CoreQueue::Window(w) = &sh.core.queue else {
                        unreachable!("shard core in serial mode")
                    };
                    let rec = w.execs[cur.exec];
                    cur.exec += 1;
                    debug_assert_eq!(rec.t, t, "replay diverged from shard execution");
                    if rec.trace_end > cur.trace {
                        let tr = real_tracer
                            .as_mut()
                            .expect("trace bytes exist only when tracing");
                        for line in
                            window_trace[s][cur.trace as usize..rec.trace_end as usize].lines()
                        {
                            tr.write_line(line);
                        }
                        cur.trace = rec.trace_end;
                    }
                    for i in cur.timeline..rec.timeline_end {
                        sim.core
                            .stats
                            .timeline
                            .push(sh.core.stats.timeline[i as usize]);
                    }
                    cur.timeline = rec.timeline_end;
                    for i in cur.pkt..rec.pkt_free_end {
                        sim.core.arena.free_slot(w.freed_packets[i as usize]);
                    }
                    cur.pkt = rec.pkt_free_end;
                    for i in cur.msg..rec.msg_free_end {
                        sim.core.msg_free.push(w.freed_messages[i as usize]);
                    }
                    cur.msg = rec.msg_free_end;
                    for i in cur.gen..rec.gen_end {
                        let g = w.gens[i as usize];
                        let seq = next_seq;
                        next_seq += 1;
                        if g.at < wend {
                            // Generated inside the window: already
                            // executed locally; replay it here so its
                            // own side effects land in serial order.
                            replay.push(g.at, seq, Tag::Single(s, g.ev));
                        } else {
                            match g.ev {
                                Event::Workload | Event::EpochTick => qcoord.push(g.at, seq, g.ev),
                                _ => qlocal.push(g.at, seq, g.ev),
                            }
                        }
                    }
                    cur.gen = rec.gen_end;
                }
            }
            for s in 0..nsh {
                let sh = shards[s].as_mut().expect("shard at barrier");
                let cur = cursors[s];
                {
                    let CoreQueue::Window(w) = &sh.core.queue else {
                        unreachable!("shard core in serial mode")
                    };
                    debug_assert_eq!(cur.exec, w.execs.len(), "unreplayed dispatches");
                    debug_assert_eq!(cur.gen as usize, w.gens.len(), "undelivered generations");
                    debug_assert_eq!(cur.pkt as usize, w.freed_packets.len(), "unapplied frees");
                    debug_assert_eq!(cur.msg as usize, w.freed_messages.len(), "unapplied frees");
                }
                debug_assert_eq!(
                    cur.trace as usize,
                    window_trace[s].len(),
                    "undelivered trace bytes"
                );
                debug_assert_eq!(cur.timeline as usize, sh.core.stats.timeline.len());
                sh.core.stats.timeline.clear();
                sh.wq().end_window();
            }
        }

        drop(work_tx);
    });

    // ---- finalize ----
    // Gather final channel state so `finish` computes cold residency
    // (its own `note_interval(i, end)`) over the authoritative copies.
    for ch in 0..num_channels {
        let owner = map.channel_shard(ChannelId::new(ch as u32));
        let sh = shards[owner].as_ref().expect("shard at barrier");
        sim.core
            .channels
            .copy_channel_from(&sh.core.channels, ch, false);
    }
    let ids = sim.core.inst.ids;
    for slot in &mut shards {
        let sh = slot.take().expect("shard at barrier");
        sim.core.stats.merge_worker(&sh.core.stats);
        // Shard registries share the master's registration order;
        // counters sum, watermarks take the max. (Shard event-kind
        // counters are zero — pops are counted once, at replay.)
        sim.core.inst.metrics.merge_from(
            &sh.core.inst.metrics,
            &[ids.tx_train_max_packets, ids.epoch_queue_bytes_peak],
        );
    }
    sim.core.inst.metrics.add(ids.ev_workload, n_workload);
    sim.core.inst.metrics.add(ids.ev_tx_done, n_tx_done);
    sim.core.inst.metrics.add(ids.ev_arrive, n_arrive);
    sim.core.inst.metrics.add(ids.ev_credit_wake, n_credit_wake);
    sim.core.inst.metrics.add(ids.ev_retry, n_retry);
    sim.core.inst.metrics.add(ids.ev_epoch_tick, n_epoch_tick);
    if let Some(tr) = real_tracer {
        if let Some(sink) = &master_sink {
            debug_assert!(sink.is_empty(), "undrained master trace lines");
        }
        // Restore the real tracer so finish() flushes it.
        sim.core.inst.set_tracer(tr);
    }
    sim.finalize()
}

/// The coordinator's `Workload` phase: the serial `on_workload` with
/// injection replayed against the master's replica arena (so global
/// slot numbers match the serial engine) and the enqueue/try_tx side
/// running on the source host's shard.
#[allow(clippy::too_many_arguments)]
fn workload_phase<S: TrafficSource>(
    sim: &mut Simulator<S>,
    shards: &mut [Option<Box<Shard>>],
    map: &ShardMap,
    t: SimTime,
    end: SimTime,
    real_tracer: &mut Option<Tracer>,
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
) {
    while let Some(m) = sim.pending {
        if m.at > t {
            break;
        }
        inject_one(
            &mut sim.core,
            shards,
            map,
            m,
            t,
            real_tracer,
            qlocal,
            qcoord,
            next_seq,
        );
        sim.pending = sim.source.next_message();
        if let Some(next) = sim.pending {
            debug_assert!(next.at >= m.at, "traffic source went backwards in time");
        }
    }
    if let Some(m) = sim.pending {
        if m.at <= end {
            push_global(qlocal, qcoord, next_seq, m.at, Event::Workload);
        }
    }
}

/// Offers one message — the parallel twin of the serial `inject`. The
/// master's arena and message table do the authoritative allocation
/// (reproducing serial slot assignment and `peak_live_packets`); the
/// source shard mirrors the payloads and runs enqueue + try_tx, whose
/// generated events and trace lines drain immediately so sequence
/// numbers interleave exactly as the serial engine's.
#[allow(clippy::too_many_arguments)]
fn inject_one(
    master: &mut Core,
    shards: &mut [Option<Box<Shard>>],
    map: &ShardMap,
    m: Message,
    t: SimTime,
    real_tracer: &mut Option<Tracer>,
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
) {
    assert!(
        m.src.index() < master.fabric.num_hosts() && m.dst.index() < master.fabric.num_hosts(),
        "message endpoints outside the fabric"
    );
    debug_assert_ne!(m.src, m.dst, "self-sends are not meaningful");
    master.stats.offered_bytes += m.bytes;
    master.last_offered_at = m.at;
    let pkt_size = u64::from(master.config.packet_bytes);
    let full = (m.bytes / pkt_size) as u32;
    let tail = (m.bytes % pkt_size) as u32;
    let count = (full + u32::from(tail > 0)).max(1);
    let rec = MessageRec {
        remaining: count,
        offered_at: m.at,
    };
    let message = match master.msg_free.pop() {
        Some(slot) => {
            master.messages[slot as usize] = rec;
            MessageId(slot)
        }
        None => {
            let slot = u32::try_from(master.messages.len()).expect("message table overflow");
            master.messages.push(rec);
            MessageId(slot)
        }
    };
    // The delivering shard decrements the live record; mirror it there.
    let dst_shard = map.host_shard(m.dst);
    {
        let msgs = &mut shards[dst_shard]
            .as_mut()
            .expect("shard at barrier")
            .core
            .messages;
        let idx = message.index();
        if idx >= msgs.len() {
            msgs.resize(idx + 1, rec);
        }
        msgs[idx] = rec;
    }
    let inj = master.fabric.injection_channel(m.src);
    let budget = match master.config.routing {
        RoutingPolicy::MinimalAdaptive => 0,
        RoutingPolicy::Ugal { misroute_budget, .. } => misroute_budget,
    };
    let src_shard = map.host_shard(m.src);
    debug_assert_eq!(src_shard, map.channel_shard(inj));
    let sh = shards[src_shard].as_mut().expect("shard at barrier");
    sh.core.now = t;
    for i in 0..count {
        let bytes = if i < full { pkt_size as u32 } else { tail.max(1) };
        let packet = Packet {
            dst: m.dst,
            bytes,
            created: m.at,
            message,
            hops: 0,
            misroutes_left: budget,
        };
        let gid = master.arena.alloc(packet);
        let pid = sh.core.arena.place(gid.index() as u32, packet);
        sh.core.enqueue(inj, pid, bytes);
    }
    sh.core.try_tx(inj);
    drain_phase_capture(
        &mut sh.core,
        sh.sink.as_ref(),
        real_tracer,
        qlocal,
        qcoord,
        next_seq,
    );
}

/// The coordinator's `EpochTick` phase: gather every channel from its
/// owning shard onto the master core, run the serial epoch handler
/// there (sweep mode over all-active gathered state, with the
/// asymmetry counter recounted from scratch), then scatter the mutated
/// channel state, epoch bound, and link mask back to every shard.
#[allow(clippy::too_many_arguments)]
fn epoch_phase(
    master: &mut Core,
    shards: &mut [Option<Box<Shard>>],
    map: &ShardMap,
    master_sink: Option<&MemorySink>,
    real_tracer: &mut Option<Tracer>,
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
) {
    let n = master.channels.len();
    for ch in 0..n {
        let owner = map.channel_shard(ChannelId::new(ch as u32));
        let sh = shards[owner].as_ref().expect("shard at barrier");
        master.channels.copy_channel_from(&sh.core.channels, ch, true);
    }
    master.channels.mark_all_active();
    master.channels.recount_asymmetry();
    master.on_epoch();
    drain_phase_capture(master, master_sink, real_tracer, qlocal, qcoord, next_seq);
    for ch in 0..n {
        let owner = map.channel_shard(ChannelId::new(ch as u32));
        let sh = shards[owner].as_mut().expect("shard at barrier");
        sh.core.channels.copy_channel_from(&master.channels, ch, false);
    }
    for slot in shards.iter_mut() {
        let sh = slot.as_mut().expect("shard at barrier");
        sh.core.epoch_end = master.epoch_end;
        sh.core.mask = master.mask.clone();
    }
}
