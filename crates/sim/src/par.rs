//! The deterministic sharded parallel engine (`EPNET_PAR`).
//!
//! `EPNET_PAR=N` partitions the fabric across `N` shards — contiguous
//! switch-group ranges, each owning its switches' output channels and
//! the hosts hanging off them (see [`epnet_topology::ShardMap`]) — and
//! executes shard-local events on worker threads. The hard contract:
//! the serialized [`SimReport`] (and, when tracing, the trace stream)
//! is **byte-identical to the serial engine at every width**.
//!
//! # How determinism is kept exact
//!
//! The coordinator owns the global event order. It holds every pending
//! event in two [`KeyedQueue`]s keyed by `(time, seq)` — `qlocal` for
//! shard-dispatchable events (`TxDone`, `Arrive`, `CreditWake`,
//! `Retry`) and `qcoord` for global ones (`Workload`, `EpochTick`) —
//! sharing one monotone `next_seq` counter that replicates the serial
//! event queue's FIFO tie-break exactly.
//!
//! The main loop alternates two steps:
//!
//! * **Coordinator phase** — when the globally-next event is
//!   `Workload` or `EpochTick`, it runs on the coordinator (injection
//!   replays the serial `inject` against a replica arena so global
//!   packet-slot numbers — and with them the routing tie-break keys —
//!   match the serial engine bit for bit; the epoch tick gathers all
//!   channel state onto the master core, runs the serial `on_epoch` in
//!   sweep mode, and scatters the result back to the owning shards).
//! * **Window** — otherwise, a batch of shard events is popped under a
//!   *pairwise lookahead* bound: the pop loop greedily tightens the
//!   window end to `min(t_s + B[s])` over every shard `s` it touches,
//!   where `t_s` is the first popped time touching `s` and `B[s]` is
//!   the smallest cross-shard *arrival bound* (propagation delay plus
//!   the router pipeline) over the cross channels `s` owns — computed
//!   once from [`ShardMap::for_each_cross_channel`]'s census as an
//!   `nsh × nsh` matrix reduced per sending shard. Tightening during
//!   the pop loop is sound because pops ascend: a new constraint
//!   `t + B[s]` always exceeds every already-popped time. A shard with
//!   no cross channels contributes no bound at all, so a single-shard
//!   run executes each coordinator-to-coordinator stretch as **one
//!   unbounded window** — the width-1 overhead win. Intra-shard events
//!   generated inside the window (including `Arrive`s on intra-shard
//!   channels, which the longer pairwise bound now allows) execute
//!   locally in the same window; cross-shard `Arrive`s provably land
//!   at or past the window end. `EPNET_PAR_LOOKAHEAD=global` restores
//!   the legacy bound — the fabric-wide minimum propagation delay,
//!   applied identically to every shard — as a benchmark baseline.
//!
//! Shards execute their slices concurrently; a barrier **merge** then
//! reproduces the window's serial order on the coordinator — without
//! re-executing anything — in a single k-way pass over the shards'
//! execution logs, each pre-sorted by construction. The merge key is
//! `(time, true_seq, half)`: batch events carry their global sequence
//! number, events generated in-window carry per-shard pseudo numbers
//! that the merge resolves to true serial numbers at the moment their
//! *parent* dispatch merges (the parent always merges first — it
//! precedes its generations in the same shard's log). One pass assigns
//! sequence numbers to every generated event, counts popped events,
//! applies packet/message frees to the replica arena in serial order
//! (reproducing the serial free list, slot assignment, and
//! `peak_live_packets`), and emits per-event trace and timeline slices
//! in serial order.
//!
//! A cross-shard `Arrive` (the consuming channel is owned by one
//! shard, its target switch by another) is split at window-build time:
//! the sender's shard runs the credit half, the receiver's shard runs
//! the route half against a payload mirrored into its arena at the
//! same global slot. Splits are buffered during the pop loop and
//! applied **batched per (sender, receiver) shard pair**, so a
//! window's mirror copies for a pair land as one grouped pass instead
//! of interleaved single-packet pokes. The serial handler runs
//! credit-before-route, so the merge ranks the credit half first.
//!
//! # Exemptions and fallbacks
//!
//! * Route-table rebuild trace lines (`category: routes`) carry a
//!   wall-clock build time and are nondeterministic even between two
//!   serial runs; under a dynamic link mask each shard also rebuilds
//!   (and traces) its own table. These lines are exempt from the
//!   byte-identical trace contract.
//! * Window-shape trace lines (`category: parallel`) — one per
//!   coordinator window, emitted at the barrier with the window's span
//!   and event/replay/cross-batch counts — describe *how* the run
//!   executed, not what the network did: serial runs emit none and the
//!   records vary with width and lookahead mode, so the category
//!   shares the `routes` exemption.
//! * A configuration with a zero minimum propagation delay (no
//!   lookahead) or a zero reactivation latency (a zero-latency retune
//!   would let the epoch phase's `try_tx` reach the serialization path
//!   on master state whose credit-return rings are only gathered for
//!   the hybrid demotion path) falls back to the serial pop loop —
//!   same report, no parallelism. The fallback is visible as
//!   `par_fallback_serial = 1` in [`SimReport::diagnostics`].
//!
//! # Hybrid model composition
//!
//! `EPNET_MODEL=hybrid` composes with `EPNET_PAR`: the flow table
//! lives on the coordinator's master core, and every regime decision
//! happens at a coordinator phase — where, all prior events having
//! merged, shard channel state *is* the serial state. Absorption runs
//! in the Workload phase: the greedy path walk on the master (it reads
//! only the fabric and the dyntopo mask), the steadiness gate against
//! the owning shards' channel copies, and the allocation on the
//! master-resident table — so the flow free list, flow ids, and the
//! high-water diagnostics reproduce the serial engine bit for bit.
//! Flows advance inside the epoch phase's `on_epoch` over the gathered
//! all-channel state, so per-channel fluid busy picoseconds land in
//! the same gathered accumulators the controller reads and scatter
//! back with the rest of the channel state. A demotion re-enters the
//! packet path *on the master*: its `inject_packets` → `try_tx` runs
//! against the gathered queues plus (hybrid-only) the gathered pending
//! credit-return rings, making the serialization decision exact; the
//! created message record, packet payloads, and mutated queue then
//! mirror out to the owning shards (the injection channel of a flow's
//! source host is always shard-local), and the demotion's generated
//! events drain through the ordinary phase capture under exact serial
//! sequence numbers.
//!
//! # Diagnostics
//!
//! Window-shape counters — windows executed, events executed inside
//! windows, merge records walked, cross-shard batches and the arrivals
//! they carried, the effective lookahead floor — are registered as
//! *diagnostic* metrics: they land in [`SimReport::diagnostics`] (and
//! vary with width and lookahead mode) but never in the serialized,
//! byte-identical report.

use std::sync::{mpsc, Arc};

use epnet_telemetry::{MemorySink, Tracer};
use epnet_topology::{ChannelId, HostId, RoutingTopology, ShardMap};

use crate::config::{EpochMode, ReactivationModel, RoutingPolicy};
use crate::engine::{Core, CoreQueue, MessageRec, Simulator};
use crate::event::Event;
use crate::instrument::Instruments;
use crate::packet::{MessageId, Packet, PacketId};
use crate::sched::KeyedQueue;
use crate::stats::SimReport;
use crate::time::SimTime;
use crate::traffic::{Message, TrafficSource};

/// Which halves of an `Arrive` a dispatch runs (see
/// [`Core::on_arrive`]): the serial engine always runs both; a
/// cross-shard arrival splits into a credit half on the sender's shard
/// and a route half on the receiver's.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ArriveHalf {
    /// Credit bookkeeping and forwarding/delivery (serial behavior).
    Full,
    /// Credit bookkeeping only (sending side of a cross-shard arrival).
    Credit,
    /// Forwarding/delivery only (receiving side).
    Route,
}

impl ArriveHalf {
    /// Merge rank among the two halves of one cross-shard arrival —
    /// they share `(time, seq)`, and the serial handler runs credit
    /// bookkeeping before routing.
    #[inline]
    fn rank(self) -> u8 {
        match self {
            ArriveHalf::Full | ArriveHalf::Credit => 0,
            ArriveHalf::Route => 1,
        }
    }

    /// Whether this half counts the event (each event is counted once;
    /// a cross-shard arrival's route half is its second record).
    #[inline]
    fn counts(self) -> bool {
        !matches!(self, ArriveHalf::Route)
    }
}

/// Event-kind tags recorded per dispatch so the barrier merge can
/// maintain the per-kind counters without decoding the event again.
pub(crate) const KIND_TX_DONE: u8 = 0;
pub(crate) const KIND_ARRIVE: u8 = 1;
pub(crate) const KIND_CREDIT_WAKE: u8 = 2;
pub(crate) const KIND_RETRY: u8 = 3;

/// One entry of a shard's in-window queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LocalEv {
    pub(crate) ev: Event,
    pub(crate) half: ArriveHalf,
}

/// One generated event, logged in generation order so the barrier
/// replay can assign it the exact serial sequence number.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenRec {
    pub(crate) at: SimTime,
    pub(crate) ev: Event,
}

/// Per-dispatch high-water marks of a shard's side-effect logs,
/// recorded by [`Core::exec_window`]. The barrier replay walks these
/// in replay order, applying each dispatch's slice of generated
/// events, frees, timeline entries, and trace bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecRec {
    /// Simulated time of the dispatch.
    pub(crate) t: SimTime,
    /// The popped key's sequence number: the *global* serial number
    /// for batch events (always below the window's sequence
    /// watermark), the shard's *pseudo* number for events generated
    /// and executed inside the window (at or above it). The merge
    /// resolves pseudo numbers through the per-shard assignment log.
    pub(crate) seq: u64,
    /// Event kind (`KIND_*`) for the merge's per-kind counters.
    pub(crate) kind: u8,
    /// Which halves this dispatch ran — the merge's tie-break rank
    /// between the two records of a cross-shard arrival.
    pub(crate) half: ArriveHalf,
    pub(crate) gen_end: u32,
    pub(crate) pkt_free_end: u32,
    pub(crate) msg_free_end: u32,
    pub(crate) timeline_end: u32,
    /// Trace-sink byte length after the dispatch (window-relative).
    pub(crate) trace_end: u32,
}

/// A window-mode core's event-capture state (the `Window` arm of
/// [`CoreQueue`]). During a window, generated events that land before
/// `window_end` join the shard-local ordered queue under pseudo
/// sequence numbers; *every* generated event is also logged for the
/// coordinator. During coordinator phases `window_end` is `ZERO`, so
/// everything is captured and nothing executes locally.
#[derive(Debug)]
pub(crate) struct WindowQueue {
    /// Shard-local `(time, seq)` heap for the current window.
    pub(crate) local: KeyedQueue<LocalEv>,
    /// Next pseudo sequence number. Reset each window to the global
    /// `next_seq` watermark, which exceeds every batch seq — so, like
    /// the serial queue, generated events order after pre-existing
    /// ones at the same time, and among themselves by generation
    /// order. The merge later assigns true seqs in the same relative
    /// order, so the shard's execution order is exactly serial.
    pub(crate) pseudo_seq: u64,
    /// Exclusive upper bound of the current window (`ZERO` outside).
    pub(crate) window_end: SimTime,
    /// Which channels cross a shard boundary (shared, read-only):
    /// [`WindowQueue::record`]'s in-window legality check — an
    /// `Arrive` may land inside a window only on an intra-shard
    /// channel. Empty on the master core, whose `window_end` never
    /// opens.
    cross: Arc<[bool]>,
    /// Every event generated this window/phase, in generation order.
    pub(crate) gens: Vec<GenRec>,
    /// One record per dispatch, in execution order.
    pub(crate) execs: Vec<ExecRec>,
    /// Global packet slots freed this window, in free order.
    pub(crate) freed_packets: Vec<u32>,
    /// Message slots freed this window, in free order.
    pub(crate) freed_messages: Vec<u32>,
    /// Packets created by a hybrid flow demotion during a coordinator
    /// epoch phase, as `(channel, id)` — logged by the master's
    /// `inject_packets` so the phase can place the payloads into the
    /// owning shard's arena and scatter the mutated queue back. Always
    /// empty on worker shards (they never inject).
    pub(crate) demoted_packets: Vec<(u32, PacketId)>,
    /// Message records created by those demotions, as
    /// `(message slot, destination host)` — mirrored to the delivering
    /// shard like a Workload-phase injection.
    pub(crate) demoted_msgs: Vec<(u32, u32)>,
}

impl WindowQueue {
    /// A capture queue with no cross-channel table — the master core's
    /// form, which only ever captures (its `window_end` never opens).
    pub(crate) fn new() -> Self {
        Self::with_cross(Vec::new().into())
    }

    /// A capture queue for a worker shard, sharing the partition's
    /// cross-channel bitmap.
    fn with_cross(cross: Arc<[bool]>) -> Self {
        Self {
            local: KeyedQueue::new(),
            pseudo_seq: 0,
            window_end: SimTime::ZERO,
            cross,
            gens: Vec::new(),
            execs: Vec::new(),
            freed_packets: Vec::new(),
            freed_messages: Vec::new(),
            demoted_packets: Vec::new(),
            demoted_msgs: Vec::new(),
        }
    }

    /// Captures one generated event — the window-mode body of
    /// [`Core::schedule`].
    pub(crate) fn record(&mut self, at: SimTime, ev: Event) {
        if at < self.window_end {
            // Only events that execute on this same shard can land
            // inside a window: TxDone/CreditWake/Retry are always
            // owner-local, and an Arrive only on an intra-shard
            // channel — a cross-shard arrival bound is part of the
            // window bound, so one landing inside would mean the
            // pairwise lookahead was violated.
            debug_assert!(
                match ev {
                    Event::TxDone { .. } | Event::CreditWake { .. } | Event::Retry { .. } => true,
                    Event::Arrive { channel, .. } => !self.cross[channel.index()],
                    Event::Workload | Event::EpochTick => false,
                },
                "non-local event generated inside a window"
            );
            let seq = self.pseudo_seq;
            self.pseudo_seq += 1;
            self.local.push(
                at,
                seq,
                LocalEv {
                    ev,
                    half: ArriveHalf::Full,
                },
            );
        }
        self.gens.push(GenRec { at, ev });
    }

    /// Marks this shard touched by the current window: pseudo sequence
    /// numbers start at the global watermark. The window's end is not
    /// known yet — the coordinator's pop loop is still tightening it —
    /// so `window_end` stays closed until [`Shard::open`] sets it just
    /// before execution.
    fn begin_window(&mut self, seq_watermark: u64) {
        debug_assert!(
            self.local.is_empty()
                && self.gens.is_empty()
                && self.execs.is_empty()
                && self.freed_packets.is_empty()
                && self.freed_messages.is_empty()
                && self.demoted_packets.is_empty()
                && self.demoted_msgs.is_empty(),
            "window state not drained"
        );
        self.pseudo_seq = seq_watermark;
    }

    /// Clears window state after the barrier merge consumed it.
    fn end_window(&mut self) {
        debug_assert!(self.local.is_empty(), "window left events unexecuted");
        self.window_end = SimTime::ZERO;
        self.gens.clear();
        self.execs.clear();
        self.freed_packets.clear();
        self.freed_messages.clear();
    }
}

/// One worker shard: a full engine core (mirror arena, full-size
/// channel state — only the owned ranges are authoritative) plus its
/// window-local trace sink.
#[derive(Debug)]
struct Shard {
    id: usize,
    core: Core,
    sink: Option<MemorySink>,
}

impl Shard {
    fn exec(&mut self) {
        self.core.exec_window(self.sink.as_ref());
    }

    fn wq(&mut self) -> &mut WindowQueue {
        match &mut self.core.queue {
            CoreQueue::Window(w) => w,
            CoreQueue::Serial(_) => unreachable!("shard core in serial mode"),
        }
    }

    /// Shared view of the window logs (the merge's read side).
    fn wq_ref(&self) -> &WindowQueue {
        match &self.core.queue {
            CoreQueue::Window(w) => w,
            CoreQueue::Serial(_) => unreachable!("shard core in serial mode"),
        }
    }

    /// Opens the (now finally bounded) window for execution.
    fn open(&mut self, window_end: SimTime) {
        self.wq().window_end = window_end;
    }
}

/// One cross-shard arrival, buffered during the window's pop loop and
/// applied per (sender, receiver) shard pair: a pair's payload mirrors
/// and half pushes land as one grouped batch instead of interleaved
/// single-packet copies.
#[derive(Debug, Clone, Copy)]
struct CrossRec {
    t: SimTime,
    seq: u64,
    channel: ChannelId,
    packet: PacketId,
    snd: usize,
    rcv: usize,
}

/// Which per-window lookahead bound the engine uses
/// (`EPNET_PAR_LOOKAHEAD`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LookaheadMode {
    /// Per-shard-pair arrival bounds from the cross-channel census
    /// (the default).
    Pairwise,
    /// The fabric-wide minimum propagation delay applied to every
    /// shard — the legacy bound, kept as a benchmark baseline.
    Global,
}

impl LookaheadMode {
    /// `EPNET_PAR_LOOKAHEAD=global` selects the legacy bound; anything
    /// else (including unset) selects pairwise — mirroring
    /// `EPNET_ROUTES`' lenient parse.
    fn from_env() -> Self {
        match std::env::var("EPNET_PAR_LOOKAHEAD") {
            Ok(v) if v.eq_ignore_ascii_case("global") => Self::Global,
            _ => Self::Pairwise,
        }
    }
}

/// Per-shard merge cursors: how far into the shard's window logs the
/// barrier merge has advanced.
#[derive(Debug, Default, Clone, Copy)]
struct ReplayCursor {
    exec: usize,
    gen: u32,
    pkt: u32,
    msg: u32,
    timeline: u32,
    trace: u32,
}

/// Pushes one event into the coordinator's global queues under the
/// next serial sequence number.
fn push_global(
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
    at: SimTime,
    ev: Event,
) {
    let seq = *next_seq;
    *next_seq += 1;
    match ev {
        Event::Workload | Event::EpochTick => qcoord.push(at, seq, ev),
        _ => qlocal.push(at, seq, ev),
    }
}

/// Drains a core's phase capture — events generated while
/// `window_end == ZERO` — into the global queues in generation order
/// (which is the serial scheduling order), and forwards any trace
/// lines to the real tracer.
fn drain_phase_capture(
    core: &mut Core,
    sink: Option<&MemorySink>,
    real_tracer: &mut Option<Tracer>,
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
) {
    let CoreQueue::Window(w) = &mut core.queue else {
        unreachable!("phase capture on a serial core")
    };
    debug_assert!(w.local.is_empty(), "phase generated an in-window event");
    debug_assert!(
        w.execs.is_empty() && w.freed_packets.is_empty() && w.freed_messages.is_empty(),
        "phase produced window-only side effects"
    );
    debug_assert!(
        w.demoted_packets.is_empty() && w.demoted_msgs.is_empty(),
        "demotion log must be reconciled before the phase drain"
    );
    for g in w.gens.drain(..) {
        push_global(qlocal, qcoord, next_seq, g.at, g.ev);
    }
    if let Some(s) = sink {
        if !s.is_empty() {
            let text = s.take_contents();
            let tr = real_tracer
                .as_mut()
                .expect("memory sinks exist only when a real tracer does");
            for line in text.lines() {
                tr.write_line(line);
            }
        }
    }
}

/// Runs a primed simulation to `end` on `width` shards and reports.
///
/// Called by [`Simulator::run_until`] after [`Simulator::prime`]; the
/// report is byte-identical to the serial engine's.
pub(crate) fn run<S: TrafficSource>(
    mut sim: Simulator<S>,
    end: SimTime,
    width: usize,
) -> SimReport {
    let min_prop = sim.core.channels.min_propagation().unwrap_or(SimTime::ZERO);
    let reactivation_floor = match sim.core.config.reactivation {
        ReactivationModel::Uniform(t) => t,
        ReactivationModel::TransitionAware {
            cdr_relock,
            lane_change,
        } => cdr_relock.min(lane_change),
    };
    if min_prop == SimTime::ZERO || reactivation_floor == SimTime::ZERO {
        // No usable lookahead, or the master's epoch-phase try_tx
        // could reach the serialization path (see module docs): run
        // the serial pop loop — the output contract is trivially met.
        let ids = sim.core.inst.ids;
        sim.core.inst.metrics.set(ids.par_fallback_serial, 1);
        sim.advance_until(end);
        return sim.finalize();
    }

    let map = ShardMap::build(&sim.core.fabric, width);
    let nsh = map.num_shards();
    let num_channels = sim.core.channels.len();

    // Per-shard window bounds. Pairwise (default): reduce the census's
    // nsh × nsh matrix of minimum cross-shard *arrival* bounds
    // (propagation plus the router pipeline — every cross channel
    // targets a switch, so its Arrives land at least `arrive_extra`
    // past their cause) to a per-sending-shard row minimum; a shard
    // with no cross channels (always at width 1) bounds nothing.
    // Global mode: the fabric-wide minimum propagation delay for every
    // shard, reproducing the legacy window shape exactly.
    let row_bound: Vec<Option<SimTime>> = match LookaheadMode::from_env() {
        LookaheadMode::Global => vec![Some(min_prop); nsh],
        LookaheadMode::Pairwise => {
            let mut matrix = vec![None::<SimTime>; nsh * nsh];
            map.for_each_cross_channel(|ch, snd, rcv| {
                let bound = sim.core.arrive_extra[ch.index()];
                let cell = &mut matrix[snd * nsh + rcv];
                *cell = Some(cell.map_or(bound, |b| b.min(bound)));
            });
            (0..nsh)
                .map(|s| {
                    matrix[s * nsh..(s + 1) * nsh]
                        .iter()
                        .flatten()
                        .copied()
                        .min()
                })
                .collect()
        }
    };
    // Effective lookahead floor across shards (0 = unbounded windows).
    let floor_ps = row_bound
        .iter()
        .flatten()
        .copied()
        .min()
        .map_or(0, SimTime::as_ps);
    let cross_bitmap: Arc<[bool]> = (0..num_channels)
        .map(|ch| map.is_cross_shard(ChannelId::new(ch as u32)))
        .collect();
    // Events at exactly `end` still execute; the horizon key is the
    // first key strictly past it.
    let horizon_key = (SimTime::from_ps(end.as_ps() + 1), 0u64);

    // Re-number the primed serial queue into the coordinator's global
    // queues. Draining in pop order and re-seeding with seq 0, 1, …
    // preserves all relative orderings: the drain order *is* the
    // serial order among current events, and every later event gets a
    // larger seq under both numbering schemes.
    let mut next_seq: u64 = 0;
    let mut qlocal: KeyedQueue<Event> = KeyedQueue::new();
    let mut qcoord: KeyedQueue<Event> = KeyedQueue::new();
    while let Some((t, ev)) = sim.core.serial_pop() {
        push_global(&mut qlocal, &mut qcoord, &mut next_seq, t, ev);
    }
    sim.core.queue = CoreQueue::Window(WindowQueue::new());
    // The master core runs epoch ticks over gathered (all-active)
    // state; the sweep implementation is the one whose output is
    // independent of active-set bookkeeping, and the determinism suite
    // pins sweep ≡ active-set.
    sim.core.epoch_mode = EpochMode::Sweep;

    // Swap the real tracer out for per-core memory sinks; every line
    // reaches it in exact serial order via phase drains and the
    // barrier replay. (The construction-time route-table line already
    // went to the real tracer, as in the serial engine.)
    let mut real_tracer = sim.core.inst.take_tracer();
    let trace_mask = real_tracer.as_ref().map_or(0, Tracer::mask);
    let master_sink = if trace_mask != 0 {
        let sink = MemorySink::new();
        sim.core
            .inst
            .set_tracer(Tracer::new(sink.clone(), trace_mask));
        Some(sink)
    } else {
        None
    };

    let mut shards: Vec<Option<Box<Shard>>> = (0..nsh)
        .map(|id| {
            // Tracer-less construction suppresses the per-shard
            // route-table build line; the sink is installed after.
            let mut core = Core::build(
                sim.core.fabric.clone(),
                sim.core.config.clone(),
                Instruments::with_tracer(None),
                // Shards inherit the model: hybrid shards route
                // dynamically and keep the pod rollup (demoted packets
                // deliver on shards), exactly like the serial core.
                sim.core.model,
            );
            // The flow table itself lives only on the master — flows
            // absorb and advance at coordinator phases — so drop the
            // per-channel fair-share scratch a hybrid build sizes.
            core.flows = crate::flows::FlowTable::new(0);
            core.queue = CoreQueue::Window(WindowQueue::with_cross(cross_bitmap.clone()));
            core.end = end;
            core.controller_active = sim.core.controller_active;
            core.epoch_end = sim.core.epoch_end;
            core.stats.timeline_channels = sim.core.stats.timeline_channels;
            // Mirrors see only their owned slice of each link; the
            // incremental asymmetry counter is recomputed on gathered
            // master state at each tick instead.
            core.channels.disable_asym_tracking();
            core.mask = sim.core.mask.clone();
            let sink = if trace_mask != 0 {
                let s = MemorySink::new();
                core.inst.set_tracer(Tracer::new(s.clone(), trace_mask));
                Some(s)
            } else {
                None
            };
            Some(Box::new(Shard { id, core, sink }))
        })
        .collect();

    // Event-kind counters flush into the metrics registry once at the
    // end, exactly like the serial pop loop's register accumulators.
    let mut n_workload = 0u64;
    let mut n_tx_done = 0u64;
    let mut n_arrive = 0u64;
    let mut n_credit_wake = 0u64;
    let mut n_retry = 0u64;
    let mut n_epoch_tick = 0u64;

    // Window-shape diagnostics (SimReport::diagnostics; never in the
    // serialized report).
    let mut n_windows = 0u64;
    let mut n_window_events = 0u64;
    let mut n_replay_events = 0u64;
    let mut n_cross_batches = 0u64;
    let mut n_cross_events = 0u64;

    // All per-window scratch is allocated once and recycled.
    let mut cross_buf: Vec<CrossRec> = Vec::new();
    let mut window_trace: Vec<String> = vec![String::new(); nsh];
    let mut cursors: Vec<ReplayCursor> = vec![ReplayCursor::default(); nsh];
    // True serial sequence numbers assigned to each shard's in-window
    // generations, indexed by `pseudo_seq - watermark`.
    let mut gen_seqs: Vec<Vec<u64>> = vec![Vec::new(); nsh];
    // Shards touched by the current window, in touch order.
    let mut touched: Vec<usize> = Vec::with_capacity(nsh);
    let mut touched_flag: Vec<bool> = vec![false; nsh];

    std::thread::scope(|scope| {
        // Persistent per-shard workers; shards ping-pong as boxes so a
        // window's handoff is two pointer sends. Windows with at most
        // one busy shard execute inline instead.
        let (res_tx, res_rx) = mpsc::channel::<Box<Shard>>();
        let mut work_tx: Vec<mpsc::Sender<Box<Shard>>> = Vec::with_capacity(nsh);
        for _ in 0..nsh {
            let (tx, rx) = mpsc::channel::<Box<Shard>>();
            let res = res_tx.clone();
            scope.spawn(move || {
                while let Ok(mut shard) = rx.recv() {
                    shard.exec();
                    if res.send(shard).is_err() {
                        break;
                    }
                }
            });
            work_tx.push(tx);
        }

        loop {
            let kl = qlocal.peek_key();
            let kg = qcoord.peek_key();
            let next = match (kl, kg) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if next.0 > end {
                break;
            }

            if kg == Some(next) {
                // ---- coordinator phase ----
                let ((t, _seq), ev) = qcoord.pop().expect("peeked event vanished");
                sim.core.now = t;
                sim.core.stats.events += 1;
                match ev {
                    Event::Workload => {
                        n_workload += 1;
                        workload_phase(
                            &mut sim,
                            &mut shards,
                            &map,
                            t,
                            end,
                            &mut real_tracer,
                            &mut qlocal,
                            &mut qcoord,
                            &mut next_seq,
                        );
                    }
                    Event::EpochTick => {
                        n_epoch_tick += 1;
                        epoch_phase(
                            &mut sim.core,
                            &mut shards,
                            &map,
                            master_sink.as_ref(),
                            &mut real_tracer,
                            &mut qlocal,
                            &mut qcoord,
                            &mut next_seq,
                        );
                    }
                    _ => unreachable!("only global events live in qcoord"),
                }
                continue;
            }

            // ---- window ----
            n_windows += 1;
            // Window-start time and counter snapshots for the
            // per-window `parallel` trace record emitted at the
            // barrier (deltas of the running totals).
            let wstart = next.0;
            let (ev0, rp0, cb0, ce0) = (
                n_window_events,
                n_replay_events,
                n_cross_batches,
                n_cross_events,
            );
            let watermark = next_seq;
            // The window bound starts at the next coordinator event /
            // horizon and tightens greedily as the pop loop touches
            // shards: the first event touching shard `s` at time `t`
            // caps the window at `t + row_bound[s]` — sound because
            // pops ascend, so a new cap always exceeds every
            // already-popped time. An untouched (or unbounded) shard
            // constrains nothing.
            let mut wkey = horizon_key;
            if let Some(g) = kg {
                if g < wkey {
                    wkey = g;
                }
            }
            debug_assert!(touched.is_empty() && cross_buf.is_empty());
            macro_rules! touch {
                ($s:expr, $t:expr) => {{
                    let s: usize = $s;
                    if !touched_flag[s] {
                        touched_flag[s] = true;
                        touched.push(s);
                        shards[s]
                            .as_mut()
                            .expect("shard at barrier")
                            .wq()
                            .begin_window(watermark);
                        if let Some(b) = row_bound[s] {
                            let cap = ($t + b, 0u64);
                            if cap < wkey {
                                wkey = cap;
                            }
                        }
                    }
                }};
            }
            while let Some(k) = qlocal.peek_key() {
                if k >= wkey {
                    break;
                }
                let (k, ev) = qlocal.pop().expect("peeked event vanished");
                match ev {
                    Event::Arrive { channel, packet } => {
                        let snd = map.channel_shard(channel);
                        let rcv = map.target_shard(channel);
                        if snd == rcv {
                            touch!(snd, k.0);
                            let sh = shards[snd].as_mut().expect("shard at barrier");
                            // Re-mint under the shard's generation: a
                            // hybrid demotion's Arrive was minted by
                            // the master (the identity for ids the
                            // shard minted itself).
                            let packet = sh.core.arena.adopt(packet.index() as u32);
                            sh.wq().local.push(
                                k.0,
                                k.1,
                                LocalEv {
                                    ev: Event::Arrive { channel, packet },
                                    half: ArriveHalf::Full,
                                },
                            );
                        } else {
                            // Buffered; the split halves and the
                            // payload mirror are applied per shard
                            // pair after the pop loop. The receiver
                            // is touched too: its route half executes
                            // this window and can generate cross
                            // arrivals of its own.
                            touch!(snd, k.0);
                            touch!(rcv, k.0);
                            cross_buf.push(CrossRec {
                                t: k.0,
                                seq: k.1,
                                channel,
                                packet,
                                snd,
                                rcv,
                            });
                        }
                    }
                    Event::TxDone { channel }
                    | Event::CreditWake { channel }
                    | Event::Retry { channel } => {
                        let s = map.channel_shard(channel);
                        touch!(s, k.0);
                        let sh = shards[s].as_mut().expect("shard at barrier");
                        sh.wq().local.push(
                            k.0,
                            k.1,
                            LocalEv {
                                ev,
                                half: ArriveHalf::Full,
                            },
                        );
                    }
                    Event::Workload | Event::EpochTick => {
                        unreachable!("global events live in qcoord")
                    }
                }
            }
            let wend = wkey.0;

            // ---- batched cross-shard mirror traffic ----
            // Grouping per (sender, receiver) pair turns a window's
            // mirror copies into one contiguous pass per pair. Safe to
            // read the sender's arena now: a crossing packet's payload
            // was last written in an earlier window (its forwarding
            // hop), and a slot cannot be re-injected until a later
            // Workload phase. Pushing the halves after the singles is
            // order-neutral — the shard-local queues order by key.
            cross_buf.sort_unstable_by_key(|c| (c.snd, c.rcv, c.t, c.seq));
            let mut i = 0usize;
            while i < cross_buf.len() {
                let (snd, rcv) = (cross_buf[i].snd, cross_buf[i].rcv);
                let mut j = i + 1;
                while j < cross_buf.len() && cross_buf[j].snd == snd && cross_buf[j].rcv == rcv {
                    j += 1;
                }
                // Take the sender's box out of the slice to read its
                // arena while the receiver's is borrowed mutably.
                let ssh = shards[snd].take().expect("shard at barrier");
                let rsh = shards[rcv].as_mut().expect("shard at barrier");
                for c in &cross_buf[i..j] {
                    let local_id = rsh.core.arena.mirror_from(&ssh.core.arena, c.packet);
                    rsh.wq().local.push(
                        c.t,
                        c.seq,
                        LocalEv {
                            ev: Event::Arrive {
                                channel: c.channel,
                                packet: local_id,
                            },
                            half: ArriveHalf::Route,
                        },
                    );
                }
                shards[snd] = Some(ssh);
                let ssh = shards[snd].as_mut().expect("shard at barrier");
                for c in &cross_buf[i..j] {
                    ssh.wq().local.push(
                        c.t,
                        c.seq,
                        LocalEv {
                            ev: Event::Arrive {
                                channel: c.channel,
                                packet: c.packet,
                            },
                            half: ArriveHalf::Credit,
                        },
                    );
                }
                n_cross_batches += 1;
                n_cross_events += (j - i) as u64;
                i = j;
            }
            cross_buf.clear();

            // Execute touched shards concurrently (inline when only
            // one was touched — no handoff cost at width 1). Every
            // touched shard has at least one queued event.
            for &s in &touched {
                shards[s].as_mut().expect("shard at barrier").open(wend);
            }
            if touched.len() == 1 {
                shards[touched[0]]
                    .as_mut()
                    .expect("shard at barrier")
                    .exec();
            } else {
                for &s in &touched {
                    let sh = shards[s].take().expect("shard at barrier");
                    work_tx[s].send(sh).expect("worker thread died");
                }
                for _ in 0..touched.len() {
                    let sh = res_rx.recv().expect("worker thread died");
                    let id = sh.id;
                    shards[id] = Some(sh);
                }
            }

            // ---- barrier merge ----
            // One k-way pass over the touched shards' execution logs,
            // each already sorted in (time, seq, half) order by
            // construction. Batch records carry global sequence
            // numbers; in-window generations carry per-shard pseudo
            // numbers resolved through `gen_seqs`, populated when
            // their parent dispatch merges — the parent always merges
            // first, since it precedes them in the same shard's log.
            for &s in &touched {
                let sh = shards[s].as_mut().expect("shard at barrier");
                if let Some(sink) = &sh.sink {
                    sink.take_into(&mut window_trace[s]);
                }
                cursors[s] = ReplayCursor::default();
                gen_seqs[s].clear();
            }
            let mut prev_key: Option<(SimTime, u64, u8)> = None;
            loop {
                // Linear min-scan over at most `touched` stream heads.
                let mut best: Option<(usize, (SimTime, u64, u8))> = None;
                for &s in &touched {
                    let w = shards[s].as_ref().expect("shard at barrier").wq_ref();
                    let Some(rec) = w.execs.get(cursors[s].exec) else {
                        continue;
                    };
                    let true_seq = if rec.seq < watermark {
                        rec.seq
                    } else {
                        gen_seqs[s][(rec.seq - watermark) as usize]
                    };
                    let key = (rec.t, true_seq, rec.half.rank());
                    if best.map_or(true, |(_, bk)| key < bk) {
                        best = Some((s, key));
                    }
                }
                let Some((s, key)) = best else { break };
                debug_assert!(prev_key.map_or(true, |p| p < key), "merge went backwards");
                prev_key = Some(key);
                n_replay_events += 1;
                let cur = cursors[s];
                let sh = shards[s].as_ref().expect("shard at barrier");
                let w = sh.wq_ref();
                let rec = w.execs[cur.exec];
                if rec.half.counts() {
                    sim.core.stats.events += 1;
                    n_window_events += 1;
                    match rec.kind {
                        KIND_TX_DONE => n_tx_done += 1,
                        KIND_ARRIVE => n_arrive += 1,
                        KIND_CREDIT_WAKE => n_credit_wake += 1,
                        _ => n_retry += 1,
                    }
                }
                if rec.trace_end > cur.trace {
                    let tr = real_tracer
                        .as_mut()
                        .expect("trace bytes exist only when tracing");
                    for line in window_trace[s][cur.trace as usize..rec.trace_end as usize].lines()
                    {
                        tr.write_line(line);
                    }
                }
                for i in cur.timeline..rec.timeline_end {
                    sim.core
                        .stats
                        .timeline
                        .push(sh.core.stats.timeline[i as usize]);
                }
                for i in cur.pkt..rec.pkt_free_end {
                    sim.core.arena.free_slot(w.freed_packets[i as usize]);
                }
                for i in cur.msg..rec.msg_free_end {
                    sim.core.msg_free.push(w.freed_messages[i as usize]);
                }
                for i in cur.gen..rec.gen_end {
                    let g = w.gens[i as usize];
                    let seq = next_seq;
                    next_seq += 1;
                    if g.at < wend {
                        // Generated and executed inside the window:
                        // its own execution record merges later under
                        // this sequence number.
                        gen_seqs[s].push(seq);
                    } else {
                        match g.ev {
                            Event::Workload | Event::EpochTick => qcoord.push(g.at, seq, g.ev),
                            _ => qlocal.push(g.at, seq, g.ev),
                        }
                    }
                }
                cursors[s] = ReplayCursor {
                    exec: cur.exec + 1,
                    gen: rec.gen_end,
                    pkt: rec.pkt_free_end,
                    msg: rec.msg_free_end,
                    timeline: rec.timeline_end,
                    trace: rec.trace_end,
                };
            }
            for &s in &touched {
                let sh = shards[s].as_mut().expect("shard at barrier");
                let cur = cursors[s];
                {
                    let w = sh.wq_ref();
                    debug_assert_eq!(cur.exec, w.execs.len(), "unmerged dispatches");
                    debug_assert_eq!(cur.gen as usize, w.gens.len(), "undelivered generations");
                    debug_assert_eq!(cur.pkt as usize, w.freed_packets.len(), "unapplied frees");
                    debug_assert_eq!(cur.msg as usize, w.freed_messages.len(), "unapplied frees");
                }
                debug_assert_eq!(
                    cur.trace as usize,
                    window_trace[s].len(),
                    "undelivered trace bytes"
                );
                debug_assert_eq!(cur.timeline as usize, sh.core.stats.timeline.len());
                sh.core.stats.timeline.clear();
                sh.wq().end_window();
                touched_flag[s] = false;
            }
            // One `parallel` trace record per window, written after
            // the window's replayed lines (all of which carry times
            // below `wend`, so the merged trace stays time-monotone).
            // The emitter's own mask check keeps the masked-out path
            // one branch; serial runs never reach this code at all.
            if let Some(tr) = real_tracer.as_mut() {
                tr.parallel_window(
                    wend.min(end).as_ps(),
                    wstart.as_ps(),
                    touched.len() as u32,
                    n_window_events - ev0,
                    n_replay_events - rp0,
                    n_cross_batches - cb0,
                    n_cross_events - ce0,
                );
            }
            touched.clear();
        }

        drop(work_tx);
    });

    // ---- finalize ----
    // Gather final channel state so `finish` computes cold residency
    // (its own `note_interval(i, end)`) over the authoritative copies.
    // Under hybrid the queues and credit rings come too: `finish` runs
    // one last `advance_flows` at the horizon, which can demote — its
    // enqueue/try_tx must see the exact serial queue state.
    let hybrid = sim.core.model == crate::env::SimModel::Hybrid;
    for ch in 0..num_channels {
        let owner = map.channel_shard(ChannelId::new(ch as u32));
        let sh = shards[owner].as_ref().expect("shard at barrier");
        sim.core
            .channels
            .copy_channel_from(&sh.core.channels, ch, hybrid);
        if hybrid {
            sim.core
                .channels
                .copy_pending_credits_from(&sh.core.channels, ch);
        }
    }
    #[cfg(debug_assertions)]
    if hybrid {
        // Gathered queue ids carry shard generations; adopt them into
        // the replica arena before finish() dereferences queue heads.
        let Core { arena, channels, .. } = &mut sim.core;
        for ch in 0..num_channels {
            for id in channels.queues[ch].iter_mut() {
                *id = arena.adopt(id.index() as u32);
            }
        }
    }
    let ids = sim.core.inst.ids;
    for slot in &mut shards {
        let sh = slot.take().expect("shard at barrier");
        sim.core.stats.merge_worker(&sh.core.stats);
        // Pod rollups accrue on shards for packet deliveries and on
        // the master for fluid advancement; element-wise sum = serial.
        for (dst, src) in sim.core.pod_bytes.iter_mut().zip(&sh.core.pod_bytes) {
            *dst += src;
        }
        // Shard registries share the master's registration order;
        // counters sum, watermarks take the max. (Shard event-kind
        // counters are zero — pops are counted once, at replay.)
        sim.core.inst.metrics.merge_from(
            &sh.core.inst.metrics,
            &[ids.tx_train_max_packets, ids.epoch_queue_bytes_peak],
        );
    }
    sim.core.inst.metrics.add(ids.ev_workload, n_workload);
    sim.core.inst.metrics.add(ids.ev_tx_done, n_tx_done);
    sim.core.inst.metrics.add(ids.ev_arrive, n_arrive);
    sim.core.inst.metrics.add(ids.ev_credit_wake, n_credit_wake);
    sim.core.inst.metrics.add(ids.ev_retry, n_retry);
    sim.core.inst.metrics.add(ids.ev_epoch_tick, n_epoch_tick);
    // Window-shape diagnostics (never serialized; see module docs).
    sim.core.inst.metrics.set(ids.par_windows, n_windows);
    sim.core
        .inst
        .metrics
        .set(ids.par_window_events, n_window_events);
    sim.core
        .inst
        .metrics
        .set(ids.par_replay_events, n_replay_events);
    sim.core
        .inst
        .metrics
        .set(ids.par_cross_batches, n_cross_batches);
    sim.core
        .inst
        .metrics
        .set(ids.par_cross_events, n_cross_events);
    sim.core.inst.metrics.set(ids.par_lookahead_ps, floor_ps);
    if let Some(tr) = real_tracer {
        if let Some(sink) = &master_sink {
            debug_assert!(sink.is_empty(), "undrained master trace lines");
        }
        // Restore the real tracer so finish() flushes it.
        sim.core.inst.set_tracer(tr);
    }
    sim.finalize()
}

/// The coordinator's `Workload` phase: the serial `on_workload` with
/// injection replayed against the master's replica arena (so global
/// slot numbers match the serial engine) and the enqueue/try_tx side
/// running on the source host's shard.
#[allow(clippy::too_many_arguments)]
fn workload_phase<S: TrafficSource>(
    sim: &mut Simulator<S>,
    shards: &mut [Option<Box<Shard>>],
    map: &ShardMap,
    t: SimTime,
    end: SimTime,
    real_tracer: &mut Option<Tracer>,
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
) {
    while let Some(m) = sim.pending {
        if m.at > t {
            break;
        }
        inject_one(
            &mut sim.core,
            shards,
            map,
            m,
            t,
            real_tracer,
            qlocal,
            qcoord,
            next_seq,
        );
        sim.pending = sim.source.next_message();
        if let Some(next) = sim.pending {
            debug_assert!(next.at >= m.at, "traffic source went backwards in time");
        }
    }
    if let Some(m) = sim.pending {
        if m.at <= end {
            push_global(qlocal, qcoord, next_seq, m.at, Event::Workload);
        }
    }
}

/// Offers one message — the parallel twin of the serial `inject`. The
/// master's arena and message table do the authoritative allocation
/// (reproducing serial slot assignment and `peak_live_packets`); the
/// source shard mirrors the payloads and runs enqueue + try_tx, whose
/// generated events and trace lines drain immediately so sequence
/// numbers interleave exactly as the serial engine's.
#[allow(clippy::too_many_arguments)]
fn inject_one(
    master: &mut Core,
    shards: &mut [Option<Box<Shard>>],
    map: &ShardMap,
    m: Message,
    t: SimTime,
    real_tracer: &mut Option<Tracer>,
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
) {
    assert!(
        m.src.index() < master.fabric.num_hosts() && m.dst.index() < master.fabric.num_hosts(),
        "message endpoints outside the fabric"
    );
    debug_assert_ne!(m.src, m.dst, "self-sends are not meaningful");
    master.stats.offered_bytes += m.bytes;
    master.last_offered_at = m.at;
    // Hybrid absorption — the parallel twin of the serial `inject`'s
    // gate. The path walk runs on the master (it reads only the fabric
    // and the dyntopo mask, both master-authoritative); the steadiness
    // gate reads each path channel from its owning shard, whose state
    // at a coordinator phase is exactly the serial state. The table
    // allocation itself is master-only, so flow ids and the free list
    // reproduce the serial order bit for bit.
    if master.model == crate::env::SimModel::Hybrid && m.bytes >= crate::flows::FLOW_MIN_BYTES {
        if let Some((path, len)) = master.flow_path(&m) {
            let limit = master.flow_congestion_limit();
            let steady = path[..len as usize].iter().all(|&c| {
                let owner = map.channel_shard(ChannelId::new(c));
                let ch = &shards[owner].as_ref().expect("shard at barrier").core.channels;
                let i = c as usize;
                ch.flags[i] & (crate::channels::F_OFF | crate::channels::F_DRAINING) == 0
                    && ch.occupancy[i] <= limit
            });
            if steady {
                master.absorb_flow(&m, path, len);
                return;
            }
        }
    }
    let pkt_size = u64::from(master.config.packet_bytes);
    let full = (m.bytes / pkt_size) as u32;
    let tail = (m.bytes % pkt_size) as u32;
    let count = (full + u32::from(tail > 0)).max(1);
    let rec = MessageRec {
        remaining: count,
        offered_at: m.at,
    };
    let message = match master.msg_free.pop() {
        Some(slot) => {
            master.messages[slot as usize] = rec;
            MessageId(slot)
        }
        None => {
            let slot = u32::try_from(master.messages.len()).expect("message table overflow");
            master.messages.push(rec);
            MessageId(slot)
        }
    };
    // The delivering shard decrements the live record; mirror it there.
    let dst_shard = map.host_shard(m.dst);
    {
        let msgs = &mut shards[dst_shard]
            .as_mut()
            .expect("shard at barrier")
            .core
            .messages;
        let idx = message.index();
        if idx >= msgs.len() {
            msgs.resize(idx + 1, rec);
        }
        msgs[idx] = rec;
    }
    let inj = master.fabric.injection_channel(m.src);
    let budget = match master.config.routing {
        RoutingPolicy::MinimalAdaptive => 0,
        RoutingPolicy::Ugal {
            misroute_budget, ..
        } => misroute_budget,
    };
    let src_shard = map.host_shard(m.src);
    debug_assert_eq!(src_shard, map.channel_shard(inj));
    let sh = shards[src_shard].as_mut().expect("shard at barrier");
    sh.core.now = t;
    for i in 0..count {
        let bytes = if i < full {
            pkt_size as u32
        } else {
            tail.max(1)
        };
        let packet = Packet {
            dst: m.dst,
            bytes,
            created: m.at,
            message,
            hops: 0,
            misroutes_left: budget,
        };
        let gid = master.arena.alloc(packet);
        let pid = sh.core.arena.place(gid.index() as u32, packet);
        sh.core.enqueue(inj, pid, bytes);
    }
    sh.core.try_tx(inj);
    drain_phase_capture(
        &mut sh.core,
        sh.sink.as_ref(),
        real_tracer,
        qlocal,
        qcoord,
        next_seq,
    );
}

/// The coordinator's `EpochTick` phase: gather every channel from its
/// owning shard onto the master core, run the serial epoch handler
/// there (sweep mode over all-active gathered state, with the
/// asymmetry counter recounted from scratch), then scatter the mutated
/// channel state, epoch bound, and link mask back to every shard.
#[allow(clippy::too_many_arguments)]
fn epoch_phase(
    master: &mut Core,
    shards: &mut [Option<Box<Shard>>],
    map: &ShardMap,
    master_sink: Option<&MemorySink>,
    real_tracer: &mut Option<Tracer>,
    qlocal: &mut KeyedQueue<Event>,
    qcoord: &mut KeyedQueue<Event>,
    next_seq: &mut u64,
) {
    let n = master.channels.len();
    let hybrid = master.model == crate::env::SimModel::Hybrid;
    for ch in 0..n {
        let owner = map.channel_shard(ChannelId::new(ch as u32));
        let sh = shards[owner].as_ref().expect("shard at barrier");
        master
            .channels
            .copy_channel_from(&sh.core.channels, ch, true);
        if hybrid {
            // A flow demotion re-enters the packet path through the
            // master's try_tx, which applies matured credit returns —
            // the ring must match the owning shard's exactly.
            master
                .channels
                .copy_pending_credits_from(&sh.core.channels, ch);
        }
    }
    #[cfg(debug_assertions)]
    if hybrid {
        // Gathered queue ids carry shard generations; adopt them into
        // the replica arena before a demotion's try_tx dereferences
        // queue heads (ids are bare slots in release builds).
        let Core { arena, channels, .. } = &mut *master;
        for ch in 0..n {
            for id in channels.queues[ch].iter_mut() {
                *id = arena.adopt(id.index() as u32);
            }
        }
    }
    master.channels.mark_all_active();
    master.channels.recount_asymmetry();
    master.on_epoch();
    // ---- hybrid demotion reconciliation ----
    // `advance_flows` (first thing in `on_epoch`) may have demoted
    // flows, whose remaining bytes were re-injected on the master.
    // Mirror what that created out to the owners: the message record
    // to the delivering shard, the packet payloads into the source
    // shard's arena at the master-assigned global slots, and — below,
    // via the queue=true scatter — the mutated injection queues plus
    // their consumed credit rings.
    let (demoted_pkts, demoted_msgs) = {
        let CoreQueue::Window(w) = &mut master.queue else {
            unreachable!("master core in serial mode")
        };
        (
            std::mem::take(&mut w.demoted_packets),
            std::mem::take(&mut w.demoted_msgs),
        )
    };
    for &(mid, dst) in &demoted_msgs {
        let rec = master.messages[mid as usize];
        let msgs = &mut shards[map.host_shard(HostId::new(dst))]
            .as_mut()
            .expect("shard at barrier")
            .core
            .messages;
        let idx = mid as usize;
        if idx >= msgs.len() {
            msgs.resize(idx + 1, rec);
        }
        msgs[idx] = rec;
    }
    let mut demoted_channels: Vec<u32> = Vec::with_capacity(demoted_pkts.len());
    for &(ch, pid) in &demoted_pkts {
        let owner = map.channel_shard(ChannelId::new(ch));
        let payload = *master.arena.get(pid);
        shards[owner]
            .as_mut()
            .expect("shard at barrier")
            .core
            .arena
            .place(pid.index() as u32, payload);
        demoted_channels.push(ch);
    }
    demoted_channels.sort_unstable();
    demoted_channels.dedup();
    drain_phase_capture(master, master_sink, real_tracer, qlocal, qcoord, next_seq);
    for ch in 0..n {
        let owner = map.channel_shard(ChannelId::new(ch as u32));
        let sh = shards[owner].as_mut().expect("shard at barrier");
        let demoted = demoted_channels.binary_search(&(ch as u32)).is_ok();
        sh.core
            .channels
            .copy_channel_from(&master.channels, ch, demoted);
        if demoted {
            sh.core
                .channels
                .copy_pending_credits_from(&master.channels, ch);
            #[cfg(debug_assertions)]
            {
                let Core { arena, channels, .. } = &mut sh.core;
                for id in channels.queues[ch].iter_mut() {
                    *id = arena.adopt(id.index() as u32);
                }
            }
        }
    }
    for slot in shards.iter_mut() {
        let sh = slot.as_mut().expect("shard at barrier");
        sh.core.epoch_end = master.epoch_end;
        sh.core.mask = master.mask.clone();
    }
}
