//! The per-epoch link-rate decision policies (§3.3, §5.1).

use crate::config::RatePolicy;
use epnet_power::LinkRate;

/// Computes the rate a channel should run at for the next epoch, given
/// its measured utilization over the previous epoch.
///
/// The paper's heuristic uses utilization as the *only* input: "if we
/// have data to send, and credits to send it, then the utilization will
/// go up, and we should upgrade the speed of the link. If we either
/// don't have data or don't have enough credits, utilization will fall,
/// and there is no reason to keep the link at high speed" (§3.3).
pub(crate) fn desired_rate(
    policy: RatePolicy,
    current: LinkRate,
    utilization: f64,
    target: f64,
    min: LinkRate,
    max: LinkRate,
) -> LinkRate {
    let clamp = |r: LinkRate| {
        if r < min {
            min
        } else if r > max {
            max
        } else {
            r
        }
    };
    match policy {
        RatePolicy::HalveDouble => {
            if utilization < target {
                clamp(current.halved())
            } else if utilization > target {
                clamp(current.doubled())
            } else {
                current
            }
        }
        RatePolicy::JumpToExtremes => {
            if utilization < target {
                min
            } else if utilization > target {
                max
            } else {
                current
            }
        }
        RatePolicy::Hysteresis { low, high } => {
            if utilization < low {
                clamp(current.halved())
            } else if utilization > high {
                clamp(current.doubled())
            } else {
                current
            }
        }
        RatePolicy::LaneAware => {
            if utilization < target {
                let next = current.halved();
                if current.transition_changes_lanes(next) && utilization < target / 4.0 {
                    // Crossing the lane boundary: only do it decisively,
                    // and land at the floor so the expensive transition
                    // buys the full saving.
                    clamp(LinkRate::MIN)
                } else if current.transition_changes_lanes(next) {
                    current // not idle enough to pay a lane realignment
                } else {
                    clamp(next)
                }
            } else if utilization > target {
                let next = current.doubled();
                if current.transition_changes_lanes(next) {
                    // Climbing out of the 1-lane modes: go straight to
                    // full speed for one realignment.
                    clamp(LinkRate::MAX)
                } else {
                    clamp(next)
                }
            } else {
                current
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LinkRate::*;

    const MIN: LinkRate = R2_5;
    const MAX: LinkRate = R40;

    #[test]
    fn halve_double_follows_paper() {
        let p = RatePolicy::HalveDouble;
        // Below target: detune to half the current rate.
        assert_eq!(desired_rate(p, R40, 0.1, 0.5, MIN, MAX), R20);
        assert_eq!(desired_rate(p, R20, 0.1, 0.5, MIN, MAX), R10);
        // Down to the minimum.
        assert_eq!(desired_rate(p, R2_5, 0.0, 0.5, MIN, MAX), R2_5);
        // Above target: double up to the maximum.
        assert_eq!(desired_rate(p, R10, 0.9, 0.5, MIN, MAX), R20);
        assert_eq!(desired_rate(p, R40, 0.9, 0.5, MIN, MAX), R40);
        // Exactly at target: hold.
        assert_eq!(desired_rate(p, R10, 0.5, 0.5, MIN, MAX), R10);
    }

    #[test]
    fn jump_to_extremes_skips_intermediate_steps() {
        let p = RatePolicy::JumpToExtremes;
        assert_eq!(desired_rate(p, R40, 0.1, 0.5, MIN, MAX), R2_5);
        assert_eq!(desired_rate(p, R2_5, 0.9, 0.5, MIN, MAX), R40);
        assert_eq!(desired_rate(p, R10, 0.5, 0.5, MIN, MAX), R10);
    }

    #[test]
    fn hysteresis_holds_in_the_dead_band() {
        let p = RatePolicy::Hysteresis {
            low: 0.25,
            high: 0.75,
        };
        assert_eq!(desired_rate(p, R20, 0.5, 0.5, MIN, MAX), R20);
        assert_eq!(desired_rate(p, R20, 0.1, 0.5, MIN, MAX), R10);
        assert_eq!(desired_rate(p, R20, 0.9, 0.5, MIN, MAX), R40);
    }

    #[test]
    fn lane_aware_crosses_the_boundary_decisively() {
        let p = RatePolicy::LaneAware;
        // Cheap relocks inside the 4-lane family behave like
        // halve/double.
        assert_eq!(desired_rate(p, R40, 0.1, 0.5, MIN, MAX), R20);
        assert_eq!(desired_rate(p, R20, 0.1, 0.5, MIN, MAX), R10);
        // At R10, mildly idle: hold rather than pay a lane change.
        assert_eq!(desired_rate(p, R10, 0.2, 0.5, MIN, MAX), R10);
        // At R10, nearly idle: jump all the way to the floor.
        assert_eq!(desired_rate(p, R10, 0.05, 0.5, MIN, MAX), R2_5);
        // Within the 1-lane family, cheap steps again.
        assert_eq!(desired_rate(p, R5, 0.05, 0.5, MIN, MAX), R2_5);
        // Upshifts: cheap inside a family, decisive across the boundary.
        assert_eq!(desired_rate(p, R20, 0.9, 0.5, MIN, MAX), R40);
        assert_eq!(desired_rate(p, R2_5, 0.9, 0.5, MIN, MAX), R5);
        assert_eq!(desired_rate(p, R5, 0.9, 0.5, MIN, MAX), R40);
    }

    /// Every comparison in `desired_rate` is strict (`<` / `>`), so a
    /// utilization sitting *exactly* on a threshold holds the current
    /// rate for all four policies. This pins the tie-breaking direction:
    /// flipping any comparison to `<=` / `>=` fails here.
    #[test]
    fn exact_thresholds_hold_for_every_policy() {
        let target = 0.5;
        for current in [R2_5, R5, R10, R20, R40] {
            for p in [
                RatePolicy::HalveDouble,
                RatePolicy::JumpToExtremes,
                RatePolicy::LaneAware,
            ] {
                assert_eq!(
                    desired_rate(p, current, target, target, MIN, MAX),
                    current,
                    "{p:?} must hold {current} at exactly the target"
                );
            }
            let h = RatePolicy::Hysteresis {
                low: 0.25,
                high: 0.75,
            };
            // Exactly on either band edge is *inside* the dead band.
            assert_eq!(desired_rate(h, current, 0.25, target, MIN, MAX), current);
            assert_eq!(desired_rate(h, current, 0.75, target, MIN, MAX), current);
        }
        // LaneAware's decisive-downshift threshold (target/4) is strict
        // too: exactly at it, the lane boundary is not crossed.
        assert_eq!(
            desired_rate(RatePolicy::LaneAware, R10, 0.125, 0.5, MIN, MAX),
            R10
        );
        // A hair below it, the jump to the floor happens.
        assert_eq!(
            desired_rate(RatePolicy::LaneAware, R10, 0.1249, 0.5, MIN, MAX),
            R2_5
        );
    }

    /// Saturation at the ladder ends, for all four policies: already at
    /// min (max), further idleness (load) changes nothing.
    #[test]
    fn extremes_saturate_for_every_policy() {
        let policies = [
            RatePolicy::HalveDouble,
            RatePolicy::JumpToExtremes,
            RatePolicy::LaneAware,
            RatePolicy::Hysteresis {
                low: 0.25,
                high: 0.75,
            },
        ];
        for p in policies {
            assert_eq!(desired_rate(p, MIN, 0.0, 0.5, MIN, MAX), MIN);
            assert_eq!(desired_rate(p, MAX, 1.0, 0.5, MIN, MAX), MAX);
            // Narrowed ladder: the clamp wins over the policy's pick.
            assert_eq!(desired_rate(p, R10, 0.0, 0.5, R5, R20), R5);
            assert_eq!(desired_rate(p, R10, 1.0, 0.5, R5, R20), R20);
        }
    }

    #[test]
    fn custom_floor_is_respected() {
        // A deployment may forbid the slowest mode.
        let p = RatePolicy::HalveDouble;
        assert_eq!(desired_rate(p, R5, 0.0, 0.5, R5, MAX), R5);
        assert_eq!(desired_rate(p, R10, 0.0, 0.5, R5, MAX), R5);
        // And JumpToExtremes lands on the floor, not on R2_5.
        let j = RatePolicy::JumpToExtremes;
        assert_eq!(desired_rate(j, R40, 0.0, 0.5, R5, MAX), R5);
    }

    #[test]
    fn custom_ceiling_is_respected() {
        let p = RatePolicy::HalveDouble;
        assert_eq!(desired_rate(p, R20, 1.0, 0.5, MIN, R20), R20);
        assert_eq!(desired_rate(p, R10, 1.0, 0.5, MIN, R20), R20);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn any_rate() -> impl Strategy<Value = LinkRate> {
            prop_oneof![Just(R2_5), Just(R5), Just(R10), Just(R20), Just(R40),]
        }

        fn any_policy() -> impl Strategy<Value = RatePolicy> {
            prop_oneof![
                Just(RatePolicy::HalveDouble),
                Just(RatePolicy::JumpToExtremes),
                Just(RatePolicy::LaneAware),
                (0.01f64..0.49, 0.51f64..0.99)
                    .prop_map(|(low, high)| RatePolicy::Hysteresis { low, high }),
            ]
        }

        proptest! {
            #[test]
            fn decision_stays_within_bounds(
                policy in any_policy(),
                current in any_rate(),
                util in 0.0f64..=1.0,
            ) {
                let r = desired_rate(policy, current, util, 0.5, MIN, MAX);
                prop_assert!(r >= MIN && r <= MAX);
            }

            #[test]
            fn decision_is_monotone_in_utilization(
                policy in any_policy(),
                current in any_rate(),
                lo in 0.0f64..=1.0,
                hi in 0.0f64..=1.0,
            ) {
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                let r_lo = desired_rate(policy, current, lo, 0.5, MIN, MAX);
                let r_hi = desired_rate(policy, current, hi, 0.5, MIN, MAX);
                prop_assert!(r_lo <= r_hi, "more load must never pick a slower rate");
            }

            #[test]
            fn at_target_every_policy_holds(
                policy in any_policy(),
                current in any_rate(),
            ) {
                // Exactly on target, no policy moves (hysteresis bands
                // straddle 0.5 by construction above).
                prop_assert_eq!(desired_rate(policy, current, 0.5, 0.5, MIN, MAX), current);
            }

            /// The invariant the engine's active-set epoch path rests
            /// on: a channel sitting at the floor rate with zero
            /// measured utilization decides "hold" under *every* policy
            /// and *every* valid configuration. The controller may
            /// therefore skip such channels entirely at epoch ticks —
            /// visiting them could only ever reproduce the current
            /// state (see DESIGN.md "Activity-proportional control").
            #[test]
            fn idle_at_floor_always_holds(
                policy in any_policy(),
                target in 0.001f64..=1.0,
                (min, max) in (any_rate(), any_rate())
                    .prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) }),
            ) {
                prop_assert_eq!(
                    desired_rate(policy, min, 0.0, target, min, max),
                    min,
                    "an idle channel at the floor must hold under {policy:?}"
                );
            }
        }
    }
}
