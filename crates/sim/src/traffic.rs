//! Traffic source interface: how workloads feed the simulator.

use crate::SimTime;
use epnet_topology::HostId;
use serde::{Deserialize, Serialize};

/// One application message offered to the network: `bytes` from `src` to
/// `dst` at absolute time `at`. The engine segments messages into
/// packets of the configured maximum size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Offered time.
    pub at: SimTime,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Message size in bytes.
    pub bytes: u64,
}

/// A stream of [`Message`]s in non-decreasing time order.
///
/// Implementors generate traffic lazily so multi-gigabyte workloads never
/// materialize in memory; `epnet-workloads` provides the paper's
/// generators (uniform random, and the bursty `Advert`/`Search`
/// trace-alikes).
pub trait TrafficSource {
    /// The next message, or `None` when the workload is exhausted.
    ///
    /// Implementations must return messages with non-decreasing `at`
    /// times; the engine asserts this in debug builds.
    fn next_message(&mut self) -> Option<Message>;
}

impl<T: TrafficSource + ?Sized> TrafficSource for Box<T> {
    fn next_message(&mut self) -> Option<Message> {
        (**self).next_message()
    }
}

impl<T: TrafficSource + ?Sized> TrafficSource for &mut T {
    fn next_message(&mut self) -> Option<Message> {
        (**self).next_message()
    }
}

/// Replays a pre-built message list — handy for tests and for replaying
/// recorded traces.
///
/// ```
/// use epnet_sim::{Message, ReplaySource, SimTime, TrafficSource};
/// use epnet_topology::HostId;
/// let mut src = ReplaySource::new(vec![Message {
///     at: SimTime::from_us(1),
///     src: HostId::new(0),
///     dst: HostId::new(1),
///     bytes: 4096,
/// }]);
/// assert!(src.next_message().is_some());
/// assert!(src.next_message().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ReplaySource {
    messages: std::vec::IntoIter<Message>,
}

impl ReplaySource {
    /// Builds a replay source. Messages are sorted by time first, so any
    /// order is accepted.
    pub fn new(mut messages: Vec<Message>) -> Self {
        messages.sort_by_key(|m| m.at);
        Self {
            messages: messages.into_iter(),
        }
    }
}

impl TrafficSource for ReplaySource {
    fn next_message(&mut self) -> Option<Message> {
        self.messages.next()
    }
}

/// Chains two traffic sources by time, merging their streams.
#[derive(Debug)]
pub struct MergedSource<A, B> {
    a: A,
    b: B,
    pending_a: Option<Message>,
    pending_b: Option<Message>,
}

impl<A: TrafficSource, B: TrafficSource> MergedSource<A, B> {
    /// Merges `a` and `b` into a single time-ordered stream.
    pub fn new(mut a: A, mut b: B) -> Self {
        let pending_a = a.next_message();
        let pending_b = b.next_message();
        Self {
            a,
            b,
            pending_a,
            pending_b,
        }
    }
}

impl<A: TrafficSource, B: TrafficSource> TrafficSource for MergedSource<A, B> {
    fn next_message(&mut self) -> Option<Message> {
        match (self.pending_a, self.pending_b) {
            (None, None) => None,
            (Some(m), None) => {
                self.pending_a = self.a.next_message();
                Some(m)
            }
            (None, Some(m)) => {
                self.pending_b = self.b.next_message();
                Some(m)
            }
            (Some(ma), Some(mb)) => {
                if ma.at <= mb.at {
                    self.pending_a = self.a.next_message();
                    Some(ma)
                } else {
                    self.pending_b = self.b.next_message();
                    Some(mb)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(us: u64, src: u32) -> Message {
        Message {
            at: SimTime::from_us(us),
            src: HostId::new(src),
            dst: HostId::new(src + 1),
            bytes: 1024,
        }
    }

    #[test]
    fn replay_sorts_by_time() {
        let mut s = ReplaySource::new(vec![msg(3, 0), msg(1, 1), msg(2, 2)]);
        let order: Vec<u64> = std::iter::from_fn(|| s.next_message())
            .map(|m| m.at.as_ps() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn merged_interleaves_by_time() {
        let a = ReplaySource::new(vec![msg(1, 0), msg(4, 0)]);
        let b = ReplaySource::new(vec![msg(2, 1), msg(3, 1)]);
        let mut m = MergedSource::new(a, b);
        let order: Vec<u64> = std::iter::from_fn(|| m.next_message())
            .map(|x| x.at.as_ps() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn merged_handles_exhaustion() {
        let a = ReplaySource::new(vec![]);
        let b = ReplaySource::new(vec![msg(1, 0)]);
        let mut m = MergedSource::new(a, b);
        assert!(m.next_message().is_some());
        assert!(m.next_message().is_none());
    }
}
