//! Packet records and a recycling arena.

use crate::SimTime;
use epnet_topology::HostId;

/// Index of a live packet in the [`PacketArena`].
///
/// Debug builds carry the slot's allocation generation alongside the
/// index, so a stale id — one held across the packet's `free` — trips a
/// `debug_assert` instead of silently reading whatever packet was
/// recycled into the slot. Release builds keep the bare 4-byte index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId {
    slot: u32,
    #[cfg(debug_assertions)]
    generation: u32,
}

impl PacketId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.slot as usize
    }
}

/// Identifier of the message a packet belongs to. Slots recycle once
/// the last packet of a message delivers, so ids are dense over the
/// messages concurrently in flight rather than all messages ever
/// offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageId(pub(crate) u32);

impl MessageId {
    /// Dense index of the message.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw slot, for free-list bookkeeping.
    #[inline]
    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

/// A packet in flight. Messages are segmented into packets of the
/// configured maximum size at injection time (§4.1's 512 KiB messages
/// become a train of packets).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Packet {
    /// Destination host.
    pub dst: HostId,
    /// Payload size in bytes.
    pub bytes: u32,
    /// When the owning message was offered to the network.
    pub created: SimTime,
    /// Owning message.
    pub message: MessageId,
    /// Inter-switch hops taken so far (diagnostics / tie-breaking).
    pub hops: u8,
    /// Remaining UGAL detour budget (non-minimal routing).
    pub misroutes_left: u8,
}

/// A free-list arena of packets: allocation never moves live packets and
/// completed packets are recycled, keeping memory proportional to the
/// number of packets *in flight* rather than the number simulated.
#[derive(Debug, Default)]
pub(crate) struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
    /// Per-slot allocation generation, bumped on free (debug only).
    #[cfg(debug_assertions)]
    generations: Vec<u32>,
}

impl PacketArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a packet, reusing a retired slot when available.
    pub fn alloc(&mut self, packet: Packet) -> PacketId {
        self.live += 1;
        let slot = if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = packet;
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX live packets");
            self.slots.push(packet);
            #[cfg(debug_assertions)]
            self.generations.push(0);
            slot
        };
        PacketId {
            slot,
            #[cfg(debug_assertions)]
            generation: self.generations[slot as usize],
        }
    }

    /// Retires a delivered packet, returning its record. The slot's
    /// generation advances, invalidating any copies of `id` still held.
    pub fn free(&mut self, id: PacketId) -> Packet {
        self.check(id);
        #[cfg(debug_assertions)]
        {
            let g = &mut self.generations[id.slot as usize];
            *g = g.wrapping_add(1);
        }
        self.live -= 1;
        self.free.push(id.slot);
        self.slots[id.index()]
    }

    /// Writes `packet` at an externally-assigned `slot`, growing the
    /// arena as needed, and returns an id valid for this arena.
    ///
    /// This is the mirror-arena entry point of the sharded parallel
    /// engine: slot numbers are assigned once, globally, at injection
    /// time (so tie-breaking keys that mix in `PacketId::index` match
    /// the serial engine bit for bit), and each shard materializes the
    /// payload at that same global slot when a packet crosses into it.
    /// Unlike [`alloc`](Self::alloc), no free-list or live-count
    /// bookkeeping happens — mirrors retire packets with
    /// [`take`](Self::take) and the coordinator replays frees against
    /// its own replica arena.
    pub fn place(&mut self, slot: u32, packet: Packet) -> PacketId {
        let idx = slot as usize;
        if idx >= self.slots.len() {
            // Gap slots hold copies of `packet`; they are dead until a
            // later `place` overwrites them.
            self.slots.resize(idx + 1, packet);
            #[cfg(debug_assertions)]
            self.generations.resize(idx + 1, 0);
        }
        self.slots[idx] = packet;
        PacketId {
            slot,
            #[cfg(debug_assertions)]
            generation: self.generations[idx],
        }
    }

    /// Mirrors a live packet from `src` into this arena at the same
    /// global slot — `place` fed by `get`, fused so the parallel
    /// engine's batched cross-shard mirror pass reads the sender's
    /// arena and writes the receiver's in one call per packet.
    #[inline]
    pub fn mirror_from(&mut self, src: &PacketArena, id: PacketId) -> PacketId {
        self.place(id.slot, *src.get(id))
    }

    /// Re-mints an id for `slot` under this arena's current generation.
    ///
    /// Queue contents travel between the parallel engine's shard cores
    /// and the coordinator's replica as raw slot numbers (the epoch
    /// barrier copies `VecDeque<PacketId>` wholesale), but each arena
    /// counts generations independently, so a transferred id must be
    /// adopted before the receiving arena dereferences it. In release
    /// builds an id *is* its slot and this is the identity function.
    #[inline]
    pub fn adopt(&self, slot: u32) -> PacketId {
        PacketId {
            slot,
            #[cfg(debug_assertions)]
            generation: self.generations[slot as usize],
        }
    }

    /// Retires a slot by bare index — the coordinator's replica-arena
    /// form of [`free`](Self::free). The parallel engine's workers
    /// record freed slot numbers (their `PacketId` generations are
    /// shard-local and meaningless here); replaying them through the
    /// replica in serial event order reproduces the serial engine's
    /// free list — and therefore its slot assignment and
    /// `peak_live_packets` — exactly.
    pub fn free_slot(&mut self, slot: u32) {
        #[cfg(debug_assertions)]
        {
            let g = &mut self.generations[slot as usize];
            *g = g.wrapping_add(1);
        }
        self.live -= 1;
        self.free.push(slot);
    }

    /// Retires a mirrored packet: like [`free`](Self::free) it advances
    /// the slot generation and returns the record, but the slot is not
    /// pushed onto this arena's free list (mirrors never allocate —
    /// global slot reuse is the coordinator's job).
    pub fn take(&mut self, id: PacketId) -> Packet {
        self.check(id);
        #[cfg(debug_assertions)]
        {
            let g = &mut self.generations[id.slot as usize];
            *g = g.wrapping_add(1);
        }
        self.slots[id.index()]
    }

    /// Immutable access to a live packet.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        self.check(id);
        &self.slots[id.index()]
    }

    /// Mutable access to a live packet.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        self.check(id);
        &mut self.slots[id.index()]
    }

    /// Number of live (allocated, not yet freed) packets.
    #[allow(dead_code)] // diagnostic surface, exercised in tests
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously live packets.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Debug-build staleness check: the id's generation must match the
    /// slot's current one.
    #[inline]
    fn check(&self, id: PacketId) {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.generations[id.slot as usize], id.generation,
            "stale PacketId: slot {} was freed and reallocated",
            id.slot
        );
        let _ = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(bytes: u32) -> Packet {
        Packet {
            dst: HostId::new(1),
            bytes,
            created: SimTime::ZERO,
            message: MessageId(0),
            hops: 0,
            misroutes_left: 0,
        }
    }

    #[test]
    fn alloc_free_recycles_slots() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(pkt(100));
        let b = arena.alloc(pkt(200));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).bytes, 100);
        arena.free(a);
        assert_eq!(arena.live(), 1);
        let c = arena.alloc(pkt(300));
        // Slot reused, no growth.
        assert_eq!(c.index(), a.index());
        assert_eq!(arena.capacity(), 2);
        assert_eq!(arena.get(b).bytes, 200);
        assert_eq!(arena.get(c).bytes, 300);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(pkt(64));
        arena.get_mut(a).hops += 1;
        assert_eq!(arena.get(a).hops, 1);
        let freed = arena.free(a);
        assert_eq!(freed.hops, 1);
    }

    #[test]
    fn capacity_tracks_high_water_mark() {
        let mut arena = PacketArena::new();
        let ids: Vec<PacketId> = (0..10).map(|i| arena.alloc(pkt(i))).collect();
        assert_eq!(arena.capacity(), 10);
        for id in ids {
            arena.free(id);
        }
        for i in 0..10 {
            arena.alloc(pkt(i));
        }
        assert_eq!(arena.capacity(), 10, "slots recycled");
    }

    #[test]
    fn place_and_take_mirror_global_slots() {
        let mut arena = PacketArena::new();
        // Out-of-order placement grows the arena to cover the slot.
        let b = arena.place(3, pkt(300));
        assert_eq!(b.index(), 3);
        let a = arena.place(1, pkt(100));
        assert_eq!(arena.get(a).bytes, 100);
        assert_eq!(arena.get(b).bytes, 300);
        // Take retires without feeding the local free list: a fresh
        // place at the same global slot is valid again.
        assert_eq!(arena.take(b).bytes, 300);
        let b2 = arena.place(3, pkt(301));
        assert_eq!(arena.get(b2).bytes, 301);
        assert_eq!(arena.live(), 0, "mirrors never count live packets");
    }

    #[test]
    fn mirror_from_copies_the_payload_at_the_same_slot() {
        let mut src = PacketArena::new();
        let mut dst = PacketArena::new();
        let a = src.alloc(pkt(100));
        let b = src.alloc(pkt(200));
        let mb = dst.mirror_from(&src, b);
        let ma = dst.mirror_from(&src, a);
        assert_eq!(ma.index(), a.index());
        assert_eq!(mb.index(), b.index());
        assert_eq!(dst.get(ma).bytes, 100);
        assert_eq!(dst.get(mb).bytes, 200);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale PacketId")]
    fn stale_id_is_caught_in_debug_builds() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(pkt(100));
        arena.free(a);
        // The slot was recycled into a different packet; the stale copy
        // of `a` must not silently read it.
        let _b = arena.alloc(pkt(200));
        let _ = arena.get(a);
    }
}
