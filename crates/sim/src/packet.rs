//! Packet records and a recycling arena.

use crate::SimTime;
use epnet_topology::HostId;

/// Index of a live packet in the [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(u32);

impl PacketId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of the message a packet belongs to (dense, never reused
/// within a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageId(pub(crate) u32);

impl MessageId {
    /// Dense index of the message.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A packet in flight. Messages are segmented into packets of the
/// configured maximum size at injection time (§4.1's 512 KiB messages
/// become a train of packets).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Packet {
    /// Destination host.
    pub dst: HostId,
    /// Payload size in bytes.
    pub bytes: u32,
    /// When the owning message was offered to the network.
    pub created: SimTime,
    /// Owning message.
    pub message: MessageId,
    /// Inter-switch hops taken so far (diagnostics / tie-breaking).
    pub hops: u8,
    /// Remaining UGAL detour budget (non-minimal routing).
    pub misroutes_left: u8,
}

/// A free-list arena of packets: allocation never moves live packets and
/// completed packets are recycled, keeping memory proportional to the
/// number of packets *in flight* rather than the number simulated.
#[derive(Debug, Default)]
pub(crate) struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a packet, reusing a retired slot when available.
    pub fn alloc(&mut self, packet: Packet) -> PacketId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = packet;
            PacketId(slot)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX live packets");
            self.slots.push(packet);
            PacketId(slot)
        }
    }

    /// Retires a delivered packet, returning its record.
    pub fn free(&mut self, id: PacketId) -> Packet {
        self.live -= 1;
        self.free.push(id.0);
        self.slots[id.index()]
    }

    /// Immutable access to a live packet.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        &self.slots[id.index()]
    }

    /// Mutable access to a live packet.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        &mut self.slots[id.index()]
    }

    /// Number of live (allocated, not yet freed) packets.
    #[allow(dead_code)] // diagnostic surface, exercised in tests
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously live packets.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(bytes: u32) -> Packet {
        Packet {
            dst: HostId::new(1),
            bytes,
            created: SimTime::ZERO,
            message: MessageId(0),
            hops: 0,
            misroutes_left: 0,
        }
    }

    #[test]
    fn alloc_free_recycles_slots() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(pkt(100));
        let b = arena.alloc(pkt(200));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).bytes, 100);
        arena.free(a);
        assert_eq!(arena.live(), 1);
        let c = arena.alloc(pkt(300));
        // Slot reused, no growth.
        assert_eq!(c.index(), a.index());
        assert_eq!(arena.capacity(), 2);
        assert_eq!(arena.get(b).bytes, 200);
        assert_eq!(arena.get(c).bytes, 300);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(pkt(64));
        arena.get_mut(a).hops += 1;
        assert_eq!(arena.get(a).hops, 1);
        let freed = arena.free(a);
        assert_eq!(freed.hops, 1);
    }

    #[test]
    fn capacity_tracks_high_water_mark() {
        let mut arena = PacketArena::new();
        let ids: Vec<PacketId> = (0..10).map(|i| arena.alloc(pkt(i))).collect();
        assert_eq!(arena.capacity(), 10);
        for id in ids {
            arena.free(id);
        }
        for i in 0..10 {
            arena.alloc(pkt(i));
        }
        assert_eq!(arena.capacity(), 10, "slots recycled");
    }
}
