//! Struct-of-arrays channel state.
//!
//! The engine touches a handful of channel fields on every event —
//! queue occupancy, flow-control credits, the configured rate, the
//! next-free time, and a few boolean latches. Keeping those in dense
//! parallel `Vec`s indexed by [`ChannelId::index`] packs the working
//! set of a paper-scale fabric into a few cache lines per event,
//! instead of striding across ~200-byte `Channel` structs for every
//! occupancy probe the adaptive router makes. Config and telemetry
//! fields that only the per-epoch controller or the end-of-run
//! reporter read (residency accounting, drain-first state, tunability)
//! live in a cold side table so they never share a line with the hot
//! arrays.
//!
//! Credit-return bookkeeping uses per-channel queues backed by a
//! shared free-list pool: a queue that drains to empty donates its
//! buffer back to the pool, and the next channel that books a return
//! reuses it. After warmup the pool holds the high-water number of
//! concurrently busy queues and steady-state operation performs no
//! heap allocation (verified by the counting allocator in
//! `epnet-bench::scalebench` and the regression tests).

use crate::packet::PacketId;
use crate::SimTime;
use epnet_power::LinkRate;
use std::collections::VecDeque;

/// A packet is currently being serialized on the channel.
pub(crate) const F_BUSY: u8 = 1 << 0;
/// The channel is powered off (dynamic topologies, §5.2).
pub(crate) const F_OFF: u8 = 1 << 1;
/// A `Retry` event is already pending.
pub(crate) const F_RETRY: u8 = 1 << 2;
/// A `CreditWake` event is already pending.
pub(crate) const F_CREDIT_WAKE: u8 = 1 << 3;
/// A drain-first rate change is parked on this channel — mirrors
/// `ChannelCold::pending_rate.is_some()` so the adaptive router's
/// "remove from the legal routes" check (§3.2) stays on the hot side.
pub(crate) const F_DRAINING: u8 = 1 << 4;
/// The controller may retune this channel (set once at construction).
/// Lives in the flags byte so the per-epoch decision sweep — every
/// channel, every tick — never has to touch the cold table for the
/// channels it skips.
pub(crate) const F_TUNABLE: u8 = 1 << 5;

/// Cold per-channel state: read at epoch ticks and at finish, never on
/// the per-event fast path.
#[derive(Debug, Clone)]
pub(crate) struct ChannelCold {
    /// Residency accounting: time at each rate since the run started.
    pub time_at_rate_ps: [u64; LinkRate::COUNT],
    /// Time powered off (dynamic topologies, §5.2).
    pub off_ps: u64,
    /// When the current rate/off interval began.
    pub rate_since: SimTime,
    /// Rate change waiting for the queue to drain (§3.2's first
    /// tolerance option).
    pub pending_rate: Option<LinkRate>,
}

/// All per-channel runtime state, split hot (per-event) from cold
/// (per-epoch / per-run). Every `Vec` is indexed by
/// [`ChannelId::index`].
#[derive(Debug)]
pub(crate) struct Channels {
    // ---- hot: touched on the per-event fast path ----
    /// Bytes in the output queue (including the packet being
    /// serialized) — the adaptive router's congestion signal.
    pub occupancy: Vec<u64>,
    /// Remaining downstream buffer credits, in bytes.
    pub credits: Vec<u32>,
    /// Configured rate.
    pub rate: Vec<LinkRate>,
    /// Channel unusable until this time (reactivation, §3.1).
    pub available_at: Vec<SimTime>,
    /// `F_*` latches.
    pub flags: Vec<u8>,
    /// Propagation delay of the physical medium.
    pub prop: Vec<SimTime>,
    /// End of the in-progress transmission, if any.
    pub busy_until: Vec<SimTime>,
    /// Busy picoseconds accumulated this epoch.
    pub busy_ps_epoch: Vec<u64>,
    /// Packets in the in-progress transmission train (0 when idle).
    pub train_len: Vec<u32>,
    /// Total bytes of the in-progress train.
    pub train_bytes: Vec<u64>,
    /// Output queues feeding each channel (elastic).
    pub queues: Vec<VecDeque<PacketId>>,
    /// Credit returns in flight back to each channel, as
    /// `(maturation time, bytes)` in nondecreasing time order.
    pending_credits: Vec<VecDeque<(SimTime, u32)>>,
    /// Drained credit-queue buffers awaiting reuse (capacity retained).
    credit_pool: Vec<VecDeque<(SimTime, u32)>>,
    // ---- cold ----
    pub cold: Vec<ChannelCold>,
}

impl Channels {
    pub fn with_capacity(n: usize) -> Self {
        Self {
            occupancy: Vec::with_capacity(n),
            credits: Vec::with_capacity(n),
            rate: Vec::with_capacity(n),
            available_at: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            prop: Vec::with_capacity(n),
            busy_until: Vec::with_capacity(n),
            busy_ps_epoch: Vec::with_capacity(n),
            train_len: Vec::with_capacity(n),
            train_bytes: Vec::with_capacity(n),
            queues: Vec::with_capacity(n),
            pending_credits: Vec::with_capacity(n),
            credit_pool: Vec::new(),
            cold: Vec::with_capacity(n),
        }
    }

    /// Appends one channel in its initial state.
    pub fn push(&mut self, rate: LinkRate, credits: u32, tunable: bool, prop: SimTime) {
        self.occupancy.push(0);
        self.credits.push(credits);
        self.rate.push(rate);
        self.available_at.push(SimTime::ZERO);
        self.flags.push(if tunable { F_TUNABLE } else { 0 });
        self.prop.push(prop);
        self.busy_until.push(SimTime::ZERO);
        self.busy_ps_epoch.push(0);
        self.train_len.push(0);
        self.train_bytes.push(0);
        self.queues.push(VecDeque::new());
        self.pending_credits.push(VecDeque::new());
        self.cold.push(ChannelCold {
            time_at_rate_ps: [0; LinkRate::COUNT],
            off_ps: 0,
            rate_since: SimTime::ZERO,
            pending_rate: None,
        });
    }

    /// Number of channels.
    #[inline]
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    #[inline]
    pub fn has_flag(&self, i: usize, f: u8) -> bool {
        self.flags[i] & f != 0
    }

    #[inline]
    pub fn set_flag(&mut self, i: usize, f: u8) {
        self.flags[i] |= f;
    }

    #[inline]
    pub fn clear_flag(&mut self, i: usize, f: u8) {
        self.flags[i] &= !f;
    }

    /// Whether the channel has neither queued traffic nor an in-flight
    /// transmission.
    #[inline]
    pub fn queue_is_idle(&self, i: usize) -> bool {
        self.queues[i].is_empty() && self.flags[i] & F_BUSY == 0
    }

    /// Books a credit return of `bytes` maturing at `at`. The buffer
    /// comes from the shared pool when this channel's queue was
    /// previously drained back into it.
    #[inline]
    pub fn push_credit(&mut self, i: usize, at: SimTime, bytes: u32) {
        let q = &mut self.pending_credits[i];
        debug_assert!(
            q.back().map_or(true, |&(t, _)| t <= at),
            "credit returns out of order on ch{i}"
        );
        if q.capacity() == 0 {
            if let Some(buf) = self.credit_pool.pop() {
                self.pending_credits[i] = buf;
                self.pending_credits[i].push_back((at, bytes));
                return;
            }
        }
        q.push_back((at, bytes));
    }

    /// Maturation time of the next pending credit return, if any.
    #[inline]
    pub fn next_credit_at(&self, i: usize) -> Option<SimTime> {
        self.pending_credits[i].front().map(|&(t, _)| t)
    }

    /// Applies every credit return that has matured by `now`. A queue
    /// that drains completely donates its buffer to the shared pool.
    /// Returns the updated credit balance.
    #[inline]
    pub fn apply_matured_credits(&mut self, i: usize, now: SimTime, cap: u32) -> u32 {
        let q = &mut self.pending_credits[i];
        if q.is_empty() {
            return self.credits[i];
        }
        let mut credits = self.credits[i];
        while let Some(&(at, bytes)) = q.front() {
            if at > now {
                break;
            }
            q.pop_front();
            credits += bytes;
            debug_assert!(credits <= cap, "credit overflow on ch{i}");
        }
        let _ = cap;
        self.credits[i] = credits;
        if q.is_empty() && q.capacity() > 0 {
            self.credit_pool.push(std::mem::take(q));
        }
        credits
    }

    /// Closes the current residency interval of channel `i` at `now`.
    pub fn note_interval(&mut self, i: usize, now: SimTime) {
        let cold = &mut self.cold[i];
        let span = (now - cold.rate_since).as_ps();
        if self.flags[i] & F_OFF != 0 {
            cold.off_ps += span;
        } else {
            cold.time_at_rate_ps[self.rate[i].index()] += span;
        }
        cold.rate_since = now;
    }

    /// Utilization of channel `i` over the epoch that just ended.
    pub fn epoch_utilization(&self, i: usize, epoch: SimTime) -> f64 {
        let busy = self.busy_ps_epoch[i];
        // Idle channels dominate under light load; skipping the f64
        // divide for them is exact (0/x == 0.0), not an approximation.
        if busy == 0 {
            return 0.0;
        }
        (busy as f64 / epoch.as_ps() as f64).min(1.0)
    }

    /// Transitions the channel's powered state, closing the residency
    /// interval (dynamic topologies, §5.2).
    pub fn set_off(&mut self, i: usize, now: SimTime, off: bool) {
        debug_assert!(!off || self.queue_is_idle(i), "powering off a busy channel");
        self.note_interval(i, now);
        if off {
            self.set_flag(i, F_OFF);
        } else {
            self.clear_flag(i, F_OFF);
        }
    }

    /// Brings the channel up at `rate`, unusable until the reactivation
    /// completes.
    pub fn reactivate(&mut self, i: usize, now: SimTime, reactivation: SimTime, rate: LinkRate) {
        self.note_interval(i, now);
        self.rate[i] = rate;
        self.available_at[i] = now + reactivation;
    }

    /// Parks (or clears) a drain-first rate change, keeping the
    /// hot-side `F_DRAINING` mirror in sync.
    pub fn set_pending_rate(&mut self, i: usize, rate: Option<LinkRate>) {
        self.cold[i].pending_rate = rate;
        if rate.is_some() {
            self.set_flag(i, F_DRAINING);
        } else {
            self.clear_flag(i, F_DRAINING);
        }
    }

    /// Takes the parked drain-first rate change, if any.
    pub fn take_pending_rate(&mut self, i: usize) -> Option<LinkRate> {
        let rate = self.cold[i].pending_rate.take();
        self.clear_flag(i, F_DRAINING);
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two() -> Channels {
        let mut c = Channels::with_capacity(2);
        c.push(LinkRate::MAX, 1024, true, SimTime::from_ns(5));
        c.push(LinkRate::MAX, 1024, false, SimTime::from_ns(5));
        c
    }

    #[test]
    fn flags_latch_and_clear() {
        let mut c = two();
        assert!(!c.has_flag(0, F_BUSY));
        c.set_flag(0, F_BUSY | F_RETRY);
        assert!(c.has_flag(0, F_BUSY));
        assert!(c.has_flag(0, F_RETRY));
        assert!(!c.has_flag(1, F_BUSY));
        c.clear_flag(0, F_BUSY);
        assert!(!c.has_flag(0, F_BUSY));
        assert!(c.has_flag(0, F_RETRY));
    }

    #[test]
    fn matured_credits_apply_in_order_and_pool_buffers() {
        let mut c = two();
        c.credits[0] = 0;
        c.push_credit(0, SimTime::from_ns(10), 100);
        c.push_credit(0, SimTime::from_ns(20), 200);
        assert_eq!(c.next_credit_at(0), Some(SimTime::from_ns(10)));
        assert_eq!(c.apply_matured_credits(0, SimTime::from_ns(15), 1024), 100);
        assert_eq!(c.next_credit_at(0), Some(SimTime::from_ns(20)));
        // Full drain donates the buffer to the pool...
        assert_eq!(c.apply_matured_credits(0, SimTime::from_ns(25), 1024), 300);
        assert_eq!(c.credit_pool.len(), 1);
        let pooled_cap = c.credit_pool[0].capacity();
        assert!(pooled_cap > 0);
        // ...and the next booking on any channel reuses it.
        c.push_credit(1, SimTime::from_ns(30), 50);
        assert!(c.credit_pool.is_empty());
        assert!(c.pending_credits[1].capacity() >= pooled_cap.min(1));
    }

    #[test]
    fn pending_rate_mirrors_draining_flag() {
        let mut c = two();
        c.set_pending_rate(0, Some(LinkRate::MIN));
        assert!(c.has_flag(0, F_DRAINING));
        assert_eq!(c.take_pending_rate(0), Some(LinkRate::MIN));
        assert!(!c.has_flag(0, F_DRAINING));
        assert_eq!(c.take_pending_rate(0), None);
    }

    #[test]
    fn residency_intervals_accumulate_per_state() {
        let mut c = two();
        c.note_interval(0, SimTime::from_ns(100));
        assert_eq!(
            c.cold[0].time_at_rate_ps[LinkRate::MAX.index()],
            SimTime::from_ns(100).as_ps()
        );
        c.set_off(0, SimTime::from_ns(150), true);
        c.note_interval(0, SimTime::from_ns(250));
        assert_eq!(c.cold[0].off_ps, SimTime::from_ns(100).as_ps());
    }
}
