//! Struct-of-arrays channel state.
//!
//! The engine touches a handful of channel fields on every event —
//! queue occupancy, flow-control credits, the configured rate, the
//! next-free time, and a few boolean latches. Keeping those in dense
//! parallel `Vec`s indexed by [`ChannelId::index`] packs the working
//! set of a paper-scale fabric into a few cache lines per event,
//! instead of striding across ~200-byte `Channel` structs for every
//! occupancy probe the adaptive router makes. Config and telemetry
//! fields that only the per-epoch controller or the end-of-run
//! reporter read (residency accounting, drain-first state, tunability)
//! live in a cold side table so they never share a line with the hot
//! arrays.
//!
//! Credit-return bookkeeping uses per-channel queues backed by a
//! shared free-list pool: a queue that drains to empty donates its
//! buffer back to the pool, and the next channel that books a return
//! reuses it. After warmup the pool holds the high-water number of
//! concurrently busy queues and steady-state operation performs no
//! heap allocation (verified by the counting allocator in
//! `epnet-bench::scalebench` and the regression tests).
//!
//! # The active set
//!
//! Epoch ticks are O(touched), not O(topology): a dense dirty list
//! plus a membership bitmap track every channel that might need the
//! controller's attention — it transmitted, queued, blocked, drained,
//! powered on/off, or sits above the floor rate. A channel outside the
//! set is *resting*: idle at the floor with an empty queue, which
//! provably decides "hold" under every rate policy (the
//! `idle_at_floor_always_holds` invariant in `controller.rs`), so the
//! per-epoch sweep skips it entirely — decision, queue-depth sample,
//! and overhang pre-charge alike. Channels enter the set at the
//! mutation sites (`enqueue`, rate writes, power transitions) and
//! retire only at epoch ticks once resting again. The same mutation
//! sites maintain an incremental count of rate/power-asymmetric links
//! via the [`Channels::peer`] table, replacing the per-epoch O(links)
//! asymmetry sweep with a counter read. `EPNET_EPOCH=sweep` keeps the
//! full-sweep reference alive (see `engine.rs`).

use crate::packet::PacketId;
use crate::SimTime;
use epnet_power::LinkRate;
use std::collections::VecDeque;

/// A packet is currently being serialized on the channel.
pub(crate) const F_BUSY: u8 = 1 << 0;
/// The channel is powered off (dynamic topologies, §5.2).
pub(crate) const F_OFF: u8 = 1 << 1;
/// A `Retry` event is already pending.
pub(crate) const F_RETRY: u8 = 1 << 2;
/// A `CreditWake` event is already pending.
pub(crate) const F_CREDIT_WAKE: u8 = 1 << 3;
/// A drain-first rate change is parked on this channel — mirrors
/// `ChannelCold::pending_rate.is_some()` so the adaptive router's
/// "remove from the legal routes" check (§3.2) stays on the hot side.
pub(crate) const F_DRAINING: u8 = 1 << 4;
/// The controller may retune this channel (set once at construction).
/// Lives in the flags byte so the per-epoch decision sweep — every
/// channel, every tick — never has to touch the cold table for the
/// channels it skips.
pub(crate) const F_TUNABLE: u8 = 1 << 5;

/// Cold per-channel state: read at epoch ticks and at finish, never on
/// the per-event fast path.
#[derive(Debug, Clone)]
pub(crate) struct ChannelCold {
    /// Residency accounting: time at each rate since the run started.
    pub time_at_rate_ps: [u64; LinkRate::COUNT],
    /// Time powered off (dynamic topologies, §5.2).
    pub off_ps: u64,
    /// When the current rate/off interval began.
    pub rate_since: SimTime,
    /// Rate change waiting for the queue to drain (§3.2's first
    /// tolerance option).
    pub pending_rate: Option<LinkRate>,
}

/// All per-channel runtime state, split hot (per-event) from cold
/// (per-epoch / per-run). Every `Vec` is indexed by
/// [`ChannelId::index`].
#[derive(Debug)]
pub(crate) struct Channels {
    // ---- hot: touched on the per-event fast path ----
    /// Bytes in the output queue (including the packet being
    /// serialized) — the adaptive router's congestion signal.
    pub occupancy: Vec<u64>,
    /// Remaining downstream buffer credits, in bytes.
    pub credits: Vec<u32>,
    /// Configured rate.
    pub rate: Vec<LinkRate>,
    /// Channel unusable until this time (reactivation, §3.1).
    pub available_at: Vec<SimTime>,
    /// `F_*` latches.
    pub flags: Vec<u8>,
    /// Propagation delay of the physical medium.
    pub prop: Vec<SimTime>,
    /// End of the in-progress transmission, if any.
    pub busy_until: Vec<SimTime>,
    /// Busy picoseconds accumulated this epoch.
    pub busy_ps_epoch: Vec<u64>,
    /// Packets in the in-progress transmission train (0 when idle).
    pub train_len: Vec<u32>,
    /// Total bytes of the in-progress train.
    pub train_bytes: Vec<u64>,
    /// Output queues feeding each channel (elastic).
    pub queues: Vec<VecDeque<PacketId>>,
    /// Credit returns in flight back to each channel, as
    /// `(maturation time, bytes)` in nondecreasing time order.
    pending_credits: Vec<VecDeque<(SimTime, u32)>>,
    /// Drained credit-queue buffers awaiting reuse (capacity retained).
    credit_pool: Vec<VecDeque<(SimTime, u32)>>,
    // ---- active set (per-epoch, see module docs) ----
    /// Dense list of channels the epoch controller must visit.
    active: Vec<u32>,
    /// Membership bitmap over `active` (one bit per channel).
    active_bits: Vec<u64>,
    /// Opposing channel of the same link (self until the engine wires
    /// the fabric's link table; a self-peer is never asymmetric).
    peer: Vec<u32>,
    /// Links whose two channels currently differ in rate or powered
    /// state — maintained incrementally at every rate/`F_OFF` write, so
    /// `asymmetric_link_samples` no longer needs a per-epoch link sweep.
    asym_links: u64,
    /// Whether rate/`F_OFF` writes maintain `asym_links` incrementally.
    /// Shard mirrors in the parallel engine turn this off: a mirror's
    /// view of its peer channel can be stale when the peer lives on
    /// another shard, so the incremental deltas would be garbage there.
    /// The coordinator recounts from gathered authoritative state at
    /// every epoch tick instead ([`Channels::recount_asymmetry`]).
    asym_tracking: bool,
    // ---- cold ----
    pub cold: Vec<ChannelCold>,
}

impl Channels {
    pub fn with_capacity(n: usize) -> Self {
        Self {
            occupancy: Vec::with_capacity(n),
            credits: Vec::with_capacity(n),
            rate: Vec::with_capacity(n),
            available_at: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            prop: Vec::with_capacity(n),
            busy_until: Vec::with_capacity(n),
            busy_ps_epoch: Vec::with_capacity(n),
            train_len: Vec::with_capacity(n),
            train_bytes: Vec::with_capacity(n),
            queues: Vec::with_capacity(n),
            pending_credits: Vec::with_capacity(n),
            credit_pool: Vec::new(),
            active: Vec::with_capacity(n),
            active_bits: Vec::with_capacity(n.div_ceil(64)),
            peer: Vec::with_capacity(n),
            asym_links: 0,
            asym_tracking: true,
            cold: Vec::with_capacity(n),
        }
    }

    /// Appends one channel in its initial state. New channels start in
    /// the active set (they sit at `rate`, typically above the floor);
    /// the first epoch tick retires the ones that turn out resting.
    pub fn push(&mut self, rate: LinkRate, credits: u32, tunable: bool, prop: SimTime) {
        let i = self.flags.len();
        self.occupancy.push(0);
        self.credits.push(credits);
        self.rate.push(rate);
        self.available_at.push(SimTime::ZERO);
        self.flags.push(if tunable { F_TUNABLE } else { 0 });
        self.prop.push(prop);
        self.busy_until.push(SimTime::ZERO);
        self.busy_ps_epoch.push(0);
        self.train_len.push(0);
        self.train_bytes.push(0);
        self.queues.push(VecDeque::new());
        self.pending_credits.push(VecDeque::new());
        if i % 64 == 0 {
            self.active_bits.push(0);
        }
        self.active_bits[i / 64] |= 1u64 << (i % 64);
        self.active.push(i as u32);
        self.peer.push(i as u32);
        self.cold.push(ChannelCold {
            time_at_rate_ps: [0; LinkRate::COUNT],
            off_ps: 0,
            rate_since: SimTime::ZERO,
            pending_rate: None,
        });
    }

    /// Number of channels.
    #[inline]
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// The smallest propagation delay of any channel — the parallel
    /// engine's legacy *global* lookahead bound (`EPNET_PAR_LOOKAHEAD=
    /// global`): no channel can deliver an event sooner than this after
    /// its cause. `None` on an empty fabric.
    pub fn min_propagation(&self) -> Option<SimTime> {
        self.prop.iter().copied().min()
    }

    /// Wires the two channels of a link as peers (both directions).
    /// Called once per link at simulator construction; required for the
    /// incremental asymmetry counter to see real links.
    pub fn set_peers(&mut self, a: usize, b: usize) {
        self.peer[a] = b as u32;
        self.peer[b] = a as u32;
    }

    /// Inserts channel `i` into the active set (idempotent).
    #[inline]
    pub fn mark_active(&mut self, i: usize) {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if self.active_bits[word] & bit == 0 {
            self.active_bits[word] |= bit;
            self.active.push(i as u32);
        }
    }

    /// Whether channel `i` is in the active set.
    #[inline]
    pub fn is_active(&self, i: usize) -> bool {
        self.active_bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sorts the active list ascending. Controller decisions must run
    /// in channel-index order — decision order fixes event insertion
    /// order, and FIFO tie-breaking makes that order part of the
    /// byte-identical output contract.
    pub fn sort_active(&mut self) {
        self.active.sort_unstable();
    }

    /// Number of channels currently in the active set.
    #[inline]
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// The `k`-th entry of the active list (index-based access so the
    /// engine can mutate channel state mid-iteration; entries appended
    /// during a pass land past the caller's snapshot length).
    #[inline]
    pub fn active_at(&self, k: usize) -> u32 {
        self.active[k]
    }

    /// Links whose two channels currently differ in rate or powered
    /// state — the incrementally maintained replacement for the
    /// per-epoch asymmetry sweep (§3.3.1 sampling).
    #[inline]
    pub fn asymmetric_links(&self) -> u64 {
        self.asym_links
    }

    /// Whether the link through channel `i` is asymmetric: its two
    /// channels differ in rate or in powered state.
    #[inline]
    pub fn link_is_asymmetric(&self, i: usize) -> bool {
        let p = self.peer[i] as usize;
        self.rate[i] != self.rate[p] || (self.flags[i] ^ self.flags[p]) & F_OFF != 0
    }

    /// Applies `f` to channel `i`'s state while keeping the asymmetric-
    /// link counter exact, and marks the channel active: every rate or
    /// `F_OFF` mutation funnels through here.
    #[inline]
    fn mutate_link_state(&mut self, i: usize, f: impl FnOnce(&mut Self)) {
        if !self.asym_tracking {
            f(self);
            self.mark_active(i);
            return;
        }
        let was = self.link_is_asymmetric(i);
        f(self);
        let is = self.link_is_asymmetric(i);
        match (was, is) {
            (false, true) => self.asym_links += 1,
            (true, false) => self.asym_links = self.asym_links.saturating_sub(1),
            _ => {}
        }
        self.mark_active(i);
    }

    /// Stops maintaining the incremental asymmetry counter (shard
    /// mirrors — see the `asym_tracking` field docs).
    pub fn disable_asym_tracking(&mut self) {
        self.asym_tracking = false;
        self.asym_links = 0;
    }

    /// Recomputes `asym_links` from scratch. The parallel engine's
    /// coordinator calls this on the gathered master state at every
    /// epoch tick: the serial engine's sweep-mode cross-check asserts
    /// that this recount always equals the incremental counter, so
    /// substituting the recount preserves byte-identical reports.
    pub fn recount_asymmetry(&mut self) {
        let mut n = 0u64;
        for i in 0..self.len() {
            if (i as u32) < self.peer[i] && self.link_is_asymmetric(i) {
                n += 1;
            }
        }
        self.asym_links = n;
    }

    /// Inserts every channel into the active set. The coordinator's
    /// gathered master state runs epoch ticks in sweep mode, whose
    /// cross-check assertions require channels with residual occupancy
    /// or overhang to be active; an all-active master trivially
    /// satisfies that, and sweep-mode output never depends on set
    /// membership.
    pub fn mark_all_active(&mut self) {
        for i in 0..self.len() {
            self.mark_active(i);
        }
    }

    /// Copies channel `i`'s mutable state from `src` (hot fields plus
    /// the cold residency record, optionally the output queue). Static
    /// topology fields (`prop`, `peer`), active-set membership, and the
    /// pending credit-return ring are left alone — the ring travels
    /// separately via [`Channels::copy_pending_credits_from`] on the
    /// hybrid paths that need the coordinator's `try_tx` to apply
    /// matured credits exactly as the owning shard would.
    ///
    /// This is the gather/scatter primitive of the parallel engine's
    /// epoch-tick barrier: shard-authoritative channel ranges are
    /// copied onto the coordinator's master `Channels`, the serial
    /// epoch handler runs there, and the mutated state is copied back.
    pub fn copy_channel_from(&mut self, src: &Channels, i: usize, include_queue: bool) {
        self.occupancy[i] = src.occupancy[i];
        self.credits[i] = src.credits[i];
        self.rate[i] = src.rate[i];
        self.available_at[i] = src.available_at[i];
        self.flags[i] = src.flags[i];
        self.busy_until[i] = src.busy_until[i];
        self.busy_ps_epoch[i] = src.busy_ps_epoch[i];
        self.train_len[i] = src.train_len[i];
        self.train_bytes[i] = src.train_bytes[i];
        self.cold[i] = src.cold[i].clone();
        if include_queue {
            self.queues[i].clear();
            self.queues[i].extend(src.queues[i].iter().copied());
        }
    }

    /// Replaces channel `i`'s pending credit-return ring with `src`'s.
    ///
    /// Under the hybrid model a flow demotion during the coordinator's
    /// epoch phase re-enters the packet path *on the master*, whose
    /// `try_tx` then applies matured credits and arms `CreditWake`
    /// timers; the ring is gathered alongside the queue so those
    /// decisions match the owning shard's state bit for bit, and the
    /// consumed ring is scattered back to demoted channels. The credit
    /// *pool* (buffer reuse) is deliberately not transferred — it only
    /// affects allocation recycling, never simulated behavior.
    pub fn copy_pending_credits_from(&mut self, src: &Channels, i: usize) {
        self.pending_credits[i].clear();
        self.pending_credits[i].extend(src.pending_credits[i].iter().copied());
    }

    /// Sets the configured rate of channel `i`, maintaining the
    /// asymmetry counter and the active set. All rate writes after
    /// construction must come through here (or
    /// [`Channels::reactivate`]).
    pub fn set_rate(&mut self, i: usize, rate: LinkRate) {
        self.mutate_link_state(i, |c| c.rate[i] = rate);
    }

    /// Whether channel `i` may rest outside the active set: nothing
    /// queued or in flight, no busy time to account (post-recharge), no
    /// parked drain — and no possible controller decision, because the
    /// channel is either exempt (`!F_TUNABLE` or `F_OFF`), already at
    /// the floor (where `idle_at_floor_always_holds` proves the
    /// decision is "hold"), or decisions are disabled entirely
    /// (`ControlMode::AlwaysFull`).
    #[inline]
    fn is_resting(&self, i: usize, min_rate: LinkRate, decisions_enabled: bool) -> bool {
        let resting = self.occupancy[i] == 0
            && self.busy_ps_epoch[i] == 0
            && self.flags[i] & F_DRAINING == 0
            && (!decisions_enabled
                || self.flags[i] & (F_TUNABLE | F_OFF) != F_TUNABLE
                || self.rate[i] == min_rate);
        debug_assert!(
            self.occupancy[i] > 0 || self.flags[i] & (F_BUSY | F_RETRY | F_CREDIT_WAKE) == 0,
            "ch{i}: wake latches without queued bytes"
        );
        resting
    }

    /// The active-mode epoch pass over the set: samples queue depth,
    /// pre-charges the next epoch with each in-flight transmission's
    /// overhang, and compacts resting channels out of the set. Returns
    /// `(queued_bytes_sum, queued_bytes_peak)` — identical to the full
    /// sweep's values because every skipped channel contributes zero
    /// occupancy and zero overhang by the resting definition.
    pub fn sample_active_and_retire(
        &mut self,
        now: SimTime,
        epoch_ps: u64,
        min_rate: LinkRate,
        decisions_enabled: bool,
    ) -> (u64, u64) {
        let mut queued_sum = 0u64;
        let mut queued_peak = 0u64;
        let mut keep = 0usize;
        for k in 0..self.active.len() {
            let i = self.active[k] as usize;
            let occ = self.occupancy[i];
            queued_sum += occ;
            queued_peak = queued_peak.max(occ);
            let overhang = self.busy_until[i].saturating_sub(now);
            self.busy_ps_epoch[i] = overhang.as_ps().min(epoch_ps);
            if self.is_resting(i, min_rate, decisions_enabled) {
                self.active_bits[i / 64] &= !(1u64 << (i % 64));
            } else {
                self.active[keep] = i as u32;
                keep += 1;
            }
        }
        self.active.truncate(keep);
        (queued_sum, queued_peak)
    }

    /// Sweep-mode twin of [`Channels::sample_active_and_retire`]:
    /// compacts resting channels out of the set without sampling (the
    /// engine's reference full sweep already recharged every channel).
    /// Keeping the set maintained in sweep mode makes the two modes'
    /// retained state identical, so the cross-check debug assertions
    /// hold in either.
    pub fn retire_resting(&mut self, min_rate: LinkRate, decisions_enabled: bool) {
        let mut keep = 0usize;
        for k in 0..self.active.len() {
            let i = self.active[k] as usize;
            if self.is_resting(i, min_rate, decisions_enabled) {
                self.active_bits[i / 64] &= !(1u64 << (i % 64));
            } else {
                self.active[keep] = i as u32;
                keep += 1;
            }
        }
        self.active.truncate(keep);
    }

    #[inline]
    pub fn has_flag(&self, i: usize, f: u8) -> bool {
        self.flags[i] & f != 0
    }

    #[inline]
    pub fn set_flag(&mut self, i: usize, f: u8) {
        self.flags[i] |= f;
    }

    #[inline]
    pub fn clear_flag(&mut self, i: usize, f: u8) {
        self.flags[i] &= !f;
    }

    /// Whether the channel has neither queued traffic nor an in-flight
    /// transmission.
    #[inline]
    pub fn queue_is_idle(&self, i: usize) -> bool {
        self.queues[i].is_empty() && self.flags[i] & F_BUSY == 0
    }

    /// Books a credit return of `bytes` maturing at `at`. The buffer
    /// comes from the shared pool when this channel's queue was
    /// previously drained back into it.
    #[inline]
    pub fn push_credit(&mut self, i: usize, at: SimTime, bytes: u32) {
        let q = &mut self.pending_credits[i];
        debug_assert!(
            q.back().map_or(true, |&(t, _)| t <= at),
            "credit returns out of order on ch{i}"
        );
        if q.capacity() == 0 {
            if let Some(buf) = self.credit_pool.pop() {
                self.pending_credits[i] = buf;
                self.pending_credits[i].push_back((at, bytes));
                return;
            }
        }
        q.push_back((at, bytes));
    }

    /// Maturation time of the next pending credit return, if any.
    #[inline]
    pub fn next_credit_at(&self, i: usize) -> Option<SimTime> {
        self.pending_credits[i].front().map(|&(t, _)| t)
    }

    /// Applies every credit return that has matured by `now`. A queue
    /// that drains completely donates its buffer to the shared pool.
    /// Returns the updated credit balance.
    #[inline]
    pub fn apply_matured_credits(&mut self, i: usize, now: SimTime, cap: u32) -> u32 {
        let q = &mut self.pending_credits[i];
        if q.is_empty() {
            return self.credits[i];
        }
        let mut credits = self.credits[i];
        while let Some(&(at, bytes)) = q.front() {
            if at > now {
                break;
            }
            q.pop_front();
            credits += bytes;
            debug_assert!(credits <= cap, "credit overflow on ch{i}");
        }
        let _ = cap;
        self.credits[i] = credits;
        if q.is_empty() && q.capacity() > 0 {
            self.credit_pool.push(std::mem::take(q));
        }
        credits
    }

    /// Closes the current residency interval of channel `i` at `now`.
    pub fn note_interval(&mut self, i: usize, now: SimTime) {
        let cold = &mut self.cold[i];
        let span = (now - cold.rate_since).as_ps();
        if self.flags[i] & F_OFF != 0 {
            cold.off_ps += span;
        } else {
            cold.time_at_rate_ps[self.rate[i].index()] += span;
        }
        cold.rate_since = now;
    }

    /// Utilization of channel `i` over the epoch that just ended.
    pub fn epoch_utilization(&self, i: usize, epoch: SimTime) -> f64 {
        let busy = self.busy_ps_epoch[i];
        // Idle channels dominate under light load; skipping the f64
        // divide for them is exact (0/x == 0.0), not an approximation.
        if busy == 0 {
            return 0.0;
        }
        (busy as f64 / epoch.as_ps() as f64).min(1.0)
    }

    /// Transitions the channel's powered state, closing the residency
    /// interval (dynamic topologies, §5.2). Maintains the asymmetry
    /// counter and the active set — `F_OFF` is half of the link-
    /// asymmetry predicate.
    pub fn set_off(&mut self, i: usize, now: SimTime, off: bool) {
        debug_assert!(!off || self.queue_is_idle(i), "powering off a busy channel");
        self.note_interval(i, now);
        self.mutate_link_state(i, |c| {
            if off {
                c.set_flag(i, F_OFF);
            } else {
                c.clear_flag(i, F_OFF);
            }
        });
    }

    /// Brings the channel up at `rate`, unusable until the reactivation
    /// completes.
    pub fn reactivate(&mut self, i: usize, now: SimTime, reactivation: SimTime, rate: LinkRate) {
        self.note_interval(i, now);
        self.set_rate(i, rate);
        self.available_at[i] = now + reactivation;
    }

    /// Parks (or clears) a drain-first rate change, keeping the
    /// hot-side `F_DRAINING` mirror in sync. A draining channel is
    /// never resting, so parking one pins it in the active set.
    pub fn set_pending_rate(&mut self, i: usize, rate: Option<LinkRate>) {
        self.cold[i].pending_rate = rate;
        if rate.is_some() {
            self.set_flag(i, F_DRAINING);
            self.mark_active(i);
        } else {
            self.clear_flag(i, F_DRAINING);
        }
    }

    /// Takes the parked drain-first rate change, if any.
    pub fn take_pending_rate(&mut self, i: usize) -> Option<LinkRate> {
        let rate = self.cold[i].pending_rate.take();
        self.clear_flag(i, F_DRAINING);
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two() -> Channels {
        let mut c = Channels::with_capacity(2);
        c.push(LinkRate::MAX, 1024, true, SimTime::from_ns(5));
        c.push(LinkRate::MAX, 1024, false, SimTime::from_ns(5));
        c
    }

    #[test]
    fn flags_latch_and_clear() {
        let mut c = two();
        assert!(!c.has_flag(0, F_BUSY));
        c.set_flag(0, F_BUSY | F_RETRY);
        assert!(c.has_flag(0, F_BUSY));
        assert!(c.has_flag(0, F_RETRY));
        assert!(!c.has_flag(1, F_BUSY));
        c.clear_flag(0, F_BUSY);
        assert!(!c.has_flag(0, F_BUSY));
        assert!(c.has_flag(0, F_RETRY));
    }

    #[test]
    fn matured_credits_apply_in_order_and_pool_buffers() {
        let mut c = two();
        c.credits[0] = 0;
        c.push_credit(0, SimTime::from_ns(10), 100);
        c.push_credit(0, SimTime::from_ns(20), 200);
        assert_eq!(c.next_credit_at(0), Some(SimTime::from_ns(10)));
        assert_eq!(c.apply_matured_credits(0, SimTime::from_ns(15), 1024), 100);
        assert_eq!(c.next_credit_at(0), Some(SimTime::from_ns(20)));
        // Full drain donates the buffer to the pool...
        assert_eq!(c.apply_matured_credits(0, SimTime::from_ns(25), 1024), 300);
        assert_eq!(c.credit_pool.len(), 1);
        let pooled_cap = c.credit_pool[0].capacity();
        assert!(pooled_cap > 0);
        // ...and the next booking on any channel reuses it.
        c.push_credit(1, SimTime::from_ns(30), 50);
        assert!(c.credit_pool.is_empty());
        assert!(c.pending_credits[1].capacity() >= pooled_cap.min(1));
    }

    #[test]
    fn pending_rate_mirrors_draining_flag() {
        let mut c = two();
        c.set_pending_rate(0, Some(LinkRate::MIN));
        assert!(c.has_flag(0, F_DRAINING));
        assert_eq!(c.take_pending_rate(0), Some(LinkRate::MIN));
        assert!(!c.has_flag(0, F_DRAINING));
        assert_eq!(c.take_pending_rate(0), None);
    }

    #[test]
    fn residency_intervals_accumulate_per_state() {
        let mut c = two();
        c.note_interval(0, SimTime::from_ns(100));
        assert_eq!(
            c.cold[0].time_at_rate_ps[LinkRate::MAX.index()],
            SimTime::from_ns(100).as_ps()
        );
        c.set_off(0, SimTime::from_ns(150), true);
        c.note_interval(0, SimTime::from_ns(250));
        assert_eq!(c.cold[0].off_ps, SimTime::from_ns(100).as_ps());
    }

    #[test]
    fn channels_start_active_and_rest_once_at_the_floor() {
        let mut c = two();
        c.set_peers(0, 1);
        assert_eq!(c.active_len(), 2);
        assert!(c.is_active(0) && c.is_active(1));
        // Both idle but above the floor: decisions still possible for
        // the tunable one; the untunable one retires immediately.
        c.retire_resting(LinkRate::MIN, true);
        assert!(c.is_active(0), "tunable above floor must stay active");
        assert!(!c.is_active(1), "exempt idle channel must rest");
        // At the floor, the tunable one rests too...
        c.set_rate(0, LinkRate::MIN);
        c.set_rate(1, LinkRate::MIN);
        c.retire_resting(LinkRate::MIN, true);
        assert_eq!(c.active_len(), 0);
        // ...and re-enters the set on the next rate write.
        c.set_rate(0, LinkRate::MAX);
        assert!(c.is_active(0));
        assert_eq!(c.active_len(), 1);
        // mark_active is idempotent: no duplicate dense entries.
        c.mark_active(0);
        assert_eq!(c.active_len(), 1);
    }

    #[test]
    fn resting_requires_idle_queue_and_zero_busy() {
        let mut c = two();
        c.set_rate(0, LinkRate::MIN);
        c.occupancy[0] = 64;
        c.retire_resting(LinkRate::MIN, true);
        assert!(c.is_active(0), "queued bytes pin the channel active");
        c.occupancy[0] = 0;
        c.busy_ps_epoch[0] = 10;
        c.retire_resting(LinkRate::MIN, true);
        assert!(
            c.is_active(0),
            "pre-charged overhang pins the channel active"
        );
        c.busy_ps_epoch[0] = 0;
        c.set_pending_rate(0, Some(LinkRate::MIN));
        c.retire_resting(LinkRate::MIN, true);
        assert!(c.is_active(0), "a parked drain pins the channel active");
        c.take_pending_rate(0);
        c.retire_resting(LinkRate::MIN, true);
        assert!(!c.is_active(0));
    }

    #[test]
    fn always_full_mode_rests_idle_channels_at_any_rate() {
        let mut c = two();
        // decisions_enabled = false (ControlMode::AlwaysFull): an idle
        // channel rests even at the ceiling, because no decision will
        // ever be taken for it.
        c.retire_resting(LinkRate::MIN, false);
        assert_eq!(c.active_len(), 0);
    }

    #[test]
    fn asymmetry_counter_tracks_rate_and_power_divergence() {
        let mut c = two();
        c.set_peers(0, 1);
        assert_eq!(c.asymmetric_links(), 0);
        c.set_rate(0, LinkRate::MIN);
        assert_eq!(c.asymmetric_links(), 1);
        assert!(c.link_is_asymmetric(0) && c.link_is_asymmetric(1));
        // Converging the peer restores symmetry.
        c.set_rate(1, LinkRate::MIN);
        assert_eq!(c.asymmetric_links(), 0);
        // Powered-state divergence counts too (§3.3.1's evidence
        // includes off-vs-on links).
        c.set_off(0, SimTime::ZERO, true);
        assert_eq!(c.asymmetric_links(), 1);
        c.set_off(1, SimTime::ZERO, true);
        assert_eq!(c.asymmetric_links(), 0);
        // Reactivation at a diverging rate re-raises the counter.
        c.set_off(0, SimTime::ZERO, false);
        assert_eq!(c.asymmetric_links(), 1);
        c.reactivate(0, SimTime::ZERO, SimTime::from_us(1), LinkRate::MAX);
        assert_eq!(c.asymmetric_links(), 1);
        assert!(c.is_active(0));
    }

    #[test]
    fn recount_matches_incremental_counter() {
        let mut c = Channels::with_capacity(4);
        for _ in 0..4 {
            c.push(LinkRate::MAX, 1024, true, SimTime::from_ns(5));
        }
        c.set_peers(0, 1);
        c.set_peers(2, 3);
        c.set_rate(0, LinkRate::MIN);
        c.set_off(2, SimTime::ZERO, true);
        assert_eq!(c.asymmetric_links(), 2);
        c.recount_asymmetry();
        assert_eq!(c.asymmetric_links(), 2, "recount must agree");
        // A mirror with tracking disabled never drifts the counter on
        // rate writes, and a later recount restores the true value.
        c.disable_asym_tracking();
        c.set_rate(1, LinkRate::MIN);
        assert_eq!(c.asymmetric_links(), 0);
        c.recount_asymmetry();
        assert_eq!(c.asymmetric_links(), 1, "only the off link remains");
    }

    #[test]
    fn copy_channel_from_transfers_mutable_state() {
        let mut a = two();
        let mut b = two();
        a.occupancy[0] = 77;
        a.set_rate(0, LinkRate::MIN);
        a.busy_until[0] = SimTime::from_us(3);
        a.note_interval(0, SimTime::from_us(1));
        let mut arena = crate::packet::PacketArena::new();
        let id = arena.place(
            9,
            crate::packet::Packet {
                dst: epnet_topology::HostId::new(0),
                bytes: 1,
                created: SimTime::ZERO,
                message: crate::packet::MessageId(0),
                hops: 0,
                misroutes_left: 0,
            },
        );
        a.queues[0].push_back(id);
        b.copy_channel_from(&a, 0, true);
        assert_eq!(b.occupancy[0], 77);
        assert_eq!(b.rate[0], LinkRate::MIN);
        assert_eq!(b.busy_until[0], SimTime::from_us(3));
        assert_eq!(b.cold[0].time_at_rate_ps, a.cold[0].time_at_rate_ps);
        assert_eq!(b.queues[0].len(), 1);
        b.copy_channel_from(&a, 1, false);
        assert!(b.queues[1].is_empty());
    }

    #[test]
    fn self_peered_channels_are_never_asymmetric() {
        // Unit-style construction without `set_peers`: every channel is
        // its own peer and the counter must stay pinned at zero.
        let mut c = two();
        c.set_rate(0, LinkRate::MIN);
        c.set_off(1, SimTime::ZERO, true);
        assert_eq!(c.asymmetric_links(), 0);
    }

    #[test]
    fn sample_active_and_retire_matches_full_sweep() {
        let mut c = Channels::with_capacity(130);
        for _ in 0..130 {
            c.push(LinkRate::MAX, 1024, true, SimTime::from_ns(5));
        }
        c.occupancy[3] = 100;
        c.occupancy[129] = 250;
        c.busy_until[7] = SimTime::from_us(12);
        let now = SimTime::from_us(10);
        let epoch_ps = SimTime::from_us(10).as_ps();
        let (sum, peak) = c.sample_active_and_retire(now, epoch_ps, LinkRate::MIN, true);
        assert_eq!(sum, 350);
        assert_eq!(peak, 250);
        // Overhang pre-charge survives into the next epoch's budget.
        assert_eq!(c.busy_ps_epoch[7], SimTime::from_us(2).as_ps());
        // Everything stays active here (all at MAX > floor)...
        assert_eq!(c.active_len(), 130);
        // ...but dropping the idle ones to the floor retires all except
        // the queued two and the one with overhang.
        for i in 0..130 {
            c.set_rate(i, LinkRate::MIN);
        }
        let (sum2, _) = c.sample_active_and_retire(now, epoch_ps, LinkRate::MIN, true);
        assert_eq!(sum2, 350);
        let mut left: Vec<u32> = (0..c.active_len()).map(|k| c.active_at(k)).collect();
        left.sort_unstable();
        assert_eq!(left, vec![3, 7, 129]);
    }
}
