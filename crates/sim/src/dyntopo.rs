//! Dynamic topologies (§5.2): powering entire links off and on.
//!
//! "From a flattened butterfly, we can selectively disable links, thereby
//! changing the topology to a more conventional mesh or torus. ...
//! Additional links (which are cabled as part of the topology) are
//! dynamically powered on as traffic intensity (offered load) increases."
//!
//! Each fully-connected dimension *ring* (the `k` switches sharing all
//! other coordinates) carries three link tiers:
//!
//! * **tier 0** — adjacent-digit links (the mesh skeleton; never off),
//! * **tier 1** — the wraparound link (mesh → torus),
//! * **tier 2** — the remaining chords (torus → full flattened
//!   butterfly).
//!
//! A per-ring controller raises the tier when the enabled links run hot
//! and lowers it when they run cold. Disabled links first *drain*
//! (removed from the legal adaptive routes, §3.2's first tolerance
//! option) and only power off once both channels fall idle.

use crate::channels::{Channels, F_OFF};
use crate::config::SimConfig;
use crate::instrument::Instruments;
use crate::stats::Stats;
use crate::SimTime;
use epnet_telemetry::TraceCategory;
use epnet_topology::{FabricGraph, LinkId, LinkMask, PortTarget, RoutingTopology, SwitchId};
use serde::{Deserialize, Serialize};

/// Tuning knobs for the dynamic-topology controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicTopologyConfig {
    /// Ring utilization below which the top enabled tier is shed.
    pub off_threshold: f64,
    /// Ring utilization above which the next tier is powered on.
    pub on_threshold: f64,
}

impl Default for DynamicTopologyConfig {
    fn default() -> Self {
        Self {
            off_threshold: 0.05,
            on_threshold: 0.40,
        }
    }
}

/// Per-link placement inside a ring.
#[derive(Debug, Clone, Copy)]
struct RingSlot {
    ring: u32,
    tier: u8,
}

/// The dynamic-topology controller state.
#[derive(Debug)]
pub struct DynamicTopology {
    config: DynamicTopologyConfig,
    /// Per-link ring membership (`None` for host links).
    slots: Vec<Option<RingSlot>>,
    /// Highest enabled tier per ring (0 = mesh, 1 = torus, 2 = full).
    ring_tier: Vec<u8>,
    /// Links removed from routing and waiting to fall idle.
    draining: Vec<LinkId>,
    /// Links powered off / drained / re-enabled (diagnostics).
    pub(crate) transitions: u64,
}

impl DynamicTopology {
    /// Builds the controller for `fabric`, starting from the full
    /// flattened butterfly (every tier enabled).
    pub fn new(fabric: &FabricGraph, config: DynamicTopologyConfig) -> Self {
        assert!(
            config.off_threshold < config.on_threshold,
            "hysteresis thresholds must be ordered"
        );
        assert_eq!(
            fabric.kind(),
            epnet_topology::FabricKind::FlattenedButterfly,
            "dynamic topologies ride on the butterfly's local routing; \
             \"powering off a link in the folded-Clos topology requires \
             propagating routing changes throughout the entire network\" (§5.2)"
        );
        let k = fabric.radix();
        let groups_per_dim = fabric.num_switches() / k as usize;
        let mut slots = vec![None; fabric.num_links()];
        for s in 0..fabric.num_switches() {
            let sid = SwitchId::new(s as u32);
            let coord = fabric.switch_coord(sid);
            for p in fabric.concentration() as usize..fabric.ports_per_switch() {
                let pid = epnet_topology::PortIndex::new(p as u16);
                let PortTarget::Switch { switch: peer, .. } = fabric.port_target(sid, pid) else {
                    continue;
                };
                let peer_coord = fabric.switch_coord(peer);
                let dim = (0..fabric.switch_dims())
                    .find(|&d| coord.digit(d) != peer_coord.digit(d))
                    .expect("direct links differ in exactly one dimension");
                let (a, b) = (coord.digit(dim), peer_coord.digit(dim));
                let diff = a.abs_diff(b);
                let tier = if diff == 1 {
                    0
                } else if diff == k - 1 {
                    1
                } else {
                    2
                };
                // Ring index: dimension-major, group within dimension.
                let mut group = 0usize;
                let mut stride = 1usize;
                for d in 0..fabric.switch_dims() {
                    if d == dim {
                        continue;
                    }
                    group += coord.digit(d) as usize * stride;
                    stride *= k as usize;
                }
                let ring = (dim * groups_per_dim + group) as u32;
                let link = fabric.link_of(fabric.output_channel(sid, pid));
                slots[link.index()] = Some(RingSlot { ring, tier });
            }
        }
        let rings = fabric.switch_dims() * groups_per_dim;
        Self {
            config,
            slots,
            ring_tier: vec![2; rings],
            draining: Vec::new(),
            transitions: 0,
        }
    }

    /// Number of rings under control.
    pub fn num_rings(&self) -> usize {
        self.ring_tier.len()
    }

    /// Current tier of a ring (0 mesh, 1 torus, 2 full butterfly).
    pub fn ring_tier(&self, ring: usize) -> u8 {
        self.ring_tier[ring]
    }

    /// One controller pass, invoked by the engine at every epoch tick
    /// after the rate controller.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_epoch(
        &mut self,
        now: SimTime,
        fabric: &FabricGraph,
        channels: &mut Channels,
        mask: &mut LinkMask,
        config: &SimConfig,
        stats: &mut Stats,
        inst: &mut Instruments,
    ) {
        // 1. Finish draining links whose channels fell idle.
        let slots = &self.slots;
        let transitions = &mut self.transitions;
        self.draining.retain(|&link| {
            let (a, b) = fabric.link_channels(link);
            let idle = channels.queue_is_idle(a.index()) && channels.queue_is_idle(b.index());
            if idle {
                for ch in [a, b] {
                    channels.set_off(ch.index(), now, true);
                    stats.record_rate(now, ch.raw(), None);
                }
                *transitions += 1;
                stats.reconfigurations += 1;
            }
            let _ = slots;
            !idle
        });

        // 2. Per-ring demand, measured over *enabled, powered* channels.
        let epoch = config.epoch;
        let mut busy = vec![0u128; self.ring_tier.len()];
        let mut count = vec![0u64; self.ring_tier.len()];
        for (l, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let link = LinkId::new(l as u32);
            if !mask.is_enabled(link) {
                continue;
            }
            let (a, b) = fabric.link_channels(link);
            for ch in [a, b] {
                let i = ch.index();
                if !channels.has_flag(i, F_OFF) {
                    busy[slot.ring as usize] += u128::from(channels.busy_ps_epoch[i]);
                    count[slot.ring as usize] += 1;
                }
            }
        }

        // 3. Raise or shed one tier per ring per epoch (gradual, avoids
        //    meta-instability, §3.2).
        for ring in 0..self.ring_tier.len() {
            if count[ring] == 0 {
                continue;
            }
            let util = busy[ring] as f64 / (count[ring] as u128 * u128::from(epoch.as_ps())) as f64;
            let tier = self.ring_tier[ring];
            if util > self.config.on_threshold && tier < 2 {
                self.set_ring_tier(
                    ring,
                    tier + 1,
                    now,
                    fabric,
                    channels,
                    mask,
                    config,
                    stats,
                    inst,
                );
            } else if util < self.config.off_threshold && tier > 0 {
                self.set_ring_tier(
                    ring,
                    tier - 1,
                    now,
                    fabric,
                    channels,
                    mask,
                    config,
                    stats,
                    inst,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn set_ring_tier(
        &mut self,
        ring: usize,
        new_tier: u8,
        now: SimTime,
        fabric: &FabricGraph,
        channels: &mut Channels,
        mask: &mut LinkMask,
        config: &SimConfig,
        stats: &mut Stats,
        inst: &mut Instruments,
    ) {
        let old_tier = self.ring_tier[ring];
        self.ring_tier[ring] = new_tier;
        for (l, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            if slot.ring as usize != ring {
                continue;
            }
            let link = LinkId::new(l as u32);
            if new_tier > old_tier && slot.tier <= new_tier && !mask.is_enabled(link) {
                // Power on: usable after one reactivation at full rate
                // (demand is high — skip the slow ramp).
                mask.enable(link);
                self.draining.retain(|&d| d != link);
                let (a, b) = fabric.link_channels(link);
                for ch in [a, b] {
                    let i = ch.index();
                    if channels.has_flag(i, F_OFF) {
                        channels.set_off(i, now, false);
                    }
                    channels.reactivate(i, now, config.reactivation.worst_case(), config.max_rate);
                    stats.record_rate(now, ch.raw(), Some(config.max_rate));
                    if inst.on(TraceCategory::Reactivation) {
                        let until = now + config.reactivation.worst_case();
                        let rate = config.max_rate.to_string();
                        inst.tracer().reactivation(
                            now.as_ps(),
                            ch.raw(),
                            "start",
                            &rate,
                            Some(until.as_ps()),
                        );
                    }
                }
                self.transitions += 1;
                stats.reconfigurations += 1;
            } else if new_tier < old_tier && slot.tier > new_tier && mask.is_enabled(link) {
                // Remove from routing and drain (§3.2 option 1).
                mask.disable(link);
                self.draining.push(link);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epnet_topology::FlattenedButterfly;

    fn fabric() -> FabricGraph {
        FlattenedButterfly::new(2, 5, 3).unwrap().build_fabric()
    }

    #[test]
    fn every_interswitch_link_gets_a_slot() {
        let g = fabric();
        let dt = DynamicTopology::new(&g, DynamicTopologyConfig::default());
        let with_slots = dt.slots.iter().filter(|s| s.is_some()).count();
        assert_eq!(with_slots, g.num_links() - g.num_hosts());
        // 2 dimensions × 5 groups per dimension (25 switches / k=5).
        assert_eq!(dt.num_rings(), 2 * 5);
    }

    #[test]
    fn tiers_partition_ring_links() {
        let g = fabric();
        let dt = DynamicTopology::new(&g, DynamicTopologyConfig::default());
        // Each k=5 ring has C(5,2)=10 links: 4 adjacent, 1 wrap, 5 chords.
        let mut per_tier = [0usize; 3];
        for slot in dt.slots.iter().flatten() {
            if slot.ring == 0 {
                per_tier[slot.tier as usize] += 1;
            }
        }
        assert_eq!(per_tier, [4, 1, 5]);
    }

    #[test]
    fn rings_start_at_full_butterfly() {
        let g = fabric();
        let dt = DynamicTopology::new(&g, DynamicTopologyConfig::default());
        for r in 0..dt.num_rings() {
            assert_eq!(dt.ring_tier(r), 2);
        }
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        let g = fabric();
        let _ = DynamicTopology::new(
            &g,
            DynamicTopologyConfig {
                off_threshold: 0.5,
                on_threshold: 0.1,
            },
        );
    }
}
