//! Generic discrete-event schedulers with deterministic FIFO
//! tie-breaking.
//!
//! The engine's hot loop is schedule/pop churn on a priority queue
//! keyed by `(SimTime, insertion seq)`. This module provides two
//! interchangeable backends behind [`Scheduler`]:
//!
//! * [`Backend::Calendar`] (the default) — a calendar queue after
//!   R. Brown, *Calendar queues: a fast O(1) priority queue
//!   implementation for the simulation event set problem* (CACM 1988).
//!   Events hash by time into an array of power-of-two-width day
//!   buckets; a cursor walks the current "year" day by day, so pops of
//!   near-future events are O(1) amortized instead of the binary
//!   heap's O(log n). The bucket count doubles/halves with occupancy
//!   and the bucket width is recomputed from the mean inter-event gap
//!   at each resize, keeping roughly one event per day under load.
//! * [`Backend::BinaryHeap`] — the original `std::collections`
//!   max-heap with reversed ordering, kept as the reference
//!   implementation for cross-checking and benchmarking.
//!
//! Both backends pop in exactly the same total order: ascending time,
//! and FIFO (insertion order) among events scheduled for the same
//! time. Any sequence of interleaved [`Scheduler::schedule`] /
//! [`Scheduler::pop`] calls therefore produces bit-identical results
//! on either backend — a property test in this module asserts it.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Smallest bucket-array size the calendar queue uses.
const MIN_BUCKETS: usize = 32;
/// Largest bucket-array size (1 Mi buckets ≈ 8 MiB of `Vec` headers).
const MAX_BUCKETS: usize = 1 << 20;
/// Starting log2 bucket width: 2^12 ps ≈ 4 ns per day.
const INITIAL_SHIFT: u32 = 12;
/// Window the steady-state pending population is assumed to spread
/// over when deriving the bucket width from a size hint: on the order
/// of one packet serialization time (2 KiB at 20 Gb/s ≈ 0.8 µs).
const STEADY_SPREAD_PS: u64 = 1 << 20;
/// Bounds for the recomputed log2 bucket width. 2^4 ps floors the day
/// below any physical event spacing; 2^44 ps ≈ 17 s caps it above any
/// simulated horizon.
const MIN_SHIFT: u32 = 4;
const MAX_SHIFT: u32 = 44;

/// Which priority-queue implementation backs a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Bucketed calendar queue, O(1) amortized schedule/pop.
    Calendar,
    /// `std::collections::BinaryHeap`, O(log n) — the reference.
    BinaryHeap,
}

/// One scheduled item: absolute time plus the insertion sequence that
/// breaks ties deterministically.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A deterministic time-ordered queue over either backend.
///
/// Items pop in ascending `(time, insertion order)`; two schedulers
/// fed the same schedule/pop interleaving return the same items in the
/// same order regardless of backend.
pub struct Scheduler<T> {
    seq: u64,
    inner: Inner<T>,
}

enum Inner<T> {
    Calendar(CalendarQueue<T>),
    Heap(BinaryHeap<HeapEntry<T>>),
}

impl<T> std::fmt::Debug for Scheduler<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("backend", &self.backend())
            .field("len", &self.len())
            .field("next_seq", &self.seq)
            .finish()
    }
}

impl<T> Default for Scheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scheduler<T> {
    /// An empty scheduler on the default (calendar) backend.
    pub fn new() -> Self {
        Self::with_backend(Backend::Calendar)
    }

    /// An empty scheduler on an explicit backend.
    pub fn with_backend(backend: Backend) -> Self {
        Self::with_backend_and_hint(backend, 0)
    }

    /// An empty scheduler on an explicit backend, pre-sized for a
    /// steady-state population of roughly `expected` pending items.
    ///
    /// The engine passes the channel count here: each busy channel
    /// contributes one or two in-flight events, so a paper-scale fabric
    /// would otherwise climb through a dozen doubling resizes (each a
    /// full rehash) before the calendar reaches its working size — and
    /// start with thousands-long bucket chains in the meantime. Sizing
    /// is pure layout: pop order is bucket-independent, so the hint can
    /// never change simulation output.
    pub fn with_backend_and_hint(backend: Backend, expected: usize) -> Self {
        let inner = match backend {
            Backend::Calendar => Inner::Calendar(CalendarQueue::with_hint(expected)),
            Backend::BinaryHeap => Inner::Heap(BinaryHeap::with_capacity(expected)),
        };
        Self { seq: 0, inner }
    }

    /// Which backend this scheduler runs on.
    pub fn backend(&self) -> Backend {
        match self.inner {
            Inner::Calendar(_) => Backend::Calendar,
            Inner::Heap(_) => Backend::BinaryHeap,
        }
    }

    /// Schedules `item` at absolute time `at`. Items scheduled for the
    /// same time pop in insertion order.
    pub fn schedule(&mut self, at: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { at, seq, item };
        match &mut self.inner {
            Inner::Calendar(q) => q.insert(entry),
            Inner::Heap(h) => h.push(HeapEntry(entry)),
        }
    }

    /// Removes and returns the earliest item.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        match &mut self.inner {
            Inner::Calendar(q) => q.pop_min().map(|e| (e.at, e.item)),
            Inner::Heap(h) => h.pop().map(|HeapEntry(e)| (e.at, e.item)),
        }
    }

    /// The earliest scheduled time, if any.
    ///
    /// Takes `&mut self`: on the calendar backend a peek may advance
    /// the day cursor past empty buckets (pure bookkeeping — the
    /// observable queue contents and pop order are unchanged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Calendar(q) => q.peek_min().map(|e| e.at),
            Inner::Heap(h) => h.peek().map(|HeapEntry(e)| e.at),
        }
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Calendar(q) => q.len,
            Inner::Heap(h) => h.len(),
        }
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Heap wrapper ordered by `(at, seq)` only, reversed so the std
/// max-heap yields the earliest entry first. The payload never takes
/// part in comparisons, so `T` needs no bounds.
struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The calendar proper.
///
/// Layout: `buckets[slot(t) & mask]` holds every pending entry whose
/// day index is congruent to that bucket, where `slot(t) = t.ps >>
/// shift` (so one day spans `2^shift` picoseconds). Each bucket stays
/// sorted *ascending* by `(at, seq)`: the bucket minimum is the front,
/// and — because discrete-event scheduling is overwhelmingly monotone —
/// a new entry is almost always the bucket's latest, so insertion is a
/// compare-with-back plus `Vec::push` with no search and no memmove.
/// Entries more than a year (`nbuckets` days) ahead simply wait in
/// their bucket until the cursor's year reaches them.
///
/// A bitmap mirrors bucket occupancy (bit set ⇔ bucket non-empty), so
/// the pop-side day walk skips runs of empty days with a couple of
/// word scans instead of touching one `Vec` header per day.
///
/// Invariant: between operations no pending entry has a day index
/// smaller than `cur_slot` (inserts into the past pull the cursor
/// back), so the pop scan never misses an earlier event.
struct CalendarQueue<T> {
    buckets: Vec<Vec<Entry<T>>>,
    /// One bit per bucket: set ⇔ the bucket is non-empty.
    occupied: Vec<u64>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// log2 of the bucket (day) width in picoseconds.
    shift: u32,
    /// Day index the cursor is on.
    cur_slot: u64,
    /// Located minimum: `(key, bucket index)` of the entry the next
    /// pop returns, or `None` when it must be (re)scanned.
    cached_min: Option<((SimTime, u64), usize)>,
    len: usize,
    /// Smallest bucket count this calendar shrinks to: the hint-derived
    /// starting size. Bursty loads oscillate the pending count across
    /// the shrink threshold; rebuilding every bucket `Vec` on each
    /// crossing was the dominant steady-state allocation source, and a
    /// sparse calendar is cheap to walk now that the occupancy bitmap
    /// skips empty days.
    floor: usize,
    /// Bucket `Vec`s parked by shrink resizes, reused by grow resizes,
    /// plus the entry scratch buffer resizes redistribute through — so
    /// a warmed-up calendar resizes without touching the allocator.
    spare_buckets: Vec<Vec<Entry<T>>>,
    resize_scratch: Vec<Entry<T>>,
}

impl<T> CalendarQueue<T> {
    /// A calendar pre-sized so `expected` pending entries land at the
    /// target occupancy (~2 per day) without growth resizes, with the
    /// day width derived from the hint as well: `expected` events
    /// spread over roughly one serialization window should land at ~1
    /// per day, so bigger fabrics get proportionally finer days instead
    /// of the fixed default degenerating into long bucket chains.
    fn with_hint(expected: usize) -> Self {
        let nbuckets = (expected / 2)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let shift = if expected == 0 {
            INITIAL_SHIFT
        } else {
            (STEADY_SPREAD_PS / expected as u64)
                .max(1)
                .ilog2()
                .clamp(MIN_SHIFT, MAX_SHIFT)
        };
        Self {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; nbuckets.div_ceil(64)],
            mask: nbuckets - 1,
            shift,
            cur_slot: 0,
            cached_min: None,
            len: 0,
            floor: nbuckets,
            spare_buckets: Vec::new(),
            resize_scratch: Vec::new(),
        }
    }

    fn slot(&self, at: SimTime) -> u64 {
        at.as_ps() >> self.shift
    }

    fn insert(&mut self, entry: Entry<T>) {
        let slot = self.slot(entry.at);
        if self.len == 0 {
            self.cur_slot = slot;
        } else if slot < self.cur_slot {
            // Scheduled into the cursor's past: rewind the cursor so
            // the scan invariant (no entry before `cur_slot`) holds.
            self.cur_slot = slot;
        }
        let idx = (slot & self.mask as u64) as usize;
        if let Some((key, _)) = self.cached_min {
            if entry.key() < key {
                self.cached_min = Some((entry.key(), idx));
            }
        } else if self.len == 0 {
            self.cached_min = Some((entry.key(), idx));
        }
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
        let bucket = &mut self.buckets[idx];
        // Monotone fast path: the new entry is usually the bucket's
        // latest, so it appends with no search and no memmove.
        if bucket.last().map_or(true, |e| e.key() < entry.key()) {
            bucket.push(entry);
        } else {
            let pos = bucket.partition_point(|e| e.key() < entry.key());
            bucket.insert(pos, entry);
        }
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn pop_min(&mut self) -> Option<Entry<T>> {
        if self.len == 0 {
            return None;
        }
        let (_, idx) = self.locate_min();
        // Buckets run a couple of entries deep, so the front removal's
        // memmove is a word or two.
        let entry = self.buckets[idx].remove(0);
        self.len -= 1;
        // Fast path: when the popped event's day holds more events,
        // the bucket's new front is the global minimum — no rescan.
        self.cached_min = match self.buckets[idx].first() {
            Some(next) if self.slot(next.at) == self.cur_slot => Some((next.key(), idx)),
            _ => None,
        };
        if self.buckets[idx].is_empty() {
            self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        }
        if self.len < self.buckets.len() / 8 && self.buckets.len() > self.floor {
            self.resize(self.buckets.len() / 2);
        }
        Some(entry)
    }

    fn peek_min(&mut self) -> Option<&Entry<T>> {
        if self.len == 0 {
            return None;
        }
        let (_, idx) = self.locate_min();
        self.buckets[idx].first()
    }

    /// First non-empty bucket index in `[from, to)` per the occupancy
    /// bitmap, or `None`.
    fn next_occupied(&self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let last_wi = (to - 1) / 64;
        let mut wi = from / 64;
        let mut word = self.occupied[wi] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                let idx = wi * 64 + word.trailing_zeros() as usize;
                return if idx < to { Some(idx) } else { None };
            }
            if wi == last_wi {
                return None;
            }
            wi += 1;
            word = self.occupied[wi];
        }
    }

    /// Finds the bucket holding the global minimum, advancing the
    /// cursor day by day but skipping runs of empty days via the
    /// occupancy bitmap. Bounded at one lap of the calendar: after a
    /// fruitless year the minimum is found by direct search instead
    /// (the queue is sparse, so the O(nbuckets) fallback is rare and
    /// cheap relative to the simulated time skipped).
    fn locate_min(&mut self) -> ((SimTime, u64), usize) {
        debug_assert!(self.len > 0);
        if let Some(found) = self.cached_min {
            return found;
        }
        let nbuckets = self.buckets.len();
        let start = (self.cur_slot & self.mask as u64) as usize;
        // One lap of candidate (non-empty) buckets in cyclic order from
        // the cursor. Empty buckets can hold no due entry, so skipping
        // them never skips a day the old day-by-day walk would hit.
        let mut ranges = [
            (start, nbuckets, 0u64),
            (0, start, nbuckets as u64 - start as u64),
        ];
        if start == 0 {
            ranges[1] = (0, 0, 0); // no wrap segment
        }
        for (lo, hi, base_off) in ranges {
            let mut idx = lo;
            while let Some(found_idx) = self.next_occupied(idx, hi) {
                let day = self.cur_slot + base_off + (found_idx - lo) as u64;
                let min = self.buckets[found_idx]
                    .first()
                    .expect("occupancy bit set on empty bucket");
                // Within the scanned window only `day` itself maps to
                // this bucket, so a due entry has exactly that slot; a
                // smaller bucket minimum would violate the cursor
                // invariant.
                if self.slot(min.at) == day {
                    self.cur_slot = day;
                    let found = (min.key(), found_idx);
                    self.cached_min = Some(found);
                    return found;
                }
                idx = found_idx + 1;
            }
        }
        // Nothing due within a year of the cursor: direct search.
        let mut best: Option<((SimTime, u64), usize)> = None;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            if let Some(min) = bucket.first() {
                if best.map_or(true, |(key, _)| min.key() < key) {
                    best = Some((min.key(), idx));
                }
            }
        }
        let found = best.expect("non-empty queue has a minimum");
        self.cur_slot = self.slot(found.0 .0);
        self.cached_min = Some(found);
        found
    }

    /// Rebuilds with `nbuckets` buckets, recomputing the day width so
    /// the pending events spread to roughly one per day: the new width
    /// is the mean inter-event gap rounded up to a power of two. Fully
    /// deterministic — it depends only on the current queue contents.
    ///
    /// Storage is recycled end to end (buckets drain in place, excess
    /// buckets park in `spare_buckets`, entries pass through
    /// `resize_scratch`), so once every pool has reached its high-water
    /// mark a resize performs no heap allocation.
    fn resize(&mut self, nbuckets: usize) {
        let mut entries = std::mem::take(&mut self.resize_scratch);
        entries.clear();
        for bucket in &mut self.buckets {
            entries.append(bucket); // leaves the bucket empty, capacity kept
        }
        debug_assert_eq!(entries.len(), self.len);

        if !entries.is_empty() {
            let mut min_ps = u64::MAX;
            let mut max_ps = 0u64;
            for e in entries.iter() {
                min_ps = min_ps.min(e.at.as_ps());
                max_ps = max_ps.max(e.at.as_ps());
            }
            let gap = ((max_ps - min_ps) / entries.len() as u64).max(1);
            // Day width ≈ 2× the mean gap: a couple of events per day
            // keeps the same-bucket pop fast path hot while buckets
            // stay short enough for O(1)-ish sorted inserts.
            let width_log2 = 65 - gap.leading_zeros();
            self.shift = width_log2.clamp(MIN_SHIFT, MAX_SHIFT);
        }

        while self.buckets.len() > nbuckets {
            let spare = self.buckets.pop().expect("length checked");
            self.spare_buckets.push(spare);
        }
        while self.buckets.len() < nbuckets {
            self.buckets
                .push(self.spare_buckets.pop().unwrap_or_default());
        }
        self.occupied.truncate(nbuckets.div_ceil(64));
        self.occupied.resize(nbuckets.div_ceil(64), 0);
        for word in &mut self.occupied {
            *word = 0;
        }
        self.mask = nbuckets - 1;
        self.cached_min = None;
        self.cur_slot = 0;

        let mut min_key: Option<((SimTime, u64), u64)> = None;
        for entry in entries.drain(..) {
            let slot = self.slot(entry.at);
            if min_key.map_or(true, |(key, _)| entry.key() < key) {
                min_key = Some((entry.key(), slot));
            }
            let idx = (slot & self.mask as u64) as usize;
            self.occupied[idx / 64] |= 1u64 << (idx % 64);
            let bucket = &mut self.buckets[idx];
            let pos = bucket.partition_point(|e| e.key() < entry.key());
            bucket.insert(pos, entry);
        }
        if let Some(((at, seq), slot)) = min_key {
            self.cur_slot = slot;
            let idx = (slot & self.mask as u64) as usize;
            self.cached_min = Some(((at, seq), idx));
        }
        self.resize_scratch = entries;
    }
}

/// A min-queue over *caller-supplied* `(time, seq)` keys.
///
/// [`Scheduler`] assigns sequence numbers itself (push order), which is
/// exactly right for a single serial event loop. The sharded parallel
/// engine instead needs to insert items whose sequence numbers were
/// assigned elsewhere — the coordinator's global push counter — and to
/// re-seed per-window shard queues with the keys events already carry.
/// This queue is the thin building block for that: an explicit-key
/// binary heap popping in ascending `(time, seq)` order.
#[derive(Debug)]
pub struct KeyedQueue<T> {
    heap: BinaryHeap<KeyedEntry<T>>,
}

struct KeyedEntry<T> {
    key: (SimTime, u64),
    item: T,
}

impl<T> std::fmt::Debug for KeyedEntry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedEntry")
            .field("key", &self.key)
            .finish()
    }
}

impl<T> PartialEq for KeyedEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<T> Eq for KeyedEntry<T> {}

impl<T> Ord for KeyedEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: std's max-heap then yields the smallest key first.
        other.key.cmp(&self.key)
    }
}

impl<T> PartialOrd for KeyedEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Default for KeyedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> KeyedQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }

    /// Inserts `item` under an explicit `(time, seq)` key.
    ///
    /// Duplicate keys are allowed but pop in unspecified relative
    /// order; callers that care (the parallel engine does) must keep
    /// keys unique.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.heap.push(KeyedEntry {
            key: (at, seq),
            item,
        });
    }

    /// Removes and returns the smallest-keyed item.
    pub fn pop(&mut self) -> Option<((SimTime, u64), T)> {
        self.heap.pop().map(|e| (e.key, e.item))
    }

    /// The smallest key currently queued, if any.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| e.key)
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending items, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn both() -> [Scheduler<u32>; 2] {
        [
            Scheduler::with_backend(Backend::Calendar),
            Scheduler::with_backend(Backend::BinaryHeap),
        ]
    }

    #[test]
    fn pops_in_time_order_on_both_backends() {
        for mut q in both() {
            q.schedule(SimTime::from_ns(30), 0);
            q.schedule(SimTime::from_ns(10), 1);
            q.schedule(SimTime::from_ns(20), 2);
            let times: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(t, _)| t.as_ns())
                .collect();
            assert_eq!(times, vec![10, 20, 30]);
        }
    }

    #[test]
    fn same_time_pops_fifo_on_both_backends() {
        for mut q in both() {
            let t = SimTime::from_ns(5);
            for tag in 0..100 {
                q.schedule(t, tag);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, tag)| tag).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn calendar_survives_resize_cycles() {
        let mut q = Scheduler::with_backend(Backend::Calendar);
        // Push far past the grow threshold, then drain past shrink.
        for i in 0..10_000u32 {
            q.schedule(SimTime::from_ns(u64::from(i % 977)), i);
        }
        assert_eq!(q.len(), 10_000);
        let mut last = (SimTime::ZERO, 0u64);
        let mut seen = 0;
        let mut seqs_at_time: std::collections::HashMap<u64, u32> = Default::default();
        while let Some((t, tag)) = q.pop() {
            assert!(t >= last.0, "time went backwards");
            // FIFO among equal times: tags at one time ascend.
            let prev = seqs_at_time.entry(t.as_ps()).or_insert(tag);
            assert!(*prev <= tag, "FIFO violated at {t:?}");
            *prev = tag;
            last = (t, u64::from(tag));
            seen += 1;
        }
        assert_eq!(seen, 10_000);
    }

    #[test]
    fn far_future_events_cross_year_boundaries() {
        let mut q = Scheduler::with_backend(Backend::Calendar);
        // Events far beyond one calendar year (32 buckets × 4 ns).
        q.schedule(SimTime::from_ms(500), 1);
        q.schedule(SimTime::from_ns(1), 2);
        q.schedule(SimTime::from_ms(2), 3);
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), 3)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(500), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn schedule_into_cursor_past_is_seen() {
        let mut q = Scheduler::with_backend(Backend::Calendar);
        q.schedule(SimTime::from_us(100), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(100)));
        // The cursor has advanced toward 100 µs; an insert before it
        // must still pop first.
        q.schedule(SimTime::from_ns(3), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(3), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_us(100), 1)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tentpole cross-check: arbitrary interleaved schedule/pop
        /// sequences yield identical `(time, item)` pop order — FIFO
        /// tie-breaks included — on the calendar queue and the
        /// reference heap.
        #[test]
        fn calendar_matches_heap_on_arbitrary_interleavings(
            seed in any::<u64>(),
            ops in 50usize..600,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut cal = Scheduler::with_backend(Backend::Calendar);
            let mut heap = Scheduler::with_backend(Backend::BinaryHeap);
            let mut tag = 0u32;
            let mut popped = 0u64;

            for _ in 0..ops {
                if rng.gen_bool(0.6) || cal.is_empty() {
                    // Mix of duplicate times (FIFO stress), clustered
                    // near-future times, and rare far-future outliers
                    // that cross calendar years.
                    let at = match rng.gen_range(0u8..10) {
                        0..=2 => SimTime::from_ps(popped), // duplicates at the frontier
                        3..=7 => SimTime::from_ps(popped + rng.gen_range(1u64..50_000)),
                        8 => SimTime::from_ps(popped + rng.gen_range(1u64..100)),
                        _ => SimTime::from_ps(popped + rng.gen_range(1u64..10_000_000_000)),
                    };
                    cal.schedule(at, tag);
                    heap.schedule(at, tag);
                    tag += 1;
                } else {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        // Keep the monotone-schedule property the
                        // engine relies on: later schedules never
                        // precede the pop frontier.
                        popped = t.as_ps();
                    }
                }
                prop_assert_eq!(cal.len(), heap.len());
            }
            // Drain both completely.
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// Same cross-check without the monotone-schedule restriction:
        /// inserts may land arbitrarily far into the cursor's past.
        #[test]
        fn calendar_matches_heap_on_non_monotone_inserts(
            seed in any::<u64>(),
            ops in 50usize..400,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut cal = Scheduler::with_backend(Backend::Calendar);
            let mut heap = Scheduler::with_backend(Backend::BinaryHeap);
            let mut tag = 0u32;
            for _ in 0..ops {
                if rng.gen_bool(0.5) || cal.is_empty() {
                    let at = SimTime::from_ps(rng.gen_range(0u64..5_000_000));
                    cal.schedule(at, tag);
                    heap.schedule(at, tag);
                    tag += 1;
                } else {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            loop {
                let a = cal.pop();
                prop_assert_eq!(a, heap.pop());
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn keyed_queue_pops_in_ascending_key_order() {
        let mut q = KeyedQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_ps(30), 0, "c");
        q.push(SimTime::from_ps(10), 5, "b");
        q.push(SimTime::from_ps(10), 2, "a");
        q.push(SimTime::from_ps(40), 1, "d");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_key(), Some((SimTime::from_ps(10), 2)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
        q.push(SimTime::from_ps(1), 0, "e");
        q.clear();
        assert!(q.pop().is_none());
    }
}
