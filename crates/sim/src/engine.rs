//! The event-driven simulator engine.
//!
//! # Modelling notes (see DESIGN.md for the full rationale)
//!
//! * Packet granularity with virtual cut-through approximated by a fixed
//!   per-hop router latency. All headline results of the paper are
//!   *deltas* against a baseline run using the identical forwarding
//!   model.
//! * Credit-based link-level flow control: a channel may only start
//!   serializing a packet when the downstream input buffer has space;
//!   credits return after a propagation delay once the packet moves on.
//!   Output queues are unbounded (switches are "both input and output
//!   buffered", §4.1 — we give the output side elastic depth, which keeps
//!   the fabric deadlock-free without virtual channels while preserving
//!   the congestion signal adaptive routing needs).
//! * Adaptive routing: at each hop the packet picks, among the minimal
//!   candidate ports, the one with the smallest output-queue occupancy
//!   ("adaptively route on each hop based solely on the output queue
//!   depth", §4.1), with a deterministic rotating tie-break.
//! * Link-rate control runs at the end of every epoch (§3.3). A rate
//!   change makes the channel unavailable for the reactivation latency;
//!   traffic routed toward it queues up and adaptive routing steers
//!   around the congestion, exactly the second tolerance strategy of
//!   §3.2.

use crate::config::{ControlMode, RoutingPolicy, SimConfig};
use crate::controller::desired_rate;
use crate::dyntopo::DynamicTopology;
use crate::event::{Event, EventQueue};
use crate::instrument::Instruments;
use crate::packet::{MessageId, Packet, PacketArena, PacketId};
use crate::stats::{RateResidency, SimReport, Stats};
use crate::traffic::{Message, TrafficSource};
use crate::SimTime;
use epnet_power::{LinkRate, RATE_LADDER};
use epnet_telemetry::{TraceCategory, Tracer};
use epnet_topology::{
    ChannelId, FabricGraph, LinkMask, Medium, PortIndex, PortTarget, RouteTable, RoutingTopology,
    SwitchId,
};
use std::collections::VecDeque;
use std::time::Instant;

/// Per-channel runtime state.
#[derive(Debug)]
pub(crate) struct Channel {
    /// Output queue feeding this channel (elastic).
    queue: VecDeque<PacketId>,
    /// Bytes in `queue` (including the packet being serialized).
    pub(crate) occupancy: u64,
    /// Whether a packet is currently being serialized.
    pub(crate) busy: bool,
    /// Remaining downstream buffer credits, in bytes.
    credits: u32,
    /// Credit returns in flight back to this channel, as
    /// `(maturation time, bytes)` in nondecreasing time order. Applied
    /// lazily in `try_tx` instead of costing one scheduled event per
    /// packet.
    pending_credits: VecDeque<(SimTime, u32)>,
    /// A `CreditWake` event is already pending.
    credit_wake_scheduled: bool,
    /// Packets in the in-progress transmission train (0 when idle).
    train_len: u32,
    /// Total bytes of the in-progress train (popped as a lump at
    /// `TxDone` — individual packets may already have been consumed at
    /// their destination host by then, so their sizes must not be
    /// re-read from the arena).
    train_bytes: u64,
    /// Configured rate.
    pub(crate) rate: LinkRate,
    /// Channel unusable until this time (reactivation after a rate
    /// change, §3.1).
    available_at: SimTime,
    /// A `Retry` event is already pending.
    retry_scheduled: bool,
    /// Busy picoseconds accumulated this epoch (the controller's
    /// utilization input).
    busy_ps_epoch: u64,
    /// End of the in-progress transmission, if any — lets epoch
    /// accounting split a serialization that spans epoch boundaries.
    busy_until: SimTime,
    /// Residency accounting: time at each rate since the run started.
    time_at_rate_ps: [u64; LinkRate::COUNT],
    /// Time powered off (dynamic topologies, §5.2).
    off_ps: u64,
    /// When the current rate/off interval began.
    rate_since: SimTime,
    /// Whether the channel is powered off.
    pub(crate) off: bool,
    /// Rate change waiting for the queue to drain (§3.2's first
    /// tolerance option); while set, the channel is removed from the
    /// legal adaptive routes.
    pending_rate: Option<LinkRate>,
    /// Whether the controller may retune this channel.
    tunable: bool,
    /// Propagation delay of the physical medium.
    prop: SimTime,
}

impl Channel {
    fn new(rate: LinkRate, credits: u32, tunable: bool, prop: SimTime) -> Self {
        Self {
            queue: VecDeque::new(),
            occupancy: 0,
            busy: false,
            credits,
            pending_credits: VecDeque::new(),
            credit_wake_scheduled: false,
            train_len: 0,
            train_bytes: 0,
            rate,
            available_at: SimTime::ZERO,
            retry_scheduled: false,
            busy_ps_epoch: 0,
            busy_until: SimTime::ZERO,
            time_at_rate_ps: [0; LinkRate::COUNT],
            off_ps: 0,
            rate_since: SimTime::ZERO,
            off: false,
            pending_rate: None,
            tunable,
            prop,
        }
    }

    /// Closes the current residency interval at `now`.
    fn note_interval(&mut self, now: SimTime) {
        let span = (now - self.rate_since).as_ps();
        if self.off {
            self.off_ps += span;
        } else {
            self.time_at_rate_ps[self.rate.index()] += span;
        }
        self.rate_since = now;
    }

    /// Utilization over the epoch that just ended.
    fn epoch_utilization(&self, epoch: SimTime) -> f64 {
        (self.busy_ps_epoch as f64 / epoch.as_ps() as f64).min(1.0)
    }

    pub(crate) fn queue_is_idle(&self) -> bool {
        self.queue.is_empty() && !self.busy
    }

    /// Busy picoseconds accumulated this epoch.
    pub(crate) fn busy_ps_epoch(&self) -> u64 {
        self.busy_ps_epoch
    }

    /// Transitions the channel's powered state, closing the residency
    /// interval (dynamic topologies, §5.2).
    pub(crate) fn set_off(&mut self, now: SimTime, off: bool) {
        debug_assert!(!off || self.queue_is_idle(), "powering off a busy channel");
        self.note_interval(now);
        self.off = off;
    }

    /// Brings the channel up at `rate`, unusable until the reactivation
    /// completes.
    pub(crate) fn reactivate(&mut self, now: SimTime, reactivation: SimTime, rate: LinkRate) {
        self.note_interval(now);
        self.rate = rate;
        self.available_at = now + reactivation;
    }
}

/// Record of an in-flight message for completion tracking.
#[derive(Debug, Clone, Copy)]
struct MessageRec {
    remaining: u32,
    offered_at: SimTime,
}

/// What [`Simulator::apply_rate`] did with a controller decision —
/// the trace layer's `reason` derives from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RateOutcome {
    /// The channel already ran at the decided rate.
    Unchanged,
    /// The rate change took effect (reactivation charged).
    Applied,
    /// Downshift parked behind a drain (§3.2's first option).
    DrainDeferred,
    /// A pending drain-first change was cancelled by a reversal.
    DrainCancelled,
}

/// How `route()` obtains its candidate-port sets.
///
/// The default is a precomputed [`RouteTable`] indexed per hop and
/// rebuilt lazily when the link mask's generation moves. Setting
/// `EPNET_ROUTES=dynamic` at simulator construction falls back to the
/// reference on-the-fly coordinate computation — mirroring
/// `EPNET_SCHED=heap` — and must produce byte-identical reports.
#[derive(Debug)]
enum RouteMode {
    /// Indexed lookups in a precomputed table.
    Table(RouteTable),
    /// Per-hop recomputation into a reused scratch buffer.
    Dynamic { scratch: Vec<PortIndex> },
}

/// The event-driven network simulator (§4.1: "an in-house event-driven
/// network simulator, which has been heavily modified to support future
/// high-performance networks").
///
/// Build one per run: [`Simulator::run_until`] consumes the simulator and
/// returns a [`SimReport`].
///
/// ```
/// use epnet_sim::{Message, ReplaySource, SimConfig, SimTime, Simulator};
/// use epnet_topology::{FlattenedButterfly, HostId};
///
/// let fabric = FlattenedButterfly::new(2, 4, 2)?.build_fabric();
/// let traffic = ReplaySource::new(vec![Message {
///     at: SimTime::from_us(1),
///     src: HostId::new(0),
///     dst: HostId::new(7),
///     bytes: 64 * 1024,
/// }]);
/// let report = Simulator::new(fabric, SimConfig::baseline(), traffic)
///     .run_until(SimTime::from_ms(1));
/// assert_eq!(report.delivered_bytes, 64 * 1024);
/// # Ok::<(), epnet_topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct Simulator<S> {
    fabric: FabricGraph,
    config: SimConfig,
    source: S,
    pending: Option<Message>,
    queue: EventQueue,
    now: SimTime,
    end: SimTime,
    channels: Vec<Channel>,
    arena: PacketArena,
    messages: Vec<MessageRec>,
    stats: Stats,
    mask: Option<LinkMask>,
    dyntopo: Option<DynamicTopology>,
    routes: RouteMode,
    last_offered_at: SimTime,
    /// End of the current utilization-measurement epoch.
    epoch_end: SimTime,
    /// Whether epoch ticks run (rate controller or dynamic topology):
    /// bounds transmission trains at the epoch so no rate or mask
    /// change can land mid-train.
    controller_active: bool,
    /// Telemetry: tracer, metrics registry, phase profiler.
    inst: Instruments,
}

impl<S: TrafficSource> Simulator<S> {
    /// Creates a simulator over `fabric` driven by `source`.
    pub fn new(fabric: FabricGraph, config: SimConfig, source: S) -> Self {
        config.validate();
        let mut channels = Vec::with_capacity(fabric.num_channels());
        for ch in 0..fabric.num_channels() {
            let id = ChannelId::new(ch as u32);
            let tunable = config.tune_host_links || !fabric.is_host_channel(id);
            let prop = match fabric.channel_medium(id) {
                Medium::Electrical => config.electrical_propagation,
                Medium::Optical => config.optical_propagation,
            };
            channels.push(Channel::new(
                config.max_rate,
                config.input_buffer_bytes,
                tunable,
                prop,
            ));
        }
        let warmup = config.warmup;
        let first_epoch_end = config.epoch;
        let mut inst = Instruments::from_env();
        let routes = match std::env::var("EPNET_ROUTES") {
            Ok(v) if v.eq_ignore_ascii_case("dynamic") => RouteMode::Dynamic {
                scratch: Vec::new(),
            },
            _ => {
                let start = Instant::now();
                let table = RouteTable::build(&fabric, None);
                let wall = start.elapsed();
                inst.profiler.record("route_table_build", wall);
                if inst.on(TraceCategory::Routes) {
                    let build_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
                    inst.tracer().routes(
                        0,
                        table.generation(),
                        build_ns,
                        table.num_port_entries() as u64,
                    );
                }
                RouteMode::Table(table)
            }
        };
        Self {
            fabric,
            config,
            source,
            pending: None,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            end: SimTime::ZERO,
            channels,
            arena: PacketArena::new(),
            messages: Vec::new(),
            stats: Stats::new(warmup),
            mask: None,
            dyntopo: None,
            routes,
            last_offered_at: SimTime::ZERO,
            epoch_end: first_epoch_end,
            controller_active: false,
            inst,
        }
    }

    /// Replaces the trace destination for this run (programmatic
    /// alternative to `EPNET_TRACE`; see
    /// [`epnet_telemetry::MemorySink`]). Events emitted during
    /// construction — the initial route-table build — are only
    /// captured when tracing was already configured via the
    /// environment.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.inst.set_tracer(tracer);
    }

    /// Attributes externally measured wall time (e.g. topology
    /// elaboration, which happens before the simulator exists) to a
    /// named phase of this run's breakdown.
    pub fn record_phase(&mut self, name: &'static str, wall: std::time::Duration) {
        self.inst.profiler.record(name, wall);
    }

    /// Enables the dynamic-topology extension (§5.2): links beyond the
    /// mesh tier may be powered off entirely under low load and
    /// re-enabled as demand grows.
    pub fn enable_dynamic_topology(&mut self, dt: DynamicTopology) {
        // A fresh all-enabled mask is generation 0 and routes exactly
        // like no mask at all, so a table built maskless stays current.
        self.mask = Some(LinkMask::all_enabled(&self.fabric));
        self.dyntopo = Some(dt);
    }

    /// The fabric being simulated.
    pub fn fabric(&self) -> &FabricGraph {
        &self.fabric
    }

    /// Runs the simulation until simulated time `end` and reports.
    pub fn run_until(mut self, end: SimTime) -> SimReport {
        self.end = end;
        self.stats.timeline_channels = self
            .config
            .timeline_channels
            .min(self.channels.len() as u32);
        for ch in 0..self.stats.timeline_channels {
            let rate = self.channels[ch as usize].rate;
            self.stats.record_rate(SimTime::ZERO, ch, Some(rate));
        }
        self.pending = self.source.next_message();
        if let Some(m) = self.pending {
            self.queue.schedule(m.at, Event::Workload);
        }
        self.controller_active =
            self.config.control != ControlMode::AlwaysFull || self.dyntopo.is_some();
        if self.controller_active {
            self.queue.schedule(self.config.epoch, Event::EpochTick);
        }

        // Peek before popping: events beyond the horizon stay queued
        // (the queue is dropped wholesale with the engine) and the
        // monotonic-pop invariant is checked without consuming.
        //
        // The warmup/measurement wall-clock split costs one predictable
        // branch per pop until the warmup boundary passes, then nothing.
        let ids = self.inst.ids;
        let warmup_end = self.config.warmup;
        let mut phase_start = Instant::now();
        let mut in_warmup = warmup_end > SimTime::ZERO;
        while let Some(t) = self.queue.peek_time() {
            if t > self.end {
                break;
            }
            if in_warmup && t >= warmup_end {
                self.inst.profiler.record("warmup", phase_start.elapsed());
                phase_start = Instant::now();
                in_warmup = false;
            }
            debug_assert!(t >= self.now, "time went backwards");
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            self.now = t;
            self.stats.events += 1;
            match ev {
                Event::Workload => {
                    self.inst.metrics.add(ids.ev_workload, 1);
                    self.on_workload();
                }
                Event::TxDone { channel } => {
                    self.inst.metrics.add(ids.ev_tx_done, 1);
                    self.on_tx_done(channel);
                }
                Event::Arrive { channel, packet } => {
                    self.inst.metrics.add(ids.ev_arrive, 1);
                    self.on_arrive(channel, packet);
                }
                Event::CreditWake { channel } => {
                    self.inst.metrics.add(ids.ev_credit_wake, 1);
                    self.channels[channel.index()].credit_wake_scheduled = false;
                    if self.inst.on(TraceCategory::Credit) {
                        let c = &self.channels[channel.index()];
                        let needed = c
                            .queue
                            .front()
                            .map_or(0, |&p| u64::from(self.arena.get(p).bytes));
                        let credits = u64::from(c.credits);
                        self.inst
                            .tracer()
                            .credit(t.as_ps(), channel.raw(), "unblock", needed, credits);
                    }
                    self.try_tx(channel);
                }
                Event::Retry { channel } => {
                    self.inst.metrics.add(ids.ev_retry, 1);
                    self.channels[channel.index()].retry_scheduled = false;
                    // A Retry matures exactly at `available_at`: the
                    // link carries traffic again, closing the
                    // reactivation window — traced here so tracing
                    // never schedules events of its own.
                    if self.inst.on(TraceCategory::Reactivation) {
                        let rate = self.channels[channel.index()].rate.to_string();
                        self.inst
                            .tracer()
                            .reactivation(t.as_ps(), channel.raw(), "end", &rate, None);
                    }
                    self.try_tx(channel);
                }
                Event::EpochTick => {
                    self.inst.metrics.add(ids.ev_epoch_tick, 1);
                    self.on_epoch();
                }
            }
        }
        self.inst
            .profiler
            .record(if in_warmup { "warmup" } else { "measurement" }, phase_start.elapsed());
        self.now = end;
        self.finish()
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_workload(&mut self) {
        while let Some(m) = self.pending {
            if m.at > self.now {
                break;
            }
            self.inject(m);
            self.pending = self.source.next_message();
            if let Some(next) = self.pending {
                debug_assert!(next.at >= m.at, "traffic source went backwards in time");
            }
        }
        if let Some(m) = self.pending {
            if m.at <= self.end {
                self.queue.schedule(m.at, Event::Workload);
            }
        }
    }

    fn inject(&mut self, m: Message) {
        assert!(
            m.src.index() < self.fabric.num_hosts() && m.dst.index() < self.fabric.num_hosts(),
            "message endpoints outside the fabric"
        );
        debug_assert_ne!(m.src, m.dst, "self-sends are not meaningful");
        self.stats.offered_bytes += m.bytes;
        self.last_offered_at = m.at;
        let message = MessageId(self.messages.len() as u32);
        let pkt_size = u64::from(self.config.packet_bytes);
        let full = (m.bytes / pkt_size) as u32;
        let tail = (m.bytes % pkt_size) as u32;
        // A zero-byte message still travels as a single minimal packet.
        let count = (full + u32::from(tail > 0)).max(1);
        self.messages.push(MessageRec {
            remaining: count,
            offered_at: m.at,
        });
        let inj = self.fabric.injection_channel(m.src);
        let budget = match self.config.routing {
            RoutingPolicy::MinimalAdaptive => 0,
            RoutingPolicy::Ugal { misroute_budget, .. } => misroute_budget,
        };
        for i in 0..count {
            let bytes = if i < full { pkt_size as u32 } else { tail.max(1) };
            let id = self.arena.alloc(Packet {
                dst: m.dst,
                bytes,
                created: m.at,
                message,
                hops: 0,
                misroutes_left: budget,
            });
            self.enqueue(inj, id);
        }
        self.try_tx(inj);
    }

    fn enqueue(&mut self, ch: ChannelId, pkt: PacketId) {
        let bytes = u64::from(self.arena.get(pkt).bytes);
        let c = &mut self.channels[ch.index()];
        c.queue.push_back(pkt);
        c.occupancy += bytes;
        if c.occupancy > self.stats.peak_queue_bytes {
            self.stats.peak_queue_bytes = c.occupancy;
        }
    }

    /// Attempts to start serializing the head packet of `ch` — and any
    /// immediate *train* behind it: consecutive queued packets whose
    /// credits are already in hand and whose back-to-back serialization
    /// stays inside the current controller epoch ride under a single
    /// `TxDone` event, with per-packet `Arrive` fan-out at each
    /// packet's own tail time. Train timing is identical to per-packet
    /// scheduling (serialization is back-to-back either way); only the
    /// event count shrinks.
    fn try_tx(&mut self, ch: ChannelId) {
        let now = self.now;
        let c = &mut self.channels[ch.index()];
        if c.busy || c.off {
            return;
        }
        let Some(&head) = c.queue.front() else {
            return;
        };
        if now < c.available_at {
            if !c.retry_scheduled {
                c.retry_scheduled = true;
                let at = c.available_at;
                self.queue.schedule(at, Event::Retry { channel: ch });
            }
            return;
        }
        // Apply credit returns that have matured by now.
        while let Some(&(at, bytes)) = c.pending_credits.front() {
            if at > now {
                break;
            }
            c.pending_credits.pop_front();
            c.credits += bytes;
            debug_assert!(
                c.credits <= self.config.input_buffer_bytes,
                "credit overflow on {ch}"
            );
        }
        let head_bytes = self.arena.get(head).bytes;
        if c.credits < head_bytes {
            self.inst.metrics.add(self.inst.ids.credit_blocked_tries, 1);
            // Blocked on credits: wake exactly when the next pending
            // return matures. If none is booked yet, the arrival that
            // books one re-arms the wake (`on_arrive`).
            if !c.credit_wake_scheduled {
                if let Some(&(at, _)) = c.pending_credits.front() {
                    c.credit_wake_scheduled = true;
                    if self.inst.on(TraceCategory::Credit) {
                        let credits = u64::from(c.credits);
                        self.inst.tracer().credit(
                            now.as_ps(),
                            ch.raw(),
                            "block",
                            u64::from(head_bytes),
                            credits,
                        );
                    }
                    self.queue.schedule(at, Event::CreditWake { channel: ch });
                }
            }
            return;
        }
        c.credits -= head_bytes;
        c.busy = true;
        let prop = c.prop;
        // Tail arrival plus the router pipeline when the far end is a
        // switch (hosts consume directly).
        let router = match self.fabric.channel_target(ch) {
            PortTarget::Host(_) => SimTime::ZERO,
            PortTarget::Switch { .. } => self.config.router_latency,
        };
        let mut tail = now + SimTime::from_ps(c.rate.serialize_ps(u64::from(head_bytes)));
        self.queue.schedule(
            tail + prop + router,
            Event::Arrive {
                channel: ch,
                packet: head,
            },
        );
        let mut train_len = 1u32;
        let mut train_bytes = u64::from(head_bytes);
        // Extend the train. The epoch bound guarantees no rate change
        // can land mid-train: the controller (and the dynamic-topology
        // mask) only act at epoch ticks, and drain-first completions
        // need an empty queue. Without epoch ticks the horizon is the
        // only bound.
        let bound = if self.controller_active {
            self.epoch_end
        } else {
            self.end
        };
        while tail <= bound {
            let Some(&next) = c.queue.get(train_len as usize) else {
                break;
            };
            let next_bytes = self.arena.get(next).bytes;
            if c.credits < next_bytes {
                break;
            }
            let next_tail = tail + SimTime::from_ps(c.rate.serialize_ps(u64::from(next_bytes)));
            if next_tail > bound {
                break;
            }
            c.credits -= next_bytes;
            tail = next_tail;
            train_len += 1;
            train_bytes += u64::from(next_bytes);
            self.queue.schedule(
                tail + prop + router,
                Event::Arrive {
                    channel: ch,
                    packet: next,
                },
            );
        }
        let ser = tail - now;
        // Charge this epoch only for the busy time that falls inside it;
        // the remainder is pre-charged to later epochs at the tick (a
        // 2 KiB packet at 2.5 Gb/s outlasts a 1 µs epoch, and without the
        // split the controller would see a busy link as idle). Only a
        // single-packet train can span the boundary — extension stops at
        // the epoch bound.
        c.busy_until = tail;
        let in_epoch = if tail <= self.epoch_end {
            ser
        } else {
            self.epoch_end.saturating_sub(now)
        };
        c.busy_ps_epoch += in_epoch.as_ps();
        c.train_len = train_len;
        c.train_bytes = train_bytes;
        self.stats.busy_ps_total += u128::from(ser.as_ps());
        self.queue.schedule(tail, Event::TxDone { channel: ch });
    }

    fn on_tx_done(&mut self, ch: ChannelId) {
        let c = &mut self.channels[ch.index()];
        debug_assert!(c.train_len >= 1, "TxDone without a train");
        let train = u64::from(c.train_len);
        self.inst.metrics.add(self.inst.ids.tx_trains, 1);
        self.inst.metrics.add(self.inst.ids.tx_train_packets, train);
        self.inst
            .metrics
            .observe_max(self.inst.ids.tx_train_max_packets, train);
        for _ in 0..c.train_len {
            c.queue.pop_front().expect("TxDone with empty queue");
        }
        c.occupancy -= c.train_bytes;
        c.train_len = 0;
        c.train_bytes = 0;
        c.busy = false;
        if c.queue.is_empty() && c.pending_rate.is_some() {
            self.finish_pending_rate(ch);
            return;
        }
        self.try_tx(ch);
    }

    fn on_arrive(&mut self, ch: ChannelId, pkt: PacketId) {
        // Credits travel back once the packet has cleared the input
        // buffer; charging the propagation delay models the return trip.
        // The return is bookkept on the channel and applied lazily in
        // `try_tx` instead of costing a scheduled event per packet; an
        // idle channel with work waiting is parked on exactly this
        // credit, so arm its wake.
        let bytes = self.arena.get(pkt).bytes;
        let c = &mut self.channels[ch.index()];
        let matures = self.now + c.prop;
        debug_assert!(
            c.pending_credits.back().map_or(true, |&(t, _)| t <= matures),
            "credit returns out of order on {ch}"
        );
        c.pending_credits.push_back((matures, bytes));
        if !c.busy && !c.queue.is_empty() && !c.credit_wake_scheduled && self.now >= c.available_at
        {
            c.credit_wake_scheduled = true;
            if self.inst.on(TraceCategory::Credit) {
                let needed = c
                    .queue
                    .front()
                    .map_or(0, |&p| u64::from(self.arena.get(p).bytes));
                let credits = u64::from(c.credits);
                self.inst
                    .tracer()
                    .credit(self.now.as_ps(), ch.raw(), "block", needed, credits);
            }
            self.queue.schedule(matures, Event::CreditWake { channel: ch });
        }
        match self.fabric.channel_target(ch) {
            PortTarget::Host(h) => {
                debug_assert_eq!(self.arena.get(pkt).dst, h, "misrouted packet");
                let packet = self.arena.free(pkt);
                self.stats
                    .record_packet(packet.created, self.now, packet.bytes);
                let rec = &mut self.messages[packet.message.index()];
                rec.remaining -= 1;
                if rec.remaining == 0 {
                    self.stats.record_message(rec.offered_at, self.now);
                }
            }
            PortTarget::Switch { switch, .. } => self.route(switch, pkt),
        }
    }

    /// Picks the minimal-candidate output with the smallest queue
    /// occupancy and forwards the packet onto it; under
    /// [`RoutingPolicy::Ugal`] a congested minimal set may instead yield
    /// a detour through an intermediate switch.
    ///
    /// Candidate sets come from the precomputed [`RouteTable`] (rebuilt
    /// lazily when the link mask's generation moves) or, under
    /// `EPNET_ROUTES=dynamic`, from the reference per-hop coordinate
    /// computation; both paths enumerate candidates in the identical
    /// order, so the choice never changes simulation output.
    fn route(&mut self, at: SwitchId, pkt: PacketId) {
        let (dst, hops, misroutes_left) = {
            let p = self.arena.get(pkt);
            (p.dst, p.hops, p.misroutes_left)
        };
        let dst_switch = self.fabric.host_switch(dst);
        if at == dst_switch {
            // Local delivery: the ejection port depends on the host, not
            // the switch, and is the sole candidate — no table row.
            let p = self.arena.get_mut(pkt);
            p.hops = hops.saturating_add(1);
            let out = self.fabric.output_channel(at, self.fabric.host_port(dst));
            self.enqueue(out, pkt);
            self.try_tx(out);
            return;
        }
        if let RouteMode::Table(t) = &self.routes {
            if !t.is_current(self.mask.as_ref()) {
                let start = Instant::now();
                let table = RouteTable::build(&self.fabric, self.mask.as_ref());
                let wall = start.elapsed();
                self.inst.profiler.record("route_table_build", wall);
                if self.inst.on(TraceCategory::Routes) {
                    let build_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
                    self.inst.tracer().routes(
                        self.now.as_ps(),
                        table.generation(),
                        build_ns,
                        table.num_port_entries() as u64,
                    );
                }
                self.routes = RouteMode::Table(table);
            }
        }
        // Rotating start index de-correlates tie-breaks between switches
        // and packets while staying deterministic.
        let start_key = usize::from(hops) + at.index() + pkt.index();
        let (mut best, best_occ) = match &mut self.routes {
            RouteMode::Table(t) => {
                let cands = t.candidates(at, dst_switch);
                assert!(
                    !cands.is_empty(),
                    "no route from {at} toward {dst}: fabric partitioned by link mask"
                );
                Self::pick_minimal(&self.channels, &self.fabric, at, start_key, cands)
            }
            RouteMode::Dynamic { scratch } => {
                self.fabric
                    .candidate_ports_masked(at, dst, self.mask.as_ref(), scratch);
                assert!(
                    !scratch.is_empty(),
                    "no route from {at} toward {dst}: fabric partitioned by link mask"
                );
                Self::pick_minimal(&self.channels, &self.fabric, at, start_key, scratch)
            }
        };

        let mut misrouted = false;
        if let RoutingPolicy::Ugal { bias_bytes, .. } = self.config.routing {
            if misroutes_left > 0 {
                let detour = match &mut self.routes {
                    RouteMode::Table(t) => Self::pick_detour(
                        &self.channels,
                        &self.fabric,
                        at,
                        t.detours(at, dst_switch),
                    ),
                    RouteMode::Dynamic { scratch } => {
                        self.fabric.detour_ports_masked(
                            at,
                            dst_switch,
                            self.mask.as_ref(),
                            scratch,
                        );
                        Self::pick_detour(&self.channels, &self.fabric, at, scratch)
                    }
                };
                if let Some((port, occ)) = detour {
                    // UGAL: take the detour only when it looks at least
                    // twice as cheap (the detour path is two hops long).
                    if 2 * occ + u64::from(bias_bytes) < best_occ {
                        best = port;
                        misrouted = true;
                        self.inst.metrics.add(self.inst.ids.detours_taken, 1);
                        if self.inst.on(TraceCategory::Detour) {
                            self.inst.tracer().detour(
                                self.now.as_ps(),
                                at.raw(),
                                u32::from(port.raw()),
                                occ,
                                best_occ,
                            );
                        }
                    }
                }
            }
        }

        let p = self.arena.get_mut(pkt);
        p.hops = hops.saturating_add(1);
        if misrouted {
            p.misroutes_left -= 1;
        }
        let out = self.fabric.output_channel(at, best);
        self.enqueue(out, pkt);
        self.try_tx(out);
    }

    /// The least-occupied candidate, rotating the scan start for the
    /// tie-break. Channels draining toward a rate change are "removed
    /// from the list of legal adaptive routes" (§3.2) when any
    /// alternative exists.
    fn pick_minimal(
        channels: &[Channel],
        fabric: &FabricGraph,
        at: SwitchId,
        start_key: usize,
        cands: &[PortIndex],
    ) -> (PortIndex, u64) {
        let start = start_key % cands.len();
        let mut best: Option<(PortIndex, u64)> = None;
        let mut best_draining: Option<(PortIndex, u64)> = None;
        for i in 0..cands.len() {
            let cand = cands[(start + i) % cands.len()];
            let c = &channels[fabric.output_channel(at, cand).index()];
            let slot = if c.pending_rate.is_some() {
                &mut best_draining
            } else {
                &mut best
            };
            if slot.map_or(true, |(_, o)| c.occupancy < o) {
                *slot = Some((cand, c.occupancy));
            }
        }
        best.or(best_draining).expect("candidate list is non-empty")
    }

    /// The least-occupied detour port (first-wins on ties, matching the
    /// enumeration order of [`FabricGraph::detour_ports_masked`]).
    fn pick_detour(
        channels: &[Channel],
        fabric: &FabricGraph,
        at: SwitchId,
        cands: &[PortIndex],
    ) -> Option<(PortIndex, u64)> {
        let mut best: Option<(PortIndex, u64)> = None;
        for &port in cands {
            let occ = channels[fabric.output_channel(at, port).index()].occupancy;
            if best.map_or(true, |(_, o)| occ < o) {
                best = Some((port, occ));
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // The per-epoch controller (§3.3)
    // ------------------------------------------------------------------

    fn on_epoch(&mut self) {
        match self.config.control {
            ControlMode::AlwaysFull => {}
            ControlMode::IndependentChannel => self.retune_independent(),
            ControlMode::PairedLink => self.retune_paired(),
        }
        // Sample link asymmetry: how often do a link's two channels sit
        // at different speeds (§3.3.1)?
        if self.config.control != ControlMode::AlwaysFull {
            for link in 0..self.fabric.num_links() {
                let (a, b) = self
                    .fabric
                    .link_channels(epnet_topology::LinkId::new(link as u32));
                self.stats.link_samples += 1;
                let (ca, cb) = (&self.channels[a.index()], &self.channels[b.index()]);
                if ca.rate != cb.rate || ca.off != cb.off {
                    self.stats.asymmetric_link_samples += 1;
                }
            }
        }
        if let Some(mut dt) = self.dyntopo.take() {
            let mask = self.mask.as_mut().expect("dyntopo requires a mask");
            dt.on_epoch(
                self.now,
                &self.fabric,
                &mut self.channels,
                mask,
                &self.config,
                &mut self.stats,
                &mut self.inst,
            );
            self.dyntopo = Some(dt);
        }
        let epoch = self.config.epoch;
        // Queue depth is sampled here, once per channel per epoch, so
        // the mean/peak metrics describe standing queues rather than
        // transient per-packet spikes.
        let mut queued_sum = 0u64;
        let mut queued_peak = 0u64;
        for c in &mut self.channels {
            queued_sum += c.occupancy;
            queued_peak = queued_peak.max(c.occupancy);
            // Pre-charge the next epoch with the in-flight transmission's
            // overhang.
            let overhang = c.busy_until.saturating_sub(self.now);
            c.busy_ps_epoch = overhang.as_ps().min(epoch.as_ps());
        }
        let ids = self.inst.ids;
        self.inst
            .metrics
            .add(ids.epoch_queue_samples, self.channels.len() as u64);
        self.inst.metrics.add(ids.epoch_queue_bytes_sum, queued_sum);
        self.inst
            .metrics
            .observe_max(ids.epoch_queue_bytes_peak, queued_peak);
        let next = self.now + epoch;
        self.epoch_end = next;
        if next <= self.end {
            self.queue.schedule(next, Event::EpochTick);
        }
    }

    fn retune_independent(&mut self) {
        for ch in 0..self.channels.len() {
            let id = ChannelId::new(ch as u32);
            if let Some((util, rate)) = self.channel_decision(id) {
                self.decide_rate(id, util, rate);
            }
        }
    }

    fn retune_paired(&mut self) {
        // "The link pair must be reconfigured together to match the
        // requirements of the channel with the highest load" (§3.3.1).
        for link in 0..self.fabric.num_links() {
            let (a, b) = self.fabric.link_channels(epnet_topology::LinkId::new(link as u32));
            let (da, db) = (self.channel_decision(a), self.channel_decision(b));
            let ((ua, ra), (ub, rb)) = match (da, db) {
                (Some(da), Some(db)) => (da, db),
                _ => continue,
            };
            let rate = ra.max(rb);
            self.decide_rate(a, ua, rate);
            self.decide_rate(b, ub, rate);
        }
    }

    /// The measured utilization and the rate the policy wants for this
    /// channel, or `None` when the channel is exempt from tuning (host
    /// link with tuning disabled, or powered off).
    fn channel_decision(&self, ch: ChannelId) -> Option<(f64, LinkRate)> {
        let c = &self.channels[ch.index()];
        if !c.tunable || c.off {
            return None;
        }
        let util = c.epoch_utilization(self.config.epoch);
        let rate = desired_rate(
            self.config.policy,
            c.rate,
            util,
            self.config.target_utilization,
            self.config.min_rate,
            self.config.max_rate,
        );
        Some((util, rate))
    }

    /// Applies one controller decision and, when tracing, records it
    /// with the measured utilization and the outcome-derived reason.
    fn decide_rate(&mut self, ch: ChannelId, util: f64, rate: LinkRate) {
        let old = self.channels[ch.index()].rate;
        let outcome = self.apply_rate(ch, rate);
        if self.inst.on(TraceCategory::Controller) {
            let reason = match outcome {
                RateOutcome::Unchanged => "hold",
                RateOutcome::Applied if rate > old => "upshift",
                RateOutcome::Applied => "downshift",
                RateOutcome::DrainDeferred => "drain_deferred",
                RateOutcome::DrainCancelled => "drain_cancelled",
            };
            let at = self.now.as_ps();
            let (old, new) = (old.to_string(), rate.to_string());
            self.inst
                .tracer()
                .controller(at, ch.raw(), util, &old, &new, reason);
        }
    }

    /// Applies a rate decision; a change costs the reactivation latency
    /// (§3.1). Under [`ReactivationStrategy::DrainFirst`] a busy channel
    /// is first removed from the legal routes and drained (§3.2's first
    /// option).
    fn apply_rate(&mut self, ch: ChannelId, rate: LinkRate) -> RateOutcome {
        let now = self.now;
        let model = self.config.reactivation;
        let strategy = self.config.reactivation_strategy;
        let c = &mut self.channels[ch.index()];
        if c.pending_rate.take().is_some() && c.rate == rate {
            // The controller changed its mind back before the drain
            // finished; cancel the pending change.
            return RateOutcome::DrainCancelled;
        }
        if c.rate == rate {
            return RateOutcome::Unchanged;
        }
        // Drain-first only defers *downshifts*: an upshift is what a
        // congested queue needs, and deferring it until the queue
        // empties could wait forever.
        if strategy == crate::config::ReactivationStrategy::DrainFirst
            && rate < c.rate
            && !c.queue_is_idle()
        {
            c.pending_rate = Some(rate);
            return RateOutcome::DrainDeferred;
        }
        let latency = model.latency(c.rate, rate);
        c.note_interval(now);
        c.rate = rate;
        let until = now + latency;
        c.available_at = until;
        self.stats.reconfigurations += 1;
        self.stats.record_rate(now, ch.raw(), Some(rate));
        if self.inst.on(TraceCategory::Reactivation) {
            let rate = rate.to_string();
            self.inst.tracer().reactivation(
                now.as_ps(),
                ch.raw(),
                "start",
                &rate,
                Some(until.as_ps()),
            );
        }
        // If traffic is waiting, make sure it resumes once the channel
        // relocks (the serializing packet, if any, completes at the old
        // timing — the change takes effect for subsequent packets).
        self.try_tx(ch);
        RateOutcome::Applied
    }

    /// Completes a drain-first rate change once the queue has emptied.
    fn finish_pending_rate(&mut self, ch: ChannelId) {
        let now = self.now;
        let model = self.config.reactivation;
        let c = &mut self.channels[ch.index()];
        let Some(rate) = c.pending_rate.take() else {
            return;
        };
        if !c.queue_is_idle() {
            // New traffic slipped in before the drain completed (only
            // possible when this channel was the sole route); keep
            // waiting.
            c.pending_rate = Some(rate);
            return;
        }
        let latency = model.latency(c.rate, rate);
        c.note_interval(now);
        c.rate = rate;
        let until = now + latency;
        c.available_at = until;
        self.stats.reconfigurations += 1;
        self.stats.record_rate(now, ch.raw(), Some(rate));
        if self.inst.on(TraceCategory::Reactivation) {
            let rate = rate.to_string();
            self.inst.tracer().reactivation(
                now.as_ps(),
                ch.raw(),
                "start",
                &rate,
                Some(until.as_ps()),
            );
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    fn finish(mut self) -> SimReport {
        let finalize_start = Instant::now();
        let end = self.now;
        let mut residency = RateResidency {
            at_rate_ps: [0; LinkRate::COUNT],
            off_ps: 0,
        };
        for c in &mut self.channels {
            c.note_interval(end);
            for r in RATE_LADDER {
                residency.at_rate_ps[r.index()] += u128::from(c.time_at_rate_ps[r.index()]);
            }
            residency.off_ps += u128::from(c.off_ps);
        }
        let s = &self.stats;
        let mean_packet_latency = if s.packets > 0 {
            SimTime::from_ps((s.packet_latency_sum_ps / u128::from(s.packets)) as u64)
        } else {
            SimTime::ZERO
        };
        let mean_message_latency = if s.messages > 0 {
            SimTime::from_ps((s.message_latency_sum_ps / u128::from(s.messages)) as u64)
        } else {
            SimTime::ZERO
        };
        let channel_time = u128::from(end.as_ps()) * self.channels.len() as u128;
        let avg_channel_utilization = if channel_time > 0 {
            (s.busy_ps_total as f64 / channel_time as f64).min(1.0)
        } else {
            0.0
        };
        let asymmetric_link_fraction = if s.link_samples > 0 {
            s.asymmetric_link_samples as f64 / s.link_samples as f64
        } else {
            0.0
        };
        let num_channels = self.channels.len();
        let peak_live_packets = self.arena.capacity();
        // Residency gauges are set once here: they are pure
        // simulation-time totals, so the metrics map stays identical
        // across scheduler/route modes and tracing on/off.
        let ids = self.inst.ids;
        let clamp = |ps: u128| u64::try_from(ps).unwrap_or(u64::MAX);
        for r in RATE_LADDER {
            self.inst
                .metrics
                .set(ids.residency_ps[r.index()], clamp(residency.at_rate_ps[r.index()]));
        }
        self.inst
            .metrics
            .set(ids.residency_off_ps, clamp(residency.off_ps));
        let metrics = self.inst.metrics.snapshot();
        self.inst
            .profiler
            .record("finalize", finalize_start.elapsed());
        let phases = std::mem::take(&mut self.inst.profiler).into_phases();
        self.inst.flush();
        // `finish` consumes the simulator, so the bulky per-run
        // collections (histogram, timeline) move into the report.
        let s = self.stats;
        epnet_telemetry::summary::record_run(s.delivered_bytes, s.events, &phases);
        SimReport {
            duration: end,
            num_channels,
            packets_delivered: s.packets,
            messages_delivered: s.messages,
            mean_packet_latency,
            packet_latency_hist: s.packet_hist,
            mean_message_latency,
            offered_bytes: s.offered_bytes,
            delivered_bytes: s.delivered_bytes,
            avg_channel_utilization,
            residency,
            reconfigurations: s.reconfigurations,
            events_processed: s.events,
            peak_live_packets,
            asymmetric_link_fraction,
            peak_queue_bytes: s.peak_queue_bytes,
            timeline: s.timeline,
            metrics,
            phases,
        }
    }
}
