//! The event-driven simulator engine.
//!
//! # Modelling notes (see DESIGN.md for the full rationale)
//!
//! * Packet granularity with virtual cut-through approximated by a fixed
//!   per-hop router latency. All headline results of the paper are
//!   *deltas* against a baseline run using the identical forwarding
//!   model.
//! * Credit-based link-level flow control: a channel may only start
//!   serializing a packet when the downstream input buffer has space;
//!   credits return after a propagation delay once the packet moves on.
//!   Output queues are unbounded (switches are "both input and output
//!   buffered", §4.1 — we give the output side elastic depth, which keeps
//!   the fabric deadlock-free without virtual channels while preserving
//!   the congestion signal adaptive routing needs).
//! * Adaptive routing: at each hop the packet picks, among the minimal
//!   candidate ports, the one with the smallest output-queue occupancy
//!   ("adaptively route on each hop based solely on the output queue
//!   depth", §4.1), with a deterministic rotating tie-break.
//! * Link-rate control runs at the end of every epoch (§3.3). A rate
//!   change makes the channel unavailable for the reactivation latency;
//!   traffic routed toward it queues up and adaptive routing steers
//!   around the congestion, exactly the second tolerance strategy of
//!   §3.2.
//!
//! # Memory layout
//!
//! Per-channel state is struct-of-arrays ([`crate::channels::Channels`]):
//! the fields every event touches live in dense parallel `Vec`s indexed
//! by channel, cold config/telemetry fields in a side table. Channel
//! targets and arrival offsets are precomputed per channel at
//! construction, and message records plus credit-return buffers recycle
//! through free lists, so a warmed-up run performs no steady-state heap
//! allocation (see DESIGN.md "Memory layout").

use crate::channels::{Channels, F_BUSY, F_CREDIT_WAKE, F_DRAINING, F_OFF, F_RETRY, F_TUNABLE};
use crate::config::{ControlMode, EpochMode, RoutingPolicy, SimConfig};
use crate::controller::desired_rate;
use crate::dyntopo::DynamicTopology;
use crate::env::SimModel;
use crate::event::{Event, EventQueue};
use crate::flows::FlowTable;
use crate::instrument::Instruments;
use crate::packet::{MessageId, Packet, PacketArena, PacketId};
use crate::stats::{RateResidency, SimReport, Stats};
use crate::traffic::{Message, TrafficSource};
use crate::SimTime;
use epnet_power::{LinkRate, RATE_LADDER};
use epnet_telemetry::{TraceCategory, Tracer};
use epnet_topology::{
    ChannelId, FabricGraph, LinkMask, Medium, PortIndex, PortTarget, RouteTable, RoutingTopology,
    SwitchId,
};
use std::time::Instant;

/// Record of an in-flight message for completion tracking. Slots are
/// recycled through a free list once the last packet delivers, so the
/// table is bounded by concurrently in-flight messages.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MessageRec {
    pub(crate) remaining: u32,
    pub(crate) offered_at: SimTime,
}

/// What [`Simulator::apply_rate`] did with a controller decision —
/// the trace layer's `reason` derives from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RateOutcome {
    /// The channel already ran at the decided rate.
    Unchanged,
    /// The rate change took effect (reactivation charged).
    Applied,
    /// Downshift parked behind a drain (§3.2's first option).
    DrainDeferred,
    /// A pending drain-first change was cancelled by a reversal.
    DrainCancelled,
}

/// How `route()` obtains its candidate-port sets.
///
/// The default is a precomputed [`RouteTable`] indexed per hop and
/// rebuilt lazily when the link mask's generation moves. Setting
/// `EPNET_ROUTES=dynamic` at simulator construction falls back to the
/// reference on-the-fly coordinate computation — mirroring
/// `EPNET_SCHED=heap` — and must produce byte-identical reports.
#[derive(Debug)]
pub(crate) enum RouteMode {
    /// Indexed lookups in a precomputed table.
    Table(RouteTable),
    /// Per-hop recomputation into a reused scratch buffer.
    Dynamic { scratch: Vec<PortIndex> },
}

/// The event-driven network simulator (§4.1: "an in-house event-driven
/// network simulator, which has been heavily modified to support future
/// high-performance networks").
///
/// Build one per run: [`Simulator::run_until`] consumes the simulator and
/// returns a [`SimReport`]. Harnesses that need to observe the engine
/// mid-run (e.g. to snapshot allocator counters after warmup) can use
/// the phased equivalents [`Simulator::prime`],
/// [`Simulator::advance_until`], and [`Simulator::finalize`] —
/// `run_until` is exactly their composition.
///
/// ```
/// use epnet_sim::{Message, ReplaySource, SimConfig, SimTime, Simulator};
/// use epnet_topology::{FlattenedButterfly, HostId};
///
/// let fabric = FlattenedButterfly::new(2, 4, 2)?.build_fabric();
/// let traffic = ReplaySource::new(vec![Message {
///     at: SimTime::from_us(1),
///     src: HostId::new(0),
///     dst: HostId::new(7),
///     bytes: 64 * 1024,
/// }]);
/// let report = Simulator::new(fabric, SimConfig::baseline(), traffic)
///     .run_until(SimTime::from_ms(1));
/// assert_eq!(report.delivered_bytes, 64 * 1024);
/// # Ok::<(), epnet_topology::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct Simulator<S> {
    /// The non-generic engine core: all simulation state except the
    /// traffic source. The parallel engine (`EPNET_PAR`) instantiates
    /// one core per shard — see [`crate::par`].
    pub(crate) core: Core,
    pub(crate) source: S,
    pub(crate) pending: Option<Message>,
    /// Whether [`Simulator::prime`] has run.
    primed: bool,
    /// The pop loop is still inside the warmup window (wall-clock
    /// phase attribution only).
    in_warmup: bool,
    /// Start of the wall-clock phase currently being attributed.
    phase_start: Instant,
}

/// Where a core's generated events go.
///
/// The serial engine schedules straight into its own [`EventQueue`].
/// Under the sharded parallel engine every core runs in *window* mode:
/// events inside the current lookahead window enter a shard-local
/// ordered queue, everything else is recorded for the coordinator to
/// push into the single global queue with exact serial sequence
/// numbers (see `crate::par`).
#[derive(Debug)]
pub(crate) enum CoreQueue {
    /// The serial engine's event queue.
    Serial(EventQueue),
    /// Window-capture mode for the parallel engine.
    Window(crate::par::WindowQueue),
}

/// The engine core: every piece of simulation state except the traffic
/// source, with all event handlers. Non-generic so the parallel engine
/// can build one per shard and move them across worker threads.
#[derive(Debug)]
pub(crate) struct Core {
    pub(crate) fabric: FabricGraph,
    pub(crate) config: SimConfig,
    pub(crate) queue: CoreQueue,
    pub(crate) now: SimTime,
    pub(crate) end: SimTime,
    pub(crate) channels: Channels,
    /// Receiving endpoint of each channel, precomputed (the per-event
    /// decode costs a division).
    pub(crate) targets: Vec<PortTarget>,
    /// Per-channel tail-to-arrival offset: propagation delay plus the
    /// router pipeline when the far end is a switch.
    pub(crate) arrive_extra: Vec<SimTime>,
    /// Switch each host hangs off, precomputed (`host / concentration`
    /// is a divide on the per-hop path).
    pub(crate) host_switch: Vec<SwitchId>,
    /// Ejection channel delivering to each host, precomputed.
    pub(crate) eject_channel: Vec<ChannelId>,
    pub(crate) arena: PacketArena,
    pub(crate) messages: Vec<MessageRec>,
    /// Retired message slots awaiting reuse.
    pub(crate) msg_free: Vec<u32>,
    pub(crate) stats: Stats,
    pub(crate) mask: Option<LinkMask>,
    pub(crate) dyntopo: Option<DynamicTopology>,
    pub(crate) routes: RouteMode,
    /// Which epoch-tick implementation runs (`EPNET_EPOCH`; see
    /// [`Core::on_epoch`]).
    pub(crate) epoch_mode: EpochMode,
    /// Link of each channel, precomputed for the paired-link active
    /// path (channel → link is a table lookup there, once per active
    /// channel per tick).
    pub(crate) link_of: Vec<u32>,
    /// Scratch for the paired-link active path: links with at least one
    /// active channel, sorted and deduplicated in place each tick.
    pub(crate) active_links: Vec<u32>,
    pub(crate) last_offered_at: SimTime,
    /// End of the current utilization-measurement epoch.
    pub(crate) epoch_end: SimTime,
    /// Whether epoch ticks run (rate controller or dynamic topology):
    /// bounds transmission trains at the epoch so no rate or mask
    /// change can land mid-train.
    pub(crate) controller_active: bool,
    /// Which simulation regime this core runs (`EPNET_MODEL`).
    pub(crate) model: SimModel,
    /// Fluid per-flow state (hybrid model; empty in packet mode).
    pub(crate) flows: FlowTable,
    /// Pod of each host, for the hierarchical delivered-bytes rollup
    /// (hybrid model only; empty in packet mode).
    pub(crate) pod_of_host: Vec<u32>,
    /// Delivered bytes per pod (hybrid model only; empty in packet
    /// mode, which keeps packet-mode reports byte-identical).
    pub(crate) pod_bytes: Vec<u64>,
    /// Telemetry: tracer, metrics registry, phase profiler.
    pub(crate) inst: Instruments,
}

impl<S: TrafficSource> Simulator<S> {
    /// Creates a simulator over `fabric` driven by `source`, with the
    /// simulation model taken from `EPNET_MODEL` (packet by default).
    pub fn new(fabric: FabricGraph, config: SimConfig, source: S) -> Self {
        Self::with_model(fabric, config, source, crate::env::env_model())
    }

    /// Creates a simulator with an explicit simulation model, ignoring
    /// `EPNET_MODEL` — the programmatic twin of the environment switch,
    /// used by benches and validation tests comparing regimes within
    /// one process (environment twiddling would race across threads).
    pub fn with_model(fabric: FabricGraph, config: SimConfig, source: S, model: SimModel) -> Self {
        let inst = Instruments::from_env();
        Self {
            core: Core::build(fabric, config, inst, model),
            source,
            pending: None,
            primed: false,
            in_warmup: false,
            phase_start: Instant::now(),
        }
    }
}

impl Core {
    /// Builds an engine core over `fabric`, reporting through `inst`.
    /// Shared by [`Simulator::new`] and the parallel engine's per-shard
    /// core construction.
    pub(crate) fn build(
        fabric: FabricGraph,
        config: SimConfig,
        mut inst: Instruments,
        model: SimModel,
    ) -> Self {
        config.validate();
        let n = fabric.num_channels();
        let mut channels = Channels::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        let mut arrive_extra = Vec::with_capacity(n);
        for ch in 0..n {
            let id = ChannelId::new(ch as u32);
            let tunable = config.tune_host_links || !fabric.is_host_channel(id);
            let prop = match fabric.channel_medium(id) {
                Medium::Electrical => config.electrical_propagation,
                Medium::Optical => config.optical_propagation,
            };
            channels.push(config.max_rate, config.input_buffer_bytes, tunable, prop);
            let target = fabric.channel_target(id);
            // Tail arrival plus the router pipeline when the far end is
            // a switch (hosts consume directly).
            let router = match target {
                PortTarget::Host(_) => SimTime::ZERO,
                PortTarget::Switch { .. } => config.router_latency,
            };
            targets.push(target);
            arrive_extra.push(prop + router);
        }
        // Peer wiring: the incremental asymmetric-link counter compares
        // each channel against the opposing channel of its link.
        let num_links = fabric.num_links();
        let mut link_of = vec![0u32; n];
        for link in 0..num_links {
            let (a, b) = fabric.link_channels(epnet_topology::LinkId::new(link as u32));
            channels.set_peers(a.index(), b.index());
            link_of[a.index()] = link as u32;
            link_of[b.index()] = link as u32;
        }
        let mut host_switch = Vec::with_capacity(fabric.num_hosts());
        let mut eject_channel = Vec::with_capacity(fabric.num_hosts());
        for h in 0..fabric.num_hosts() {
            let host = epnet_topology::HostId::new(h as u32);
            let sw = fabric.host_switch(host);
            host_switch.push(sw);
            eject_channel.push(fabric.output_channel(sw, fabric.host_port(host)));
        }
        let warmup = config.warmup;
        let first_epoch_end = config.epoch;
        // Pods partition the switch range into at most 64 contiguous
        // groups, so the rollup stays bounded however large the fabric
        // grows; built only for the hybrid model, whose per-pod vector
        // is the only report field that scales with topology size.
        let (pod_of_host, pod_bytes) = if model == SimModel::Hybrid {
            let ns = fabric.num_switches().max(1);
            let pods = ns.min(64);
            let of = host_switch
                .iter()
                .map(|sw| (sw.index() * pods / ns) as u32)
                .collect();
            (of, vec![0u64; pods])
        } else {
            (Vec::new(), Vec::new())
        };
        let routes = if model == SimModel::Hybrid {
            // A precomputed route table is O(switch-pairs) memory —
            // prohibitive at the hybrid model's 10^5-host targets —
            // and hybrid routes only the demoted packet residue, so
            // the reference per-hop computation is forced regardless
            // of `EPNET_ROUTES`. Route mode never changes output.
            RouteMode::Dynamic {
                scratch: Vec::new(),
            }
        } else {
            match std::env::var("EPNET_ROUTES") {
                Ok(v) if v.eq_ignore_ascii_case("dynamic") => RouteMode::Dynamic {
                    scratch: Vec::new(),
                },
                _ => {
                    let start = Instant::now();
                    let table = RouteTable::build(&fabric, None);
                    let wall = start.elapsed();
                    inst.profiler.record("route_table_build", wall);
                    if inst.on(TraceCategory::Routes) {
                        let build_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
                        inst.tracer().routes(
                            0,
                            table.generation(),
                            build_ns,
                            table.num_port_entries() as u64,
                        );
                    }
                    RouteMode::Table(table)
                }
            }
        };
        // The queue hint reflects expected *pending events*, not fabric
        // size: a packet run keeps one or two events in flight per busy
        // channel, but the hybrid fluid regime has no per-packet events
        // at all — just the next workload pull and the epoch tick — so
        // a channel-count-sized calendar would scatter its sparse
        // events over cold buckets (one first-touch allocation each).
        let queue_hint = match model {
            SimModel::Hybrid => 0,
            SimModel::Packet => n,
        };
        Self {
            queue: CoreQueue::Serial(EventQueue::with_hint(queue_hint)),
            fabric,
            config,
            now: SimTime::ZERO,
            end: SimTime::ZERO,
            channels,
            targets,
            arrive_extra,
            host_switch,
            eject_channel,
            arena: PacketArena::new(),
            messages: Vec::new(),
            msg_free: Vec::new(),
            stats: Stats::new(warmup),
            mask: None,
            dyntopo: None,
            routes,
            epoch_mode: EpochMode::from_env(),
            link_of,
            active_links: Vec::with_capacity(num_links),
            last_offered_at: SimTime::ZERO,
            epoch_end: first_epoch_end,
            controller_active: false,
            model,
            flows: FlowTable::new(if model == SimModel::Hybrid { n } else { 0 }),
            pod_of_host,
            pod_bytes,
            inst,
        }
    }

    /// Schedules `event` at absolute time `at` — into the serial event
    /// queue, or, in window mode, into the shard-local queue (events
    /// inside the current window) or the generation log for the
    /// coordinator to sequence (everything else). Window mode records
    /// *every* generated event in the log so the coordinator's replay
    /// can assign the exact serial sequence number to each.
    pub(crate) fn schedule(&mut self, at: SimTime, event: Event) {
        match &mut self.queue {
            CoreQueue::Serial(q) => q.schedule(at, event),
            CoreQueue::Window(w) => w.record(at, event),
        }
    }

    /// Earliest scheduled time in serial mode.
    fn serial_peek(&mut self) -> Option<SimTime> {
        match &mut self.queue {
            CoreQueue::Serial(q) => q.peek_time(),
            CoreQueue::Window(_) => unreachable!("serial pop loop on a window-mode core"),
        }
    }

    /// Pops the earliest event in serial mode. The parallel engine uses
    /// this once, to drain the primed queue into the coordinator's
    /// globally-sequenced queues.
    pub(crate) fn serial_pop(&mut self) -> Option<(SimTime, Event)> {
        match &mut self.queue {
            CoreQueue::Serial(q) => q.pop(),
            CoreQueue::Window(_) => unreachable!("serial pop loop on a window-mode core"),
        }
    }

    /// Dispatches one shard-local event — the parallel engine's
    /// counterpart of the serial pop loop's match. Global events
    /// (`Workload`, `EpochTick`) are coordinator phases and never reach
    /// a shard.
    pub(crate) fn dispatch_local(&mut self, ev: Event, half: crate::par::ArriveHalf) {
        use crate::par::ArriveHalf;
        match ev {
            Event::TxDone { channel } => self.on_tx_done(channel),
            Event::Arrive { channel, packet } => {
                let (credit, route) = match half {
                    ArriveHalf::Full => (true, true),
                    ArriveHalf::Credit => (true, false),
                    ArriveHalf::Route => (false, true),
                };
                self.on_arrive(channel, packet, credit, route);
            }
            Event::CreditWake { channel } => self.on_credit_wake(channel),
            Event::Retry { channel } => self.on_retry(channel),
            Event::Workload | Event::EpochTick => {
                unreachable!("global events are coordinator phases, never shard-dispatched")
            }
        }
    }

    /// Drains this core's window queue in (time, sequence) order,
    /// dispatching each event and recording an execution record — the
    /// per-dispatch high-water marks of the generation/free/timeline
    /// logs and the trace sink — for the coordinator's barrier replay.
    pub(crate) fn exec_window(&mut self, sink: Option<&epnet_telemetry::MemorySink>) {
        loop {
            let CoreQueue::Window(w) = &mut self.queue else {
                unreachable!("exec_window on a serial core")
            };
            let Some(((t, seq), le)) = w.local.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "window events went backwards");
            self.now = t;
            let kind = match le.ev {
                Event::TxDone { .. } => crate::par::KIND_TX_DONE,
                Event::Arrive { .. } => crate::par::KIND_ARRIVE,
                Event::CreditWake { .. } => crate::par::KIND_CREDIT_WAKE,
                Event::Retry { .. } => crate::par::KIND_RETRY,
                Event::Workload | Event::EpochTick => {
                    unreachable!("global events never enter a shard window")
                }
            };
            let half = le.half;
            self.dispatch_local(le.ev, le.half);
            let timeline_end = self.stats.timeline.len() as u32;
            let trace_end = sink.map_or(0, |s| s.len() as u32);
            let CoreQueue::Window(w) = &mut self.queue else {
                unreachable!("queue mode changed mid-window")
            };
            w.execs.push(crate::par::ExecRec {
                t,
                seq,
                kind,
                half,
                gen_end: w.gens.len() as u32,
                pkt_free_end: w.freed_packets.len() as u32,
                msg_free_end: w.freed_messages.len() as u32,
                timeline_end,
                trace_end,
            });
        }
    }
}

impl<S: TrafficSource> Simulator<S> {
    /// Replaces the trace destination for this run (programmatic
    /// alternative to `EPNET_TRACE`; see
    /// [`epnet_telemetry::MemorySink`]). Events emitted during
    /// construction — the initial route-table build — are only
    /// captured when tracing was already configured via the
    /// environment.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.core.inst.set_tracer(tracer);
    }

    /// Attributes externally measured wall time (e.g. topology
    /// elaboration, which happens before the simulator exists) to a
    /// named phase of this run's breakdown.
    pub fn record_phase(&mut self, name: &'static str, wall: std::time::Duration) {
        self.core.inst.profiler.record(name, wall);
    }

    /// Enables the dynamic-topology extension (§5.2): links beyond the
    /// mesh tier may be powered off entirely under low load and
    /// re-enabled as demand grows.
    pub fn enable_dynamic_topology(&mut self, dt: DynamicTopology) {
        // A fresh all-enabled mask is generation 0 and routes exactly
        // like no mask at all, so a table built maskless stays current.
        self.core.mask = Some(LinkMask::all_enabled(&self.core.fabric));
        self.core.dyntopo = Some(dt);
    }

    /// The fabric being simulated.
    pub fn fabric(&self) -> &FabricGraph {
        &self.core.fabric
    }

    /// Events popped so far — lets phased harnesses compute per-window
    /// deltas (e.g. allocations per event after warmup).
    pub fn events_processed(&self) -> u64 {
        self.core.stats.events
    }

    /// Runs the simulation until simulated time `end` and reports.
    ///
    /// When `EPNET_PAR` selects a worker width, the run executes on the
    /// sharded parallel engine instead of the serial pop loop; its
    /// report is byte-identical to the serial engine's at every width
    /// (see `crate::par`). The phased API ([`Simulator::prime`] /
    /// [`Simulator::advance_until`] / [`Simulator::finalize`]) always
    /// runs serially.
    pub fn run_until(mut self, end: SimTime) -> SimReport {
        if let Some(width) = crate::env::env_threads("EPNET_PAR") {
            self.prime(end);
            return crate::par::run(self, end, width);
        }
        self.prime(end);
        self.advance_until(end);
        self.finalize()
    }

    /// Seeds the run toward horizon `end`: initial rate samples, the
    /// first workload pull, and the first epoch tick. Call once, before
    /// [`Simulator::advance_until`].
    pub fn prime(&mut self, end: SimTime) {
        assert!(!self.primed, "prime() called twice");
        self.primed = true;
        let core = &mut self.core;
        core.end = end;
        core.stats.timeline_channels = core
            .config
            .timeline_channels
            .min(core.channels.len() as u32);
        for ch in 0..core.stats.timeline_channels {
            let rate = core.channels.rate[ch as usize];
            core.stats.record_rate(SimTime::ZERO, ch, Some(rate));
        }
        self.pending = self.source.next_message();
        if let Some(m) = self.pending {
            self.core.schedule(m.at, Event::Workload);
        }
        self.core.controller_active = self.core.config.control != ControlMode::AlwaysFull
            || self.core.dyntopo.is_some()
            || self.core.model == SimModel::Hybrid;
        if self.core.controller_active {
            let epoch = self.core.config.epoch;
            self.core.schedule(epoch, Event::EpochTick);
        }
        self.in_warmup = self.core.config.warmup > SimTime::ZERO;
        self.phase_start = Instant::now();
    }

    /// Processes every event scheduled at or before
    /// `min(until, horizon)`. May be called repeatedly with
    /// nondecreasing times; [`Simulator::run_until`] is
    /// `prime(end)` + `advance_until(end)` + `finalize()`.
    pub fn advance_until(&mut self, until: SimTime) {
        assert!(self.primed, "advance_until() before prime()");
        let cap = if until < self.core.end {
            until
        } else {
            self.core.end
        };
        // Peek before popping: events beyond the horizon stay queued
        // (the queue is dropped wholesale with the engine) and the
        // monotonic-pop invariant is checked without consuming.
        //
        // The warmup/measurement wall-clock split costs one predictable
        // branch per pop until the warmup boundary passes, then nothing.
        let ids = self.core.inst.ids;
        let warmup_end = self.core.config.warmup;
        // Event-kind counters accumulate in registers and flush into the
        // metrics registry once per `advance_until` — totals (and thus
        // the serialized report) are identical, without an indexed
        // read-modify-write inside the pop loop.
        let mut n_workload = 0u64;
        let mut n_tx_done = 0u64;
        let mut n_arrive = 0u64;
        let mut n_credit_wake = 0u64;
        let mut n_retry = 0u64;
        let mut n_epoch_tick = 0u64;
        while let Some(t) = self.core.serial_peek() {
            if t > cap {
                break;
            }
            if self.in_warmup && t >= warmup_end {
                self.core
                    .inst
                    .profiler
                    .record("warmup", self.phase_start.elapsed());
                self.phase_start = Instant::now();
                self.in_warmup = false;
            }
            debug_assert!(t >= self.core.now, "time went backwards");
            let (t, ev) = self.core.serial_pop().expect("peeked event vanished");
            self.core.now = t;
            self.core.stats.events += 1;
            match ev {
                Event::Workload => {
                    n_workload += 1;
                    self.on_workload();
                }
                Event::TxDone { channel } => {
                    n_tx_done += 1;
                    self.core.on_tx_done(channel);
                }
                Event::Arrive { channel, packet } => {
                    n_arrive += 1;
                    self.core.on_arrive(channel, packet, true, true);
                }
                Event::CreditWake { channel } => {
                    n_credit_wake += 1;
                    self.core.on_credit_wake(channel);
                }
                Event::Retry { channel } => {
                    n_retry += 1;
                    self.core.on_retry(channel);
                }
                Event::EpochTick => {
                    n_epoch_tick += 1;
                    self.core.on_epoch();
                }
            }
        }
        self.core.inst.metrics.add(ids.ev_workload, n_workload);
        self.core.inst.metrics.add(ids.ev_tx_done, n_tx_done);
        self.core.inst.metrics.add(ids.ev_arrive, n_arrive);
        self.core
            .inst
            .metrics
            .add(ids.ev_credit_wake, n_credit_wake);
        self.core.inst.metrics.add(ids.ev_retry, n_retry);
        self.core.inst.metrics.add(ids.ev_epoch_tick, n_epoch_tick);
    }

    /// Closes the run at the horizon and produces the report. Consumes
    /// the simulator; events still queued past the horizon are dropped
    /// wholesale with it.
    pub fn finalize(mut self) -> SimReport {
        assert!(self.primed, "finalize() before prime()");
        self.core.inst.profiler.record(
            if self.in_warmup {
                "warmup"
            } else {
                "measurement"
            },
            self.phase_start.elapsed(),
        );
        self.core.now = self.core.end;
        self.core.finish()
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_workload(&mut self) {
        while let Some(m) = self.pending {
            if m.at > self.core.now {
                break;
            }
            self.core.inject(m);
            self.pending = self.source.next_message();
            if let Some(next) = self.pending {
                debug_assert!(next.at >= m.at, "traffic source went backwards in time");
            }
        }
        if let Some(m) = self.pending {
            if m.at <= self.core.end {
                self.core.schedule(m.at, Event::Workload);
            }
        }
    }
}

impl Core {
    /// Offers one message to the network: segments it into packets,
    /// allocates the bookkeeping records, and starts transmission on
    /// the source host's injection channel.
    fn inject(&mut self, m: Message) {
        assert!(
            m.src.index() < self.fabric.num_hosts() && m.dst.index() < self.fabric.num_hosts(),
            "message endpoints outside the fabric"
        );
        debug_assert_ne!(m.src, m.dst, "self-sends are not meaningful");
        self.stats.offered_bytes += m.bytes;
        self.last_offered_at = m.at;
        if self.model == SimModel::Hybrid
            && m.bytes >= crate::flows::FLOW_MIN_BYTES
            && self.try_absorb_flow(&m)
        {
            return;
        }
        let inj = self.fabric.injection_channel(m.src);
        self.inject_packets(inj, m.dst, m.bytes, m.at);
    }

    /// Segments `bytes` into packets on injection channel `inj` and
    /// starts transmission — the tail of [`Core::inject`], shared with
    /// the hybrid model's flow demotion, which re-injects a flow's
    /// remaining bytes with the original offer time so warmup gating
    /// and latency accounting match a message that was always packets.
    pub(crate) fn inject_packets(
        &mut self,
        inj: ChannelId,
        dst: epnet_topology::HostId,
        bytes: u64,
        offered_at: SimTime,
    ) {
        let pkt_size = u64::from(self.config.packet_bytes);
        let full = (bytes / pkt_size) as u32;
        let tail = (bytes % pkt_size) as u32;
        // A zero-byte message still travels as a single minimal packet.
        let count = (full + u32::from(tail > 0)).max(1);
        let rec = MessageRec {
            remaining: count,
            offered_at,
        };
        let message = match self.msg_free.pop() {
            Some(slot) => {
                self.messages[slot as usize] = rec;
                MessageId(slot)
            }
            None => {
                let slot = u32::try_from(self.messages.len()).expect("message table overflow");
                self.messages.push(rec);
                MessageId(slot)
            }
        };
        // In window mode this core is the parallel coordinator's master
        // and the caller is a flow demotion inside an epoch phase (shard
        // cores never inject). Log what was created so the coordinator
        // can mirror the message record, the packet payloads, and the
        // mutated queue out to the owning shards after `on_epoch`.
        if let CoreQueue::Window(w) = &mut self.queue {
            w.demoted_msgs.push((message.raw(), dst.raw()));
        }
        let budget = match self.config.routing {
            RoutingPolicy::MinimalAdaptive => 0,
            RoutingPolicy::Ugal {
                misroute_budget, ..
            } => misroute_budget,
        };
        for i in 0..count {
            let bytes = if i < full {
                pkt_size as u32
            } else {
                tail.max(1)
            };
            let id = self.arena.alloc(Packet {
                dst,
                bytes,
                created: offered_at,
                message,
                hops: 0,
                misroutes_left: budget,
            });
            if let CoreQueue::Window(w) = &mut self.queue {
                w.demoted_packets.push((inj.raw(), id));
            }
            self.enqueue(inj, id, bytes);
        }
        self.try_tx(inj);
    }

    /// `bytes` is the packet's size — every caller already has it in a
    /// register, so the arena is not re-read here.
    pub(crate) fn enqueue(&mut self, ch: ChannelId, pkt: PacketId, bytes: u32) {
        debug_assert_eq!(bytes, self.arena.get(pkt).bytes);
        let bytes = u64::from(bytes);
        let i = ch.index();
        self.channels.queues[i].push_back(pkt);
        // Queued bytes make the channel the epoch controller's business.
        self.channels.mark_active(i);
        let occ = self.channels.occupancy[i] + bytes;
        self.channels.occupancy[i] = occ;
        if occ > self.stats.peak_queue_bytes {
            self.stats.peak_queue_bytes = occ;
        }
    }

    /// Attempts to start serializing the head packet of `ch` — and any
    /// immediate *train* behind it: consecutive queued packets whose
    /// credits are already in hand and whose back-to-back serialization
    /// stays inside the current controller epoch ride under a single
    /// `TxDone` event, with per-packet `Arrive` fan-out at each
    /// packet's own tail time. Train timing is identical to per-packet
    /// scheduling (serialization is back-to-back either way); only the
    /// event count shrinks.
    pub(crate) fn try_tx(&mut self, ch: ChannelId) {
        let i = ch.index();
        let now = self.now;
        let flags = self.channels.flags[i];
        if flags & (F_BUSY | F_OFF) != 0 {
            return;
        }
        let Some(&head) = self.channels.queues[i].front() else {
            return;
        };
        let available_at = self.channels.available_at[i];
        if now < available_at {
            if flags & F_RETRY == 0 {
                self.channels.set_flag(i, F_RETRY);
                self.schedule(available_at, Event::Retry { channel: ch });
            }
            return;
        }
        // Apply credit returns that have matured by now.
        let mut credits =
            self.channels
                .apply_matured_credits(i, now, self.config.input_buffer_bytes);
        let head_bytes = self.arena.get(head).bytes;
        if credits < head_bytes {
            self.inst.metrics.add(self.inst.ids.credit_blocked_tries, 1);
            // Blocked on credits: wake exactly when the next pending
            // return matures. If none is booked yet, the arrival that
            // books one re-arms the wake (`on_arrive`).
            if flags & F_CREDIT_WAKE == 0 {
                if let Some(at) = self.channels.next_credit_at(i) {
                    self.channels.set_flag(i, F_CREDIT_WAKE);
                    if self.inst.on(TraceCategory::Credit) {
                        self.inst.tracer().credit(
                            now.as_ps(),
                            ch.raw(),
                            "block",
                            u64::from(head_bytes),
                            u64::from(credits),
                        );
                    }
                    self.schedule(at, Event::CreditWake { channel: ch });
                }
            }
            return;
        }
        credits -= head_bytes;
        self.channels.set_flag(i, F_BUSY);
        let rate = self.channels.rate[i];
        let extra = self.arrive_extra[i];
        let mut tail = now + SimTime::from_ps(rate.serialize_ps(u64::from(head_bytes)));
        self.schedule(
            tail + extra,
            Event::Arrive {
                channel: ch,
                packet: head,
            },
        );
        let mut train_len = 1u32;
        let mut train_bytes = u64::from(head_bytes);
        // Extend the train. The epoch bound guarantees no rate change
        // can land mid-train: the controller (and the dynamic-topology
        // mask) only act at epoch ticks, and drain-first completions
        // need an empty queue. Without epoch ticks the horizon is the
        // only bound.
        let bound = if self.controller_active {
            self.epoch_end
        } else {
            self.end
        };
        while tail <= bound {
            let Some(&next) = self.channels.queues[i].get(train_len as usize) else {
                break;
            };
            let next_bytes = self.arena.get(next).bytes;
            if credits < next_bytes {
                break;
            }
            let next_tail = tail + SimTime::from_ps(rate.serialize_ps(u64::from(next_bytes)));
            if next_tail > bound {
                break;
            }
            credits -= next_bytes;
            tail = next_tail;
            train_len += 1;
            train_bytes += u64::from(next_bytes);
            self.schedule(
                tail + extra,
                Event::Arrive {
                    channel: ch,
                    packet: next,
                },
            );
        }
        self.channels.credits[i] = credits;
        let ser = tail - now;
        // Charge this epoch only for the busy time that falls inside it;
        // the remainder is pre-charged to later epochs at the tick (a
        // 2 KiB packet at 2.5 Gb/s outlasts a 1 µs epoch, and without the
        // split the controller would see a busy link as idle). Only a
        // single-packet train can span the boundary — extension stops at
        // the epoch bound.
        self.channels.busy_until[i] = tail;
        let in_epoch = if tail <= self.epoch_end {
            ser
        } else {
            self.epoch_end.saturating_sub(now)
        };
        self.channels.busy_ps_epoch[i] += in_epoch.as_ps();
        self.channels.train_len[i] = train_len;
        self.channels.train_bytes[i] = train_bytes;
        self.stats.busy_ps_total += u128::from(ser.as_ps());
        self.schedule(tail, Event::TxDone { channel: ch });
    }

    pub(crate) fn on_tx_done(&mut self, ch: ChannelId) {
        let i = ch.index();
        let train_len = self.channels.train_len[i];
        debug_assert!(train_len >= 1, "TxDone without a train");
        let train = u64::from(train_len);
        self.inst.metrics.add(self.inst.ids.tx_trains, 1);
        self.inst.metrics.add(self.inst.ids.tx_train_packets, train);
        self.inst
            .metrics
            .observe_max(self.inst.ids.tx_train_max_packets, train);
        let q = &mut self.channels.queues[i];
        for _ in 0..train_len {
            q.pop_front().expect("TxDone with empty queue");
        }
        let emptied = q.is_empty();
        self.channels.occupancy[i] -= self.channels.train_bytes[i];
        self.channels.train_len[i] = 0;
        self.channels.train_bytes[i] = 0;
        self.channels.clear_flag(i, F_BUSY);
        if emptied && self.channels.has_flag(i, F_DRAINING) {
            self.finish_pending_rate(ch);
            return;
        }
        self.try_tx(ch);
    }

    /// A credit-blocked channel's pending return matured: clear the
    /// wake latch, trace the unblock, and retry transmission.
    pub(crate) fn on_credit_wake(&mut self, ch: ChannelId) {
        let i = ch.index();
        self.channels.clear_flag(i, F_CREDIT_WAKE);
        if self.inst.on(TraceCategory::Credit) {
            let needed = self.channels.queues[i]
                .front()
                .map_or(0, |&p| u64::from(self.arena.get(p).bytes));
            let credits = u64::from(self.channels.credits[i]);
            self.inst
                .tracer()
                .credit(self.now.as_ps(), ch.raw(), "unblock", needed, credits);
        }
        self.try_tx(ch);
    }

    /// A reconfiguring channel became available again: clear the retry
    /// latch and resume transmission.
    pub(crate) fn on_retry(&mut self, ch: ChannelId) {
        self.channels.clear_flag(ch.index(), F_RETRY);
        // A Retry matures exactly at `available_at`: the link carries
        // traffic again, closing the reactivation window — traced here
        // so tracing never schedules events of its own.
        if self.inst.on(TraceCategory::Reactivation) {
            let rate = self.channels.rate[ch.index()].to_string();
            self.inst
                .tracer()
                .reactivation(self.now.as_ps(), ch.raw(), "end", &rate, None);
        }
        self.try_tx(ch);
    }

    /// Retires a delivered packet. Serial cores free into their own
    /// arena; window-mode cores are mirrors — they record the freed
    /// slot for the coordinator's replica and retire their local copy
    /// without free-list bookkeeping.
    fn free_packet(&mut self, pkt: PacketId) -> Packet {
        match &mut self.queue {
            CoreQueue::Serial(_) => self.arena.free(pkt),
            CoreQueue::Window(w) => {
                w.freed_packets.push(pkt.index() as u32);
                self.arena.take(pkt)
            }
        }
    }

    /// Retires a completed message slot — same split as
    /// [`Core::free_packet`]: serial cores recycle locally, window-mode
    /// cores record for the coordinator's replica.
    fn free_message(&mut self, mid: u32) {
        match &mut self.queue {
            CoreQueue::Serial(_) => self.msg_free.push(mid),
            CoreQueue::Window(w) => w.freed_messages.push(mid),
        }
    }

    /// Handles a packet-tail arrival. The two halves touch disjoint
    /// state: the *credit* half books the return credit on the sending
    /// channel, the *route* half forwards (or delivers) the packet on
    /// the receiving side. The serial engine always runs both; the
    /// parallel engine splits a cross-shard arrival into a credit half
    /// on the sender's shard and a route half on the receiver's.
    pub(crate) fn on_arrive(
        &mut self,
        ch: ChannelId,
        pkt: PacketId,
        do_credit: bool,
        do_route: bool,
    ) {
        let i = ch.index();
        if do_credit {
            // Credits travel back once the packet has cleared the input
            // buffer; charging the propagation delay models the return
            // trip. The return is bookkept on the channel and applied
            // lazily in `try_tx` instead of costing a scheduled event
            // per packet; an idle channel with work waiting is parked on
            // exactly this credit, so arm its wake.
            let bytes = self.arena.get(pkt).bytes;
            let matures = self.now + self.channels.prop[i];
            self.channels.push_credit(i, matures, bytes);
            if self.channels.flags[i] & (F_BUSY | F_CREDIT_WAKE) == 0
                && !self.channels.queues[i].is_empty()
                && self.now >= self.channels.available_at[i]
            {
                self.channels.set_flag(i, F_CREDIT_WAKE);
                if self.inst.on(TraceCategory::Credit) {
                    let needed = self.channels.queues[i]
                        .front()
                        .map_or(0, |&p| u64::from(self.arena.get(p).bytes));
                    let credits = u64::from(self.channels.credits[i]);
                    self.inst
                        .tracer()
                        .credit(self.now.as_ps(), ch.raw(), "block", needed, credits);
                }
                self.schedule(matures, Event::CreditWake { channel: ch });
            }
        }
        if do_route {
            match self.targets[i] {
                PortTarget::Host(h) => {
                    debug_assert_eq!(self.arena.get(pkt).dst, h, "misrouted packet");
                    let packet = self.free_packet(pkt);
                    self.stats
                        .record_packet(packet.created, self.now, packet.bytes);
                    if !self.pod_bytes.is_empty() {
                        self.pod_bytes[self.pod_of_host[h.index()] as usize] +=
                            u64::from(packet.bytes);
                    }
                    let mi = packet.message.index();
                    let rec = &mut self.messages[mi];
                    rec.remaining -= 1;
                    if rec.remaining == 0 {
                        self.stats.record_message(rec.offered_at, self.now);
                        self.free_message(packet.message.raw());
                    }
                }
                PortTarget::Switch { switch, .. } => self.route(switch, pkt),
            }
        }
    }

    /// Picks the minimal-candidate output with the smallest queue
    /// occupancy and forwards the packet onto it; under
    /// [`RoutingPolicy::Ugal`] a congested minimal set may instead yield
    /// a detour through an intermediate switch.
    ///
    /// Candidate sets come from the precomputed [`RouteTable`] (rebuilt
    /// lazily when the link mask's generation moves) or, under
    /// `EPNET_ROUTES=dynamic`, from the reference per-hop coordinate
    /// computation; both paths enumerate candidates in the identical
    /// order, so the choice never changes simulation output.
    fn route(&mut self, at: SwitchId, pkt: PacketId) {
        let (dst, bytes, hops, misroutes_left) = {
            let p = self.arena.get(pkt);
            (p.dst, p.bytes, p.hops, p.misroutes_left)
        };
        let dst_switch = self.host_switch[dst.index()];
        if at == dst_switch {
            // Local delivery: the ejection port depends on the host, not
            // the switch, and is the sole candidate — no table row.
            let p = self.arena.get_mut(pkt);
            p.hops = hops.saturating_add(1);
            let out = self.eject_channel[dst.index()];
            self.enqueue(out, pkt, bytes);
            self.try_tx(out);
            return;
        }
        if let RouteMode::Table(t) = &self.routes {
            if !t.is_current(self.mask.as_ref()) {
                let start = Instant::now();
                let table = RouteTable::build(&self.fabric, self.mask.as_ref());
                let wall = start.elapsed();
                self.inst.profiler.record("route_table_build", wall);
                if self.inst.on(TraceCategory::Routes) {
                    let build_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
                    self.inst.tracer().routes(
                        self.now.as_ps(),
                        table.generation(),
                        build_ns,
                        table.num_port_entries() as u64,
                    );
                }
                self.routes = RouteMode::Table(table);
            }
        }
        // Rotating start index de-correlates tie-breaks between switches
        // and packets while staying deterministic.
        let start_key = usize::from(hops) + at.index() + pkt.index();
        let (mut best, best_occ) = match &mut self.routes {
            RouteMode::Table(t) => {
                let cands = t.candidates(at, dst_switch);
                assert!(
                    !cands.is_empty(),
                    "no route from {at} toward {dst}: fabric partitioned by link mask"
                );
                Self::pick_minimal(&self.channels, &self.fabric, at, start_key, cands)
            }
            RouteMode::Dynamic { scratch } => {
                self.fabric
                    .candidate_ports_masked(at, dst, self.mask.as_ref(), scratch);
                assert!(
                    !scratch.is_empty(),
                    "no route from {at} toward {dst}: fabric partitioned by link mask"
                );
                Self::pick_minimal(&self.channels, &self.fabric, at, start_key, scratch)
            }
        };

        let mut misrouted = false;
        if let RoutingPolicy::Ugal { bias_bytes, .. } = self.config.routing {
            if misroutes_left > 0 {
                let detour = match &mut self.routes {
                    RouteMode::Table(t) => Self::pick_detour(
                        &self.channels,
                        &self.fabric,
                        at,
                        t.detours(at, dst_switch),
                    ),
                    RouteMode::Dynamic { scratch } => {
                        self.fabric.detour_ports_masked(
                            at,
                            dst_switch,
                            self.mask.as_ref(),
                            scratch,
                        );
                        Self::pick_detour(&self.channels, &self.fabric, at, scratch)
                    }
                };
                if let Some((port, occ)) = detour {
                    // UGAL: take the detour only when it looks at least
                    // twice as cheap (the detour path is two hops long).
                    if 2 * occ + u64::from(bias_bytes) < best_occ {
                        best = port;
                        misrouted = true;
                        self.inst.metrics.add(self.inst.ids.detours_taken, 1);
                        if self.inst.on(TraceCategory::Detour) {
                            self.inst.tracer().detour(
                                self.now.as_ps(),
                                at.raw(),
                                u32::from(port.raw()),
                                occ,
                                best_occ,
                            );
                        }
                    }
                }
            }
        }

        let p = self.arena.get_mut(pkt);
        p.hops = hops.saturating_add(1);
        if misrouted {
            p.misroutes_left -= 1;
        }
        let out = self.fabric.output_channel(at, best);
        self.enqueue(out, pkt, bytes);
        self.try_tx(out);
    }

    /// The least-occupied candidate, rotating the scan start for the
    /// tie-break. Channels draining toward a rate change are "removed
    /// from the list of legal adaptive routes" (§3.2) when any
    /// alternative exists.
    fn pick_minimal(
        channels: &Channels,
        fabric: &FabricGraph,
        at: SwitchId,
        start_key: usize,
        cands: &[PortIndex],
    ) -> (PortIndex, u64) {
        let len = cands.len();
        let start = start_key % len;
        let mut best: Option<(PortIndex, u64)> = None;
        let mut best_draining: Option<(PortIndex, u64)> = None;
        // Wrapping index instead of `(start + i) % len` — a variable
        // modulo per candidate is a hardware divide in the innermost
        // routing loop. Visit order is identical.
        let mut j = start;
        loop {
            let cand = cands[j];
            let idx = fabric.output_channel(at, cand).index();
            let occ = channels.occupancy[idx];
            let slot = if channels.flags[idx] & F_DRAINING != 0 {
                &mut best_draining
            } else {
                &mut best
            };
            if slot.map_or(true, |(_, o)| occ < o) {
                *slot = Some((cand, occ));
            }
            j += 1;
            if j == len {
                j = 0;
            }
            if j == start {
                break;
            }
        }
        best.or(best_draining).expect("candidate list is non-empty")
    }

    /// The least-occupied detour port (first-wins on ties, matching the
    /// enumeration order of [`FabricGraph::detour_ports_masked`]).
    fn pick_detour(
        channels: &Channels,
        fabric: &FabricGraph,
        at: SwitchId,
        cands: &[PortIndex],
    ) -> Option<(PortIndex, u64)> {
        let mut best: Option<(PortIndex, u64)> = None;
        for &port in cands {
            let occ = channels.occupancy[fabric.output_channel(at, port).index()];
            if best.map_or(true, |(_, o)| occ < o) {
                best = Some((port, occ));
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // The per-epoch controller (§3.3)
    // ------------------------------------------------------------------

    /// One epoch tick: rate decisions, the asymmetry sample, the
    /// dynamic-topology pass, and the queue-depth sample / overhang
    /// recharge — then the next tick is scheduled.
    ///
    /// Two implementations share this entry point. The default
    /// ([`EpochMode::ActiveSet`]) visits only the channels in the
    /// active set: everything outside it is *resting* — idle at the
    /// floor with an empty queue — and provably decides "hold" under
    /// every policy (`idle_at_floor_always_holds`), contributes zero to
    /// every sample, and recharges zero overhang, so skipping it is
    /// exact, not approximate. `EPNET_EPOCH=sweep` keeps the
    /// O(topology) reference. Controller tracing forces the sweep:
    /// traced runs emit a per-decision line even for holds, and the
    /// trace stream is part of the byte-identical output contract.
    pub(crate) fn on_epoch(&mut self) {
        let tick_start = Instant::now();
        // Fluid flows advance before the controller reads per-channel
        // utilization: the epoch's busy picoseconds then include fluid
        // movement exactly as they would packet serialization, keeping
        // rate decisions regime-independent.
        if self.model == SimModel::Hybrid {
            self.advance_flows();
        }
        let sweep = self.epoch_mode == EpochMode::Sweep || self.inst.on(TraceCategory::Controller);
        let decisions_enabled = self.config.control != ControlMode::AlwaysFull;
        match self.config.control {
            ControlMode::AlwaysFull => {}
            ControlMode::IndependentChannel if sweep => self.retune_independent(),
            ControlMode::IndependentChannel => self.retune_independent_active(),
            ControlMode::PairedLink if sweep => self.retune_paired(),
            ControlMode::PairedLink => self.retune_paired_active(),
        }
        // Sample link asymmetry: how often do a link's two channels sit
        // at different speeds (§3.3.1)? The count is maintained
        // incrementally at every rate/F_OFF write (`Channels::set_rate`
        // and friends), so sampling it is a counter read; the sweep
        // mode recounts from scratch and cross-checks.
        if decisions_enabled {
            self.stats.link_samples += self.fabric.num_links() as u64;
            if sweep {
                let mut asymmetric = 0u64;
                for link in 0..self.fabric.num_links() {
                    let (a, b) = self
                        .fabric
                        .link_channels(epnet_topology::LinkId::new(link as u32));
                    let (ia, ib) = (a.index(), b.index());
                    if self.channels.rate[ia] != self.channels.rate[ib]
                        || self.channels.has_flag(ia, F_OFF) != self.channels.has_flag(ib, F_OFF)
                    {
                        asymmetric += 1;
                    }
                }
                debug_assert_eq!(
                    asymmetric,
                    self.channels.asymmetric_links(),
                    "incremental asymmetric-link counter drifted from the swept count"
                );
                self.stats.asymmetric_link_samples += asymmetric;
            } else {
                self.stats.asymmetric_link_samples += self.channels.asymmetric_links();
            }
        }
        if let Some(mut dt) = self.dyntopo.take() {
            let mask = self.mask.as_mut().expect("dyntopo requires a mask");
            dt.on_epoch(
                self.now,
                &self.fabric,
                &mut self.channels,
                mask,
                &self.config,
                &mut self.stats,
                &mut self.inst,
            );
            self.dyntopo = Some(dt);
        }
        let epoch = self.config.epoch;
        // Queue depth is sampled here, once per channel per epoch, so
        // the mean/peak metrics describe standing queues rather than
        // transient per-packet spikes. Resting channels "sample" an
        // exact zero without being visited, so the sums — and
        // `epoch_queue_samples`, which deliberately counts *every*
        // channel in both modes — stay mode-independent.
        let epoch_ps = epoch.as_ps();
        let (queued_sum, queued_peak) = if sweep {
            let mut queued_sum = 0u64;
            let mut queued_peak = 0u64;
            for i in 0..self.channels.len() {
                let occ = self.channels.occupancy[i];
                queued_sum += occ;
                queued_peak = queued_peak.max(occ);
                // Pre-charge the next epoch with the in-flight
                // transmission's overhang.
                let overhang = self.channels.busy_until[i].saturating_sub(self.now);
                debug_assert!(
                    self.channels.is_active(i) || (occ == 0 && overhang == SimTime::ZERO),
                    "ch{i} rests outside the active set but would sample non-zero"
                );
                self.channels.busy_ps_epoch[i] = overhang.as_ps().min(epoch_ps);
            }
            self.channels
                .retire_resting(self.config.min_rate, decisions_enabled);
            (queued_sum, queued_peak)
        } else {
            self.channels.sample_active_and_retire(
                self.now,
                epoch_ps,
                self.config.min_rate,
                decisions_enabled,
            )
        };
        let ids = self.inst.ids;
        self.inst
            .metrics
            .add(ids.epoch_queue_samples, self.channels.len() as u64);
        self.inst.metrics.add(ids.epoch_queue_bytes_sum, queued_sum);
        self.inst
            .metrics
            .observe_max(ids.epoch_queue_bytes_peak, queued_peak);
        let next = self.now + epoch;
        self.epoch_end = next;
        if next <= self.end {
            self.schedule(next, Event::EpochTick);
        }
        self.stats.epoch_ticks += 1;
        self.inst
            .profiler
            .record("controller", tick_start.elapsed());
    }

    fn retune_independent(&mut self) {
        for ch in 0..self.channels.len() {
            let id = ChannelId::new(ch as u32);
            if let Some((util, rate)) = self.channel_decision(id) {
                self.decide_rate(id, util, rate);
            }
        }
    }

    /// Active-set twin of [`Simulator::retune_independent`]: only set
    /// members can decide anything but "hold", and decisions run in
    /// ascending channel order — the same relative order as the sweep —
    /// because decision order fixes event insertion order, and FIFO
    /// tie-breaking makes that order observable in the report.
    fn retune_independent_active(&mut self) {
        self.channels.sort_active();
        // Snapshot the length: decisions can append to the set (a rate
        // change marks the channel), and appended entries need no
        // decision of their own this tick.
        let n0 = self.channels.active_len();
        for k in 0..n0 {
            let id = ChannelId::new(self.channels.active_at(k));
            if let Some((util, rate)) = self.channel_decision(id) {
                self.decide_rate(id, util, rate);
            }
        }
    }

    fn retune_paired(&mut self) {
        // "The link pair must be reconfigured together to match the
        // requirements of the channel with the highest load" (§3.3.1).
        for link in 0..self.fabric.num_links() {
            self.retune_link(epnet_topology::LinkId::new(link as u32));
        }
    }

    /// Active-set twin of [`Simulator::retune_paired`]: a link is
    /// processed when *either* channel is in the active set (the
    /// paired rule can retune a resting channel to match its busy
    /// peer), in ascending link order to match the sweep's event
    /// insertion order. Both scratch structures are preallocated and
    /// sorted in place — no steady-state allocation.
    fn retune_paired_active(&mut self) {
        self.channels.sort_active();
        let mut links = std::mem::take(&mut self.active_links);
        links.clear();
        for k in 0..self.channels.active_len() {
            links.push(self.link_of[self.channels.active_at(k) as usize]);
        }
        links.sort_unstable();
        links.dedup();
        for &link in &links {
            self.retune_link(epnet_topology::LinkId::new(link));
        }
        self.active_links = links;
    }

    /// One §3.3.1 paired-link decision. When both channels are tunable
    /// the pair moves together to the faster of the two desired rates.
    /// When exactly one is exempt (powered off by the dynamic-topology
    /// controller, or a host channel with tuning disabled), the tunable
    /// channel is tuned *independently*: §3.3.1 pairs the channels only
    /// because "the link pair must be reconfigured together to match
    /// the requirements of the channel with the highest load", and a
    /// channel with no rate to match leaves the survivor governed by
    /// its own load. (The historical behavior — skipping the link
    /// entirely — froze the tunable channel at whatever rate it last
    /// held, forever.) No current topology produces a half-exempt link
    /// — host exemption and power-off both apply to whole links — so
    /// this arm is pinned by a unit test rather than the golden report.
    fn retune_link(&mut self, link: epnet_topology::LinkId) {
        let (a, b) = self.fabric.link_channels(link);
        match (self.channel_decision(a), self.channel_decision(b)) {
            (Some((ua, ra)), Some((ub, rb))) => {
                let rate = ra.max(rb);
                self.decide_rate(a, ua, rate);
                self.decide_rate(b, ub, rate);
            }
            (Some((ua, ra)), None) => self.decide_rate(a, ua, ra),
            (None, Some((ub, rb))) => self.decide_rate(b, ub, rb),
            (None, None) => {}
        }
    }

    /// The measured utilization and the rate the policy wants for this
    /// channel, or `None` when the channel is exempt from tuning (host
    /// link with tuning disabled, or powered off).
    fn channel_decision(&self, ch: ChannelId) -> Option<(f64, LinkRate)> {
        let i = ch.index();
        if self.channels.flags[i] & (F_TUNABLE | F_OFF) != F_TUNABLE {
            return None;
        }
        let util = self.channels.epoch_utilization(i, self.config.epoch);
        let rate = desired_rate(
            self.config.policy,
            self.channels.rate[i],
            util,
            self.config.target_utilization,
            self.config.min_rate,
            self.config.max_rate,
        );
        Some((util, rate))
    }

    /// Applies one controller decision and, when tracing, records it
    /// with the measured utilization and the outcome-derived reason.
    fn decide_rate(&mut self, ch: ChannelId, util: f64, rate: LinkRate) {
        self.stats.controller_decisions += 1;
        let old = self.channels.rate[ch.index()];
        let outcome = self.apply_rate(ch, rate);
        if self.inst.on(TraceCategory::Controller) {
            let reason = match outcome {
                RateOutcome::Unchanged => "hold",
                RateOutcome::Applied if rate > old => "upshift",
                RateOutcome::Applied => "downshift",
                RateOutcome::DrainDeferred => "drain_deferred",
                RateOutcome::DrainCancelled => "drain_cancelled",
            };
            let at = self.now.as_ps();
            let (old, new) = (old.to_string(), rate.to_string());
            self.inst
                .tracer()
                .controller(at, ch.raw(), util, &old, &new, reason);
        }
    }

    /// Applies a rate decision; a change costs the reactivation latency
    /// (§3.1). Under [`ReactivationStrategy::DrainFirst`] a busy channel
    /// is first removed from the legal routes and drained (§3.2's first
    /// option).
    ///
    /// [`ReactivationStrategy::DrainFirst`]: crate::config::ReactivationStrategy::DrainFirst
    fn apply_rate(&mut self, ch: ChannelId, rate: LinkRate) -> RateOutcome {
        let i = ch.index();
        let now = self.now;
        let model = self.config.reactivation;
        let strategy = self.config.reactivation_strategy;
        // The F_DRAINING mirror gates the cold-table take: the common
        // hold/no-drain decision — the bulk of every epoch sweep —
        // never touches `pending_rate` at all.
        if self.channels.has_flag(i, F_DRAINING)
            && self.channels.take_pending_rate(i).is_some()
            && self.channels.rate[i] == rate
        {
            // The controller changed its mind back before the drain
            // finished; cancel the pending change.
            return RateOutcome::DrainCancelled;
        }
        if self.channels.rate[i] == rate {
            return RateOutcome::Unchanged;
        }
        // Drain-first only defers *downshifts*: an upshift is what a
        // congested queue needs, and deferring it until the queue
        // empties could wait forever.
        if strategy == crate::config::ReactivationStrategy::DrainFirst
            && rate < self.channels.rate[i]
            && !self.channels.queue_is_idle(i)
        {
            self.channels.set_pending_rate(i, Some(rate));
            return RateOutcome::DrainDeferred;
        }
        let latency = model.latency(self.channels.rate[i], rate);
        self.channels.note_interval(i, now);
        self.channels.set_rate(i, rate);
        let until = now + latency;
        self.channels.available_at[i] = until;
        self.stats.reconfigurations += 1;
        self.stats.record_rate(now, ch.raw(), Some(rate));
        if self.inst.on(TraceCategory::Reactivation) {
            let rate = rate.to_string();
            self.inst.tracer().reactivation(
                now.as_ps(),
                ch.raw(),
                "start",
                &rate,
                Some(until.as_ps()),
            );
        }
        // If traffic is waiting, make sure it resumes once the channel
        // relocks (the serializing packet, if any, completes at the old
        // timing — the change takes effect for subsequent packets).
        self.try_tx(ch);
        RateOutcome::Applied
    }

    /// Completes a drain-first rate change once the queue has emptied.
    fn finish_pending_rate(&mut self, ch: ChannelId) {
        let i = ch.index();
        let now = self.now;
        let model = self.config.reactivation;
        let Some(rate) = self.channels.take_pending_rate(i) else {
            return;
        };
        if !self.channels.queue_is_idle(i) {
            // New traffic slipped in before the drain completed (only
            // possible when this channel was the sole route); keep
            // waiting.
            self.channels.set_pending_rate(i, Some(rate));
            return;
        }
        let latency = model.latency(self.channels.rate[i], rate);
        self.channels.note_interval(i, now);
        self.channels.set_rate(i, rate);
        let until = now + latency;
        self.channels.available_at[i] = until;
        self.stats.reconfigurations += 1;
        self.stats.record_rate(now, ch.raw(), Some(rate));
        if self.inst.on(TraceCategory::Reactivation) {
            let rate = rate.to_string();
            self.inst.tracer().reactivation(
                now.as_ps(),
                ch.raw(),
                "start",
                &rate,
                Some(until.as_ps()),
            );
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    pub(crate) fn finish(mut self) -> SimReport {
        let finalize_start = Instant::now();
        if self.model == SimModel::Hybrid {
            // Close the partial window between the last epoch tick and
            // the horizon so fluid movement covers the full duration.
            self.advance_flows();
        }
        let end = self.now;
        let mut residency = RateResidency {
            at_rate_ps: [0; LinkRate::COUNT],
            off_ps: 0,
        };
        for i in 0..self.channels.len() {
            self.channels.note_interval(i, end);
            let cold = &self.channels.cold[i];
            for r in RATE_LADDER {
                residency.at_rate_ps[r.index()] += u128::from(cold.time_at_rate_ps[r.index()]);
            }
            residency.off_ps += u128::from(cold.off_ps);
        }
        let s = &self.stats;
        let mean_packet_latency = if s.packets > 0 {
            SimTime::from_ps((s.packet_latency_sum_ps / u128::from(s.packets)) as u64)
        } else {
            SimTime::ZERO
        };
        let mean_message_latency = if s.messages > 0 {
            SimTime::from_ps((s.message_latency_sum_ps / u128::from(s.messages)) as u64)
        } else {
            SimTime::ZERO
        };
        let channel_time = u128::from(end.as_ps()) * self.channels.len() as u128;
        let avg_channel_utilization = if channel_time > 0 {
            (s.busy_ps_total as f64 / channel_time as f64).min(1.0)
        } else {
            0.0
        };
        let asymmetric_link_fraction = if s.link_samples > 0 {
            s.asymmetric_link_samples as f64 / s.link_samples as f64
        } else {
            0.0
        };
        let num_channels = self.channels.len();
        let peak_live_packets = self.arena.capacity();
        // Residency gauges are set once here: they are pure
        // simulation-time totals, so the metrics map stays identical
        // across scheduler/route modes and tracing on/off.
        let ids = self.inst.ids;
        let clamp = |ps: u128| u64::try_from(ps).unwrap_or(u64::MAX);
        for r in RATE_LADDER {
            self.inst.metrics.set(
                ids.residency_ps[r.index()],
                clamp(residency.at_rate_ps[r.index()]),
            );
        }
        self.inst
            .metrics
            .set(ids.residency_off_ps, clamp(residency.off_ps));
        // Flow-table high-water diagnostics (hybrid model; zero in
        // packet mode, where the table is never consulted).
        self.inst
            .metrics
            .set(ids.flow_table_peak, self.flows.peak_live() as u64);
        self.inst
            .metrics
            .set(ids.flow_table_capacity, self.flows.capacity() as u64);
        let metrics = self.inst.metrics.snapshot();
        let diagnostics = self.inst.metrics.diagnostics_snapshot();
        self.inst
            .profiler
            .record("finalize", finalize_start.elapsed());
        let phases = std::mem::take(&mut self.inst.profiler).into_phases();
        self.inst.flush();
        // `finish` consumes the simulator, so the bulky per-run
        // collections (histogram, timeline) move into the report.
        let s = self.stats;
        epnet_telemetry::summary::record_run(s.delivered_bytes, s.events, &phases);
        SimReport {
            duration: end,
            num_channels,
            packets_delivered: s.packets,
            messages_delivered: s.messages,
            mean_packet_latency,
            packet_latency_hist: s.packet_hist,
            mean_message_latency,
            offered_bytes: s.offered_bytes,
            delivered_bytes: s.delivered_bytes,
            avg_channel_utilization,
            residency,
            reconfigurations: s.reconfigurations,
            events_processed: s.events,
            peak_live_packets,
            asymmetric_link_fraction,
            peak_queue_bytes: s.peak_queue_bytes,
            timeline: s.timeline,
            metrics,
            phases,
            epoch_ticks: s.epoch_ticks,
            controller_decisions: s.controller_decisions,
            diagnostics,
            pod_delivered_bytes: self.pod_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::ReplaySource;
    use epnet_topology::FlattenedButterfly;

    /// A link with exactly one exempt channel (here: powered off out
    /// from under the controller) must still tune the surviving channel
    /// by its own load. The historical `retune_paired` skipped such
    /// links entirely, freezing the tunable channel at whatever rate it
    /// last held — forever. No current topology produces a half-exempt
    /// link (host exemption and dyntopo power-off both cover whole
    /// links), so the fixed arm is pinned here rather than by the
    /// golden report.
    #[test]
    fn paired_link_with_one_exempt_channel_tunes_the_survivor() {
        let fabric = FlattenedButterfly::new(2, 4, 2).unwrap().build_fabric();
        let config = SimConfig::builder()
            .control(ControlMode::PairedLink)
            .build();
        let epoch = config.epoch;
        let min = config.min_rate;
        let mut sim = Simulator::new(fabric, config, ReplaySource::new(Vec::new()));
        sim.prime(SimTime::from_ms(1));
        let (a, b) = sim
            .core
            .fabric
            .link_channels(epnet_topology::LinkId::new(0));
        sim.core.channels.set_off(b.index(), SimTime::ZERO, true);
        assert_eq!(sim.core.channels.asymmetric_links(), 1);
        assert_eq!(sim.core.channels.rate[a.index()], LinkRate::R40);
        // First tick: the idle survivor halves under HalveDouble even
        // though its peer yields no decision.
        sim.advance_until(epoch + SimTime::from_ns(1));
        assert_eq!(
            sim.core.channels.rate[a.index()],
            LinkRate::R20,
            "the tunable survivor of a half-exempt link must keep tuning"
        );
        // Later ticks walk it all the way down to the floor.
        sim.advance_until(SimTime::from_us(500));
        assert_eq!(sim.core.channels.rate[a.index()], min);
        assert_eq!(sim.core.channels.asymmetric_links(), 1);
    }

    /// Epoch ticks with no traffic must do O(active) controller work:
    /// after the first tick retires every idle channel, subsequent ticks
    /// evaluate zero rate decisions while the sweep reference evaluates
    /// every channel every tick.
    #[test]
    fn quiescent_network_makes_no_decisions_after_the_first_ticks() {
        let fabric = FlattenedButterfly::new(2, 4, 2).unwrap().build_fabric();
        let config = SimConfig::builder()
            .control(ControlMode::IndependentChannel)
            .build();
        let epoch = config.epoch;
        let mut sim = Simulator::new(fabric, config, ReplaySource::new(Vec::new()));
        if sim.core.epoch_mode != EpochMode::ActiveSet {
            return; // sweep mode intentionally decides O(channels) per tick
        }
        sim.prime(SimTime::from_ms(1));
        // Every channel starts active and takes a handful of ticks to
        // descend R40 → R2.5; give them ten epochs to settle.
        sim.advance_until(epoch.scaled(10) + SimTime::from_ns(1));
        let settled = sim.core.stats.controller_decisions;
        let ticks = sim.core.stats.epoch_ticks;
        sim.advance_until(epoch.scaled(20) + SimTime::from_ns(1));
        assert_eq!(
            sim.core.stats.controller_decisions, settled,
            "a quiescent network must decide nothing per tick"
        );
        assert_eq!(sim.core.stats.epoch_ticks, ticks + 10, "ticks still fire");
    }
}
