//! Measurement collection and the end-of-run report.

use crate::SimTime;
use epnet_power::{LinkPowerProfile, LinkRate};
use epnet_telemetry::Phase;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Log₂-bucketed latency histogram (nanosecond buckets), good enough for
/// the factor-of-two latency comparisons of Figure 9.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl LatencyHistogram {
    fn new() -> Self {
        Self {
            buckets: vec![0; 64],
            count: 0,
        }
    }

    fn record_ns(&mut self, ns: u64) {
        let idx = 64 - u64::leading_zeros(ns.max(1)) as usize;
        self.buckets[idx.min(63)] += 1;
        self.count += 1;
    }

    /// Approximate quantile (`0.0..=1.0`) in nanoseconds: the upper edge
    /// of the bucket containing the q-th sample.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << 63
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds every sample of `other` into this histogram. Buckets are
    /// position-aligned (both sides are 64-wide log₂ ladders), so the
    /// merge is exact: the result equals recording both sample streams
    /// into one histogram in any order.
    pub(crate) fn merge_from(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
    }

    /// Exclusive upper edges of the log₂ buckets, nanoseconds.
    ///
    /// `edges[i]` is the value [`quantile_ns`](Self::quantile_ns)
    /// returns when the selected sample lands in bucket `i`: samples
    /// whose `ns.max(1)` lies in `[edges[i] / 2, edges[i])` — i.e. has
    /// bit length `i` — fall in bucket `i`, so every reported quantile
    /// overstates the true sample by less than 2×. Bucket 0 is
    /// therefore never populated, and the last bucket (edge `1 << 63`)
    /// absorbs everything at or above `edges[63] / 2`.
    pub fn bucket_edges(&self) -> Vec<u64> {
        (0..self.buckets.len() as u32).map(|i| 1u64 << i).collect()
    }
}

/// Running measurement state inside the engine.
#[derive(Debug)]
pub(crate) struct Stats {
    pub warmup: SimTime,
    pub packets: u64,
    pub packet_latency_sum_ps: u128,
    pub packet_hist: LatencyHistogram,
    pub messages: u64,
    pub message_latency_sum_ps: u128,
    pub offered_bytes: u64,
    pub delivered_bytes: u64,
    pub measured_delivered_bytes: u64,
    pub busy_ps_total: u128,
    pub reconfigurations: u64,
    pub dropped_for_warmup: u64,
    /// Events popped from the scheduler over the run.
    pub events: u64,
    /// Link-epoch samples where the two channels of a link sat at
    /// different rates (§3.3.1's asymmetry evidence).
    pub asymmetric_link_samples: u64,
    /// Total link-epoch samples taken.
    pub link_samples: u64,
    /// Largest output-queue occupancy observed, in bytes.
    pub peak_queue_bytes: u64,
    /// Epoch ticks processed.
    pub epoch_ticks: u64,
    /// Controller rate decisions taken (`decide_rate` calls). Under the
    /// active-set epoch mode this counts only visited channels, so —
    /// unlike every serialized quantity — it is mode-*dependent* by
    /// design: it is the measure of controller work the load benchmark
    /// reports.
    pub controller_decisions: u64,
    /// Rate timeline of recorded channels.
    pub timeline: Vec<TimelineEvent>,
    /// Channels `0..timeline_channels` are recorded.
    pub timeline_channels: u32,
}

impl Stats {
    pub fn new(warmup: SimTime) -> Self {
        Self {
            warmup,
            packets: 0,
            packet_latency_sum_ps: 0,
            packet_hist: LatencyHistogram::new(),
            messages: 0,
            message_latency_sum_ps: 0,
            offered_bytes: 0,
            delivered_bytes: 0,
            measured_delivered_bytes: 0,
            busy_ps_total: 0,
            reconfigurations: 0,
            dropped_for_warmup: 0,
            events: 0,
            asymmetric_link_samples: 0,
            link_samples: 0,
            peak_queue_bytes: 0,
            epoch_ticks: 0,
            controller_decisions: 0,
            timeline: Vec::new(),
            timeline_channels: 0,
        }
    }

    /// Records a rate transition for channels under the timeline limit.
    pub fn record_rate(&mut self, at: SimTime, channel: u32, rate: Option<LinkRate>) {
        if channel < self.timeline_channels {
            self.timeline.push(TimelineEvent { at, channel, rate });
        }
    }

    pub fn record_packet(&mut self, created: SimTime, delivered: SimTime, bytes: u32) {
        self.delivered_bytes += u64::from(bytes);
        if created < self.warmup {
            self.dropped_for_warmup += 1;
            return;
        }
        self.measured_delivered_bytes += u64::from(bytes);
        let lat = delivered - created;
        self.packets += 1;
        self.packet_latency_sum_ps += u128::from(lat.as_ps());
        self.packet_hist.record_ns(lat.as_ns());
    }

    /// Records bytes delivered by the hybrid model's fluid flow
    /// advancement: they count toward delivery totals (and the
    /// measurement window when the flow was offered after warmup)
    /// without packet-latency samples — fluid flows carry no
    /// per-packet timing. Flow completion goes through
    /// [`Stats::record_message`] like any other message.
    pub fn record_flow_bytes(&mut self, offered_at: SimTime, bytes: u64) {
        self.delivered_bytes += bytes;
        if offered_at >= self.warmup {
            self.measured_delivered_bytes += bytes;
        }
    }

    pub fn record_message(&mut self, created: SimTime, completed: SimTime) {
        if created < self.warmup {
            return;
        }
        self.messages += 1;
        self.message_latency_sum_ps += u128::from((completed - created).as_ps());
    }

    /// Folds a parallel worker's measurement state into this
    /// (coordinator) one. Delivery-side quantities are disjoint sums
    /// over shards, `peak_queue_bytes` is a per-channel watermark so
    /// the maximum of shard maxima equals the serial maximum.
    /// Coordinator-only quantities — `offered_bytes` (injection),
    /// `events` (counted once per pop during window replay),
    /// link-sample and epoch-tick counters, the timeline (merged by
    /// event key elsewhere) — are deliberately untouched.
    pub fn merge_worker(&mut self, w: &Stats) {
        debug_assert_eq!(self.warmup, w.warmup, "workers must share the warmup");
        self.packets += w.packets;
        self.packet_latency_sum_ps += w.packet_latency_sum_ps;
        self.packet_hist.merge_from(&w.packet_hist);
        self.messages += w.messages;
        self.message_latency_sum_ps += w.message_latency_sum_ps;
        self.delivered_bytes += w.delivered_bytes;
        self.measured_delivered_bytes += w.measured_delivered_bytes;
        self.busy_ps_total += w.busy_ps_total;
        self.reconfigurations += w.reconfigurations;
        self.dropped_for_warmup += w.dropped_for_warmup;
        self.peak_queue_bytes = self.peak_queue_bytes.max(w.peak_queue_bytes);
    }
}

/// One rate-timeline sample: channel `channel` switched to `rate`
/// (`None` = powered off) at time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// When the transition took effect.
    pub at: SimTime,
    /// Channel index (dense id).
    pub channel: u32,
    /// New rate, or `None` for powered off.
    pub rate: Option<LinkRate>,
}

/// Aggregated per-rate residency of every channel over the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateResidency {
    /// Picoseconds of channel-time at each ladder rate, slowest first
    /// (index with [`LinkRate::index`]).
    pub at_rate_ps: [u128; LinkRate::COUNT],
    /// Picoseconds of channel-time powered off (dynamic topologies).
    pub off_ps: u128,
}

impl RateResidency {
    /// Total channel-time covered.
    pub fn total_ps(&self) -> u128 {
        self.at_rate_ps.iter().sum::<u128>() + self.off_ps
    }

    /// Fraction of channel-time at `rate`.
    pub fn fraction_at(&self, rate: LinkRate) -> f64 {
        let t = self.total_ps();
        if t == 0 {
            0.0
        } else {
            self.at_rate_ps[rate.index()] as f64 / t as f64
        }
    }

    /// Fraction of channel-time powered off.
    pub fn off_fraction(&self) -> f64 {
        let t = self.total_ps();
        if t == 0 {
            0.0
        } else {
            self.off_ps as f64 / t as f64
        }
    }
}

/// The result of a simulation run: everything needed to regenerate the
/// paper's Figures 7–9 for one configuration.
///
/// `Serialize`/`Deserialize` are written by hand (not derived) for two
/// reasons: [`phases`](Self::phases) holds wall-clock timings that
/// would break the byte-identical-report determinism checks, so it is
/// excluded from serialization entirely; and
/// [`metrics`](Self::metrics) is new, so deserialization defaults it
/// to empty when absent instead of rejecting older reports.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated duration.
    pub duration: SimTime,
    /// Unidirectional channels in the fabric.
    pub num_channels: usize,
    /// Packets delivered inside the measurement window.
    pub packets_delivered: u64,
    /// Messages fully delivered inside the measurement window.
    pub messages_delivered: u64,
    /// Mean packet latency.
    pub mean_packet_latency: SimTime,
    /// Packet latency histogram.
    pub packet_latency_hist: LatencyHistogram,
    /// Mean message (last-packet) latency.
    pub mean_message_latency: SimTime,
    /// Total bytes offered by the workload over the run.
    pub offered_bytes: u64,
    /// Total bytes delivered over the run (including warm-up).
    pub delivered_bytes: u64,
    /// Average utilization across every channel — this *is* the power of
    /// an ideally energy-proportional network relative to baseline
    /// (§4.2.1: "the energy consumed by the network would exactly equal
    /// the average utilization of all links in the network").
    pub avg_channel_utilization: f64,
    /// Channel-time per rate (Figure 7's raw data).
    pub residency: RateResidency,
    /// Number of rate reconfigurations performed.
    pub reconfigurations: u64,
    /// Discrete events processed by the engine over the run — the
    /// denominator-free measure of simulation effort behind the
    /// events/sec benchmark (`BENCH_engine.json`).
    pub events_processed: u64,
    /// High-water mark of packets in flight.
    pub peak_live_packets: usize,
    /// Fraction of link-epoch samples in which a link's two opposing
    /// channels sat at *different* rates — direct evidence for the
    /// paper's §3.3.1 claim that "the load on the link may be
    /// asymmetric". Always 0 under [`ControlMode::PairedLink`]
    /// (the pair is tuned together) and for the baseline.
    ///
    /// [`ControlMode::PairedLink`]: crate::ControlMode::PairedLink
    pub asymmetric_link_fraction: f64,
    /// Largest output-queue occupancy observed, in bytes.
    pub peak_queue_bytes: u64,
    /// Rate timeline of the first `timeline_channels` channels
    /// (empty unless enabled in the configuration).
    pub timeline: Vec<TimelineEvent>,
    /// Engine counters and gauges, keyed by metric name (event pops
    /// per kind, credit-wake fires, TxDone batch sizes, per-rate
    /// residency, epoch-sampled queue depths). Every value derives
    /// purely from simulated behavior, so the map is identical across
    /// scheduler backends, route modes, and tracing on/off.
    pub metrics: BTreeMap<String, u64>,
    /// Wall-clock phase breakdown of the run (route-table build,
    /// warmup, measurement, finalize). Host-time diagnostics only —
    /// never serialized, so reports stay byte-identical across hosts
    /// and runs.
    pub phases: Vec<Phase>,
    /// Epoch ticks the controller processed. Diagnostics only — never
    /// serialized (it is derivable from duration and epoch length, and
    /// keeping it out of the report keeps the serialization surface
    /// purely behavioral).
    pub epoch_ticks: u64,
    /// Rate decisions the controller evaluated across the run. Under
    /// the active-set epoch path (`EPNET_EPOCH` unset) only channels
    /// that did something since their last decision are visited, so
    /// this counter is *mode-dependent* by design and — exactly like
    /// [`phases`](Self::phases) — is never serialized. It is the
    /// controller-work numerator behind `BENCH_load.json`'s
    /// decisions-per-tick column.
    pub controller_decisions: u64,
    /// Execution-strategy diagnostics, keyed by metric name — the
    /// parallel engine's window counters (`par_windows`,
    /// `par_window_events`, `par_replay_events`, `par_cross_batches`,
    /// …). These vary with `EPNET_PAR` width and lookahead mode, so —
    /// like [`phases`](Self::phases) — they are never serialized; the
    /// serialized report stays byte-identical across engines.
    pub diagnostics: BTreeMap<String, u64>,
    /// Delivered bytes rolled up per pod (contiguous switch groups, at
    /// most 64) — the hybrid model's bounded-memory substitute for
    /// per-entity telemetry at 10^5-host scale. Empty in packet mode,
    /// and serialized only when non-empty, so packet-mode reports stay
    /// byte-identical to pre-hybrid ones.
    pub pod_delivered_bytes: Vec<u64>,
}

impl Serialize for SimReport {
    fn to_value(&self) -> Value {
        // `phases` is deliberately absent: wall-clock times differ
        // across hosts and runs, and the determinism suite compares
        // serialized reports byte for byte.
        let mut fields = vec![
            ("duration".to_string(), self.duration.to_value()),
            ("num_channels".to_string(), self.num_channels.to_value()),
            (
                "packets_delivered".to_string(),
                self.packets_delivered.to_value(),
            ),
            (
                "messages_delivered".to_string(),
                self.messages_delivered.to_value(),
            ),
            (
                "mean_packet_latency".to_string(),
                self.mean_packet_latency.to_value(),
            ),
            (
                "packet_latency_hist".to_string(),
                self.packet_latency_hist.to_value(),
            ),
            (
                "mean_message_latency".to_string(),
                self.mean_message_latency.to_value(),
            ),
            ("offered_bytes".to_string(), self.offered_bytes.to_value()),
            (
                "delivered_bytes".to_string(),
                self.delivered_bytes.to_value(),
            ),
            (
                "avg_channel_utilization".to_string(),
                self.avg_channel_utilization.to_value(),
            ),
            ("residency".to_string(), self.residency.to_value()),
            (
                "reconfigurations".to_string(),
                self.reconfigurations.to_value(),
            ),
            (
                "events_processed".to_string(),
                self.events_processed.to_value(),
            ),
            (
                "peak_live_packets".to_string(),
                self.peak_live_packets.to_value(),
            ),
            (
                "asymmetric_link_fraction".to_string(),
                self.asymmetric_link_fraction.to_value(),
            ),
            (
                "peak_queue_bytes".to_string(),
                self.peak_queue_bytes.to_value(),
            ),
            ("timeline".to_string(), self.timeline.to_value()),
            ("metrics".to_string(), self.metrics.to_value()),
        ];
        // Appended last, and only when present (hybrid runs), so the
        // packet-mode byte stream is unchanged from pre-hybrid reports.
        if !self.pod_delivered_bytes.is_empty() {
            fields.push((
                "pod_delivered_bytes".to_string(),
                self.pod_delivered_bytes.to_value(),
            ));
        }
        Value::Map(fields)
    }
}

impl Deserialize for SimReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        fn req<T: Deserialize>(v: &Value, field: &'static str) -> Result<T, DeError> {
            T::from_value(
                v.get(field)
                    .ok_or_else(|| DeError::missing(&format!("SimReport.{field}")))?,
            )
        }
        Ok(Self {
            duration: req(v, "duration")?,
            num_channels: req(v, "num_channels")?,
            packets_delivered: req(v, "packets_delivered")?,
            messages_delivered: req(v, "messages_delivered")?,
            mean_packet_latency: req(v, "mean_packet_latency")?,
            packet_latency_hist: req(v, "packet_latency_hist")?,
            mean_message_latency: req(v, "mean_message_latency")?,
            offered_bytes: req(v, "offered_bytes")?,
            delivered_bytes: req(v, "delivered_bytes")?,
            avg_channel_utilization: req(v, "avg_channel_utilization")?,
            residency: req(v, "residency")?,
            reconfigurations: req(v, "reconfigurations")?,
            events_processed: req(v, "events_processed")?,
            peak_live_packets: req(v, "peak_live_packets")?,
            asymmetric_link_fraction: req(v, "asymmetric_link_fraction")?,
            peak_queue_bytes: req(v, "peak_queue_bytes")?,
            timeline: req(v, "timeline")?,
            // Absent in reports written before the metrics registry.
            metrics: match v.get("metrics") {
                Some(m) => Deserialize::from_value(m)?,
                None => BTreeMap::new(),
            },
            // Absent in packet-mode and pre-hybrid reports.
            pod_delivered_bytes: match v.get("pod_delivered_bytes") {
                Some(p) => Deserialize::from_value(p)?,
                None => Vec::new(),
            },
            // Wall-clock and mode-dependent diagnostics are never
            // serialized.
            phases: Vec::new(),
            epoch_ticks: 0,
            controller_decisions: 0,
            diagnostics: BTreeMap::new(),
        })
    }
}

impl SimReport {
    /// Network power relative to the all-links-full-rate baseline, under
    /// a given channel power profile — the quantity plotted in
    /// Figure 8(a) (measured channels) and 8(b) (ideal channels).
    pub fn relative_power(&self, profile: &LinkPowerProfile) -> f64 {
        let total = self.residency.total_ps();
        if total == 0 {
            return 1.0;
        }
        let mut power = self.residency.off_ps as f64 * profile.idle_relative_power();
        for rate in epnet_power::RATE_LADDER {
            power += self.residency.at_rate_ps[rate.index()] as f64 * profile.relative_power(rate);
        }
        power / total as f64 / profile.relative_power(LinkRate::MAX)
    }

    /// Mean packet latency increase relative to a baseline run — the
    /// y-axis of Figure 9.
    pub fn added_latency_vs(&self, baseline: &SimReport) -> SimTime {
        self.mean_packet_latency
            .saturating_sub(baseline.mean_packet_latency)
    }

    /// Median packet latency (bucketed; see [`LatencyHistogram`]).
    pub fn p50_packet_latency(&self) -> SimTime {
        SimTime::from_ns(self.packet_latency_hist.quantile_ns(0.50))
    }

    /// 99th-percentile packet latency (bucketed).
    pub fn p99_packet_latency(&self) -> SimTime {
        SimTime::from_ns(self.packet_latency_hist.quantile_ns(0.99))
    }

    /// Delivered divided by offered bytes; below ~1.0 the network is not
    /// keeping up with the offered load.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_bytes == 0 {
            1.0
        } else {
            self.delivered_bytes as f64 / self.offered_bytes as f64
        }
    }

    /// Fraction of channel-time at each ladder rate, slowest first —
    /// the bars of Figure 7.
    pub fn time_at_speed_fractions(&self) -> [f64; LinkRate::COUNT] {
        let mut out = [0.0; LinkRate::COUNT];
        for rate in epnet_power::RATE_LADDER {
            out[rate.index()] = self.residency.fraction_at(rate);
        }
        out
    }

    /// A multi-line human-readable summary of the run.
    pub fn to_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "simulated {}: {} packets / {} messages delivered ({:.1} MB, {:.1}% of offered)",
            self.duration,
            self.packets_delivered,
            self.messages_delivered,
            self.delivered_bytes as f64 / 1e6,
            self.delivery_ratio() * 100.0,
        );
        let _ = writeln!(
            s,
            "latency: mean {} / p50 {} / p99 {}",
            self.mean_packet_latency,
            self.p50_packet_latency(),
            self.p99_packet_latency(),
        );
        let _ = writeln!(
            s,
            "power vs baseline: {:.1}% measured / {:.1}% ideal channels (utilization floor {:.1}%)",
            self.relative_power(&LinkPowerProfile::Measured) * 100.0,
            self.relative_power(&LinkPowerProfile::Ideal) * 100.0,
            self.avg_channel_utilization * 100.0,
        );
        let fr = self.time_at_speed_fractions();
        let _ = write!(s, "time at speed:");
        for rate in epnet_power::RATE_LADDER {
            let _ = write!(s, " {}={:.1}%", rate, fr[rate.index()] * 100.0);
        }
        if self.residency.off_ps > 0 {
            let _ = write!(s, " off={:.1}%", self.residency.off_fraction() * 100.0);
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "{} reconfigurations; {:.1}% of link samples rate-asymmetric",
            self.reconfigurations,
            self.asymmetric_link_fraction * 100.0,
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        // Median falls in the bucket containing 400 ns.
        let q50 = h.quantile_ns(0.5);
        assert!((256..=512).contains(&q50), "got {q50}");
        // Tail reflects the 100 µs outlier.
        assert!(h.quantile_ns(1.0) >= 65_536);
        assert_eq!(LatencyHistogram::new().quantile_ns(0.5), 0);
    }

    #[test]
    fn bucket_edges_pin_quantile_semantics() {
        let h = LatencyHistogram::new();
        let edges = h.bucket_edges();
        assert_eq!(edges.len(), 64);
        assert_eq!(edges[0], 1);
        assert_eq!(edges[1], 2);
        assert_eq!(edges[63], 1u64 << 63);
        // Empty histogram: any quantile is 0, below every edge.
        assert_eq!(h.quantile_ns(0.0), 0);
        assert_eq!(h.quantile_ns(1.0), 0);

        // A single sample lands in the bucket whose edge is the
        // smallest power of two strictly above it, and every quantile
        // returns that same edge.
        let mut h = LatencyHistogram::new();
        h.record_ns(300);
        assert_eq!(h.quantile_ns(0.0), 512);
        assert_eq!(h.quantile_ns(0.5), 512);
        assert_eq!(h.quantile_ns(1.0), 512);
        assert!(edges.contains(&512));

        // Zero records like 1 ns (bucket of edge 2); the quantile never
        // returns edge[0] = 1.
        let mut h = LatencyHistogram::new();
        h.record_ns(0);
        assert_eq!(h.quantile_ns(1.0), 2);

        // An exact power of two belongs to the *next* bucket up: edges
        // are exclusive upper bounds.
        let mut h = LatencyHistogram::new();
        h.record_ns(512);
        assert_eq!(h.quantile_ns(0.5), 1024);

        // Overflow: anything at or above 2^62 saturates into the last
        // bucket, reported as its 2^63 edge.
        let mut h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        assert_eq!(h.quantile_ns(1.0), 1u64 << 63);
    }

    #[test]
    fn stats_window_excludes_warmup() {
        let mut s = Stats::new(SimTime::from_us(10));
        s.record_packet(SimTime::from_us(5), SimTime::from_us(6), 1000);
        s.record_packet(SimTime::from_us(15), SimTime::from_us(17), 1000);
        assert_eq!(s.packets, 1);
        assert_eq!(s.dropped_for_warmup, 1);
        assert_eq!(s.delivered_bytes, 2000);
        assert_eq!(s.measured_delivered_bytes, 1000);
        assert_eq!(s.packet_latency_sum_ps, 2_000_000);
        s.record_message(SimTime::from_us(5), SimTime::from_us(20));
        assert_eq!(s.messages, 0);
        s.record_message(SimTime::from_us(15), SimTime::from_us(20));
        assert_eq!(s.messages, 1);
    }

    fn report_with(residency: RateResidency) -> SimReport {
        SimReport {
            duration: SimTime::from_ms(1),
            num_channels: 10,
            packets_delivered: 0,
            messages_delivered: 0,
            mean_packet_latency: SimTime::ZERO,
            packet_latency_hist: LatencyHistogram::new(),
            mean_message_latency: SimTime::ZERO,
            offered_bytes: 0,
            delivered_bytes: 0,
            avg_channel_utilization: 0.0,
            residency,
            reconfigurations: 0,
            events_processed: 0,
            peak_live_packets: 0,
            asymmetric_link_fraction: 0.0,
            peak_queue_bytes: 0,
            timeline: Vec::new(),
            metrics: BTreeMap::new(),
            phases: Vec::new(),
            epoch_ticks: 0,
            controller_decisions: 0,
            diagnostics: BTreeMap::new(),
            pod_delivered_bytes: Vec::new(),
        }
    }

    #[test]
    fn relative_power_all_full_is_one() {
        let mut at = [0u128; LinkRate::COUNT];
        at[LinkRate::R40.index()] = 1_000;
        let r = report_with(RateResidency {
            at_rate_ps: at,
            off_ps: 0,
        });
        assert!((r.relative_power(&LinkPowerProfile::Measured) - 1.0).abs() < 1e-12);
        assert!((r.relative_power(&LinkPowerProfile::Ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_power_all_slow_matches_profiles() {
        let mut at = [0u128; LinkRate::COUNT];
        at[LinkRate::R2_5.index()] = 1_000;
        let r = report_with(RateResidency {
            at_rate_ps: at,
            off_ps: 0,
        });
        // §4.2.1: all-slowest consumes 42% (measured) or 6.25% (ideal).
        assert!((r.relative_power(&LinkPowerProfile::Measured) - 0.42).abs() < 1e-12);
        assert!((r.relative_power(&LinkPowerProfile::Ideal) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn off_time_uses_idle_power() {
        let r = report_with(RateResidency {
            at_rate_ps: [0; LinkRate::COUNT],
            off_ps: 1_000,
        });
        assert!((r.relative_power(&LinkPowerProfile::Ideal) - 0.0).abs() < 1e-12);
        assert!((r.relative_power(&LinkPowerProfile::Measured) - 0.36).abs() < 1e-12);
        assert_eq!(r.residency.off_fraction(), 1.0);
    }

    #[test]
    fn time_at_speed_fractions_sum_to_one() {
        let r = report_with(RateResidency {
            at_rate_ps: [100, 200, 300, 150, 250],
            off_ps: 0,
        });
        let sum: f64 = r.time_at_speed_fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_key_quantities() {
        let mut at = [0u128; LinkRate::COUNT];
        at[LinkRate::R2_5.index()] = 750;
        at[LinkRate::R40.index()] = 250;
        let mut r = report_with(RateResidency {
            at_rate_ps: at,
            off_ps: 0,
        });
        r.packets_delivered = 42;
        r.offered_bytes = 1000;
        r.delivered_bytes = 1000;
        let s = r.to_summary();
        assert!(s.contains("42 packets"));
        assert!(s.contains("100.0% of offered"));
        assert!(s.contains("2.5 Gb/s=75.0%"));
        assert!(s.contains("reconfigurations"));
    }

    #[test]
    fn report_serde_excludes_phases_and_defaults_metrics() {
        let mut r = report_with(RateResidency {
            at_rate_ps: [0; LinkRate::COUNT],
            off_ps: 0,
        });
        r.metrics.insert("events_workload".to_string(), 7);
        r.phases.push(Phase {
            name: "warmup",
            wall_ns: 123,
        });
        r.epoch_ticks = 99;
        r.controller_decisions = 1234;
        r.diagnostics.insert("par_windows".to_string(), 42);
        let v = r.to_value();
        assert!(v.get("metrics").is_some());
        assert!(
            v.get("pod_delivered_bytes").is_none(),
            "an empty pod rollup must not appear — packet-mode reports \
             stay byte-identical to pre-hybrid ones"
        );
        assert!(
            v.get("phases").is_none(),
            "wall-clock phases must never be serialized"
        );
        assert!(
            v.get("epoch_ticks").is_none() && v.get("controller_decisions").is_none(),
            "mode-dependent controller-work counters must never be serialized"
        );
        assert!(
            v.get("diagnostics").is_none(),
            "execution-strategy diagnostics must never be serialized"
        );
        let back = SimReport::from_value(&v).unwrap();
        assert_eq!(back.metrics.get("events_workload"), Some(&7));
        assert!(back.phases.is_empty());
        assert_eq!(back.epoch_ticks, 0);
        assert_eq!(back.controller_decisions, 0);
        assert!(back.diagnostics.is_empty());

        // Reports written before the metrics registry existed still
        // deserialize, with an empty map.
        let Value::Map(mut fields) = v else {
            panic!("report serializes as a map")
        };
        fields.retain(|(k, _)| k != "metrics");
        let old = SimReport::from_value(&Value::Map(fields)).unwrap();
        assert!(old.metrics.is_empty());
        assert!(old.pod_delivered_bytes.is_empty());

        // A hybrid report's pod rollup round-trips, appended after the
        // stable packet-mode field tail.
        r.pod_delivered_bytes = vec![3, 5];
        let v = r.to_value();
        assert!(v.get("pod_delivered_bytes").is_some());
        let back = SimReport::from_value(&v).unwrap();
        assert_eq!(back.pod_delivered_bytes, vec![3, 5]);
    }

    #[test]
    fn delivery_ratio_and_added_latency() {
        let mut a = report_with(RateResidency {
            at_rate_ps: [0; LinkRate::COUNT],
            off_ps: 0,
        });
        a.offered_bytes = 1000;
        a.delivered_bytes = 900;
        assert!((a.delivery_ratio() - 0.9).abs() < 1e-12);
        let mut b = a.clone();
        a.mean_packet_latency = SimTime::from_us(12);
        b.mean_packet_latency = SimTime::from_us(10);
        assert_eq!(a.added_latency_vs(&b), SimTime::from_us(2));
        assert_eq!(b.added_latency_vs(&a), SimTime::ZERO);
    }
}
