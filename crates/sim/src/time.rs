//! Simulation time in integer picoseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in picoseconds since the start of the run.
///
/// Picosecond resolution keeps every serialization time on the
/// [`LinkRate`](epnet_power::LinkRate) ladder an exact integer (one byte
/// at 2.5 Gb/s is 3,200 ps) while still covering ~5 hours of simulated
/// time in a `u64`.
///
/// ```
/// use epnet_sim::SimTime;
/// let t = SimTime::ZERO + SimTime::from_us(10);
/// assert_eq!(t.as_ns(), 10_000);
/// assert_eq!(t - SimTime::from_ns(1), SimTime::from_ps(9_999_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: Self = Self(0);

    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Self(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Self(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Self(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Self(ms * 1_000_000_000)
    }

    /// The raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds, truncating.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds as a float.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// `self` scaled by an integer factor.
    #[inline]
    pub const fn scaled(self, factor: u64) -> Self {
        Self(self.0 * factor)
    }
}

impl Add for SimTime {
    type Output = Self;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = Self;

    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative.
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_ms(20).as_ns(), 20_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(3);
        assert_eq!(a + b, SimTime::from_ns(8));
        assert_eq!(a - b, SimTime::from_ns(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ns(8));
        assert_eq!(SimTime::from_us(10).scaled(10), SimTime::from_us(100));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_ps(5).to_string(), "5 ps");
        assert_eq!(SimTime::from_ns(5).to_string(), "5.000 ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5.000 us");
        assert_eq!(SimTime::from_ms(5).to_string(), "5.000 ms");
    }

    #[test]
    fn float_views() {
        assert_eq!(SimTime::from_us(3).as_us_f64(), 3.0);
        assert_eq!(SimTime::from_ms(1500).as_secs_f64(), 1.5);
    }
}
