//! The engine's event queue: a thin, event-typed wrapper over the
//! generic [`crate::sched::Scheduler`].
//!
//! The backend defaults to the calendar queue; setting the environment
//! variable `EPNET_SCHED=heap` at simulator construction falls back to
//! the reference binary heap. Both pop in identical order (ascending
//! time, FIFO among simultaneous events), so the choice never changes
//! simulation output — only its speed.

use crate::packet::PacketId;
use crate::sched::{Backend, Scheduler};
use crate::SimTime;
use epnet_topology::ChannelId;

/// Events processed by the simulator engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// Pull the next message(s) from the traffic source.
    Workload,
    /// A channel finished serializing its current packet.
    TxDone { channel: ChannelId },
    /// A packet's tail reached the far end of a channel.
    Arrive {
        channel: ChannelId,
        packet: PacketId,
    },
    /// A credit-blocked channel's next pending credit return matures.
    ///
    /// Credit returns themselves are bookkept per channel at arrival
    /// time and applied lazily in `try_tx` — this event exists only to
    /// wake a channel that observed itself blocked, so uncongested
    /// traffic costs no credit events at all.
    CreditWake { channel: ChannelId },
    /// Retry transmission (scheduled when a channel was reconfiguring).
    Retry { channel: ChannelId },
    /// End-of-epoch: run the link-rate controller (§3.3).
    EpochTick,
}

/// The event queue.
#[derive(Debug)]
pub(crate) struct EventQueue {
    sched: Scheduler<Event>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue on the backend selected by `EPNET_SCHED`
    /// (`heap` for the reference binary heap, anything else — or
    /// unset — for the calendar queue).
    pub fn new() -> Self {
        Self::with_hint(0)
    }

    /// An empty queue pre-sized for a topology of `num_channels`
    /// channels (each busy channel keeps one or two events in flight),
    /// on the `EPNET_SCHED`-selected backend. Sizing never changes pop
    /// order — see [`Scheduler::with_backend_and_hint`].
    pub fn with_hint(num_channels: usize) -> Self {
        let backend = match std::env::var("EPNET_SCHED") {
            Ok(v) if v.eq_ignore_ascii_case("heap") => Backend::BinaryHeap,
            _ => Backend::Calendar,
        };
        Self {
            sched: Scheduler::with_backend_and_hint(backend, num_channels),
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.sched.schedule(at, event);
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.sched.pop()
    }

    /// Earliest scheduled time, if any (`&mut`: the calendar backend
    /// may advance its day cursor while peeking).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.sched.peek_time()
    }

    /// Number of pending events.
    #[allow(dead_code)] // diagnostic surface, exercised in tests
    pub fn len(&self) -> usize {
        self.sched.len()
    }

    /// Whether the queue is empty.
    #[allow(dead_code)] // diagnostic surface, exercised in tests
    pub fn is_empty(&self) -> bool {
        self.sched.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), Event::EpochTick);
        q.schedule(SimTime::from_ns(10), Event::Workload);
        q.schedule(SimTime::from_ns(20), Event::EpochTick);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_ns())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.schedule(
            t,
            Event::TxDone {
                channel: ChannelId::new(1),
            },
        );
        q.schedule(
            t,
            Event::TxDone {
                channel: ChannelId::new(2),
            },
        );
        q.schedule(
            t,
            Event::TxDone {
                channel: ChannelId::new(3),
            },
        );
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TxDone { channel } => channel.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ns(7), Event::Workload);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
