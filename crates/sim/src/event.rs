//! The discrete-event core: a time-ordered queue with deterministic
//! FIFO tie-breaking.

use crate::packet::PacketId;
use crate::SimTime;
use epnet_topology::ChannelId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events processed by the simulator engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// Pull the next message(s) from the traffic source.
    Workload,
    /// A channel finished serializing its current packet.
    TxDone { channel: ChannelId },
    /// A packet's tail reached the far end of a channel.
    Arrive { channel: ChannelId, packet: PacketId },
    /// Flow-control credits returned to a channel.
    CreditReturn { channel: ChannelId, bytes: u32 },
    /// Retry transmission (scheduled when a channel was reconfiguring).
    Retry { channel: ChannelId },
    /// End-of-epoch: run the link-rate controller (§3.3).
    EpochTick,
}

/// A scheduled event. Ordered by time, then by insertion sequence so
/// simultaneous events run in deterministic FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Earliest scheduled time, if any.
    #[allow(dead_code)] // diagnostic surface, exercised in tests
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    #[allow(dead_code)] // diagnostic surface, exercised in tests
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[allow(dead_code)] // diagnostic surface, exercised in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), Event::EpochTick);
        q.schedule(SimTime::from_ns(10), Event::Workload);
        q.schedule(SimTime::from_ns(20), Event::EpochTick);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.schedule(t, Event::TxDone { channel: ChannelId::new(1) });
        q.schedule(t, Event::TxDone { channel: ChannelId::new(2) });
        q.schedule(t, Event::TxDone { channel: ChannelId::new(3) });
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TxDone { channel } => channel.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ns(7), Event::Workload);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
