//! Event-driven simulator for energy-proportional datacenter networks.
//!
//! This crate is the evaluation vehicle of Abts et&nbsp;al., *Energy
//! Proportional Datacenter Networks* (ISCA 2010, §4): a discrete-event,
//! packet-granularity simulator of a flattened-butterfly fabric whose
//! plesiochronous links can be retuned at runtime between 40, 20, 10, 5
//! and 2.5&nbsp;Gb/s.
//!
//! The pieces:
//!
//! * [`Simulator`] — the engine: credit-based flow control, adaptive
//!   routing on output-queue depth, and the per-epoch link-rate
//!   controller of §3.3 (paired or independent channel control).
//! * [`SimConfig`] — all the §4 knobs: reactivation latency, epoch,
//!   target utilization, control mode, rate policy.
//! * [`TrafficSource`] / [`Message`] — the workload interface
//!   (generators live in `epnet-workloads`).
//! * [`SimReport`] — per-run results: latency, utilization, per-rate
//!   channel residency (Figure 7), and relative network power under any
//!   [`LinkPowerProfile`](epnet_power::LinkPowerProfile) (Figure 8).
//! * [`DynamicTopology`] — the §5.2 extension: powering whole links off
//!   to morph the butterfly into a torus or mesh, and back.
//! * [`Scheduler`] — the pending-event set: a calendar queue by
//!   default, with the reference binary heap selectable via
//!   `EPNET_SCHED=heap` for cross-checking (both pop the identical
//!   deterministic `(time, seq)` order).
//!
//! Routing candidates come from a precomputed
//! [`RouteTable`](epnet_topology::RouteTable) by default, invalidated
//! lazily via the link mask's generation counter; setting
//! `EPNET_ROUTES=dynamic` at simulator construction selects the
//! reference per-hop computation instead. Like the scheduler knob, the
//! choice never changes simulation output — reports are byte-identical
//! either way.
//!
//! `EPNET_PAR=N` runs the simulation itself on the sharded parallel
//! engine: the fabric is partitioned across `N` worker shards by
//! switch group and executed in conservatively-synchronized windows
//! bounded by the minimum channel propagation delay (see the module
//! docs of `par.rs`). Like every other switch it is an execution
//! detail — [`SimReport`]s and merged trace streams are byte-identical
//! to the serial engine at every width, enforced by
//! `tests/tests/par_modes.rs`.
//!
//! # Example
//!
//! ```
//! use epnet_sim::{Message, ReplaySource, SimConfig, SimTime, Simulator};
//! use epnet_topology::{FlattenedButterfly, HostId};
//!
//! let fabric = FlattenedButterfly::new(2, 4, 2)?.build_fabric();
//! let traffic = ReplaySource::new(vec![Message {
//!     at: SimTime::from_us(1),
//!     src: HostId::new(0),
//!     dst: HostId::new(5),
//!     bytes: 16 * 1024,
//! }]);
//! let report = Simulator::new(fabric, SimConfig::default(), traffic)
//!     .run_until(SimTime::from_ms(1));
//! assert_eq!(report.delivered_bytes, 16 * 1024);
//! assert!(report.reconfigurations > 0, "idle links detune");
//! # Ok::<(), epnet_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod channels;
mod config;
mod controller;
mod dyntopo;
mod engine;
pub mod env;
mod event;
mod flows;
mod instrument;
mod packet;
mod par;
pub mod sched;
mod stats;
mod time;
mod traffic;

pub use config::{
    ControlMode, EpochMode, RatePolicy, ReactivationModel, ReactivationStrategy, RoutingPolicy,
    SimConfig, SimConfigBuilder,
};
pub use dyntopo::{DynamicTopology, DynamicTopologyConfig};
pub use engine::Simulator;
pub use env::{env_model, env_threads, parse_model, SimModel};
pub use packet::MessageId;
pub use sched::{Backend, Scheduler};
pub use stats::{LatencyHistogram, RateResidency, SimReport, TimelineEvent};
pub use time::SimTime;
pub use traffic::{MergedSource, Message, ReplaySource, TrafficSource};

// Telemetry types that appear in this crate's public API
// (`Simulator::set_tracer`, `SimReport.phases`) or that embedders need
// to build programmatic trace sinks.
pub use epnet_telemetry::{MemorySink, Phase, TraceCategory, Tracer};
