//! Simulation configuration.

use crate::SimTime;
use epnet_power::LinkRate;
use serde::{Deserialize, Serialize};

/// How link rates are controlled at runtime (§3.3, §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlMode {
    /// Baseline: every link stays at full rate ("always on").
    AlwaysFull,
    /// A bidirectional link pair is tuned together "to match the
    /// requirements of the channel with the highest load" (§3.3.1) —
    /// what current chips support.
    PairedLink,
    /// Each unidirectional channel is tuned independently — the paper's
    /// proposed switch-design opportunity.
    IndependentChannel,
}

/// How long a channel is unusable after a rate change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReactivationModel {
    /// One latency for every transition — the paper's evaluated
    /// simplification ("we assume the same reactivation time ... no
    /// matter what mode the link is entering", §4.1).
    Uniform(SimTime),
    /// Distinguish the fast and slow reactivations of §3.1: a
    /// same-lane-count change only relocks the receive CDR
    /// ("≈50ns–100ns for the typical to worst case") while a
    /// lane-count change realigns lanes ("could be optimized within a
    /// few microseconds").
    TransitionAware {
        /// CDR relock time (frequency-only transitions).
        cdr_relock: SimTime,
        /// Lane realignment time (lane-count transitions).
        lane_change: SimTime,
    },
}

impl ReactivationModel {
    /// Latency of retuning `from → to`.
    pub fn latency(&self, from: LinkRate, to: LinkRate) -> SimTime {
        match *self {
            Self::Uniform(t) => t,
            Self::TransitionAware {
                cdr_relock,
                lane_change,
            } => {
                if from.transition_changes_lanes(to) {
                    lane_change
                } else {
                    cdr_relock
                }
            }
        }
    }

    /// The worst-case latency, used to size the measurement epoch.
    pub fn worst_case(&self) -> SimTime {
        match *self {
            Self::Uniform(t) => t,
            Self::TransitionAware {
                cdr_relock,
                lane_change,
            } => cdr_relock.max(lane_change),
        }
    }
}

/// How a rate change is applied to a live channel (§3.2 lists both as
/// tolerance strategies for non-instantaneous reactivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReactivationStrategy {
    /// Reconfigure immediately; queued traffic waits out the
    /// reactivation while "the congestion-sensing and adaptivity
    /// mechanisms ... automatically route around the link that is
    /// undergoing reconfiguration" (§3.2, second option; the paper's
    /// evaluated choice, §3.3).
    RouteAround,
    /// First "remove the reactivating output port from the list of
    /// legal adaptive routes and drain its output buffer before
    /// reconfiguration" (§3.2, first option). No packet ever waits out
    /// a reactivation, at the cost of delaying the power transition.
    DrainFirst,
}

/// How packets pick output ports at each hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Minimal adaptive: among the dimensions still needing correction,
    /// pick the port with the smallest output queue (§4.1). Lowest
    /// latency, but a fixed permutation can concentrate onto one link.
    MinimalAdaptive,
    /// UGAL-style non-minimal adaptive: like minimal, but when every
    /// minimal port is congested a packet may take one detour hop per
    /// dimension through a random intermediate switch — the
    /// load-balancing the flattened butterfly "requires ... to load
    /// balance arbitrary traffic patterns" (§2.1).
    Ugal {
        /// Maximum detour hops per packet (typically the number of
        /// switch dimensions).
        misroute_budget: u8,
        /// How much cheaper (in queued bytes) a detour must look before
        /// it is taken: detour wins when
        /// `2·detour_occupancy + bias < minimal_occupancy`.
        bias_bytes: u32,
    },
}

/// Which epoch-tick implementation the engine runs (not part of
/// [`SimConfig`]: like the scheduler backend and the route mode, it is
/// an execution detail that must never change simulation output, so it
/// is selected by environment rather than serialized configuration).
///
/// The default visits only the *active set* — channels that
/// transmitted, queued, blocked, drained, changed power state, or sit
/// above the floor rate — making epoch ticks O(touched).
/// `EPNET_EPOCH=sweep` keeps the O(topology) reference sweep alive as
/// a cross-check; both modes must produce byte-identical reports (the
/// determinism suite compares them, and debug builds assert the
/// incremental asymmetric-link counter against the swept count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// Visit only channels in the active set (the default).
    ActiveSet,
    /// Reference: visit every channel and link, every tick.
    Sweep,
}

impl EpochMode {
    /// Reads `EPNET_EPOCH` (`sweep` for the reference sweep, anything
    /// else — or unset — for the active-set path), mirroring
    /// `EPNET_SCHED` / `EPNET_ROUTES`.
    pub fn from_env() -> Self {
        match std::env::var("EPNET_EPOCH") {
            Ok(v) if v.eq_ignore_ascii_case("sweep") => Self::Sweep,
            _ => Self::ActiveSet,
        }
    }
}

/// The per-epoch rate decision policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RatePolicy {
    /// The paper's heuristic (§3.3): utilization below target → halve the
    /// rate (down to the minimum); above target → double (up to the
    /// maximum).
    HalveDouble,
    /// §5.1's suggested improvement for bursty workloads: "immediately
    /// tune links to either their lowest or highest performance mode
    /// without going through the intermediate steps."
    JumpToExtremes,
    /// A dual-threshold variant with hysteresis: halve below `low`,
    /// double above `high`, hold in between. Reduces meta-instability
    /// from too-frequent reconfiguration (§3.2).
    Hysteresis {
        /// Utilization below which the rate is halved.
        low: f64,
        /// Utilization above which the rate is doubled.
        high: f64,
    },
    /// §5.1's transition-cost-aware refinement: steps like halve/double
    /// inside a lane family (cheap CDR relocks), but crosses the
    /// expensive 10 ↔ 5 Gb/s lane boundary only decisively — straight
    /// down to the floor when nearly idle, straight up to full speed
    /// when climbing out of the 1-lane modes — so each burst pays for
    /// at most one lane realignment.
    LaneAware,
}

/// Full simulator configuration. Construct with [`SimConfig::builder`].
///
/// Defaults follow §4.1/§4.2.1 of the paper: 1 µs reactivation, a 10 µs
/// epoch (10× the reactivation, bounding reconfiguration overhead to 10%,
/// §4.2.2), 50% target channel utilization, paired-link control, and the
/// halve/double policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Maximum packet payload in bytes; messages are segmented to this.
    pub packet_bytes: u32,
    /// Flow-control credit pool per channel (downstream input-buffer
    /// space), in bytes.
    pub input_buffer_bytes: u32,
    /// Router pipeline latency charged per switch traversal.
    pub router_latency: SimTime,
    /// Propagation delay of electrical channels.
    pub electrical_propagation: SimTime,
    /// Propagation delay of optical channels.
    pub optical_propagation: SimTime,
    /// Time a channel is unavailable after a rate change (§3.1: tens of
    /// nanoseconds to microseconds; the paper defaults to "a conservative
    /// value of 1 µs"). [`ReactivationModel::TransitionAware`] charges
    /// lane-count changes more than CDR relocks.
    pub reactivation: ReactivationModel,
    /// Utilization-measurement epoch; the controller runs at the end of
    /// every epoch.
    pub epoch: SimTime,
    /// Target channel utilization (§3.3).
    pub target_utilization: f64,
    /// Rate-control mode.
    pub control: ControlMode,
    /// Rate-decision policy.
    pub policy: RatePolicy,
    /// Output-port selection policy.
    pub routing: RoutingPolicy,
    /// How rate changes are applied to channels with traffic queued.
    pub reactivation_strategy: ReactivationStrategy,
    /// Whether host (injection/ejection) links are also tuned.
    pub tune_host_links: bool,
    /// Slowest rate the controller may select.
    pub min_rate: LinkRate,
    /// Fastest rate (links start here).
    pub max_rate: LinkRate,
    /// Measurement warm-up: packets offered before this time are
    /// excluded from latency statistics.
    pub warmup: SimTime,
    /// Record the rate timeline of the first N channels (0 disables).
    /// The timeline feeds `epnet-report`'s per-link rate visualization.
    pub timeline_channels: u32,
}

impl SimConfig {
    /// Starts a builder preloaded with the paper's defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }

    /// The paper's baseline configuration: all links pinned at 40 Gb/s.
    pub fn baseline() -> Self {
        Self::builder().control(ControlMode::AlwaysFull).build()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the epoch is zero, the target utilization is outside
    /// `(0, 1]`, or `min_rate > max_rate` — configuration errors a user
    /// should catch immediately.
    pub fn validate(&self) {
        assert!(self.packet_bytes > 0, "packet size must be positive");
        assert!(
            self.input_buffer_bytes >= self.packet_bytes,
            "credit pool must hold at least one packet"
        );
        assert!(self.epoch > SimTime::ZERO, "epoch must be positive");
        assert!(
            self.target_utilization > 0.0 && self.target_utilization <= 1.0,
            "target utilization must be in (0, 1]"
        );
        assert!(
            self.min_rate <= self.max_rate,
            "min rate must not exceed max rate"
        );
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfigBuilder::new().build()
    }
}

/// Builder for [`SimConfig`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Starts from the paper's defaults.
    pub fn new() -> Self {
        Self {
            config: SimConfig {
                packet_bytes: 2_048,
                input_buffer_bytes: 64 * 1024,
                router_latency: SimTime::from_ns(100),
                electrical_propagation: SimTime::from_ns(25),
                optical_propagation: SimTime::from_ns(50),
                reactivation: ReactivationModel::Uniform(SimTime::from_us(1)),
                epoch: SimTime::from_us(10),
                target_utilization: 0.5,
                control: ControlMode::PairedLink,
                policy: RatePolicy::HalveDouble,
                routing: RoutingPolicy::MinimalAdaptive,
                reactivation_strategy: ReactivationStrategy::RouteAround,
                tune_host_links: true,
                min_rate: LinkRate::R2_5,
                max_rate: LinkRate::R40,
                warmup: SimTime::from_us(50),
                timeline_channels: 0,
            },
        }
    }

    /// Sets the maximum packet payload.
    pub fn packet_bytes(&mut self, bytes: u32) -> &mut Self {
        self.config.packet_bytes = bytes;
        self
    }

    /// Sets the per-channel credit pool.
    pub fn input_buffer_bytes(&mut self, bytes: u32) -> &mut Self {
        self.config.input_buffer_bytes = bytes;
        self
    }

    /// Sets the router pipeline latency.
    pub fn router_latency(&mut self, t: SimTime) -> &mut Self {
        self.config.router_latency = t;
        self
    }

    /// Sets a uniform reactivation latency, and — unless overridden
    /// later — the epoch to 10× that value, the paper's sizing rule
    /// (§4.2.2: "we set the epoch at 10× the reactivation latency,
    /// which bounds the overhead of reactivation to 10%").
    pub fn reactivation(&mut self, t: SimTime) -> &mut Self {
        self.config.reactivation = ReactivationModel::Uniform(t);
        self.config.epoch = t.scaled(10);
        self
    }

    /// Uses the §3.1 transition-aware reactivation model (fast CDR
    /// relocks for same-lane transitions, slow lane realignment
    /// otherwise); the epoch is sized at 10× the worst case.
    pub fn transition_aware_reactivation(
        &mut self,
        cdr_relock: SimTime,
        lane_change: SimTime,
    ) -> &mut Self {
        let model = ReactivationModel::TransitionAware {
            cdr_relock,
            lane_change,
        };
        self.config.epoch = model.worst_case().scaled(10);
        self.config.reactivation = model;
        self
    }

    /// Sets the controller epoch explicitly.
    pub fn epoch(&mut self, t: SimTime) -> &mut Self {
        self.config.epoch = t;
        self
    }

    /// Sets the per-medium propagation delays explicitly (defaults:
    /// 25 ns electrical, 50 ns optical). Zero is legal — and collapses
    /// the parallel engine's lookahead in global mode, which falls back
    /// to the serial loop.
    pub fn propagation(&mut self, electrical: SimTime, optical: SimTime) -> &mut Self {
        self.config.electrical_propagation = electrical;
        self.config.optical_propagation = optical;
        self
    }

    /// Sets the target channel utilization.
    pub fn target_utilization(&mut self, u: f64) -> &mut Self {
        self.config.target_utilization = u;
        self
    }

    /// Sets the control mode.
    pub fn control(&mut self, mode: ControlMode) -> &mut Self {
        self.config.control = mode;
        self
    }

    /// Sets the rate policy.
    pub fn policy(&mut self, policy: RatePolicy) -> &mut Self {
        self.config.policy = policy;
        self
    }

    /// Sets the routing policy.
    pub fn routing(&mut self, routing: RoutingPolicy) -> &mut Self {
        self.config.routing = routing;
        self
    }

    /// Sets the reactivation strategy.
    pub fn reactivation_strategy(&mut self, s: ReactivationStrategy) -> &mut Self {
        self.config.reactivation_strategy = s;
        self
    }

    /// Enables UGAL non-minimal routing with sensible defaults (one
    /// detour per dimension, one-packet bias).
    pub fn ugal(&mut self) -> &mut Self {
        let bias = self.config.packet_bytes;
        self.config.routing = RoutingPolicy::Ugal {
            misroute_budget: 2,
            bias_bytes: bias,
        };
        self
    }

    /// Sets whether host links participate in tuning.
    pub fn tune_host_links(&mut self, yes: bool) -> &mut Self {
        self.config.tune_host_links = yes;
        self
    }

    /// Sets the measurement warm-up.
    pub fn warmup(&mut self, t: SimTime) -> &mut Self {
        self.config.warmup = t;
        self
    }

    /// Records the rate timeline of the first `n` channels.
    pub fn timeline_channels(&mut self, n: u32) -> &mut Self {
        self.config.timeline_channels = n;
        self
    }

    /// Sets the slowest selectable rate.
    pub fn min_rate(&mut self, r: LinkRate) -> &mut Self {
        self.config.min_rate = r;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    pub fn build(&self) -> SimConfig {
        let config = self.config.clone();
        config.validate();
        config
    }
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(
            c.reactivation,
            ReactivationModel::Uniform(SimTime::from_us(1))
        );
        assert_eq!(c.epoch, SimTime::from_us(10));
        assert_eq!(c.target_utilization, 0.5);
        assert_eq!(c.control, ControlMode::PairedLink);
        assert_eq!(c.policy, RatePolicy::HalveDouble);
        assert_eq!(c.max_rate, LinkRate::R40);
        assert_eq!(c.min_rate, LinkRate::R2_5);
    }

    #[test]
    fn reactivation_scales_epoch() {
        let c = SimConfig::builder()
            .reactivation(SimTime::from_ns(100))
            .build();
        assert_eq!(c.epoch, SimTime::from_us(1));
        // Explicit epoch overrides the 10x rule.
        let c = SimConfig::builder()
            .reactivation(SimTime::from_us(10))
            .epoch(SimTime::from_us(25))
            .build();
        assert_eq!(c.epoch, SimTime::from_us(25));
    }

    #[test]
    fn builder_chains() {
        let c = SimConfig::builder()
            .packet_bytes(4096)
            .target_utilization(0.75)
            .control(ControlMode::IndependentChannel)
            .policy(RatePolicy::JumpToExtremes)
            .tune_host_links(false)
            .build();
        assert_eq!(c.packet_bytes, 4096);
        assert_eq!(c.target_utilization, 0.75);
        assert_eq!(c.control, ControlMode::IndependentChannel);
        assert!(!c.tune_host_links);
    }

    #[test]
    #[should_panic(expected = "target utilization")]
    fn invalid_target_rejected() {
        SimConfig::builder().target_utilization(1.5).build();
    }

    #[test]
    #[should_panic(expected = "credit pool")]
    fn tiny_credit_pool_rejected() {
        SimConfig::builder()
            .packet_bytes(4096)
            .input_buffer_bytes(1024)
            .build();
    }

    #[test]
    fn baseline_pins_full_rate() {
        assert_eq!(SimConfig::baseline().control, ControlMode::AlwaysFull);
    }
}
