//! Shared parsing for the thread-width environment switches.
//!
//! Two runtime switches accept a worker count: `EPNET_THREADS` (the
//! sweep/campaign job pool from `epnet::exp`) and `EPNET_PAR` (the
//! sharded parallel engine in this crate). Both use the same grammar,
//! parsed here exactly once: a positive integer enables the feature at
//! that width; `off`, `0`, an empty value, or anything unparseable
//! means "not set".

/// Parses a thread-width environment variable.
///
/// Returns `Some(n)` for a positive integer value `n`, and `None` when
/// the variable is unset, empty, `off`, `0`, or not a number. Callers
/// that need a machine-derived default (like the sweep worker pool)
/// layer it on top of the `None` case.
pub fn env_threads(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    let v = raw.trim();
    if v.is_empty() || v.eq_ignore_ascii_case("off") {
        return None;
    }
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `std::env` is process-global; serialize the twiddling.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parses_positive_widths_and_rejects_everything_else() {
        let _guard = ENV_LOCK.lock().unwrap();
        let var = "EPNET_ENV_THREADS_TEST";
        for (value, expect) in [
            ("4", Some(4)),
            ("1", Some(1)),
            (" 8 ", Some(8)),
            ("off", None),
            ("OFF", None),
            ("0", None),
            ("", None),
            ("many", None),
            ("-2", None),
        ] {
            std::env::set_var(var, value);
            assert_eq!(env_threads(var), expect, "value {value:?}");
        }
        std::env::remove_var(var);
        assert_eq!(env_threads(var), None, "unset");
    }
}
