//! Shared parsing for runtime environment switches.
//!
//! Two runtime switches accept a worker count: `EPNET_THREADS` (the
//! sweep/campaign job pool from `epnet::exp`) and `EPNET_PAR` (the
//! sharded parallel engine in this crate). Both use the same grammar,
//! parsed here exactly once: a positive integer enables the feature at
//! that width; `off`, `0`, an empty value, or anything unparseable
//! means "not set".
//!
//! `EPNET_MODEL` selects the simulation regime (`packet` or `hybrid`)
//! and is parsed here too, with the same reject-unknown-value contract
//! as `EPNET_TRACE_FILTER`: a value outside the documented vocabulary
//! prints an error to stderr and falls back to the default rather than
//! silently simulating something the user did not ask for.

/// Parses a thread-width environment variable.
///
/// Returns `Some(n)` for a positive integer value `n`, and `None` when
/// the variable is unset, empty, `off`, `0`, or not a number. Callers
/// that need a machine-derived default (like the sweep worker pool)
/// layer it on top of the `None` case.
pub fn env_threads(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    let v = raw.trim();
    if v.is_empty() || v.eq_ignore_ascii_case("off") {
        return None;
    }
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Which simulation regime the engine runs.
///
/// `Packet` is the default bit-faithful discrete-event model; `Hybrid`
/// aggregates steady flows into analytic per-epoch fluid state while
/// keeping packet-level simulation where the interesting dynamics live
/// (see DESIGN.md "Hybrid flow/packet model").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimModel {
    /// Pure packet-level simulation (the default).
    #[default]
    Packet,
    /// Flow-level aggregation for steady traffic, packets elsewhere.
    Hybrid,
}

/// Parses an `EPNET_MODEL` value.
///
/// Accepts `packet` and `hybrid` (case-insensitive, surrounding
/// whitespace ignored); an empty value means the default. Anything
/// else is an error naming the offending value and the vocabulary.
pub fn parse_model(raw: &str) -> Result<SimModel, String> {
    let v = raw.trim();
    if v.is_empty() || v.eq_ignore_ascii_case("packet") {
        Ok(SimModel::Packet)
    } else if v.eq_ignore_ascii_case("hybrid") {
        Ok(SimModel::Hybrid)
    } else {
        Err(format!(
            "unknown simulation model '{v}' in EPNET_MODEL; valid models: packet, hybrid"
        ))
    }
}

/// Reads the simulation model from `EPNET_MODEL`.
///
/// Unset or empty means [`SimModel::Packet`]. An unknown value prints
/// the [`parse_model`] error to stderr and falls back to the packet
/// model — mirroring the `EPNET_TRACE_FILTER` contract of rejecting,
/// not guessing.
pub fn env_model() -> SimModel {
    match std::env::var("EPNET_MODEL") {
        Ok(raw) => match parse_model(&raw) {
            Ok(model) => model,
            Err(msg) => {
                eprintln!("epnet: {msg}");
                SimModel::Packet
            }
        },
        Err(_) => SimModel::Packet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `std::env` is process-global; serialize the twiddling.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parses_positive_widths_and_rejects_everything_else() {
        let _guard = ENV_LOCK.lock().unwrap();
        let var = "EPNET_ENV_THREADS_TEST";
        for (value, expect) in [
            ("4", Some(4)),
            ("1", Some(1)),
            (" 8 ", Some(8)),
            ("off", None),
            ("OFF", None),
            ("0", None),
            ("", None),
            ("many", None),
            ("-2", None),
        ] {
            std::env::set_var(var, value);
            assert_eq!(env_threads(var), expect, "value {value:?}");
        }
        std::env::remove_var(var);
        assert_eq!(env_threads(var), None, "unset");
    }

    #[test]
    fn parses_models_and_pins_the_unknown_value_message() {
        let _guard = ENV_LOCK.lock().unwrap();
        for (value, expect) in [
            ("packet", Ok(SimModel::Packet)),
            ("PACKET", Ok(SimModel::Packet)),
            (" hybrid ", Ok(SimModel::Hybrid)),
            ("Hybrid", Ok(SimModel::Hybrid)),
            ("", Ok(SimModel::Packet)),
            (
                "fluid",
                Err("unknown simulation model 'fluid' in EPNET_MODEL; \
                     valid models: packet, hybrid"
                    .to_string()),
            ),
        ] {
            assert_eq!(parse_model(value), expect, "value {value:?}");
        }
        // The env reader rejects unknown values by falling back to the
        // packet default (after printing the error above to stderr).
        std::env::set_var("EPNET_MODEL", "fluid");
        assert_eq!(env_model(), SimModel::Packet);
        std::env::set_var("EPNET_MODEL", "hybrid");
        assert_eq!(env_model(), SimModel::Hybrid);
        std::env::remove_var("EPNET_MODEL");
        assert_eq!(env_model(), SimModel::Packet);
    }
}
