//! The engine's telemetry bundle: tracer, metrics, and phase profiler.
//!
//! Everything the hot path needs is condensed into one cached bitmask
//! check ([`Instruments::on`]) so a run without `EPNET_TRACE` pays a
//! single predictable branch per potential trace point — including the
//! parallel engine's per-window `parallel` records, whose emitter is
//! guarded by the same mask. The metrics registry is always on — its
//! counters are plain array adds and feed `SimReport.metrics`
//! unconditionally — while trace emission and the wall-clock profiler
//! only spend effort when enabled or at run granularity.

use epnet_telemetry::{CounterId, MetricsRegistry, Profiler, TraceCategory, Tracer};

/// Dense ids of every metric the engine maintains.
///
/// Registered once at simulator construction; all values are derived
/// purely from simulated behavior, so the snapshot is byte-identical
/// across scheduler backends (`EPNET_SCHED`), route modes
/// (`EPNET_ROUTES`), and tracing on/off — the determinism tests compare
/// full serialized reports, metrics included.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MetricIds {
    /// `Workload` events popped.
    pub ev_workload: CounterId,
    /// `TxDone` events popped.
    pub ev_tx_done: CounterId,
    /// `Arrive` events popped.
    pub ev_arrive: CounterId,
    /// `CreditWake` events popped.
    pub ev_credit_wake: CounterId,
    /// `Retry` events popped.
    pub ev_retry: CounterId,
    /// `EpochTick` events popped.
    pub ev_epoch_tick: CounterId,
    /// Times `try_tx` found the head packet short on credits.
    pub credit_blocked_tries: CounterId,
    /// Transmission trains completed (`TxDone` batches).
    pub tx_trains: CounterId,
    /// Packets carried by completed trains (mean batch size =
    /// `tx_train_packets / tx_trains`).
    pub tx_train_packets: CounterId,
    /// Largest completed train, in packets.
    pub tx_train_max_packets: CounterId,
    /// UGAL detours actually taken.
    pub detours_taken: CounterId,
    /// Channel queue-depth samples taken at epoch boundaries.
    pub epoch_queue_samples: CounterId,
    /// Sum of sampled queue depths, bytes (mean depth =
    /// `epoch_queue_bytes_sum / epoch_queue_samples`).
    pub epoch_queue_bytes_sum: CounterId,
    /// Largest queue depth seen at an epoch boundary, bytes.
    pub epoch_queue_bytes_peak: CounterId,
    /// Channel-time per ladder rate, picoseconds (slowest first), set
    /// once at finish from the residency totals.
    pub residency_ps: [CounterId; 5],
    /// Channel-time powered off, picoseconds.
    pub residency_off_ps: CounterId,
    // ---- parallel-engine diagnostics ----
    // Registered as *diagnostic* metrics: they describe how the run
    // executed (window shapes vary with `EPNET_PAR` width and lookahead
    // mode), so they live in `SimReport::diagnostics`, never in the
    // byte-identical serialized metrics snapshot.
    /// Lookahead windows executed by the parallel engine.
    pub par_windows: CounterId,
    /// Events executed inside windows (mean window length in events =
    /// `par_window_events / par_windows`).
    pub par_window_events: CounterId,
    /// Execution records walked by the barrier merge (cross-shard
    /// events contribute one per half).
    pub par_replay_events: CounterId,
    /// Batched cross-shard mirror messages (one per active
    /// (sender, receiver) shard pair per window).
    pub par_cross_batches: CounterId,
    /// Cross-shard arrivals carried by those batches.
    pub par_cross_events: CounterId,
    /// Effective window-lookahead floor, picoseconds (pairwise: the
    /// minimum cross-shard arrival bound; global mode: the minimum
    /// propagation delay; 0 when a single shard runs unbounded).
    pub par_lookahead_ps: CounterId,
    /// 1 when `EPNET_PAR` was requested but the run fell back to the
    /// serial loop (zero lookahead or zero reactivation latency).
    pub par_fallback_serial: CounterId,
    // ---- hybrid-model diagnostics ----
    // Also diagnostic: they are zero in packet mode, and a new *counter*
    // would change the serialized metrics map and break packet-mode
    // byte-identity with pre-hybrid reports.
    /// Messages absorbed into the fluid regime (hybrid model).
    pub flows_absorbed: CounterId,
    /// Flows demoted back to packets at a regime boundary.
    pub flows_demoted: CounterId,
    /// Flows that completed entirely in the fluid regime.
    pub flows_completed: CounterId,
    /// Bytes delivered by fluid flow advancement.
    pub flow_fluid_bytes: CounterId,
    /// High-water mark of concurrently live fluid flows.
    pub flow_table_peak: CounterId,
    /// Flow-table column capacity (slots ever allocated); equals the
    /// peak because the free list recycles released slots.
    pub flow_table_capacity: CounterId,
}

impl MetricIds {
    fn register(m: &mut MetricsRegistry) -> Self {
        Self {
            ev_workload: m.counter("events_workload"),
            ev_tx_done: m.counter("events_tx_done"),
            ev_arrive: m.counter("events_arrive"),
            ev_credit_wake: m.counter("events_credit_wake"),
            ev_retry: m.counter("events_retry"),
            ev_epoch_tick: m.counter("events_epoch_tick"),
            credit_blocked_tries: m.counter("credit_blocked_tries"),
            tx_trains: m.counter("tx_trains"),
            tx_train_packets: m.counter("tx_train_packets"),
            tx_train_max_packets: m.counter("tx_train_max_packets"),
            detours_taken: m.counter("detours_taken"),
            epoch_queue_samples: m.counter("epoch_queue_samples"),
            epoch_queue_bytes_sum: m.counter("epoch_queue_bytes_sum"),
            epoch_queue_bytes_peak: m.counter("epoch_queue_bytes_peak"),
            residency_ps: [
                m.counter("residency_ps_2500mbps"),
                m.counter("residency_ps_5000mbps"),
                m.counter("residency_ps_10000mbps"),
                m.counter("residency_ps_20000mbps"),
                m.counter("residency_ps_40000mbps"),
            ],
            residency_off_ps: m.counter("residency_ps_off"),
            par_windows: m.diagnostic("par_windows"),
            par_window_events: m.diagnostic("par_window_events"),
            par_replay_events: m.diagnostic("par_replay_events"),
            par_cross_batches: m.diagnostic("par_cross_batches"),
            par_cross_events: m.diagnostic("par_cross_events"),
            par_lookahead_ps: m.diagnostic("par_lookahead_ps"),
            par_fallback_serial: m.diagnostic("par_fallback_serial"),
            flows_absorbed: m.diagnostic("flows_absorbed"),
            flows_demoted: m.diagnostic("flows_demoted"),
            flows_completed: m.diagnostic("flows_completed"),
            flow_fluid_bytes: m.diagnostic("flow_fluid_bytes"),
            flow_table_peak: m.diagnostic("flow_table_peak"),
            flow_table_capacity: m.diagnostic("flow_table_capacity"),
        }
    }
}

/// The simulator's telemetry state.
#[derive(Debug)]
pub(crate) struct Instruments {
    /// Cached copy of the tracer's category mask; 0 without a tracer,
    /// so `on()` is one load-and-test regardless of configuration.
    mask: u32,
    tracer: Option<Tracer>,
    pub metrics: MetricsRegistry,
    pub ids: MetricIds,
    pub profiler: Profiler,
}

impl Instruments {
    /// Builds from the `EPNET_TRACE` / `EPNET_TRACE_FILTER` environment.
    pub fn from_env() -> Self {
        Self::with_tracer(Tracer::from_env())
    }

    pub fn with_tracer(tracer: Option<Tracer>) -> Self {
        let mut metrics = MetricsRegistry::new();
        let ids = MetricIds::register(&mut metrics);
        Self {
            mask: tracer.as_ref().map_or(0, Tracer::mask),
            tracer,
            metrics,
            ids,
            profiler: Profiler::new(),
        }
    }

    /// Replaces the tracer (programmatic sinks; tests).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mask = tracer.mask();
        self.tracer = Some(tracer);
    }

    /// Removes and returns the tracer, deliberately leaving the cached
    /// mask alone so [`Instruments::on`] keeps gating identically. The
    /// parallel engine swaps the real tracer out for per-core memory
    /// sinks (installed via [`Instruments::set_tracer`] before any
    /// `on()`-gated code runs) and restores it at finalization.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Whether `cat` is traced — the hot-path gate.
    #[inline]
    pub fn on(&self, cat: TraceCategory) -> bool {
        self.mask & cat.bit() != 0
    }

    /// The tracer; call only under an [`Instruments::on`] check.
    #[inline]
    pub fn tracer(&mut self) -> &mut Tracer {
        self.tracer.as_mut().expect("tracer checked via on()")
    }

    /// Flushes the tracer, if any.
    pub fn flush(&mut self) {
        if let Some(t) = &mut self.tracer {
            t.flush();
        }
    }
}
