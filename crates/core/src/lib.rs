//! # epnet — energy-proportional datacenter networks
//!
//! A faithful, from-scratch reproduction of Abts, Marty, Wells,
//! Klausler & Liu, **"Energy Proportional Datacenter Networks"**
//! (ISCA 2010), as a reusable Rust library:
//!
//! * [`topology`] — flattened-butterfly and folded-Clos models with part
//!   counts and a port-level fabric graph,
//! * [`power`] — link power profiles, the Table-1 topology comparison,
//!   the Figure-1 datacenter model and the electricity cost model,
//! * [`sim`] — the event-driven simulator with per-epoch link-rate
//!   control (paired or independent channels) and the dynamic-topology
//!   extension,
//! * [`workloads`] — the Uniform workload and the synthetic
//!   `Advert`/`Search` trace generators,
//! * [`exp`] — ready-made experiment presets that regenerate every table
//!   and figure of the paper (see EXPERIMENTS.md for paper-vs-measured).
//!
//! # Quickstart
//!
//! ```
//! use epnet::prelude::*;
//!
//! // A small energy-proportional fabric under a search-like workload.
//! let scale = EvalScale::tiny();
//! let experiment = Experiment::new(scale, WorkloadKind::Search);
//! let outcome = experiment.run();
//! // Energy proportionality works: relative power tracks utilization
//! // far below the always-on baseline's 1.0.
//! assert!(outcome.report.relative_power(&LinkPowerProfile::Ideal) < 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub use epnet_power as power;
pub use epnet_sim as sim;
pub use epnet_topology as topology;
pub use epnet_workloads as workloads;

pub mod exp;
pub mod prelude;

pub use exp::{EvalScale, Experiment, ExperimentOutcome, WorkloadKind};
