//! One function per table / figure of the paper.
//!
//! Each returns a structured, serializable result with a `to_table()`
//! text rendering; the `repro` binary in `epnet-bench` prints them, and
//! EXPERIMENTS.md records paper-vs-measured values.
//!
//! The simulated figures (7, 8, 9a, 9b and the topology comparison)
//! fan their runs out across the [`crate::exp::run_parallel`] worker
//! pool — sized by `EPNET_THREADS` or the machine's parallelism — and
//! reassemble results in plan order, so the generated tables and JSON
//! are byte-identical at any thread count.

use crate::exp::{run_parallel, EvalScale, Experiment, WorkloadKind};
use epnet_power::{
    DatacenterPowerModel, DatacenterScenario, EnergyCostModel, InfinibandMode, LinkPowerProfile,
    LinkRate, TopologyPowerComparison, RATE_LADDER,
};
use epnet_sim::{ControlMode, SimConfig, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// **Figure 1** — server vs network power under the three scenarios.
pub fn figure1() -> Figure1 {
    let model = DatacenterPowerModel::paper_figure1();
    Figure1 {
        scenarios: model.figure1_scenarios().to_vec(),
        savings_at_15pct_watts: model.network_ep_savings_watts(0.15),
    }
}

/// Result of [`figure1`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure1 {
    /// Full utilization; 15% EP servers; 15% EP servers + network.
    pub scenarios: Vec<DatacenterScenario>,
    /// Watts saved at 15% load by an energy-proportional network.
    pub savings_at_15pct_watts: f64,
}

impl Figure1 {
    /// Text rendering.
    pub fn to_table(&self) -> String {
        let labels = [
            "100% utilization",
            "15% util, EP servers",
            "15% util, EP servers+network",
        ];
        let mut s = String::from(
            "Figure 1: server vs network power (32k servers x 250 W, folded-Clos network)\n",
        );
        let _ = writeln!(
            s,
            "{:<30} {:>12} {:>12} {:>10}",
            "Scenario", "Servers (kW)", "Network (kW)", "Net share"
        );
        for (label, sc) in labels.iter().zip(&self.scenarios) {
            let _ = writeln!(
                s,
                "{:<30} {:>12.0} {:>12.0} {:>9.1}%",
                label,
                sc.server_watts / 1e3,
                sc.network_watts / 1e3,
                sc.network_fraction() * 100.0
            );
        }
        let _ = writeln!(
            s,
            "EP network at 15% load saves {:.0} kW",
            self.savings_at_15pct_watts / 1e3
        );
        s
    }
}

/// **Table 1** — topology power comparison at fixed bisection bandwidth.
pub fn table1() -> TopologyPowerComparison {
    TopologyPowerComparison::paper_table1()
}

/// **Table 2** — InfiniBand operational data rates.
pub fn table2() -> Vec<(String, f64)> {
    InfinibandMode::ALL
        .iter()
        .map(|m| (m.name(), m.gbps()))
        .collect()
}

/// **Figure 5** — normalized dynamic range of a real switch chip.
pub fn figure5() -> Figure5 {
    Figure5 {
        idle: LinkPowerProfile::Measured.idle_relative_power(),
        copper: LinkPowerProfile::figure5_bars(true)
            .into_iter()
            .map(|(m, p)| (m.name(), p))
            .collect(),
        optical: LinkPowerProfile::figure5_bars(false)
            .into_iter()
            .map(|(m, p)| (m.name(), p))
            .collect(),
    }
}

/// Result of [`figure5`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5 {
    /// Normalized power with links idled (the STATIC bar).
    pub idle: f64,
    /// (mode, normalized power) with copper cabling.
    pub copper: Vec<(String, f64)>,
    /// (mode, normalized power) with optics.
    pub optical: Vec<(String, f64)>,
}

impl Figure5 {
    /// Text rendering.
    pub fn to_table(&self) -> String {
        let mut s =
            String::from("Figure 5: normalized power per InfiniBand mode (measured profile)\n");
        let _ = writeln!(s, "{:<10} {:>8} {:>8}", "Mode", "Copper", "Optical");
        let _ = writeln!(
            s,
            "{:<10} {:>8.3} {:>8.3}",
            "IDLE",
            self.idle * 0.75,
            self.idle
        );
        for ((name, c), (_, o)) in self.copper.iter().zip(&self.optical) {
            let _ = writeln!(s, "{:<10} {:>8.3} {:>8.3}", name, c, o);
        }
        s
    }
}

/// **Figure 6** — ITRS bandwidth trends.
pub fn figure6() -> Vec<epnet_power::trends::ItrsSample> {
    epnet_power::trends::itrs_trends()
}

/// The paper's headline dollar figures (§1, §2.2, §4.2.2).
pub fn cost_summary() -> CostSummary {
    let cost = EnergyCostModel::paper_default();
    let t1 = TopologyPowerComparison::paper_table1();
    let fbfly_w = t1.fbfly.total_power_watts;
    CostSummary {
        topology_savings_dollars: cost.lifetime_cost_dollars(t1.savings_watts()),
        baseline_fbfly_cost_dollars: cost.lifetime_cost_dollars(fbfly_w),
        ep_network_at_15pct_dollars: cost.lifetime_cost_dollars(t1.clos.total_power_watts * 0.85),
        six_x_reduction_dollars: cost.lifetime_savings_dollars(fbfly_w, fbfly_w / 6.0),
        six_point_six_x_reduction_dollars: cost.lifetime_savings_dollars(fbfly_w, fbfly_w / 6.6),
    }
}

/// Result of [`cost_summary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostSummary {
    /// FBFLY vs Clos over four years (paper: "$1.6M").
    pub topology_savings_dollars: f64,
    /// Four-year cost of the always-on FBFLY (paper: "$2.89M").
    pub baseline_fbfly_cost_dollars: f64,
    /// Savings from an EP network at 15% load (paper: "$3.8M").
    pub ep_network_at_15pct_dollars: f64,
    /// Savings from the 6x power reduction (paper: "$2.4M").
    pub six_x_reduction_dollars: f64,
    /// Savings from the 6.6x reduction (paper: "$2.5M").
    pub six_point_six_x_reduction_dollars: f64,
}

impl CostSummary {
    /// Text rendering.
    pub fn to_table(&self) -> String {
        let mut s = String::from("Four-year cost model ($0.07/kWh, PUE 1.6)\n");
        let rows = [
            (
                "FBFLY vs folded-Clos topology savings",
                self.topology_savings_dollars,
                1.6,
            ),
            (
                "Baseline FBFLY energy cost",
                self.baseline_fbfly_cost_dollars,
                2.89,
            ),
            (
                "EP network at 15% load, savings",
                self.ep_network_at_15pct_dollars,
                3.8,
            ),
            (
                "6.0x dynamic-range reduction, savings",
                self.six_x_reduction_dollars,
                2.4,
            ),
            (
                "6.6x dynamic-range reduction, savings",
                self.six_point_six_x_reduction_dollars,
                2.5,
            ),
        ];
        let _ = writeln!(s, "{:<42} {:>10} {:>10}", "Quantity", "Measured", "Paper");
        for (label, v, paper) in rows {
            let _ = writeln!(s, "{:<42} {:>9.2}M {:>9.1}M", label, v / 1e6, paper);
        }
        s
    }
}

/// **Figure 7** — fraction of time links spend at each speed under the
/// Search workload, with paired-link vs independent-channel control.
pub fn figure7(scale: EvalScale) -> Figure7 {
    let jobs: Vec<Box<dyn FnOnce() -> [f64; LinkRate::COUNT] + Send>> = vec![
        Box::new(move || {
            Experiment::new(scale, WorkloadKind::Search)
                .run_ep()
                .time_at_speed_fractions()
        }),
        Box::new(move || {
            let mut cfg = SimConfig::builder();
            cfg.control(ControlMode::IndependentChannel);
            Experiment::new(scale, WorkloadKind::Search)
                .with_config(cfg.build())
                .run_ep()
                .time_at_speed_fractions()
        }),
    ];
    let mut out = run_parallel(jobs).into_iter();
    Figure7 {
        paired: out.next().expect("two jobs"),
        independent: out.next().expect("two jobs"),
    }
}

/// Result of [`figure7`]: fractions indexed slowest rate first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure7 {
    /// Bidirectional link-pair control (Figure 7(a)).
    pub paired: [f64; LinkRate::COUNT],
    /// Independent channel control (Figure 7(b)).
    pub independent: [f64; LinkRate::COUNT],
}

impl Figure7 {
    /// Text rendering.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Figure 7: fraction of time at each link speed (Search, 1 us reactivation,\n10 us epoch, 50% target)\n",
        );
        let _ = writeln!(s, "{:<10} {:>10} {:>12}", "Speed", "Paired", "Independent");
        for rate in RATE_LADDER.iter().rev() {
            let _ = writeln!(
                s,
                "{:<10} {:>9.1}% {:>11.1}%",
                rate.to_string(),
                self.paired[rate.index()] * 100.0,
                self.independent[rate.index()] * 100.0
            );
        }
        s
    }
}

/// One workload's row in **Figure 8**.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure8Row {
    /// Workload name.
    pub workload: String,
    /// Percent of baseline power with paired-link control.
    pub paired_pct: f64,
    /// Percent of baseline power with independent channel control.
    pub independent_pct: f64,
    /// The ideal floor — the baseline's average channel utilization
    /// (§4.2.1), in percent.
    pub ideal_floor_pct: f64,
}

/// Result of [`figure8`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure8 {
    /// Figure 8(a): measured (Figure-5) channel power.
    pub measured: Vec<Figure8Row>,
    /// Figure 8(b): ideally energy-proportional channels.
    pub ideal: Vec<Figure8Row>,
}

/// **Figure 8** — network power relative to the always-full baseline,
/// for all three workloads, both control modes, under both channel
/// power profiles.
pub fn figure8(scale: EvalScale) -> Figure8 {
    #[derive(Clone, Copy)]
    enum Run {
        Baseline(WorkloadKind),
        Ep(WorkloadKind, ControlMode),
    }
    let mut plan = Vec::new();
    for kind in WorkloadKind::ALL {
        plan.push(Run::Baseline(kind));
        plan.push(Run::Ep(kind, ControlMode::PairedLink));
        plan.push(Run::Ep(kind, ControlMode::IndependentChannel));
    }
    let jobs: Vec<Box<dyn FnOnce() -> epnet_sim::SimReport + Send>> = plan
        .iter()
        .map(|&run| {
            let job: Box<dyn FnOnce() -> epnet_sim::SimReport + Send> = match run {
                Run::Baseline(kind) => {
                    Box::new(move || Experiment::new(scale, kind).run_baseline())
                }
                Run::Ep(kind, mode) => Box::new(move || {
                    let mut cfg = SimConfig::builder();
                    cfg.control(mode);
                    Experiment::new(scale, kind)
                        .with_config(cfg.build())
                        .run_ep()
                }),
            };
            job
        })
        .collect();
    let reports = run_parallel(jobs);
    let mut measured = Vec::new();
    let mut ideal = Vec::new();
    for (i, kind) in WorkloadKind::ALL.iter().enumerate() {
        let baseline = &reports[i * 3];
        let paired = &reports[i * 3 + 1];
        let independent = &reports[i * 3 + 2];
        let floor = baseline.avg_channel_utilization * 100.0;
        measured.push(Figure8Row {
            workload: kind.name().to_owned(),
            paired_pct: paired.relative_power(&LinkPowerProfile::Measured) * 100.0,
            independent_pct: independent.relative_power(&LinkPowerProfile::Measured) * 100.0,
            ideal_floor_pct: floor,
        });
        ideal.push(Figure8Row {
            workload: kind.name().to_owned(),
            paired_pct: paired.relative_power(&LinkPowerProfile::Ideal) * 100.0,
            independent_pct: independent.relative_power(&LinkPowerProfile::Ideal) * 100.0,
            ideal_floor_pct: floor,
        });
    }
    Figure8 { measured, ideal }
}

impl Figure8 {
    /// Text rendering.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        for (title, rows) in [
            (
                "Figure 8(a): % of baseline power, measured channels",
                &self.measured,
            ),
            (
                "Figure 8(b): % of baseline power, ideal channels",
                &self.ideal,
            ),
        ] {
            let _ = writeln!(s, "{title}");
            let _ = writeln!(
                s,
                "{:<10} {:>8} {:>12} {:>12}",
                "Workload", "Paired", "Independent", "Ideal floor"
            );
            for r in rows {
                let _ = writeln!(
                    s,
                    "{:<10} {:>7.1}% {:>11.1}% {:>11.1}%",
                    r.workload, r.paired_pct, r.independent_pct, r.ideal_floor_pct
                );
            }
        }
        s
    }
}

/// One topology's row in the *simulated* topology comparison (an
/// extension beyond the paper, which compares the topologies
/// analytically in Table 1 and simulates only the butterfly).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologySimRow {
    /// Topology name.
    pub topology: String,
    /// Hosts simulated.
    pub hosts: usize,
    /// Switch chips.
    pub chips: usize,
    /// Baseline (always-on) network watts under the paper's per-SerDes
    /// power.
    pub baseline_watts: f64,
    /// Network watts under energy-proportional control (ideal channels,
    /// independent control).
    pub ep_watts: f64,
    /// Baseline mean packet latency in microseconds.
    pub base_latency_us: f64,
    /// Added mean latency from EP control, microseconds.
    pub added_latency_us: f64,
}

/// Result of [`simulated_topology_comparison`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologySimComparison {
    /// FBFLY row then two-tier Clos row.
    pub rows: Vec<TopologySimRow>,
}

impl TopologySimComparison {
    /// Text rendering.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Extension: simulated topology comparison (Search, ideal channels, independent control)\n",
        );
        let _ = writeln!(
            s,
            "{:<26} {:>6} {:>6} {:>11} {:>9} {:>10} {:>10}",
            "Topology", "hosts", "chips", "base (W)", "EP (W)", "lat (us)", "+lat (us)"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<26} {:>6} {:>6} {:>11.0} {:>9.0} {:>10.1} {:>10.1}",
                r.topology,
                r.hosts,
                r.chips,
                r.baseline_watts,
                r.ep_watts,
                r.base_latency_us,
                r.added_latency_us
            );
        }
        s
    }
}

/// Runs the Search workload over both a flattened butterfly and a
/// size-matched two-tier folded Clos, under baseline and
/// energy-proportional control, and prices both with the paper's
/// per-SerDes power model. Extends Table 1 from analysis into
/// simulation.
pub fn simulated_topology_comparison(scale: EvalScale) -> TopologySimComparison {
    use epnet_power::{NetworkEnergyModel, SwitchPowerModel};
    use epnet_sim::Simulator;
    use epnet_topology::{RoutingTopology, TwoTierClos};

    let fbfly = scale.topology();
    // Closest non-blocking two-tier Clos: 2c² hosts.
    let c = ((fbfly.num_hosts() as f64 / 2.0).sqrt().round() as u16).max(2);
    let clos = TwoTierClos::non_blocking(c).expect("derived clos is valid");

    let serdes_watts = 100.0 / 144.0; // the paper's ≈0.7 W per lane
    let fbfly_power = SwitchPowerModel::new(fbfly.ports_per_switch(), 4, serdes_watts, 10.0);
    let clos_power = SwitchPowerModel::new(clos.ports_per_switch(), 4, serdes_watts, 10.0);

    let run = move |fabric: epnet_topology::FabricGraph, ep: bool| {
        let hosts = fabric.num_hosts() as u32;
        let source = WorkloadKind::Search.source(hosts, scale.seed, scale.duration);
        let config = if ep {
            let mut b = SimConfig::builder();
            b.control(ControlMode::IndependentChannel);
            b.build()
        } else {
            SimConfig::baseline()
        };
        Simulator::new(fabric, config, source).run_until(scale.duration)
    };

    let jobs: Vec<Box<dyn FnOnce() -> epnet_sim::SimReport + Send>> = vec![
        Box::new({
            let f = fbfly;
            move || run(f.build_fabric(), false)
        }),
        Box::new({
            let f = fbfly;
            move || run(f.build_fabric(), true)
        }),
        Box::new(move || run(clos.build_fabric(), false)),
        Box::new(move || run(clos.build_fabric(), true)),
    ];
    let mut reports = run_parallel(jobs).into_iter();
    let (fb_base, fb_ep) = (
        reports.next().expect("4 jobs"),
        reports.next().expect("4 jobs"),
    );
    let (cl_base, cl_ep) = (
        reports.next().expect("4 jobs"),
        reports.next().expect("4 jobs"),
    );

    let fb_energy = NetworkEnergyModel::for_fbfly(&fbfly, fbfly_power);
    let cl_energy = NetworkEnergyModel::for_two_tier(&clos, clos_power);
    let row = |name: &str,
               hosts: usize,
               chips: usize,
               energy: &NetworkEnergyModel,
               base: &epnet_sim::SimReport,
               ep: &epnet_sim::SimReport| TopologySimRow {
        topology: name.to_owned(),
        hosts,
        chips,
        baseline_watts: energy.baseline_watts(),
        ep_watts: energy.watts(ep.relative_power(&LinkPowerProfile::Ideal)),
        base_latency_us: base.mean_packet_latency.as_us_f64(),
        added_latency_us: ep.added_latency_vs(base).as_us_f64(),
    };
    TopologySimComparison {
        rows: vec![
            row(
                &format!("FBFLY ({}-ary {}-flat)", fbfly.radix(), fbfly.flat_n()),
                fbfly.num_hosts(),
                fbfly.num_switches(),
                &fb_energy,
                &fb_base,
                &fb_ep,
            ),
            row(
                &format!("Two-tier Clos (c={c})"),
                clos.num_hosts(),
                clos.num_switches(),
                &cl_energy,
                &cl_base,
                &cl_ep,
            ),
        ],
    }
}

/// One cell of **Figure 9(a)**: added latency at a target utilization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure9aCell {
    /// Workload name.
    pub workload: String,
    /// Target channel utilization (0.25 / 0.5 / 0.75).
    pub target: f64,
    /// Increase in mean packet latency over baseline, microseconds.
    pub added_latency_us: f64,
}

/// **Figure 9(a)** — latency sensitivity to target channel utilization
/// (1 µs reactivation, paired links).
pub fn figure9a(scale: EvalScale) -> Vec<Figure9aCell> {
    const TARGETS: [f64; 3] = [0.25, 0.50, 0.75];
    let mut plan = Vec::new();
    for kind in WorkloadKind::ALL {
        plan.push((kind, None));
        for t in TARGETS {
            plan.push((kind, Some(t)));
        }
    }
    let jobs: Vec<Box<dyn FnOnce() -> epnet_sim::SimReport + Send>> = plan
        .iter()
        .map(|&(kind, target)| {
            let job: Box<dyn FnOnce() -> epnet_sim::SimReport + Send> = match target {
                None => Box::new(move || Experiment::new(scale, kind).run_baseline()),
                Some(t) => Box::new(move || {
                    let mut cfg = SimConfig::builder();
                    cfg.target_utilization(t);
                    Experiment::new(scale, kind)
                        .with_config(cfg.build())
                        .run_ep()
                }),
            };
            job
        })
        .collect();
    let reports = run_parallel(jobs);
    let mut cells = Vec::new();
    for (i, kind) in WorkloadKind::ALL.iter().enumerate() {
        let base = &reports[i * 4];
        for (j, t) in TARGETS.iter().enumerate() {
            let r = &reports[i * 4 + 1 + j];
            cells.push(Figure9aCell {
                workload: kind.name().to_owned(),
                target: *t,
                added_latency_us: r.added_latency_vs(base).as_us_f64(),
            });
        }
    }
    cells
}

/// One cell of **Figure 9(b)**: added latency at a reactivation time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure9bCell {
    /// Workload name.
    pub workload: String,
    /// Link reactivation latency in nanoseconds.
    pub reactivation_ns: u64,
    /// Increase in mean packet latency over baseline, microseconds.
    pub added_latency_us: f64,
}

/// **Figure 9(b)** — latency sensitivity to reactivation time (50%
/// target, paired links, epoch = 10× reactivation).
pub fn figure9b(scale: EvalScale) -> Vec<Figure9bCell> {
    const REACTIVATIONS_NS: [u64; 4] = [100, 1_000, 10_000, 100_000];
    let mut plan = Vec::new();
    for kind in WorkloadKind::ALL {
        plan.push((kind, None));
        for r in REACTIVATIONS_NS {
            plan.push((kind, Some(r)));
        }
    }
    let jobs: Vec<Box<dyn FnOnce() -> epnet_sim::SimReport + Send>> = plan
        .iter()
        .map(|&(kind, react)| {
            let job: Box<dyn FnOnce() -> epnet_sim::SimReport + Send> = match react {
                None => Box::new(move || Experiment::new(scale, kind).run_baseline()),
                Some(ns) => Box::new(move || {
                    let mut cfg = SimConfig::builder();
                    cfg.reactivation(SimTime::from_ns(ns));
                    Experiment::new(scale, kind)
                        .with_config(cfg.build())
                        .run_ep()
                }),
            };
            job
        })
        .collect();
    let reports = run_parallel(jobs);
    let mut cells = Vec::new();
    for (i, kind) in WorkloadKind::ALL.iter().enumerate() {
        let base = &reports[i * 5];
        for (j, ns) in REACTIVATIONS_NS.iter().enumerate() {
            let r = &reports[i * 5 + 1 + j];
            cells.push(Figure9bCell {
                workload: kind.name().to_owned(),
                reactivation_ns: *ns,
                added_latency_us: r.added_latency_vs(base).as_us_f64(),
            });
        }
    }
    cells
}

/// Renders Figure 9 cell lists as a text matrix.
pub fn figure9_table<'a>(
    title: &str,
    col_label: &str,
    cols: impl Iterator<Item = String>,
    cells: impl Iterator<Item = (&'a str, f64)>,
) -> String {
    let mut s = format!("{title}\n");
    let cols: Vec<String> = cols.collect();
    let _ = write!(s, "{:<10}", "Workload");
    for c in &cols {
        let _ = write!(s, " {c:>12}");
    }
    let _ = writeln!(s, "   ({col_label})");
    let mut current: Option<&str> = None;
    for (workload, v) in cells {
        if current != Some(workload) {
            if current.is_some() {
                let _ = writeln!(s);
            }
            let _ = write!(s, "{workload:<10}");
            current = Some(workload);
        }
        let _ = write!(s, " {v:>12.1}");
    }
    let _ = writeln!(s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_figures_match_paper() {
        let f1 = figure1();
        assert_eq!(f1.scenarios.len(), 3);
        assert!((f1.savings_at_15pct_watts - 974_848.0).abs() < 1.0);
        assert!(f1.to_table().contains("Figure 1"));

        let t1 = table1();
        assert_eq!(t1.savings_watts(), 409_600.0);

        let t2 = table2();
        assert_eq!(t2.len(), 6);
        assert_eq!(t2[5].1, 40.0);

        let f5 = figure5();
        assert_eq!(f5.optical.last().unwrap().1, 1.0);
        assert!(f5.to_table().contains("4x QDR"));

        let f6 = figure6();
        assert_eq!(f6.last().unwrap().io_bandwidth_tbps, 160.0);
    }

    #[test]
    fn cost_summary_matches_paper_claims() {
        let c = cost_summary();
        assert!((1.55e6..1.7e6).contains(&c.topology_savings_dollars));
        assert!((2.8e6..3.0e6).contains(&c.baseline_fbfly_cost_dollars));
        assert!((3.7e6..3.95e6).contains(&c.ep_network_at_15pct_dollars));
        assert!((2.3e6..2.5e6).contains(&c.six_x_reduction_dollars));
        assert!(c.to_table().contains("Paper"));
    }

    #[test]
    fn figure9_table_renders() {
        let cells = vec![
            ("Uniform", 1.0),
            ("Uniform", 2.0),
            ("Search", 3.0),
            ("Search", 4.0),
        ];
        let s = figure9_table(
            "t",
            "us",
            ["a".to_owned(), "b".to_owned()].into_iter(),
            cells.into_iter(),
        );
        assert!(s.contains("Uniform"));
        assert!(s.contains("Search"));
        assert!(s.lines().count() >= 4);
    }
}
