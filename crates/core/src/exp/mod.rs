//! Experiment presets reproducing the paper's evaluation (§4).

pub mod campaign;
pub mod figures;
pub mod sweep;

use epnet_sim::{SimConfig, SimReport, SimTime, Simulator, TrafficSource};
use epnet_topology::{FabricGraph, FlattenedButterfly};
use epnet_workloads::{ServiceTrace, ServiceTraceConfig, UniformRandom};
use serde::{Deserialize, Serialize};

/// The fabric size and simulated duration of an evaluation run.
///
/// The paper models a 15-ary 3-flat (3,375 hosts); that is
/// [`EvalScale::paper`]. [`EvalScale::quick`] is a 512-host 8-ary 3-flat
/// with shorter runs whose *shapes* match at a fraction of the cost
/// (the default for the `repro` harness), and [`EvalScale::tiny`] is for
/// tests and doc examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalScale {
    /// Hosts per switch (`c`).
    pub concentration: u16,
    /// Dimension radix (`k`).
    pub radix: u16,
    /// Flat dimension count (`n`).
    pub flat_n: usize,
    /// Simulated duration per run.
    pub duration: SimTime,
    /// Base RNG seed for workload generation.
    pub seed: u64,
}

impl EvalScale {
    /// The paper's evaluation network: 15-ary 3-flat, 3,375 hosts
    /// (§4.1), 20 ms of simulated time.
    pub fn paper() -> Self {
        Self {
            concentration: 15,
            radix: 15,
            flat_n: 3,
            duration: SimTime::from_ms(20),
            seed: 2010,
        }
    }

    /// A 512-host 8-ary 3-flat over 5 ms — minutes instead of hours for
    /// the full suite, same qualitative shapes.
    pub fn quick() -> Self {
        Self {
            concentration: 8,
            radix: 8,
            flat_n: 3,
            duration: SimTime::from_ms(8),
            seed: 2010,
        }
    }

    /// A 64-host 4-ary 3-flat over 2 ms, for tests and examples.
    pub fn tiny() -> Self {
        Self {
            concentration: 4,
            radix: 4,
            flat_n: 3,
            duration: SimTime::from_ms(2),
            seed: 2010,
        }
    }

    /// The topology at this scale.
    pub fn topology(&self) -> FlattenedButterfly {
        FlattenedButterfly::new(self.concentration, self.radix, self.flat_n)
            .expect("evaluation scales are valid")
    }

    /// Builds the port-level fabric.
    pub fn fabric(&self) -> FabricGraph {
        self.topology().build_fabric()
    }

    /// Number of hosts at this scale.
    pub fn hosts(&self) -> usize {
        self.topology().num_hosts()
    }
}

/// The paper's three workloads (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Uniform random 512 KiB messages (~23% average utilization).
    Uniform,
    /// Advertising-service trace stand-in (~5% average utilization).
    Advert,
    /// Web-search trace stand-in (~6% average utilization).
    Search,
}

impl WorkloadKind {
    /// All three, in the paper's plotting order.
    pub const ALL: [Self; 3] = [Self::Uniform, Self::Advert, Self::Search];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Self::Uniform => "Uniform",
            Self::Advert => "Advert",
            Self::Search => "Search",
        }
    }

    /// Instantiates the traffic generator for `hosts` hosts.
    pub fn source(self, hosts: u32, seed: u64, horizon: SimTime) -> Box<dyn TrafficSource> {
        match self {
            Self::Uniform => Box::new(
                UniformRandom::builder(hosts)
                    .offered_load(0.23)
                    .seed(seed)
                    .horizon(horizon)
                    .build(),
            ),
            Self::Advert => Box::new(
                ServiceTrace::builder(hosts, ServiceTraceConfig::advert_like())
                    .seed(seed)
                    .horizon(horizon)
                    .build(),
            ),
            Self::Search => Box::new(
                ServiceTrace::builder(hosts, ServiceTraceConfig::search_like())
                    .seed(seed)
                    .horizon(horizon)
                    .build(),
            ),
        }
    }
}

/// One evaluation run: a scale, a workload, and a simulator
/// configuration (defaults to the paper's §4.1 settings).
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Fabric size and duration.
    pub scale: EvalScale,
    /// Traffic.
    pub workload: WorkloadKind,
    /// Simulator and controller settings.
    pub config: SimConfig,
}

/// An [`Experiment`]'s result, bundling the energy-proportional run with
/// its always-full-rate baseline (all paper results are reported
/// relative to that baseline).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// The energy-proportional run.
    pub report: SimReport,
    /// The all-links-at-40 Gb/s baseline run over identical traffic.
    pub baseline: SimReport,
}

impl ExperimentOutcome {
    /// Mean packet latency increase over the baseline (Figure 9's
    /// y-axis).
    pub fn added_latency(&self) -> SimTime {
        self.report.added_latency_vs(&self.baseline)
    }

    /// The power an *ideally* energy-proportional network would use —
    /// the baseline's average channel utilization (§4.2.1).
    pub fn ideal_power_floor(&self) -> f64 {
        self.baseline.avg_channel_utilization
    }
}

impl Experiment {
    /// An experiment with the paper's default controller settings
    /// (1 µs reactivation, 10 µs epoch, 50% target, paired links).
    pub fn new(scale: EvalScale, workload: WorkloadKind) -> Self {
        Self {
            scale,
            workload,
            config: SimConfig::default(),
        }
    }

    /// Overrides the simulator configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the energy-proportional configuration only.
    pub fn run_ep(&self) -> SimReport {
        self.run_config(&self.config)
    }

    /// Runs the always-full-rate baseline only.
    pub fn run_baseline(&self) -> SimReport {
        let mut cfg = self.config.clone();
        cfg.control = epnet_sim::ControlMode::AlwaysFull;
        self.run_config(&cfg)
    }

    /// Runs both the configured experiment and its baseline.
    pub fn run(&self) -> ExperimentOutcome {
        ExperimentOutcome {
            report: self.run_ep(),
            baseline: self.run_baseline(),
        }
    }

    fn run_config(&self, config: &SimConfig) -> SimReport {
        let fabric = self.scale.fabric();
        let source = self.workload.source(
            self.scale.hosts() as u32,
            self.scale.seed,
            self.scale.duration,
        );
        Simulator::new(fabric, config.clone(), source).run_until(self.scale.duration)
    }
}

/// Worker-pool width used by [`run_parallel`].
///
/// Defaults to [`std::thread::available_parallelism`]; the
/// `EPNET_THREADS` environment variable overrides it (any positive
/// integer — `EPNET_THREADS=1` forces fully serial execution, useful
/// for debugging and for the determinism tests that compare serial and
/// parallel output byte for byte). The value grammar is shared with
/// `EPNET_PAR` via [`epnet_sim::env_threads`].
pub fn worker_threads() -> usize {
    epnet_sim::env_threads("EPNET_THREADS").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs a set of closures on a [`std::thread::scope`] worker pool and
/// collects their results in input order — the fan-out driver behind
/// [`sweep::SensitivitySweep::run`], [`campaign::Campaign::run`] and
/// the simulated figure generators.
///
/// Results land in slots indexed by job position, so the output `Vec`
/// is identical regardless of pool width or completion order: running
/// with `EPNET_THREADS=1` and `EPNET_THREADS=64` serializes to the
/// same bytes. Workers pull jobs from a shared queue, so heterogeneous
/// job lengths balance automatically.
pub fn run_parallel<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
    let threads = worker_threads().min(jobs.len());
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    // Jobs are popped from the back; reverse so workers claim them in
    // input order (first jobs start first, helping the long tail).
    let queue = std::sync::Mutex::new(jobs.into_iter().enumerate().rev().collect::<Vec<_>>());
    let slots_mtx = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = { queue.lock().expect("queue poisoned").pop() };
                let Some((i, job)) = job else { break };
                let result = job();
                slots_mtx.lock().expect("slots poisoned")[i] = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epnet_power::LinkPowerProfile;

    #[test]
    fn scales_have_expected_sizes() {
        assert_eq!(EvalScale::paper().hosts(), 3375);
        assert_eq!(EvalScale::quick().hosts(), 512);
        assert_eq!(EvalScale::tiny().hosts(), 64);
    }

    #[test]
    fn experiment_outcome_is_energy_proportional() {
        let outcome = Experiment::new(EvalScale::tiny(), WorkloadKind::Search).run();
        // The baseline is pinned at full power.
        assert!((outcome.baseline.relative_power(&LinkPowerProfile::Ideal) - 1.0).abs() < 1e-12);
        // The EP run saves substantial power on a ~6% utilized network.
        let p = outcome.report.relative_power(&LinkPowerProfile::Ideal);
        assert!(p < 0.7, "relative power {p}");
        // And never beats the ideal floor.
        assert!(p > outcome.ideal_power_floor() * 0.9);
    }

    #[test]
    fn workload_names_and_sources() {
        for kind in WorkloadKind::ALL {
            let mut src = kind.source(64, 1, SimTime::from_ms(1));
            assert!(
                src.next_message().is_some(),
                "{} must generate",
                kind.name()
            );
        }
        assert_eq!(WorkloadKind::Uniform.name(), "Uniform");
    }

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_parallel(jobs);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }
}
