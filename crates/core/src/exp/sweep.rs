//! Parameter sweeps over the controller's two knobs: target channel
//! utilization and reactivation latency.
//!
//! Covers the §4.2.2 analyses the paper *describes* but does not plot:
//! "increasing the reactivation time (and hence utilization measurement
//! epoch) does decrease the opportunity to save power. Especially for
//! the Uniform workload ... the power savings completely disappear for
//! 100 µs."

use crate::exp::{run_parallel, EvalScale, Experiment, WorkloadKind};
use epnet_power::LinkPowerProfile;
use epnet_sim::{SimConfig, SimReport, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One grid point of a [`SensitivitySweep`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Workload name.
    pub workload: String,
    /// Target channel utilization.
    pub target: f64,
    /// Reactivation latency in nanoseconds (epoch = 10×).
    pub reactivation_ns: u64,
    /// Added mean packet latency over baseline, microseconds.
    pub added_latency_us: f64,
    /// Relative network power, ideal channels.
    pub power_ideal: f64,
    /// Relative network power, measured channels.
    pub power_measured: f64,
    /// Delivered / offered bytes.
    pub delivery_ratio: f64,
}

/// A grid sweep of the controller's tuning knobs for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivitySweep {
    /// Fabric size and run duration.
    pub scale: EvalScale,
    /// Workload under test.
    pub workload: WorkloadKind,
    /// Target utilizations to try.
    pub targets: Vec<f64>,
    /// Reactivation latencies to try.
    pub reactivations: Vec<SimTime>,
}

impl SensitivitySweep {
    /// The paper's grid: targets {25, 50, 75}% × reactivations
    /// {100 ns, 1 µs, 10 µs, 100 µs}.
    pub fn paper_grid(scale: EvalScale, workload: WorkloadKind) -> Self {
        Self {
            scale,
            workload,
            targets: vec![0.25, 0.50, 0.75],
            reactivations: vec![
                SimTime::from_ns(100),
                SimTime::from_us(1),
                SimTime::from_us(10),
                SimTime::from_us(100),
            ],
        }
    }

    /// Runs the grid (plus one baseline) and returns a cell per point.
    ///
    /// Cells run on the [`crate::exp::run_parallel`] worker pool
    /// (width from `EPNET_THREADS` or the machine's parallelism) and
    /// are collected in grid order, so the returned `Vec` — and
    /// anything serialized from it — is identical at any thread count.
    pub fn run(&self) -> Vec<SweepCell> {
        let scale = self.scale;
        let workload = self.workload;
        let mut jobs: Vec<Box<dyn FnOnce() -> SimReport + Send>> = vec![Box::new(move || {
            Experiment::new(scale, workload).run_baseline()
        })];
        for &target in &self.targets {
            for &reactivation in &self.reactivations {
                jobs.push(Box::new(move || {
                    let mut cfg = SimConfig::builder();
                    cfg.reactivation(reactivation).target_utilization(target);
                    Experiment::new(scale, workload)
                        .with_config(cfg.build())
                        .run_ep()
                }));
            }
        }
        let mut reports = run_parallel(jobs).into_iter();
        let baseline = reports.next().expect("baseline job");
        let mut cells = Vec::new();
        for &target in &self.targets {
            for &reactivation in &self.reactivations {
                let r = reports.next().expect("grid job");
                cells.push(SweepCell {
                    workload: workload.name().to_owned(),
                    target,
                    reactivation_ns: reactivation.as_ns(),
                    added_latency_us: r.added_latency_vs(&baseline).as_us_f64(),
                    power_ideal: r.relative_power(&LinkPowerProfile::Ideal),
                    power_measured: r.relative_power(&LinkPowerProfile::Measured),
                    delivery_ratio: r.delivery_ratio(),
                });
            }
        }
        cells
    }
}

/// Renders sweep cells as two matrices (latency and ideal power).
pub fn sweep_tables(workload: &str, cells: &[SweepCell]) -> String {
    let mut targets: Vec<f64> = cells.iter().map(|c| c.target).collect();
    targets.dedup();
    let mut reacts: Vec<u64> = cells.iter().map(|c| c.reactivation_ns).collect();
    reacts.sort_unstable();
    reacts.dedup();

    let mut s = format!("Sensitivity sweep ({workload}): added latency (us)\n");
    for (title, pick) in [
        ("", 0usize),
        ("Sensitivity sweep: relative power, ideal channels (%)\n", 1),
    ] {
        s.push_str(title);
        let _ = write!(s, "{:<8}", "target");
        for r in &reacts {
            let _ = write!(s, " {:>10}", format!("{}ns", r));
        }
        let _ = writeln!(s);
        for t in &targets {
            let _ = write!(s, "{:<8}", format!("{:.0}%", t * 100.0));
            for r in &reacts {
                let cell = cells
                    .iter()
                    .find(|c| c.target == *t && c.reactivation_ns == *r)
                    .expect("full grid");
                let v = if pick == 0 {
                    cell.added_latency_us
                } else {
                    cell.power_ideal * 100.0
                };
                let _ = write!(s, " {v:>10.1}");
            }
            let _ = writeln!(s);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_produces_full_grid() {
        let mut scale = EvalScale::tiny();
        scale.duration = SimTime::from_ms(1);
        let sweep = SensitivitySweep {
            scale,
            workload: WorkloadKind::Search,
            targets: vec![0.25, 0.75],
            reactivations: vec![SimTime::from_us(1), SimTime::from_us(10)],
        };
        let cells = sweep.run();
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(c.power_ideal > 0.0 && c.power_ideal <= 1.0);
            assert!(c.power_measured >= c.power_ideal);
            assert!(c.delivery_ratio > 0.5);
        }
        let table = sweep_tables("Search", &cells);
        assert!(table.contains("25%"));
        assert!(table.contains("75%"));
    }

    #[test]
    fn paper_grid_shape() {
        let sweep = SensitivitySweep::paper_grid(EvalScale::tiny(), WorkloadKind::Advert);
        assert_eq!(sweep.targets.len(), 3);
        assert_eq!(sweep.reactivations.len(), 4);
    }
}
