//! Campaigns: labeled batches of experiments run in parallel, rendered
//! as one comparison table.

use crate::exp::{run_parallel, Experiment, ExperimentOutcome};
use epnet_power::LinkPowerProfile;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One labeled experiment inside a campaign.
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    /// Row label in the rendered table.
    pub label: String,
    /// The experiment to run.
    pub experiment: Experiment,
}

/// A labeled batch of experiments sharing one comparison table — the
/// ergonomic way to ask "which configuration should my cluster run?".
///
/// ```no_run
/// use epnet::exp::campaign::Campaign;
/// use epnet::prelude::*;
///
/// let mut campaign = Campaign::new();
/// let base = Experiment::new(EvalScale::tiny(), WorkloadKind::Search);
/// campaign.push("paired", base.clone());
/// let mut cfg = SimConfig::builder();
/// cfg.control(ControlMode::IndependentChannel);
/// campaign.push("independent", base.with_config(cfg.build()));
/// println!("{}", campaign.run().to_table());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    entries: Vec<CampaignEntry>,
}

/// The results of a [`Campaign`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResults {
    /// (label, outcome) per entry, in insertion order.
    pub outcomes: Vec<(String, ExperimentOutcome)>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a labeled experiment; returns `self` for chaining.
    pub fn push(&mut self, label: impl Into<String>, experiment: Experiment) -> &mut Self {
        self.entries.push(CampaignEntry {
            label: label.into(),
            experiment,
        });
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the campaign has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs every entry (each with its baseline) on the
    /// [`crate::exp::run_parallel`] worker pool (width from
    /// `EPNET_THREADS` or the machine's parallelism). Outcomes keep
    /// insertion order regardless of which worker finishes first.
    pub fn run(&self) -> CampaignResults {
        let jobs: Vec<Box<dyn FnOnce() -> ExperimentOutcome + Send>> = self
            .entries
            .iter()
            .map(|e| {
                let experiment = e.experiment.clone();
                let job: Box<dyn FnOnce() -> ExperimentOutcome + Send> =
                    Box::new(move || experiment.run());
                job
            })
            .collect();
        let outcomes = run_parallel(jobs);
        CampaignResults {
            outcomes: self
                .entries
                .iter()
                .map(|e| e.label.clone())
                .zip(outcomes)
                .collect(),
        }
    }
}

impl CampaignResults {
    /// Renders the comparison table.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<24} {:>10} {:>10} {:>12} {:>10} {:>8}",
            "Configuration", "measured", "ideal", "+latency", "reconfigs", "deliver"
        );
        for (label, o) in &self.outcomes {
            let _ = writeln!(
                s,
                "{:<24} {:>9.1}% {:>9.1}% {:>12} {:>10} {:>7.1}%",
                label,
                o.report.relative_power(&LinkPowerProfile::Measured) * 100.0,
                o.report.relative_power(&LinkPowerProfile::Ideal) * 100.0,
                o.added_latency().to_string(),
                o.report.reconfigurations,
                o.report.delivery_ratio() * 100.0,
            );
        }
        s
    }

    /// The entry with the lowest ideal-channel power that still
    /// delivered at least `min_delivery` of its offered bytes.
    pub fn best_power(&self, min_delivery: f64) -> Option<&(String, ExperimentOutcome)> {
        self.outcomes
            .iter()
            .filter(|(_, o)| o.report.delivery_ratio() >= min_delivery)
            .min_by(|a, b| {
                a.1.report
                    .relative_power(&LinkPowerProfile::Ideal)
                    .total_cmp(&b.1.report.relative_power(&LinkPowerProfile::Ideal))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{EvalScale, WorkloadKind};
    use epnet_sim::{ControlMode, SimConfig, SimTime};

    fn tiny() -> EvalScale {
        let mut s = EvalScale::tiny();
        s.duration = SimTime::from_ms(1);
        s
    }

    #[test]
    fn campaign_runs_all_entries_in_order() {
        let base = Experiment::new(tiny(), WorkloadKind::Advert);
        let mut campaign = Campaign::new();
        campaign.push("paired", base.clone());
        let mut cfg = SimConfig::builder();
        cfg.control(ControlMode::IndependentChannel);
        campaign.push("independent", base.with_config(cfg.build()));
        assert_eq!(campaign.len(), 2);
        assert!(!campaign.is_empty());

        let results = campaign.run();
        assert_eq!(results.outcomes.len(), 2);
        assert_eq!(results.outcomes[0].0, "paired");
        assert_eq!(results.outcomes[1].0, "independent");
        let table = results.to_table();
        assert!(table.contains("paired"));
        assert!(table.contains("independent"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn best_power_respects_delivery_floor() {
        let base = Experiment::new(tiny(), WorkloadKind::Search);
        let mut campaign = Campaign::new();
        campaign.push("a", base.clone()).push("b", base);
        let results = campaign.run();
        let best = results.best_power(0.5).expect("both entries deliver");
        assert!(results.outcomes.iter().any(|(l, _)| l == &best.0));
        // An impossible floor filters everything out.
        assert!(results.best_power(1.1).is_none());
    }
}
