//! Convenience re-exports: `use epnet::prelude::*;` pulls in everything
//! needed for typical experiments.

pub use crate::exp::{EvalScale, Experiment, ExperimentOutcome, WorkloadKind};
pub use epnet_power::{
    DatacenterPowerModel, EnergyCostModel, LinkPowerProfile, LinkRate, NetworkEnergyModel,
    SwitchPowerModel, TopologyPowerComparison, RATE_LADDER,
};
pub use epnet_sim::{
    ControlMode, DynamicTopology, DynamicTopologyConfig, Message, RatePolicy, ReactivationModel,
    ReactivationStrategy, ReplaySource, RoutingPolicy, SimConfig, SimReport, SimTime, Simulator,
    TrafficSource,
};
pub use epnet_topology::{
    BillOfMaterials, FabricGraph, FabricKind, FlattenedButterfly, FoldedClos, HostId, LinkMask,
    Medium, RoutingTopology, SubtopologyKind, SwitchId, TopologyError, TwoTierClos,
};
pub use epnet_workloads::{
    Incast, Permutation, ServiceTrace, ServiceTraceConfig, TraceAnalysis, TraceAnalyzer,
    UniformRandom,
};
