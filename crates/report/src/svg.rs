//! A tiny dependency-free SVG document builder — just enough for bar
//! and line charts.

use std::fmt::Write as _;

/// Text anchoring for [`Svg::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Left-aligned at the given x.
    Start,
    /// Centered on the given x.
    Middle,
    /// Right-aligned at the given x.
    End,
}

impl Anchor {
    fn as_str(self) -> &'static str {
        match self {
            Self::Start => "start",
            Self::Middle => "middle",
            Self::End => "end",
        }
    }
}

/// An SVG document under construction.
#[derive(Debug)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
}

impl Svg {
    /// Starts a document of the given pixel size with a white
    /// background.
    pub fn new(width: f64, height: f64) -> Self {
        let mut this = Self {
            width,
            height,
            body: String::new(),
        };
        this.rect(0.0, 0.0, width, height, "#ffffff");
        this
    }

    /// A filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}"/>"#
        );
    }

    /// A stroked line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{width:.1}"/>"#
        );
    }

    /// A polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width:.1}"/>"#,
            pts.join(" ")
        );
    }

    /// A small filled circle (line-chart marker).
    pub fn circle(&mut self, x: f64, y: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r:.1}" fill="{fill}"/>"#
        );
    }

    /// A text label (11-px sans by default; `size` overrides).
    pub fn text(&mut self, x: f64, y: f64, anchor: Anchor, size: f64, content: &str) {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" text-anchor="{}" font-family="sans-serif" font-size="{size:.0}">{escaped}</text>"#,
            anchor.as_str()
        );
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// The categorical palette used across charts (color-blind friendly).
pub const PALETTE: [&str; 5] = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#aa3377"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut svg = Svg::new(100.0, 50.0);
        svg.rect(1.0, 2.0, 3.0, 4.0, "#000");
        svg.line(0.0, 0.0, 10.0, 10.0, "#111", 1.5);
        svg.polyline(&[(0.0, 0.0), (5.0, 5.0)], "#222", 2.0);
        svg.circle(3.0, 3.0, 2.0, "#333");
        svg.text(5.0, 5.0, Anchor::Middle, 11.0, "a<b&c");
        let out = svg.finish();
        assert!(out.starts_with("<svg"));
        assert!(out.trim_end().ends_with("</svg>"));
        assert!(out.contains("polyline"));
        assert!(out.contains("a&lt;b&amp;c"), "text is escaped");
        assert_eq!(out.matches("<rect").count(), 2, "background + one rect");
    }

    #[test]
    fn palette_is_hex() {
        for c in PALETTE {
            assert!(c.starts_with('#') && c.len() == 7);
        }
    }
}
