//! SVG renderings of the reproduced figures.
//!
//! Turns the structured results from [`epnet::exp::figures`] into
//! standalone SVG charts, so the reproduction produces *figures*, not
//! just tables. No plotting dependencies — a small built-in SVG
//! builder does the drawing.
//!
//! The `render` binary consumes the JSON written by
//! `repro --json results.json` and emits one `.svg` per simulated
//! figure:
//!
//! ```text
//! cargo run --release -p epnet-bench --bin repro -- --json results.json
//! cargo run --release -p epnet-report --bin render -- results.json figures/
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod charts;
pub mod svg;
pub mod tracecharts;

use charts::Series;
use epnet::exp::figures::{Figure7, Figure8, Figure9aCell, Figure9bCell};
use epnet::power::{LinkRate, RATE_LADDER};

/// Figure 7 as a grouped bar chart (fraction of time per link speed).
pub fn render_figure7(f: &Figure7) -> String {
    let categories: Vec<String> = RATE_LADDER.iter().rev().map(|r| r.to_string()).collect();
    let pick = |vals: &[f64; 5]| -> Vec<f64> {
        RATE_LADDER
            .iter()
            .rev()
            .map(|r| vals[r.index()] * 100.0)
            .collect()
    };
    charts::grouped_bars(
        "Figure 7: fraction of time at each link speed (Search)",
        "% of time",
        &categories,
        &[
            Series {
                name: "paired".into(),
                values: pick(&f.paired),
            },
            Series {
                name: "independent".into(),
                values: pick(&f.independent),
            },
        ],
        100.0,
    )
}

/// Figure 8 as two grouped bar charts (measured / ideal channels),
/// returned as `(fig8a, fig8b)`.
pub fn render_figure8(f: &Figure8) -> (String, String) {
    let render = |title: &str, rows: &[epnet::exp::figures::Figure8Row]| {
        let categories: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
        charts::grouped_bars(
            title,
            "% of baseline power",
            &categories,
            &[
                Series {
                    name: "paired".into(),
                    values: rows.iter().map(|r| r.paired_pct).collect(),
                },
                Series {
                    name: "independent".into(),
                    values: rows.iter().map(|r| r.independent_pct).collect(),
                },
                Series {
                    name: "ideal floor".into(),
                    values: rows.iter().map(|r| r.ideal_floor_pct).collect(),
                },
            ],
            100.0,
        )
    };
    (
        render("Figure 8(a): network power, measured channels", &f.measured),
        render("Figure 8(b): network power, ideal channels", &f.ideal),
    )
}

/// Figure 9(a) as a line chart (added latency vs target utilization).
pub fn render_figure9a(cells: &[Figure9aCell]) -> String {
    let mut targets: Vec<f64> = cells.iter().map(|c| c.target).collect();
    targets.sort_by(f64::total_cmp);
    targets.dedup();
    let series = by_workload(
        cells
            .iter()
            .map(|c| (c.workload.as_str(), c.target, c.added_latency_us)),
        &targets,
    );
    charts::lines(
        "Figure 9(a): added latency vs target utilization",
        "added latency (us)",
        "target channel utilization",
        &targets,
        &series,
        false,
    )
}

/// Figure 9(b) as a log-x line chart (added latency vs reactivation).
pub fn render_figure9b(cells: &[Figure9bCell]) -> String {
    let mut xs: Vec<f64> = cells.iter().map(|c| c.reactivation_ns as f64).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let series = by_workload(
        cells.iter().map(|c| {
            (
                c.workload.as_str(),
                c.reactivation_ns as f64,
                c.added_latency_us,
            )
        }),
        &xs,
    );
    charts::lines(
        "Figure 9(b): added latency vs reactivation time",
        "added latency (us)",
        "reactivation (ns, log scale)",
        &xs,
        &series,
        true,
    )
}

/// Renders a recorded rate timeline (see
/// [`SimConfig::timeline_channels`](epnet::sim::SimConfig)) as a
/// per-channel Gantt strip: one row per channel, colored by rate
/// (darker = faster, grey = powered off). Makes energy proportionality
/// *visible* — links sink to the floor between bursts and jump back.
pub fn render_timeline(
    events: &[epnet::sim::TimelineEvent],
    duration: epnet::sim::SimTime,
) -> String {
    use svg::{Anchor, Svg};
    assert!(
        !events.is_empty(),
        "timeline is empty — enable timeline_channels"
    );
    let channels = events.iter().map(|e| e.channel).max().expect("non-empty") + 1;
    let row_h = 14.0;
    let left = 56.0;
    let top = 34.0;
    let plot_w = 640.0;
    let width = left + plot_w + 16.0;
    let height = top + row_h * channels as f64 + 40.0;
    let mut svg = Svg::new(width, height);
    svg.text(
        width / 2.0,
        18.0,
        Anchor::Middle,
        13.0,
        "Per-channel link-rate timeline",
    );
    let x_of = |t: epnet::sim::SimTime| {
        left + plot_w * (t.as_ps() as f64 / duration.as_ps() as f64).clamp(0.0, 1.0)
    };
    let color_of = |rate: Option<LinkRate>| match rate {
        None => "#bbbbbb",
        Some(LinkRate::R2_5) => "#deebf7",
        Some(LinkRate::R5) => "#9ecae1",
        Some(LinkRate::R10) => "#6baed6",
        Some(LinkRate::R20) => "#3182bd",
        Some(LinkRate::R40) => "#08519c",
    };
    // Per channel, draw segments between consecutive events.
    for ch in 0..channels {
        let y = top + row_h * ch as f64;
        svg.text(
            left - 6.0,
            y + row_h - 4.0,
            Anchor::End,
            9.0,
            &format!("ch{ch}"),
        );
        let mut evs: Vec<&epnet::sim::TimelineEvent> =
            events.iter().filter(|e| e.channel == ch).collect();
        evs.sort_by_key(|e| e.at);
        for (i, e) in evs.iter().enumerate() {
            let x0 = x_of(e.at);
            let x1 = if i + 1 < evs.len() {
                x_of(evs[i + 1].at)
            } else {
                left + plot_w
            };
            svg.rect(
                x0,
                y + 1.0,
                (x1 - x0).max(0.3),
                row_h - 2.0,
                color_of(e.rate),
            );
        }
    }
    // Rate legend.
    let mut lx = left;
    let ly = height - 22.0;
    for rate in RATE_LADDER {
        svg.rect(lx, ly, 10.0, 10.0, color_of(Some(rate)));
        svg.text(lx + 13.0, ly + 9.0, Anchor::Start, 9.0, &rate.to_string());
        lx += 86.0;
    }
    svg.rect(lx, ly, 10.0, 10.0, color_of(None));
    svg.text(lx + 13.0, ly + 9.0, Anchor::Start, 9.0, "off");
    svg.finish()
}

/// Groups `(workload, x, y)` triples into one series per workload, with
/// values ordered by `xs`.
fn by_workload<'a>(
    triples: impl Iterator<Item = (&'a str, f64, f64)> + Clone,
    xs: &[f64],
) -> Vec<Series> {
    let mut names: Vec<&str> = Vec::new();
    for (w, _, _) in triples.clone() {
        if !names.contains(&w) {
            names.push(w);
        }
    }
    names
        .into_iter()
        .map(|name| Series {
            name: name.to_owned(),
            values: xs
                .iter()
                .map(|&x| {
                    triples
                        .clone()
                        .find(|(w, cx, _)| *w == name && *cx == x)
                        .map(|(_, _, y)| y)
                        .unwrap_or(0.0)
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_svg() {
        let f = Figure7 {
            paired: [0.6, 0.1, 0.1, 0.1, 0.1],
            independent: [0.8, 0.05, 0.05, 0.05, 0.05],
        };
        let svg = render_figure7(&f);
        assert!(svg.contains("Figure 7"));
        assert!(svg.contains("40 Gb/s"));
    }

    #[test]
    fn figure8_svg() {
        let row = |w: &str| epnet::exp::figures::Figure8Row {
            workload: w.into(),
            paired_pct: 50.0,
            independent_pct: 40.0,
            ideal_floor_pct: 10.0,
        };
        let f = Figure8 {
            measured: vec![row("Uniform"), row("Search")],
            ideal: vec![row("Uniform"), row("Search")],
        };
        let (a, b) = render_figure8(&f);
        assert!(a.contains("measured"));
        assert!(b.contains("ideal"));
        assert!(a.contains("Uniform"));
    }

    #[test]
    fn timeline_renders_segments_and_legend() {
        use epnet::sim::{SimTime, TimelineEvent};
        let events = vec![
            TimelineEvent {
                at: SimTime::ZERO,
                channel: 0,
                rate: Some(LinkRate::R40),
            },
            TimelineEvent {
                at: SimTime::from_us(10),
                channel: 0,
                rate: Some(LinkRate::R20),
            },
            TimelineEvent {
                at: SimTime::ZERO,
                channel: 1,
                rate: Some(LinkRate::R40),
            },
            TimelineEvent {
                at: SimTime::from_us(20),
                channel: 1,
                rate: None,
            },
        ];
        let svg = render_timeline(&events, SimTime::from_us(100));
        assert!(svg.contains("ch0"));
        assert!(svg.contains("ch1"));
        assert!(svg.contains("#bbbbbb"), "off segment drawn");
        // 4 segments + 6 legend swatches + background.
        assert_eq!(svg.matches("<rect").count(), 11);
    }

    #[test]
    #[should_panic(expected = "timeline is empty")]
    fn empty_timeline_rejected() {
        let _ = render_timeline(&[], epnet::sim::SimTime::from_us(1));
    }

    #[test]
    fn figure9_svgs() {
        let a_cells: Vec<Figure9aCell> = [0.25, 0.5, 0.75]
            .iter()
            .flat_map(|&t| {
                ["Uniform", "Search"].iter().map(move |w| Figure9aCell {
                    workload: (*w).into(),
                    target: t,
                    added_latency_us: t * 100.0,
                })
            })
            .collect();
        let svg = render_figure9a(&a_cells);
        assert_eq!(svg.matches("<polyline").count(), 2);

        let b_cells: Vec<Figure9bCell> = [100u64, 1_000, 10_000]
            .iter()
            .map(|&ns| Figure9bCell {
                workload: "Advert".into(),
                reactivation_ns: ns,
                added_latency_us: ns as f64 / 100.0,
            })
            .collect();
        let svg = render_figure9b(&b_cells);
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert!(svg.contains("log scale"));
    }
}
