//! Generic grouped-bar and line charts over the [`Svg`] builder.

use crate::svg::{Anchor, Svg, PALETTE};

/// Chart margins.
const LEFT: f64 = 64.0;
const RIGHT: f64 = 20.0;
const TOP: f64 = 40.0;
const BOTTOM: f64 = 56.0;

/// One named series of values (one bar per category, or one line).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per category / x-point.
    pub values: Vec<f64>,
}

/// A grouped bar chart: `categories` along x, one bar per series within
/// each group. Values are fractions or percentages; the y-axis runs
/// `0..y_max`.
pub fn grouped_bars(
    title: &str,
    y_label: &str,
    categories: &[String],
    series: &[Series],
    y_max: f64,
) -> String {
    assert!(!categories.is_empty() && !series.is_empty());
    for s in series {
        assert_eq!(s.values.len(), categories.len(), "ragged series {}", s.name);
    }
    let width = (categories.len() as f64 * 110.0 + LEFT + RIGHT).max(420.0);
    let height = 300.0;
    let mut svg = Svg::new(width, height);
    let plot_w = width - LEFT - RIGHT;
    let plot_h = height - TOP - BOTTOM;
    let y_of = |v: f64| TOP + plot_h * (1.0 - (v / y_max).clamp(0.0, 1.0));

    svg.text(width / 2.0, 20.0, Anchor::Middle, 13.0, title);
    // Axes and y grid.
    svg.line(LEFT, TOP, LEFT, TOP + plot_h, "#333333", 1.0);
    svg.line(
        LEFT,
        TOP + plot_h,
        LEFT + plot_w,
        TOP + plot_h,
        "#333333",
        1.0,
    );
    for i in 0..=5 {
        let v = y_max * f64::from(i) / 5.0;
        let y = y_of(v);
        svg.line(LEFT, y, LEFT + plot_w, y, "#dddddd", 0.5);
        svg.text(LEFT - 6.0, y + 4.0, Anchor::End, 10.0, &format!("{v:.0}"));
    }
    svg.text(14.0, TOP - 12.0, Anchor::Start, 10.0, y_label);

    // Bars.
    let group_w = plot_w / categories.len() as f64;
    let bar_w = (group_w * 0.7) / series.len() as f64;
    for (ci, cat) in categories.iter().enumerate() {
        let gx = LEFT + group_w * ci as f64 + group_w * 0.15;
        for (si, s) in series.iter().enumerate() {
            let v = s.values[ci];
            let y = y_of(v);
            let x = gx + bar_w * si as f64;
            svg.rect(
                x,
                y,
                bar_w - 2.0,
                (TOP + plot_h - y).max(0.5),
                PALETTE[si % PALETTE.len()],
            );
        }
        svg.text(
            gx + group_w * 0.35,
            TOP + plot_h + 16.0,
            Anchor::Middle,
            10.0,
            cat,
        );
    }
    legend(&mut svg, series, width);
    svg.finish()
}

/// A line chart with one polyline per series over shared x labels.
/// `log_x` spaces the points by log₁₀ of `x_values`.
pub fn lines(
    title: &str,
    y_label: &str,
    x_label: &str,
    x_values: &[f64],
    series: &[Series],
    log_x: bool,
) -> String {
    assert!(x_values.len() >= 2 && !series.is_empty());
    let width = 480.0;
    let height = 320.0;
    let mut svg = Svg::new(width, height);
    let plot_w = width - LEFT - RIGHT;
    let plot_h = height - TOP - BOTTOM;

    let xf = |x: f64| if log_x { x.log10() } else { x };
    let (x0, x1) = (xf(x_values[0]), xf(*x_values.last().expect("non-empty")));
    let y_max = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .fold(1e-9_f64, f64::max)
        * 1.1;
    let x_of = |x: f64| LEFT + plot_w * (xf(x) - x0) / (x1 - x0);
    let y_of = |v: f64| TOP + plot_h * (1.0 - (v / y_max).clamp(0.0, 1.0));

    svg.text(width / 2.0, 20.0, Anchor::Middle, 13.0, title);
    svg.line(LEFT, TOP, LEFT, TOP + plot_h, "#333333", 1.0);
    svg.line(
        LEFT,
        TOP + plot_h,
        LEFT + plot_w,
        TOP + plot_h,
        "#333333",
        1.0,
    );
    for i in 0..=5 {
        let v = y_max * f64::from(i) / 5.0;
        let y = y_of(v);
        svg.line(LEFT, y, LEFT + plot_w, y, "#dddddd", 0.5);
        svg.text(LEFT - 6.0, y + 4.0, Anchor::End, 10.0, &format!("{v:.0}"));
    }
    for &x in x_values {
        let px = x_of(x);
        svg.line(px, TOP + plot_h, px, TOP + plot_h + 4.0, "#333333", 1.0);
        svg.text(px, TOP + plot_h + 16.0, Anchor::Middle, 10.0, &format_x(x));
    }
    svg.text(14.0, TOP - 12.0, Anchor::Start, 10.0, y_label);
    svg.text(width / 2.0, height - 30.0, Anchor::Middle, 10.0, x_label);

    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let pts: Vec<(f64, f64)> = x_values
            .iter()
            .zip(&s.values)
            .map(|(&x, &v)| (x_of(x), y_of(v)))
            .collect();
        svg.polyline(&pts, color, 2.0);
        for &(px, py) in &pts {
            svg.circle(px, py, 3.0, color);
        }
    }
    legend(&mut svg, series, width);
    svg.finish()
}

fn legend(svg: &mut Svg, series: &[Series], width: f64) {
    let mut x = width - RIGHT - 120.0 * series.len() as f64;
    // Keep on canvas for many series.
    if x < LEFT {
        x = LEFT;
    }
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        svg.rect(x, 28.0, 10.0, 10.0, color);
        svg.text(x + 14.0, 37.0, Anchor::Start, 10.0, &s.name);
        x += 120.0;
    }
}

fn format_x(x: f64) -> String {
    if x >= 1_000_000.0 {
        format!("{:.0}M", x / 1e6)
    } else if x >= 1_000.0 {
        format!("{:.0}k", x / 1e3)
    } else if x.fract() == 0.0 {
        format!("{x:.0}")
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series {
                name: "paired".into(),
                values: vec![10.0, 20.0, 30.0],
            },
            Series {
                name: "independent".into(),
                values: vec![5.0, 15.0, 25.0],
            },
        ]
    }

    #[test]
    fn bars_render_every_series() {
        let cats = vec!["a".to_owned(), "b".to_owned(), "c".to_owned()];
        let out = grouped_bars("t", "%", &cats, &series(), 100.0);
        // 1 background + 6 bars + 2 legend swatches.
        assert_eq!(out.matches("<rect").count(), 9);
        assert!(out.contains("paired"));
        assert!(out.contains(">c</text>"));
    }

    #[test]
    fn lines_render_with_log_axis() {
        let xs = [100.0, 1_000.0, 10_000.0];
        let mut s = series();
        for s in &mut s {
            s.values.truncate(3);
        }
        let out = lines("t", "us", "reactivation", &xs, &s, true);
        assert_eq!(out.matches("<polyline").count(), 2);
        assert!(out.contains("1k"));
        assert!(out.contains("10k"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_series_rejected() {
        let cats = vec!["a".to_owned(), "b".to_owned()];
        grouped_bars("t", "%", &cats, &series(), 100.0);
    }
}
