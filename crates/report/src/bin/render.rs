//! Renders `repro --json` output into SVG figures.
//!
//! ```text
//! render RESULTS.json OUT_DIR
//! render --trace TRACE.jsonl OUT_DIR
//! ```
//!
//! The first form emits `figure7.svg`, `figure8a.svg`, `figure8b.svg`,
//! `figure9a.svg`, and `figure9b.svg` for whichever figures are present
//! in the JSON. The second consumes an `EPNET_TRACE` JSONL file and
//! emits `trace_residency.svg` (per-rate residency reconstructed from
//! controller decisions) and `trace_timeline.svg` (per-channel
//! controller-decision timeline).

use epnet::exp::figures::{Figure7, Figure8, Figure9aCell, Figure9bCell};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let ["--trace", trace, out_dir] = args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        return render_trace(trace, out_dir);
    }
    let [input, out_dir] = args.as_slice() else {
        eprintln!("usage: render RESULTS.json OUT_DIR\n       render --trace TRACE.jsonl OUT_DIR");
        return ExitCode::FAILURE;
    };
    let raw = match std::fs::read_to_string(input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json: serde_json::Value = match serde_json::from_str(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot parse {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }

    let mut rendered = 0usize;
    let mut write = |name: &str, svg: String| {
        let path = Path::new(out_dir).join(name);
        match std::fs::write(&path, svg) {
            Ok(()) => {
                println!("wrote {}", path.display());
                rendered += 1;
            }
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    };

    if let Some(v) = json.get("figure7") {
        match serde_json::from_value::<Figure7>(v.clone()) {
            Ok(f) => write("figure7.svg", epnet_report::render_figure7(&f)),
            Err(e) => eprintln!("figure7 present but unreadable: {e}"),
        }
    }
    if let Some(v) = json.get("figure8") {
        match serde_json::from_value::<Figure8>(v.clone()) {
            Ok(f) => {
                let (a, b) = epnet_report::render_figure8(&f);
                write("figure8a.svg", a);
                write("figure8b.svg", b);
            }
            Err(e) => eprintln!("figure8 present but unreadable: {e}"),
        }
    }
    if let Some(v) = json.get("figure9a") {
        match serde_json::from_value::<Vec<Figure9aCell>>(v.clone()) {
            Ok(cells) => write("figure9a.svg", epnet_report::render_figure9a(&cells)),
            Err(e) => eprintln!("figure9a present but unreadable: {e}"),
        }
    }
    if let Some(v) = json.get("figure9b") {
        match serde_json::from_value::<Vec<Figure9bCell>>(v.clone()) {
            Ok(cells) => write("figure9b.svg", epnet_report::render_figure9b(&cells)),
            Err(e) => eprintln!("figure9b present but unreadable: {e}"),
        }
    }

    if rendered == 0 {
        eprintln!("no renderable figures found in {input} (run repro with figure7/8/9 targets)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Channels shown in the trace timeline: enough to see per-channel
/// behavior without producing an unmanageably tall SVG.
const TIMELINE_CHANNELS: u32 = 32;

fn render_trace(trace: &str, out_dir: &str) -> ExitCode {
    let raw = match std::fs::read_to_string(trace) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {trace}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match epnet_telemetry::parse_jsonl(&raw) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {trace}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let derived = epnet_report::tracecharts::derive(&records);
    if derived.channels == 0 {
        eprintln!(
            "{trace} has no controller decisions — run with EPNET_TRACE set \
             (and 'controller' in EPNET_TRACE_FILTER, if filtering)"
        );
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    for (name, svg) in [
        (
            "trace_residency.svg",
            epnet_report::tracecharts::render_trace_residency(&derived),
        ),
        (
            "trace_timeline.svg",
            epnet_report::tracecharts::render_controller_timeline(&derived, TIMELINE_CHANNELS),
        ),
    ] {
        let path = Path::new(out_dir).join(name);
        if let Err(e) = std::fs::write(&path, svg) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
