//! Post-hoc trace analyses: the numbers behind the `tracetool` bin.
//!
//! Each analysis consumes parsed [`TraceRecord`]s and returns plain
//! data: per-rate residency (delegating to [`crate::tracecharts`] so
//! the numbers match `render --trace` exactly), per-channel transition
//! churn with flap detection, the reactivation-latency distribution,
//! per-channel credit-stall attribution, and controller outcome
//! breakdowns. Formatting is split off into `format_*` table renderers
//! so the same structs can feed CSV writers (see `epnet-bench::csv`).
//!
//! Everything here is a pure function of the record stream — analyses
//! of a deterministic trace are themselves deterministic, which the
//! smoke suite relies on when it diffs serial against parallel runs.

use crate::tracecharts::{self, parse_rate};
use epnet::power::RATE_LADDER;
use epnet_telemetry::TraceRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-rate channel-time residency derived from controller decisions.
#[derive(Debug, Clone)]
pub struct RateResidency {
    /// One row per ladder rate, fastest first (presentation order).
    pub rows: Vec<ResidencyRow>,
    /// Distinct channels with at least one controller decision.
    pub channels: usize,
    /// Latest timestamp in the trace, picoseconds.
    pub horizon_ps: u64,
}

/// One rate's share of total channel-time.
#[derive(Debug, Clone)]
pub struct ResidencyRow {
    /// The rate's display form (`"40 Gb/s"`).
    pub rate: String,
    /// Fraction of channel-time spent at this rate, `0.0..=1.0`.
    pub fraction: f64,
}

/// Per-rate residency, via the same derivation `render --trace` uses
/// ([`tracecharts::derive`]) — the two consumers agree to the bit.
pub fn residency(records: &[TraceRecord]) -> RateResidency {
    let d = tracecharts::derive(records);
    RateResidency {
        rows: RATE_LADDER
            .iter()
            .rev()
            .map(|r| ResidencyRow {
                rate: r.to_string(),
                fraction: d.residency_fraction[r.index()],
            })
            .collect(),
        channels: d.channels,
        horizon_ps: d.horizon.as_ps(),
    }
}

/// One channel's controller-decision churn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnRow {
    /// Channel id.
    pub channel: u32,
    /// Controller decisions recorded for the channel (holds included).
    pub decisions: u64,
    /// Applied rate changes (`new_rate != old_rate`).
    pub transitions: u64,
    /// Transitions to a faster rate.
    pub upshifts: u64,
    /// Transitions to a slower rate.
    pub downshifts: u64,
    /// Direction reversals: a transition opposite in direction to the
    /// channel's previous one. High reversal counts are the flap
    /// signature — the controller oscillating around a threshold.
    pub reversals: u64,
}

/// Per-channel transition churn, most-churning channels first
/// (transitions desc, then channel asc for determinism).
pub fn churn(records: &[TraceRecord]) -> Vec<ChurnRow> {
    struct Acc {
        row: ChurnRow,
        last_dir: Option<bool>, // true = up
    }
    let mut per_channel: BTreeMap<u32, Acc> = BTreeMap::new();
    for rec in records {
        let TraceRecord::Controller {
            channel,
            old_rate,
            new_rate,
            ..
        } = rec
        else {
            continue;
        };
        let acc = per_channel.entry(*channel).or_insert_with(|| Acc {
            row: ChurnRow {
                channel: *channel,
                decisions: 0,
                transitions: 0,
                upshifts: 0,
                downshifts: 0,
                reversals: 0,
            },
            last_dir: None,
        });
        acc.row.decisions += 1;
        let (Some(old), Some(new)) = (parse_rate(old_rate), parse_rate(new_rate)) else {
            continue;
        };
        if new == old {
            continue;
        }
        acc.row.transitions += 1;
        let up = new.index() > old.index();
        if up {
            acc.row.upshifts += 1;
        } else {
            acc.row.downshifts += 1;
        }
        if acc.last_dir == Some(!up) {
            acc.row.reversals += 1;
        }
        acc.last_dir = Some(up);
    }
    let mut rows: Vec<ChurnRow> = per_channel.into_values().map(|a| a.row).collect();
    rows.sort_by(|a, b| {
        b.transitions
            .cmp(&a.transitions)
            .then(a.channel.cmp(&b.channel))
    });
    rows
}

/// Distribution of reactivation-window lengths (`start`→`end` pairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactivationStats {
    /// Completed windows (a `start` matched by an `end`).
    pub count: u64,
    /// Unpaired boundaries: `end`s with no open window plus windows
    /// still open at end of trace.
    pub unmatched: u64,
    /// Shortest window, picoseconds (0 when `count == 0`).
    pub min_ps: u64,
    /// Longest window, picoseconds.
    pub max_ps: u64,
    /// Mean window, picoseconds (integer division).
    pub mean_ps: u64,
    /// Median (nearest-rank), picoseconds.
    pub p50_ps: u64,
    /// 90th percentile (nearest-rank), picoseconds.
    pub p90_ps: u64,
    /// 99th percentile (nearest-rank), picoseconds.
    pub p99_ps: u64,
}

/// Pairs reactivation `start`/`end` records per channel and summarizes
/// the latency distribution.
pub fn reactivation_latency(records: &[TraceRecord]) -> ReactivationStats {
    let mut open: BTreeMap<u32, u64> = BTreeMap::new();
    let mut lat: Vec<u64> = Vec::new();
    let mut unmatched = 0u64;
    for rec in records {
        let TraceRecord::Reactivation {
            at_ps,
            channel,
            phase,
            ..
        } = rec
        else {
            continue;
        };
        if phase == "start" {
            if open.insert(*channel, *at_ps).is_some() {
                unmatched += 1;
            }
        } else {
            match open.remove(channel) {
                Some(start) => lat.push(at_ps.saturating_sub(start)),
                None => unmatched += 1,
            }
        }
    }
    unmatched += open.len() as u64;
    lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            let idx = ((lat.len() - 1) as f64 * q).round() as usize;
            lat[idx]
        }
    };
    let sum: u128 = lat.iter().map(|&v| u128::from(v)).sum();
    ReactivationStats {
        count: lat.len() as u64,
        unmatched,
        min_ps: lat.first().copied().unwrap_or(0),
        max_ps: lat.last().copied().unwrap_or(0),
        mean_ps: if lat.is_empty() {
            0
        } else {
            (sum / lat.len() as u128) as u64
        },
        p50_ps: pct(0.50),
        p90_ps: pct(0.90),
        p99_ps: pct(0.99),
    }
}

/// One channel's credit-stall attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditStallRow {
    /// Channel id.
    pub channel: u32,
    /// Completed stalls (`block` matched by `unblock`).
    pub stalls: u64,
    /// Unpaired boundaries on this channel.
    pub unmatched: u64,
    /// Total blocked time, picoseconds.
    pub total_ps: u64,
    /// Longest single stall, picoseconds.
    pub max_ps: u64,
}

/// Pairs credit `block`/`unblock` records per channel, attributing
/// blocked time; worst offenders first (total desc, then channel asc).
pub fn credit_stalls(records: &[TraceRecord]) -> Vec<CreditStallRow> {
    struct Acc {
        row: CreditStallRow,
        open: Option<u64>,
    }
    let mut per_channel: BTreeMap<u32, Acc> = BTreeMap::new();
    for rec in records {
        let TraceRecord::Credit {
            at_ps,
            channel,
            phase,
            ..
        } = rec
        else {
            continue;
        };
        let acc = per_channel.entry(*channel).or_insert_with(|| Acc {
            row: CreditStallRow {
                channel: *channel,
                stalls: 0,
                unmatched: 0,
                total_ps: 0,
                max_ps: 0,
            },
            open: None,
        });
        if phase == "block" {
            if acc.open.replace(*at_ps).is_some() {
                acc.row.unmatched += 1;
            }
        } else {
            match acc.open.take() {
                Some(start) => {
                    let dur = at_ps.saturating_sub(start);
                    acc.row.stalls += 1;
                    acc.row.total_ps = acc.row.total_ps.saturating_add(dur);
                    acc.row.max_ps = acc.row.max_ps.max(dur);
                }
                None => acc.row.unmatched += 1,
            }
        }
    }
    let mut rows: Vec<CreditStallRow> = per_channel
        .into_values()
        .map(|mut a| {
            if a.open.is_some() {
                a.row.unmatched += 1;
            }
            a.row
        })
        .collect();
    rows.sort_by(|a, b| b.total_ps.cmp(&a.total_ps).then(a.channel.cmp(&b.channel)));
    rows
}

/// One controller outcome (`reason`) and its share of all decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeRow {
    /// Decision reason as recorded (`hold`, `upshift`, …).
    pub reason: String,
    /// Decisions with this reason.
    pub count: u64,
    /// Share of all controller decisions, `0.0..=1.0`.
    pub share: f64,
}

/// Controller decisions broken down by `reason`, most common first
/// (count desc, then reason asc).
pub fn outcomes(records: &[TraceRecord]) -> Vec<OutcomeRow> {
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut total = 0u64;
    for rec in records {
        if let TraceRecord::Controller { reason, .. } = rec {
            *counts.entry(reason.as_str()).or_insert(0) += 1;
            total += 1;
        }
    }
    let mut rows: Vec<OutcomeRow> = counts
        .into_iter()
        .map(|(reason, count)| OutcomeRow {
            reason: reason.to_string(),
            count,
            share: if total == 0 {
                0.0
            } else {
                count as f64 / total as f64
            },
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.reason.cmp(&b.reason)));
    rows
}

/// Renders rows as a padded two-dimensional text table: a header, a
/// rule, then each row, columns right-aligned except the first.
fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, (h, w)) in header.iter().zip(&widths).enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        if i == 0 {
            let _ = write!(out, "{h:<w$}");
        } else {
            let _ = write!(out, "{h:>w$}");
        }
    }
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                let _ = write!(out, "{cell:<w$}");
            } else {
                let _ = write!(out, "{cell:>w$}");
            }
        }
        out.push('\n');
    }
    out
}

/// Residency as a printable table.
pub fn format_residency(r: &RateResidency) -> String {
    let mut out = format!(
        "Per-rate residency ({} channels, horizon {} ps)\n",
        r.channels, r.horizon_ps
    );
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| vec![row.rate.clone(), format!("{:.3}", row.fraction * 100.0)])
        .collect();
    out.push_str(&table(&["rate", "% of channel-time"], &rows));
    out
}

/// Churn as a printable table (top `limit` rows; 0 means all).
pub fn format_churn(rows: &[ChurnRow], limit: usize) -> String {
    let shown = if limit == 0 {
        rows.len()
    } else {
        limit.min(rows.len())
    };
    let mut out = format!(
        "Transition churn per channel ({} channels, showing {})\n",
        rows.len(),
        shown
    );
    let body: Vec<Vec<String>> = rows[..shown]
        .iter()
        .map(|r| {
            vec![
                format!("ch{}", r.channel),
                r.decisions.to_string(),
                r.transitions.to_string(),
                r.upshifts.to_string(),
                r.downshifts.to_string(),
                r.reversals.to_string(),
            ]
        })
        .collect();
    out.push_str(&table(
        &[
            "channel",
            "decisions",
            "transitions",
            "up",
            "down",
            "reversals",
        ],
        &body,
    ));
    out
}

/// Reactivation-latency distribution as a printable table.
pub fn format_reactivation(s: &ReactivationStats) -> String {
    let mut out = format!(
        "Reactivation latency ({} windows, {} unmatched)\n",
        s.count, s.unmatched
    );
    let body = vec![vec![
        "ps".to_string(),
        s.min_ps.to_string(),
        s.p50_ps.to_string(),
        s.p90_ps.to_string(),
        s.p99_ps.to_string(),
        s.max_ps.to_string(),
        s.mean_ps.to_string(),
    ]];
    out.push_str(&table(
        &["unit", "min", "p50", "p90", "p99", "max", "mean"],
        &body,
    ));
    out
}

/// Credit-stall attribution as a printable table (top `limit` rows;
/// 0 means all).
pub fn format_credit(rows: &[CreditStallRow], limit: usize) -> String {
    let shown = if limit == 0 {
        rows.len()
    } else {
        limit.min(rows.len())
    };
    let mut out = format!(
        "Credit-stall attribution ({} channels, showing {})\n",
        rows.len(),
        shown
    );
    let body: Vec<Vec<String>> = rows[..shown]
        .iter()
        .map(|r| {
            vec![
                format!("ch{}", r.channel),
                r.stalls.to_string(),
                r.total_ps.to_string(),
                r.max_ps.to_string(),
                r.unmatched.to_string(),
            ]
        })
        .collect();
    out.push_str(&table(
        &["channel", "stalls", "total_ps", "max_ps", "unmatched"],
        &body,
    ));
    out
}

/// Controller outcome breakdown as a printable table.
pub fn format_outcomes(rows: &[OutcomeRow]) -> String {
    let total: u64 = rows.iter().map(|r| r.count).sum();
    let mut out = format!("Controller outcomes ({total} decisions)\n");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.reason.clone(),
                r.count.to_string(),
                format!("{:.3}", r.share * 100.0),
            ]
        })
        .collect();
    out.push_str(&table(&["reason", "count", "share %"], &body));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(at_ps: u64, channel: u32, old: &str, new: &str, reason: &str) -> TraceRecord {
        TraceRecord::Controller {
            at_ps,
            channel,
            utilization: 0.5,
            old_rate: old.to_string(),
            new_rate: new.to_string(),
            reason: reason.to_string(),
        }
    }

    fn react(at_ps: u64, channel: u32, phase: &str) -> TraceRecord {
        TraceRecord::Reactivation {
            at_ps,
            channel,
            phase: phase.to_string(),
            rate: "20 Gb/s".to_string(),
            until_ps: None,
        }
    }

    fn credit(at_ps: u64, channel: u32, phase: &str) -> TraceRecord {
        TraceRecord::Credit {
            at_ps,
            channel,
            phase: phase.to_string(),
            needed: 1024,
            credits: 0,
        }
    }

    #[test]
    fn residency_matches_tracecharts_derive_exactly() {
        let records = vec![
            decision(1_000, 0, "40 Gb/s", "40 Gb/s", "hold"),
            decision(25_000, 0, "40 Gb/s", "20 Gb/s", "downshift"),
            decision(100_000, 0, "20 Gb/s", "20 Gb/s", "hold"),
        ];
        let r = residency(&records);
        let d = tracecharts::derive(&records);
        assert_eq!(r.channels, d.channels);
        assert_eq!(r.horizon_ps, d.horizon.as_ps());
        // Same bits, not merely close: both sides call derive().
        for (row, rate) in r.rows.iter().zip(RATE_LADDER.iter().rev()) {
            assert_eq!(row.rate, rate.to_string());
            assert_eq!(
                row.fraction.to_bits(),
                d.residency_fraction[rate.index()].to_bits()
            );
        }
    }

    #[test]
    fn churn_counts_directions_and_reversals() {
        // ch0 flaps: up, down, up — two reversals. ch1 only holds.
        let records = vec![
            decision(1, 0, "10 Gb/s", "20 Gb/s", "upshift"),
            decision(2, 0, "20 Gb/s", "10 Gb/s", "downshift"),
            decision(3, 0, "10 Gb/s", "20 Gb/s", "upshift"),
            decision(4, 1, "10 Gb/s", "10 Gb/s", "hold"),
        ];
        let rows = churn(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            ChurnRow {
                channel: 0,
                decisions: 3,
                transitions: 3,
                upshifts: 2,
                downshifts: 1,
                reversals: 2,
            }
        );
        assert_eq!(rows[1].transitions, 0);
        let text = format_churn(&rows, 1);
        assert!(text.contains("showing 1"));
        assert!(text.contains("ch0"));
        assert!(!text.contains("ch1"));
    }

    #[test]
    fn reactivation_pairs_per_channel_and_summarizes() {
        // ch0: 100 ps and 300 ps windows; ch1: interleaved 50 ps
        // window; one trailing unmatched start, one orphan end.
        let records = vec![
            react(1_000, 0, "start"),
            react(1_020, 1, "start"),
            react(1_070, 1, "end"),
            react(1_100, 0, "end"),
            react(2_000, 0, "start"),
            react(2_300, 0, "end"),
            react(3_000, 2, "end"),
            react(4_000, 3, "start"),
        ];
        let s = reactivation_latency(&records);
        assert_eq!(s.count, 3);
        assert_eq!(s.unmatched, 2, "orphan end + trailing start");
        assert_eq!(s.min_ps, 50);
        assert_eq!(s.max_ps, 300);
        assert_eq!(s.p50_ps, 100);
        assert_eq!(s.mean_ps, 150);
        let text = format_reactivation(&s);
        assert!(text.contains("3 windows"));
    }

    #[test]
    fn credit_attribution_ranks_by_total_blocked_time() {
        let records = vec![
            credit(100, 5, "block"),
            credit(150, 5, "unblock"),
            credit(200, 2, "block"),
            credit(500, 2, "unblock"),
            credit(600, 5, "block"),
            credit(610, 5, "unblock"),
            credit(700, 9, "unblock"), // orphan
        ];
        let rows = credit_stalls(&records);
        assert_eq!(rows[0].channel, 2, "ch2 blocked longest in total");
        assert_eq!(rows[0].total_ps, 300);
        let ch5 = rows.iter().find(|r| r.channel == 5).unwrap();
        assert_eq!(ch5.stalls, 2);
        assert_eq!(ch5.total_ps, 60);
        assert_eq!(ch5.max_ps, 50);
        let ch9 = rows.iter().find(|r| r.channel == 9).unwrap();
        assert_eq!(ch9.unmatched, 1);
    }

    #[test]
    fn outcome_breakdown_orders_by_count() {
        let records = vec![
            decision(1, 0, "10 Gb/s", "10 Gb/s", "hold"),
            decision(2, 1, "10 Gb/s", "10 Gb/s", "hold"),
            decision(3, 0, "10 Gb/s", "20 Gb/s", "upshift"),
        ];
        let rows = outcomes(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].reason, "hold");
        assert_eq!(rows[0].count, 2);
        assert!((rows[0].share - 2.0 / 3.0).abs() < 1e-12);
        let text = format_outcomes(&rows);
        assert!(text.contains("3 decisions"));
        assert!(text.contains("upshift"));
    }

    #[test]
    fn tables_render_with_aligned_headers() {
        let t = table(
            &["channel", "n"],
            &[vec!["ch0".to_string(), "12".to_string()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3, "header, rule, one row");
        assert!(lines[0].starts_with("channel"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }
}
