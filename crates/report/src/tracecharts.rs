//! Charts derived from a structured trace file (`EPNET_TRACE` JSONL).
//!
//! The trace layer records every per-epoch controller decision and
//! every link reactivation; from those alone, this module reconstructs
//! per-channel rate timelines and the aggregate per-rate residency —
//! the same quantities `SimReport` carries, but recomputed *from the
//! trace*, so a rendered chart doubles as an end-to-end check that the
//! trace captured what the simulator did.

use crate::charts::{self, Series};
use epnet::power::{LinkRate, RATE_LADDER};
use epnet::sim::{SimTime, TimelineEvent};
use epnet_telemetry::TraceRecord;

/// Parses a rate's `Display` form (`"2.5 Gb/s"`, … `"40 Gb/s"`) as
/// written into trace records.
pub fn parse_rate(s: &str) -> Option<LinkRate> {
    RATE_LADDER.into_iter().find(|r| r.to_string() == s)
}

/// Rate timelines and residency reconstructed from trace records.
#[derive(Debug, Clone)]
pub struct TraceDerived {
    /// Per-channel rate-change events, timeline order.
    pub timeline: Vec<TimelineEvent>,
    /// Fraction of channel-time at each ladder rate, slowest first.
    pub residency_fraction: [f64; LinkRate::COUNT],
    /// Distinct channels seen in controller events.
    pub channels: usize,
    /// Latest timestamp in the trace.
    pub horizon: SimTime,
}

/// Derives timelines and residency from controller-decision records.
///
/// Each channel's rate is taken as its first decision's `old_rate`
/// from time zero, then follows every applied decision's `new_rate`.
/// Reactivation ramp time is credited to the target rate — matching
/// how the engine accounts residency.
pub fn derive(records: &[TraceRecord]) -> TraceDerived {
    #[derive(Clone)]
    struct ChannelTrack {
        rate: LinkRate,
        changes: Vec<(u64, LinkRate)>,
    }
    let mut horizon_ps = 0u64;
    let mut per_channel: Vec<Option<ChannelTrack>> = Vec::new();
    for rec in records {
        horizon_ps = horizon_ps.max(rec.at_ps());
        let TraceRecord::Controller {
            at_ps,
            channel,
            old_rate,
            new_rate,
            ..
        } = rec
        else {
            continue;
        };
        let (Some(old), Some(new)) = (parse_rate(old_rate), parse_rate(new_rate)) else {
            continue;
        };
        let ch = *channel as usize;
        if per_channel.len() <= ch {
            per_channel.resize(ch + 1, None);
        }
        let entry = per_channel[ch].get_or_insert_with(|| ChannelTrack {
            rate: old,
            changes: vec![(0, old)],
        });
        if new != entry.rate {
            entry.rate = new;
            entry.changes.push((*at_ps, new));
        }
    }

    let mut timeline = Vec::new();
    let mut at_rate_ps = [0u128; LinkRate::COUNT];
    let mut channels = 0usize;
    for (ch, entry) in per_channel.iter().enumerate() {
        let Some(ChannelTrack { changes, .. }) = entry else {
            continue;
        };
        channels += 1;
        for (i, &(at, rate)) in changes.iter().enumerate() {
            timeline.push(TimelineEvent {
                at: SimTime::from_ps(at),
                channel: ch as u32,
                rate: Some(rate),
            });
            let end = changes.get(i + 1).map_or(horizon_ps, |&(next, _)| next);
            at_rate_ps[rate.index()] += u128::from(end.saturating_sub(at));
        }
    }
    let total: u128 = at_rate_ps.iter().sum();
    let mut residency_fraction = [0.0; LinkRate::COUNT];
    if total > 0 {
        for (f, ps) in residency_fraction.iter_mut().zip(at_rate_ps) {
            *f = ps as f64 / total as f64;
        }
    }
    TraceDerived {
        timeline,
        residency_fraction,
        channels,
        horizon: SimTime::from_ps(horizon_ps),
    }
}

/// Per-rate residency bar chart (the trace-derived Figure 7 analogue).
pub fn render_trace_residency(d: &TraceDerived) -> String {
    let categories: Vec<String> = RATE_LADDER.iter().rev().map(|r| r.to_string()).collect();
    let values: Vec<f64> = RATE_LADDER
        .iter()
        .rev()
        .map(|r| d.residency_fraction[r.index()] * 100.0)
        .collect();
    charts::grouped_bars(
        &format!(
            "Trace-derived per-rate residency ({} channels, {})",
            d.channels, d.horizon
        ),
        "% of channel-time",
        &categories,
        &[Series {
            name: "traced".into(),
            values,
        }],
        100.0,
    )
}

/// Controller-decision timeline for the first `max_channels` channels,
/// drawn with the same Gantt strips as the report timeline chart.
///
/// # Panics
///
/// Panics if the trace contains no controller decisions for those
/// channels (nothing to draw).
pub fn render_controller_timeline(d: &TraceDerived, max_channels: u32) -> String {
    let events: Vec<TimelineEvent> = d
        .timeline
        .iter()
        .copied()
        .filter(|e| e.channel < max_channels)
        .collect();
    assert!(
        !events.is_empty(),
        "trace has no controller decisions in channels 0..{max_channels}"
    );
    crate::render_timeline(&events, d.horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(at_ps: u64, channel: u32, old: &str, new: &str, reason: &str) -> TraceRecord {
        TraceRecord::Controller {
            at_ps,
            channel,
            utilization: 0.3,
            old_rate: old.to_string(),
            new_rate: new.to_string(),
            reason: reason.to_string(),
        }
    }

    #[test]
    fn rates_round_trip_through_display() {
        for r in RATE_LADDER {
            assert_eq!(parse_rate(&r.to_string()), Some(r));
        }
        assert_eq!(parse_rate("11 Gb/s"), None);
    }

    #[test]
    fn derive_reconstructs_residency_and_timeline() {
        // Channel 0: R40 for 25% of the horizon, then R20.
        // Channel 1: R10 throughout (holds only).
        let records = vec![
            decision(1_000, 0, "40 Gb/s", "40 Gb/s", "hold"),
            decision(1_000, 1, "10 Gb/s", "10 Gb/s", "hold"),
            decision(25_000, 0, "40 Gb/s", "20 Gb/s", "downshift"),
            decision(100_000, 0, "20 Gb/s", "20 Gb/s", "hold"),
            decision(100_000, 1, "10 Gb/s", "10 Gb/s", "hold"),
        ];
        let d = derive(&records);
        assert_eq!(d.channels, 2);
        assert_eq!(d.horizon, SimTime::from_ps(100_000));
        // ch0: 25k ps at R40 + 75k at R20; ch1: 100k at R10.
        assert!((d.residency_fraction[LinkRate::R40.index()] - 0.125).abs() < 1e-9);
        assert!((d.residency_fraction[LinkRate::R20.index()] - 0.375).abs() < 1e-9);
        assert!((d.residency_fraction[LinkRate::R10.index()] - 0.5).abs() < 1e-9);
        assert_eq!(d.timeline.len(), 3, "one start per channel + one change");

        let svg = render_trace_residency(&d);
        assert!(svg.contains("per-rate residency"));
        let svg = render_controller_timeline(&d, 8);
        assert!(svg.contains("ch0") && svg.contains("ch1"));
    }

    #[test]
    #[should_panic(expected = "no controller decisions")]
    fn empty_selection_rejected() {
        let d = derive(&[]);
        let _ = render_controller_timeline(&d, 4);
    }
}
