//! Generator determinism across `EPNET_THREADS` widths.
//!
//! The hybrid flow/packet engine injects whole messages as fluid flows,
//! so any width-dependent drift in a generator's message stream would
//! silently change which flows exist — not just their packet timing.
//! The generators must therefore be pure functions of their builder
//! parameters: the worker-pool width (`EPNET_THREADS`, read by the
//! `epnet` sweep runner) and every other runtime switch must leave the
//! stream byte-identical.
//!
//! One `#[test]` covers every width: the environment is process-global,
//! and this file is its own integration-test binary, so no other test
//! can race the variable.

use epnet_sim::{SimTime, TrafficSource};
use epnet_workloads::{ServiceTrace, ServiceTraceConfig, UniformRandom};

/// Drains a source to its horizon, formatting each message compactly.
fn stream(mut source: impl TrafficSource) -> Vec<String> {
    let mut out = Vec::new();
    while let Some(m) = source.next_message() {
        out.push(format!(
            "{} {}->{} {}B",
            m.at.as_ps(),
            m.src.index(),
            m.dst.index(),
            m.bytes
        ));
    }
    out
}

/// The three generator shapes the scale sweep injects: bulk flows
/// (the hybrid model's absorption-heavy recipe), search-like bursts,
/// and advert-like bursts.
fn streams() -> [Vec<String>; 3] {
    let horizon = SimTime::from_us(500);
    // Flow-granularity messages: above the hybrid engine's 64 KiB
    // absorption threshold, small enough that every host emits several
    // within the horizon.
    let bulk = UniformRandom::builder(64)
        .message_bytes(128 * 1024)
        .offered_load(0.25)
        .horizon(horizon)
        .build();
    let search = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
        .horizon(horizon)
        .build();
    let advert = ServiceTrace::builder(64, ServiceTraceConfig::advert_like())
        .horizon(horizon)
        .build();
    [stream(bulk), stream(search), stream(advert)]
}

#[test]
fn message_streams_are_identical_at_every_thread_width() {
    let prior = std::env::var("EPNET_THREADS").ok();
    std::env::remove_var("EPNET_THREADS");
    let baseline = streams();
    assert!(
        baseline.iter().all(|s| s.len() > 50),
        "horizon too short to exercise the generators"
    );
    for width in ["1", "2", "4", "8"] {
        std::env::set_var("EPNET_THREADS", width);
        assert_eq!(
            streams(),
            baseline,
            "EPNET_THREADS={width} changed a generator stream"
        );
    }
    match prior {
        Some(v) => std::env::set_var("EPNET_THREADS", v),
        None => std::env::remove_var("EPNET_THREADS"),
    }
}
