//! Trace record / replay in a newline-delimited JSON format.
//!
//! Recording a generator's output lets an experiment be re-run bit-for-bit
//! (or inspected offline) without re-seeding the generator — the same
//! role the paper's captured production traces played.

use epnet_sim::{Message, ReplaySource, TrafficSource};
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from trace I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line failed to parse, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        source: serde_json::Error,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace i/o failed: {e}"),
            Self::Parse { line, source } => {
                write!(f, "trace parse failed at line {line}: {source}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Drains `source` up to `limit` messages and writes them as JSON lines.
///
/// Returns the number of messages written.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on filesystem failure.
pub fn record_trace<S: TrafficSource>(
    path: &Path,
    mut source: S,
    limit: usize,
) -> Result<usize, TraceError> {
    let mut out = BufWriter::new(File::create(path)?);
    let mut n = 0;
    while n < limit {
        let Some(m) = source.next_message() else {
            break;
        };
        serde_json::to_writer(&mut out, &m).map_err(|e| TraceError::Io(e.into()))?;
        out.write_all(b"\n")?;
        n += 1;
    }
    out.flush()?;
    Ok(n)
}

/// Writes an in-memory message list as JSON lines.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on filesystem failure.
pub fn write_trace(path: &Path, messages: &[Message]) -> Result<(), TraceError> {
    let mut out = BufWriter::new(File::create(path)?);
    for m in messages {
        serde_json::to_writer(&mut out, m).map_err(|e| TraceError::Io(e.into()))?;
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(())
}

/// Reads a JSON-lines trace back into a [`ReplaySource`].
///
/// # Errors
///
/// Returns [`TraceError::Io`] on filesystem failure and
/// [`TraceError::Parse`] on malformed lines.
pub fn read_trace(path: &Path) -> Result<ReplaySource, TraceError> {
    let input = BufReader::new(File::open(path)?);
    let mut messages = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let m: Message = serde_json::from_str(&line).map_err(|source| TraceError::Parse {
            line: i + 1,
            source,
        })?;
        messages.push(m);
    }
    Ok(ReplaySource::new(messages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformRandom;
    use epnet_sim::SimTime;
    use epnet_topology::HostId;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("epnet-trace-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_messages() {
        let path = tmp("roundtrip.jsonl");
        let msgs = vec![
            Message {
                at: SimTime::from_us(3),
                src: HostId::new(1),
                dst: HostId::new(2),
                bytes: 1000,
            },
            Message {
                at: SimTime::from_us(7),
                src: HostId::new(2),
                dst: HostId::new(0),
                bytes: 2000,
            },
        ];
        write_trace(&path, &msgs).unwrap();
        let mut replay = read_trace(&path).unwrap();
        let got: Vec<Message> = std::iter::from_fn(|| replay.next_message()).collect();
        assert_eq!(got, msgs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_caps_at_limit() {
        let path = tmp("capped.jsonl");
        let w = UniformRandom::builder(8).seed(1).build();
        let n = record_trace(&path, w, 100).unwrap();
        assert_eq!(n, 100);
        let mut replay = read_trace(&path).unwrap();
        let got: Vec<Message> = std::iter::from_fn(|| replay.next_message()).collect();
        assert_eq!(got.len(), 100);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_line_reports_position() {
        let path = tmp("bad.jsonl");
        std::fs::write(&path, "{\"not\": \"a message\"}\n").unwrap();
        match read_trace(&path) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_trace(Path::new("/definitely/not/here.jsonl")) {
            Err(TraceError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let path = tmp("blank.jsonl");
        let m = Message {
            at: SimTime::from_us(1),
            src: HostId::new(0),
            dst: HostId::new(1),
            bytes: 10,
        };
        let json = serde_json::to_string(&m).unwrap();
        std::fs::write(&path, format!("\n{json}\n\n")).unwrap();
        let mut replay = read_trace(&path).unwrap();
        assert_eq!(replay.next_message(), Some(m));
        assert_eq!(replay.next_message(), None);
        std::fs::remove_file(&path).ok();
    }
}
