//! Workload generators for energy-proportional datacenter network
//! studies (Abts et&nbsp;al., ISCA 2010, §4.1).
//!
//! The paper evaluates with three workloads:
//!
//! * **Uniform** — "a uniform random workload, where each host repeatedly
//!   sends a 512k message to a new random destination" →
//!   [`UniformRandom`].
//! * **Advert** and **Search** — traces from production Google
//!   advertising and web-search services, scaled up, with placement
//!   randomized across the cluster. The traces themselves are not
//!   public, so this crate provides [`ServiceTrace`], a synthetic
//!   generator calibrated to the published trace *properties*: low
//!   average utilization (5% Advert, 6% Search), burstiness "at a
//!   variety of timescales", and the distributed-file-system
//!   read/write asymmetry that drives §3.3.1's independent channel
//!   tuning (see DESIGN.md for the substitution rationale).
//!
//! All generators are deterministic given a seed, produce messages
//! lazily in time order, and implement
//! [`TrafficSource`](epnet_sim::TrafficSource).
//!
//! # Example
//!
//! ```
//! use epnet_sim::TrafficSource;
//! use epnet_workloads::UniformRandom;
//!
//! let mut workload = UniformRandom::builder(64)
//!     .offered_load(0.25)
//!     .seed(7)
//!     .build();
//! let first = workload.next_message().expect("generator is infinite");
//! assert_eq!(first.bytes, 512 * 1024);
//! assert_ne!(first.src, first.dst);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod analysis;
mod patterns;
mod scheduler;
mod service;
mod trace_io;
mod uniform;

pub use analysis::{TraceAnalysis, TraceAnalyzer};
pub use patterns::{Incast, Permutation};
pub use service::{ServiceTrace, ServiceTraceBuilder, ServiceTraceConfig};
pub use trace_io::{read_trace, record_trace, write_trace, TraceError};
pub use uniform::{UniformRandom, UniformRandomBuilder};

/// Full-speed line rate of a host channel, Gb/s (the paper's 40 Gb/s).
pub const LINE_RATE_GBPS: f64 = 40.0;

/// Converts a fraction of host line rate into bytes per second.
pub(crate) fn load_to_bytes_per_sec(load: f64) -> f64 {
    load * LINE_RATE_GBPS * 1e9 / 8.0
}
