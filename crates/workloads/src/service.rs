//! Synthetic datacenter-service traces standing in for the paper's
//! production `Advert` and `Search` workloads (§4.1).
//!
//! The generator reproduces the three published properties the results
//! depend on:
//!
//! 1. **Low average utilization** — 5% (Advert) / 6% (Search); the
//!    builder calibrates operation rates analytically to a target.
//! 2. **Burstiness at a variety of timescales** — client hosts alternate
//!    exponential ON periods with heavy-tailed (bounded-Pareto) OFF
//!    periods, and operations inside an ON period arrive in clumps.
//! 3. **Channel asymmetry from distributed-file-system traffic** —
//!    "depending on replication factor and the ratio of reads to writes,
//!    a file server ... may respond to more reads (i.e., inject data
//!    into the network) than writes" (§4.2.1). A configurable subset of
//!    hosts act as storage servers; reads pull large responses out of
//!    them, writes push chunks in (with replication copies between
//!    servers).
//!
//! Placement is randomized across the cluster, as the paper did to
//! "capture emerging trends such as cluster virtualization".

use crate::load_to_bytes_per_sec;
use crate::scheduler::{bounded_pareto, bounded_pareto_mean, exp_ps, FutureList, Item};
use epnet_sim::{Message, SimTime, TrafficSource};
use epnet_topology::HostId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tunable description of a service workload. Obtain presets from
/// [`ServiceTraceConfig::search_like`] / [`ServiceTraceConfig::advert_like`]
/// and adjust via [`ServiceTrace::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceTraceConfig {
    /// Target average injection load as a fraction of host line rate.
    pub target_utilization: f64,
    /// Fraction of hosts acting as storage servers.
    pub storage_fraction: f64,
    /// Fraction of storage operations that are reads.
    pub read_fraction: f64,
    /// Write replication factor (extra server→server copies per write).
    pub write_replicas: u32,
    /// Request / ack size in bytes.
    pub request_bytes: u64,
    /// Data chunk (response or write payload) bounded-Pareto shape.
    pub chunk_alpha: f64,
    /// Smallest data chunk in bytes.
    pub chunk_min_bytes: u64,
    /// Largest data chunk in bytes.
    pub chunk_max_bytes: u64,
    /// Probability an operation also triggers a client↔client RPC
    /// (scatter/gather fan-out).
    pub rpc_probability: f64,
    /// RPC size in bytes.
    pub rpc_bytes: u64,
    /// Mean ON-period duration.
    pub on_mean: SimTime,
    /// OFF-period bounded-Pareto shape (heavier tail = burstier at long
    /// timescales).
    pub off_alpha: f64,
    /// Shortest OFF period.
    pub off_min: SimTime,
    /// Longest OFF period.
    pub off_max: SimTime,
    /// Server think time before a response leaves the storage server.
    pub service_delay: SimTime,
    /// Cluster-wide load-spike multiplier (load balancer shifts, query
    /// spikes). During a peak, operation rates rise by this factor;
    /// off-peak rates are scaled down so the long-run average still hits
    /// the target. Set to 1.0 to disable.
    pub peak_multiplier: f64,
    /// Long-run fraction of time spent in the peak state.
    pub peak_fraction: f64,
    /// Mean duration of one peak episode.
    pub peak_mean: SimTime,
}

impl ServiceTraceConfig {
    /// A web-search-like profile: read-dominated storage traffic with
    /// large responses and heavy scatter/gather RPC — averages ~6%
    /// utilization like the paper's `Search` trace.
    pub fn search_like() -> Self {
        Self {
            target_utilization: 0.06,
            storage_fraction: 0.125,
            read_fraction: 0.85,
            write_replicas: 1,
            request_bytes: 8 * 1024,
            chunk_alpha: 1.3,
            chunk_min_bytes: 32 * 1024,
            chunk_max_bytes: 1024 * 1024,
            rpc_probability: 0.5,
            rpc_bytes: 4 * 1024,
            on_mean: SimTime::from_us(200),
            off_alpha: 1.2,
            off_min: SimTime::from_us(100),
            off_max: SimTime::from_ms(20),
            service_delay: SimTime::from_us(20),
            peak_multiplier: 2.5,
            peak_fraction: 0.25,
            peak_mean: SimTime::from_ms(1),
        }
    }

    /// An advertising-service-like profile: more writes (log and model
    /// updates), smaller chunks, sparser RPC — averages ~5% utilization
    /// like the paper's `Advert` trace.
    pub fn advert_like() -> Self {
        Self {
            target_utilization: 0.05,
            storage_fraction: 0.125,
            read_fraction: 0.55,
            write_replicas: 2,
            request_bytes: 4 * 1024,
            chunk_alpha: 1.4,
            chunk_min_bytes: 16 * 1024,
            chunk_max_bytes: 512 * 1024,
            rpc_probability: 0.3,
            rpc_bytes: 2 * 1024,
            on_mean: SimTime::from_us(300),
            off_alpha: 1.15,
            off_min: SimTime::from_us(150),
            off_max: SimTime::from_ms(30),
            service_delay: SimTime::from_us(25),
            peak_multiplier: 3.0,
            peak_fraction: 0.2,
            peak_mean: SimTime::from_ms(1),
        }
    }

    /// Expected network bytes injected per storage operation (all
    /// messages it fans out to), used for load calibration.
    fn bytes_per_op(&self) -> f64 {
        let chunk_mean = bounded_pareto_mean(
            self.chunk_alpha,
            self.chunk_min_bytes as f64,
            self.chunk_max_bytes as f64,
        );
        let read = self.request_bytes as f64 + chunk_mean;
        let write = chunk_mean * (1.0 + f64::from(self.write_replicas)) + self.request_bytes as f64;
        self.read_fraction * read
            + (1.0 - self.read_fraction) * write
            + self.rpc_probability * self.rpc_bytes as f64
    }

    /// Duty cycle of the ON/OFF process.
    fn duty_cycle(&self) -> f64 {
        let off_mean = bounded_pareto_mean(
            self.off_alpha,
            self.off_min.as_ps() as f64,
            self.off_max.as_ps() as f64,
        );
        self.on_mean.as_ps() as f64 / (self.on_mean.as_ps() as f64 + off_mean)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientPhase {
    StartCycle,
    Op,
}

#[derive(Debug, Clone, Copy)]
struct Client {
    host: HostId,
    phase: ClientPhase,
    on_until: SimTime,
}

/// The synthetic service-trace generator. Build with
/// [`ServiceTrace::builder`].
#[derive(Debug)]
pub struct ServiceTrace {
    config: ServiceTraceConfig,
    clients: Vec<Client>,
    servers: Vec<HostId>,
    think_mean_ps: f64,
    horizon: Option<SimTime>,
    rng: SmallRng,
    future: FutureList,
    /// Cluster-wide load-spike state (true while in a peak).
    peak: bool,
    /// When the current peak/off-peak episode ends.
    peak_until: SimTime,
}

impl ServiceTrace {
    /// Starts building a service trace over `hosts` hosts with the given
    /// profile.
    pub fn builder(hosts: u32, config: ServiceTraceConfig) -> ServiceTraceBuilder {
        ServiceTraceBuilder {
            hosts,
            config,
            seed: 0x5EA_2C4,
            horizon: None,
            start: SimTime::ZERO,
        }
    }

    /// The storage-server hosts (useful for asymmetry analysis).
    pub fn servers(&self) -> &[HostId] {
        &self.servers
    }

    fn push_emit(&mut self, m: Message) {
        if let Some(h) = self.horizon {
            if m.at > h {
                return;
            }
        }
        self.future.push(m.at, Item::Emit(m));
    }

    fn schedule_wake(&mut self, client_idx: u32, at: SimTime) {
        if let Some(h) = self.horizon {
            if at > h {
                return;
            }
        }
        self.future.push(at, Item::Wake(client_idx));
    }

    fn random_server(&mut self, not: HostId) -> HostId {
        loop {
            let s = self.servers[self.rng.gen_range(0..self.servers.len())];
            if s != not || self.servers.len() == 1 {
                return s;
            }
        }
    }

    fn random_client_host(&mut self, not: HostId) -> HostId {
        loop {
            let c = self.clients[self.rng.gen_range(0..self.clients.len())].host;
            if c != not || self.clients.len() == 1 {
                return c;
            }
        }
    }

    /// Cluster-wide intensity multiplier at `t`, advancing the
    /// peak/off-peak alternation lazily (wakes arrive in time order).
    fn intensity_at(&mut self, t: SimTime) -> f64 {
        let c = &self.config;
        if c.peak_multiplier <= 1.0 {
            return 1.0;
        }
        let off_mean = c.peak_mean.as_ps() as f64 * (1.0 - c.peak_fraction) / c.peak_fraction;
        while t > self.peak_until {
            self.peak = !self.peak;
            let mean = if self.peak {
                c.peak_mean.as_ps() as f64
            } else {
                off_mean
            };
            self.peak_until += SimTime::from_ps(exp_ps(&mut self.rng, mean));
        }
        if self.peak {
            c.peak_multiplier
        } else {
            // Scale the off-peak so the long-run average stays 1.0.
            (1.0 - c.peak_multiplier * c.peak_fraction) / (1.0 - c.peak_fraction)
        }
    }

    fn sample_chunk(&mut self) -> u64 {
        bounded_pareto(
            &mut self.rng,
            self.config.chunk_alpha,
            self.config.chunk_min_bytes as f64,
            self.config.chunk_max_bytes as f64,
        ) as u64
    }

    /// Performs one storage operation for `client` at time `t`,
    /// returning the client's own message and queueing the fan-out.
    fn perform_op(&mut self, client: HostId, t: SimTime) -> Message {
        let server = self.random_server(client);
        let delay = self.config.service_delay;
        let is_read = self.rng.gen_bool(self.config.read_fraction);
        // Optional scatter/gather RPC riding along with the op.
        if self.rng.gen_bool(self.config.rpc_probability) {
            let peer = self.random_client_host(client);
            if peer != client {
                self.push_emit(Message {
                    at: t,
                    src: client,
                    dst: peer,
                    bytes: self.config.rpc_bytes,
                });
            }
        }
        if is_read {
            // Request up, big response back.
            let resp = self.sample_chunk();
            self.push_emit(Message {
                at: t + delay,
                src: server,
                dst: client,
                bytes: resp,
            });
            Message {
                at: t,
                src: client,
                dst: server,
                bytes: self.config.request_bytes,
            }
        } else {
            // Chunk up, ack back, replicas fan out server→server.
            let chunk = self.sample_chunk();
            self.push_emit(Message {
                at: t + delay,
                src: server,
                dst: client,
                bytes: self.config.request_bytes,
            });
            let mut copy_src = server;
            for r in 0..self.config.write_replicas {
                let peer = self.random_server(copy_src);
                if peer == copy_src {
                    break;
                }
                self.push_emit(Message {
                    at: t + delay.scaled(u64::from(r) + 2),
                    src: copy_src,
                    dst: peer,
                    bytes: chunk,
                });
                copy_src = peer;
            }
            Message {
                at: t,
                src: client,
                dst: server,
                bytes: chunk,
            }
        }
    }

    /// Advances a client's state machine; returns a message if this wake
    /// emitted one.
    fn wake(&mut self, idx: u32, t: SimTime) -> Option<Message> {
        let c = self.clients[idx as usize];
        match c.phase {
            ClientPhase::StartCycle => {
                let on =
                    SimTime::from_ps(exp_ps(&mut self.rng, self.config.on_mean.as_ps() as f64));
                self.clients[idx as usize].on_until = t + on;
                self.clients[idx as usize].phase = ClientPhase::Op;
                let intensity = self.intensity_at(t);
                let think = SimTime::from_ps(exp_ps(&mut self.rng, self.think_mean_ps / intensity));
                self.schedule_wake(idx, t + think);
                None
            }
            ClientPhase::Op => {
                if t <= c.on_until {
                    let intensity = self.intensity_at(t);
                    let think =
                        SimTime::from_ps(exp_ps(&mut self.rng, self.think_mean_ps / intensity));
                    self.schedule_wake(idx, t + think);
                    Some(self.perform_op(c.host, t))
                } else {
                    self.clients[idx as usize].phase = ClientPhase::StartCycle;
                    let off = SimTime::from_ps(bounded_pareto(
                        &mut self.rng,
                        self.config.off_alpha,
                        self.config.off_min.as_ps() as f64,
                        self.config.off_max.as_ps() as f64,
                    ) as u64);
                    self.schedule_wake(idx, t + off);
                    None
                }
            }
        }
    }
}

impl TrafficSource for ServiceTrace {
    fn next_message(&mut self) -> Option<Message> {
        loop {
            let (t, item) = self.future.pop()?;
            match item {
                Item::Emit(m) => return Some(m),
                Item::Wake(idx) => {
                    if let Some(m) = self.wake(idx, t) {
                        return Some(m);
                    }
                }
            }
        }
    }
}

/// Builder for [`ServiceTrace`].
#[derive(Debug, Clone)]
pub struct ServiceTraceBuilder {
    hosts: u32,
    config: ServiceTraceConfig,
    seed: u64,
    horizon: Option<SimTime>,
    start: SimTime,
}

impl ServiceTraceBuilder {
    /// RNG seed — runs are reproducible.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Stop generating after this time (default: infinite).
    pub fn horizon(&mut self, t: SimTime) -> &mut Self {
        self.horizon = Some(t);
        self
    }

    /// First activity appears after this time (default 0).
    pub fn start(&mut self, t: SimTime) -> &mut Self {
        self.start = t;
        self
    }

    /// Overrides the target utilization of the profile.
    pub fn target_utilization(&mut self, u: f64) -> &mut Self {
        self.config.target_utilization = u;
        self
    }

    /// Builds the generator.
    ///
    /// # Panics
    ///
    /// Panics if there are too few hosts to host both clients and at
    /// least one storage server.
    pub fn build(&self) -> ServiceTrace {
        assert!(self.hosts >= 4, "need at least four hosts");
        assert!(
            self.config.peak_multiplier * self.config.peak_fraction < 1.0,
            "peak load must leave room for an off-peak state"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Randomized placement (§4.1): shuffle host ids, take servers.
        let mut ids: Vec<HostId> = (0..self.hosts).map(HostId::new).collect();
        ids.shuffle(&mut rng);
        let n_servers = ((self.hosts as f64 * self.config.storage_fraction) as usize).max(1);
        let servers: Vec<HostId> = ids[..n_servers].to_vec();
        let clients: Vec<Client> = ids[n_servers..]
            .iter()
            .map(|&host| Client {
                host,
                phase: ClientPhase::StartCycle,
                on_until: SimTime::ZERO,
            })
            .collect();

        // Calibrate per-client think time so total injected bytes match
        // the target utilization.
        let total_bytes_per_sec =
            load_to_bytes_per_sec(self.config.target_utilization) * f64::from(self.hosts);
        let ops_per_sec = total_bytes_per_sec / self.config.bytes_per_op();
        let per_client = ops_per_sec / clients.len() as f64;
        let duty = self.config.duty_cycle();
        let think_mean_ps = duty / per_client * 1e12;

        let mut trace = ServiceTrace {
            config: self.config.clone(),
            clients,
            servers,
            think_mean_ps,
            horizon: self.horizon,
            rng,
            future: FutureList::new(),
            peak: false,
            peak_until: SimTime::ZERO,
        };
        // Stagger client start-ups across one mean OFF period so the
        // fleet does not begin in lockstep (but short runs still reach
        // steady state quickly).
        let spread = bounded_pareto_mean(
            trace.config.off_alpha,
            trace.config.off_min.as_ps() as f64,
            trace.config.off_max.as_ps() as f64,
        ) as u64;
        for idx in 0..trace.clients.len() as u32 {
            let jitter = SimTime::from_ps(trace.rng.gen_range(0..spread.max(1)));
            trace.schedule_wake(idx, self.start + jitter);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut t: ServiceTrace, until: SimTime) -> Vec<Message> {
        let mut v = Vec::new();
        while let Some(m) = t.next_message() {
            if m.at > until {
                break;
            }
            v.push(m);
        }
        v
    }

    #[test]
    fn utilization_is_calibrated_search() {
        let horizon = SimTime::from_ms(200);
        let trace = ServiceTrace::builder(128, ServiceTraceConfig::search_like())
            .seed(1)
            .build();
        let msgs = drain(trace, horizon);
        let bytes: u64 = msgs.iter().map(|m| m.bytes).sum();
        let util = bytes as f64 * 8.0 / horizon.as_secs_f64() / (128.0 * 40e9);
        assert!(
            (0.03..0.09).contains(&util),
            "search-like utilization {util:.4} should be near 0.06"
        );
    }

    #[test]
    fn utilization_is_calibrated_advert() {
        let horizon = SimTime::from_ms(200);
        let trace = ServiceTrace::builder(128, ServiceTraceConfig::advert_like())
            .seed(2)
            .build();
        let msgs = drain(trace, horizon);
        let bytes: u64 = msgs.iter().map(|m| m.bytes).sum();
        let util = bytes as f64 * 8.0 / horizon.as_secs_f64() / (128.0 * 40e9);
        assert!(
            (0.025..0.075).contains(&util),
            "advert-like utilization {util:.4} should be near 0.05"
        );
    }

    /// Coefficient of variation of per-bin byte counts.
    fn cov(
        msgs: &[Message],
        horizon: SimTime,
        bin: SimTime,
        filter: impl Fn(&Message) -> bool,
    ) -> f64 {
        let nbins = (horizon.as_ps() / bin.as_ps()) as usize;
        let mut bins = vec![0f64; nbins];
        for m in msgs.iter().filter(|m| filter(m)) {
            let b = (m.at.as_ps() / bin.as_ps()) as usize;
            if b < nbins {
                bins[b] += m.bytes as f64;
            }
        }
        let mean = bins.iter().sum::<f64>() / nbins as f64;
        let var = bins.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / nbins as f64;
        var.sqrt() / mean
    }

    #[test]
    fn traffic_is_bursty_at_short_timescales_per_host() {
        // What a single channel sees (the controller's vantage point):
        // ON/OFF clients make per-host traffic strongly bursty at the
        // 100 µs scale.
        let horizon = SimTime::from_ms(100);
        let trace = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
            .seed(3)
            .build();
        let msgs = drain(trace, horizon);
        let host = msgs[0].src;
        let c = cov(&msgs, horizon, SimTime::from_us(100), |m| m.src == host);
        assert!(
            c > 1.5,
            "per-host coefficient of variation {c:.2} too smooth"
        );
    }

    #[test]
    fn traffic_is_bursty_at_long_timescales_in_aggregate() {
        // Cluster-wide load spikes make even the aggregate bursty at
        // millisecond timescales ("bursty over a wide range of
        // timescales", §3.2).
        let horizon = SimTime::from_ms(200);
        let trace = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
            .seed(5)
            .build();
        let msgs = drain(trace, horizon);
        let c = cov(&msgs, horizon, SimTime::from_ms(2), |_| true);
        assert!(
            c > 0.35,
            "aggregate coefficient of variation {c:.2} too smooth"
        );
    }

    #[test]
    fn storage_servers_inject_more_than_they_receive_when_read_heavy() {
        let horizon = SimTime::from_ms(100);
        let trace = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
            .seed(4)
            .build();
        let servers: std::collections::HashSet<HostId> = trace.servers().iter().copied().collect();
        let msgs = drain(trace, horizon);
        let mut injected = 0u64;
        let mut received = 0u64;
        for m in &msgs {
            if servers.contains(&m.src) {
                injected += m.bytes;
            }
            if servers.contains(&m.dst) {
                received += m.bytes;
            }
        }
        assert!(
            injected as f64 > 1.5 * received as f64,
            "read-heavy servers should inject ≫ receive ({injected} vs {received})"
        );
    }

    #[test]
    fn messages_are_time_ordered_and_seeded() {
        let take = |seed: u64| {
            let trace = ServiceTrace::builder(32, ServiceTraceConfig::advert_like())
                .seed(seed)
                .build();
            drain(trace, SimTime::from_ms(20))
        };
        let a = take(7);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(a, take(7));
        assert_ne!(a, take(8));
        assert!(a.iter().all(|m| m.src != m.dst));
    }

    #[test]
    fn horizon_bounds_generation() {
        let trace = ServiceTrace::builder(32, ServiceTraceConfig::search_like())
            .horizon(SimTime::from_ms(5))
            .build();
        let msgs: Vec<Message> = {
            let mut t = trace;
            std::iter::from_fn(move || t.next_message()).collect()
        };
        assert!(!msgs.is_empty());
        assert!(msgs.iter().all(|m| m.at <= SimTime::from_ms(5)));
    }

    #[test]
    fn placement_is_randomized() {
        let t1 = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
            .seed(1)
            .build();
        let t2 = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
            .seed(2)
            .build();
        assert_ne!(t1.servers(), t2.servers());
        assert_eq!(t1.servers().len(), 8);
    }
}
