//! Workload analysis: offered load, burstiness across timescales, and
//! per-host asymmetry — the three trace properties the paper's results
//! hinge on (§4.1, §4.2.1).

use crate::LINE_RATE_GBPS;
use epnet_sim::{Message, SimTime, TrafficSource};
use epnet_topology::HostId;
use serde::{Deserialize, Serialize};

/// Streaming analyzer: feed it messages (or a whole source), then
/// [`TraceAnalyzer::finish`] to get a [`TraceAnalysis`].
#[derive(Debug)]
pub struct TraceAnalyzer {
    horizon: SimTime,
    timescales: Vec<SimTime>,
    bins: Vec<Vec<u64>>,
    injected: Vec<u64>,
    received: Vec<u64>,
    messages: u64,
    bytes: u64,
}

impl TraceAnalyzer {
    /// Default burstiness timescales: 10 µs (the controller's epoch),
    /// 100 µs, and 1 ms.
    pub fn default_timescales() -> Vec<SimTime> {
        vec![
            SimTime::from_us(10),
            SimTime::from_us(100),
            SimTime::from_ms(1),
        ]
    }

    /// Creates an analyzer for `hosts` hosts over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is zero.
    pub fn new(hosts: u32, horizon: SimTime) -> Self {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        let timescales = Self::default_timescales();
        let bins = timescales
            .iter()
            .map(|t| vec![0u64; (horizon.as_ps() / t.as_ps()).max(1) as usize])
            .collect();
        Self {
            horizon,
            timescales,
            bins,
            injected: vec![0; hosts as usize],
            received: vec![0; hosts as usize],
            messages: 0,
            bytes: 0,
        }
    }

    /// Records one message (those at or past the horizon are ignored).
    pub fn observe(&mut self, m: &Message) {
        if m.at >= self.horizon {
            return;
        }
        self.messages += 1;
        self.bytes += m.bytes;
        self.injected[m.src.index()] += m.bytes;
        self.received[m.dst.index()] += m.bytes;
        for (scale, bins) in self.timescales.iter().zip(&mut self.bins) {
            let idx = (m.at.as_ps() / scale.as_ps()) as usize;
            if idx < bins.len() {
                bins[idx] += m.bytes;
            }
        }
    }

    /// Drains `source` up to the horizon and finishes.
    pub fn analyze<S: TrafficSource>(mut source: S, hosts: u32, horizon: SimTime) -> TraceAnalysis {
        let mut this = Self::new(hosts, horizon);
        while let Some(m) = source.next_message() {
            if m.at >= horizon {
                break;
            }
            this.observe(&m);
        }
        this.finish()
    }

    /// Produces the analysis.
    pub fn finish(self) -> TraceAnalysis {
        let cov = |bins: &[u64]| -> f64 {
            let n = bins.len() as f64;
            let mean = bins.iter().map(|&b| b as f64).sum::<f64>() / n;
            if mean == 0.0 {
                return 0.0;
            }
            let var = bins.iter().map(|&b| (b as f64 - mean).powi(2)).sum::<f64>() / n;
            var.sqrt() / mean
        };
        let burstiness = self
            .timescales
            .iter()
            .zip(&self.bins)
            .map(|(t, b)| (*t, cov(b)))
            .collect();
        let hosts = self.injected.len() as f64;
        let offered =
            self.bytes as f64 * 8.0 / self.horizon.as_secs_f64() / (hosts * LINE_RATE_GBPS * 1e9);
        TraceAnalysis {
            messages: self.messages,
            bytes: self.bytes,
            horizon: self.horizon,
            offered_load_fraction: offered,
            burstiness,
            injected_by_host: self.injected,
            received_by_host: self.received,
        }
    }
}

/// Aggregate statistics of a message stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Messages observed before the horizon.
    pub messages: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Analysis window.
    pub horizon: SimTime,
    /// Average offered load as a fraction of aggregate host line rate.
    pub offered_load_fraction: f64,
    /// Coefficient of variation of per-bin bytes at each timescale —
    /// "bursty at a variety of timescales" shows up as values well
    /// above a Poisson stream's.
    pub burstiness: Vec<(SimTime, f64)>,
    /// Bytes injected per source host.
    pub injected_by_host: Vec<u64>,
    /// Bytes received per destination host.
    pub received_by_host: Vec<u64>,
}

impl TraceAnalysis {
    /// Injection-to-reception ratio of one host: ≫1 for a read-mostly
    /// file server, ≪1 for a sink (§4.2.1's channel-asymmetry driver).
    pub fn asymmetry_ratio(&self, host: HostId) -> f64 {
        let rx = self.received_by_host[host.index()].max(1);
        self.injected_by_host[host.index()] as f64 / rx as f64
    }

    /// The `n` hosts injecting the most bytes, descending.
    pub fn top_talkers(&self, n: usize) -> Vec<(HostId, u64)> {
        let mut v: Vec<(HostId, u64)> = self
            .injected_by_host
            .iter()
            .enumerate()
            .map(|(i, &b)| (HostId::new(i as u32), b))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v.truncate(n);
        v
    }

    /// Fraction of hosts whose injected-vs-received traffic differs by
    /// at least `factor` in either direction — how much of the fleet
    /// would benefit from independent channel control.
    pub fn asymmetric_host_fraction(&self, factor: f64) -> f64 {
        let hosts = self.injected_by_host.len();
        if hosts == 0 {
            return 0.0;
        }
        let skewed = (0..hosts)
            .filter(|&i| {
                let r = self.asymmetry_ratio(HostId::new(i as u32));
                r >= factor || r <= 1.0 / factor
            })
            .count();
        skewed as f64 / hosts as f64
    }

    /// Burstiness at the timescale closest to `t`.
    pub fn burstiness_at(&self, t: SimTime) -> f64 {
        self.burstiness
            .iter()
            .min_by_key(|(scale, _)| scale.as_ps().abs_diff(t.as_ps()))
            .map(|&(_, cov)| cov)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServiceTrace, ServiceTraceConfig, UniformRandom};

    #[test]
    fn offered_load_matches_generator_target() {
        let horizon = SimTime::from_ms(50);
        let w = UniformRandom::builder(64)
            .offered_load(0.25)
            .seed(3)
            .build();
        let a = TraceAnalyzer::analyze(w, 64, horizon);
        assert!(
            (a.offered_load_fraction - 0.25).abs() < 0.05,
            "got {}",
            a.offered_load_fraction
        );
        assert!(a.messages > 0);
        assert_eq!(a.bytes, a.messages * 512 * 1024);
    }

    #[test]
    fn service_trace_shows_storage_asymmetry() {
        let horizon = SimTime::from_ms(60);
        let trace = ServiceTrace::builder(64, ServiceTraceConfig::search_like())
            .seed(7)
            .build();
        let servers: Vec<HostId> = trace.servers().to_vec();
        let a = TraceAnalyzer::analyze(trace, 64, horizon);
        // Read-heavy servers inject more than they receive.
        let mean_server_ratio: f64 =
            servers.iter().map(|&s| a.asymmetry_ratio(s)).sum::<f64>() / servers.len() as f64;
        assert!(mean_server_ratio > 1.5, "ratio {mean_server_ratio}");
        // And a visible slice of the fleet is skewed 2x either way.
        assert!(a.asymmetric_host_fraction(2.0) > 0.1);
        // Storage servers dominate the top talkers.
        let top = a.top_talkers(4);
        let server_set: std::collections::HashSet<HostId> = servers.into_iter().collect();
        let hits = top.iter().filter(|(h, _)| server_set.contains(h)).count();
        assert!(hits >= 2, "top talkers {top:?}");
    }

    #[test]
    fn burstiness_decreases_with_timescale_for_service_traces() {
        let horizon = SimTime::from_ms(80);
        let trace = ServiceTrace::builder(64, ServiceTraceConfig::advert_like())
            .seed(9)
            .build();
        let a = TraceAnalyzer::analyze(trace, 64, horizon);
        let fine = a.burstiness_at(SimTime::from_us(10));
        let coarse = a.burstiness_at(SimTime::from_ms(1));
        assert!(fine > coarse, "fine {fine:.2} vs coarse {coarse:.2}");
        assert!(fine > 1.0, "10 us bins must look bursty, got {fine:.2}");
        assert!(coarse > 0.2, "1 ms bins still bursty, got {coarse:.2}");
    }

    #[test]
    fn horizon_cuts_off_observation() {
        let mut an = TraceAnalyzer::new(4, SimTime::from_us(100));
        let m = |at_us: u64| Message {
            at: SimTime::from_us(at_us),
            src: HostId::new(0),
            dst: HostId::new(1),
            bytes: 100,
        };
        an.observe(&m(50));
        an.observe(&m(150)); // ignored
        let a = an.finish();
        assert_eq!(a.messages, 1);
        assert_eq!(a.bytes, 100);
        assert_eq!(a.injected_by_host[0], 100);
        assert_eq!(a.received_by_host[1], 100);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let _ = TraceAnalyzer::new(4, SimTime::ZERO);
    }
}
