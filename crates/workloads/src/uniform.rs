//! The paper's *Uniform* workload (§4.1): "each host repeatedly sends a
//! 512k message to a new random destination."

use crate::load_to_bytes_per_sec;
use crate::scheduler::{exp_ps, FutureList, Item};
use epnet_sim::{Message, SimTime, TrafficSource};
use epnet_topology::HostId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform random traffic: every host independently emits fixed-size
/// messages to uniformly random destinations, with exponential gaps
/// sized to hit a target offered load.
///
/// Even at a perfectly uniform *average*, this workload is bursty at the
/// 10 µs epoch scale — a 512 KiB message occupies its injection channel
/// for ~100 µs and is followed by a multiple of that in silence — which
/// is exactly why the paper finds that "the charts look very similar for
/// the uniform random workload ... the workload is bursty across the
/// relatively short 10 µs epoch" (§4.2.1).
#[derive(Debug)]
pub struct UniformRandom {
    hosts: u32,
    message_bytes: u64,
    mean_gap_ps: f64,
    horizon: Option<SimTime>,
    rng: SmallRng,
    future: FutureList,
    clock: Vec<SimTime>,
}

impl UniformRandom {
    /// Starts building a uniform workload over `hosts` hosts.
    pub fn builder(hosts: u32) -> UniformRandomBuilder {
        UniformRandomBuilder {
            hosts,
            message_bytes: 512 * 1024,
            offered_load: 0.25,
            seed: 0xEBF1_2010,
            horizon: None,
            start: SimTime::ZERO,
        }
    }

    fn schedule_next(&mut self, host: u32, from: SimTime) {
        let gap = SimTime::from_ps(exp_ps(&mut self.rng, self.mean_gap_ps));
        let at = from + gap;
        if let Some(h) = self.horizon {
            if at > h {
                return;
            }
        }
        self.clock[host as usize] = at;
        self.future.push(at, Item::Wake(host));
    }

    fn emit(&mut self, host: u32) -> Message {
        let at = self.clock[host as usize];
        let dst = loop {
            let d: u32 = self.rng.gen_range(0..self.hosts);
            if d != host {
                break d;
            }
        };
        let m = Message {
            at,
            src: HostId::new(host),
            dst: HostId::new(dst),
            bytes: self.message_bytes,
        };
        self.schedule_next(host, at);
        m
    }
}

impl TrafficSource for UniformRandom {
    fn next_message(&mut self) -> Option<Message> {
        let (_, item) = self.future.pop()?;
        match item {
            Item::Wake(h) => Some(self.emit(h)),
            Item::Emit(m) => Some(m),
        }
    }
}

/// Builder for [`UniformRandom`].
#[derive(Debug, Clone)]
pub struct UniformRandomBuilder {
    hosts: u32,
    message_bytes: u64,
    offered_load: f64,
    seed: u64,
    horizon: Option<SimTime>,
    start: SimTime,
}

impl UniformRandomBuilder {
    /// Message size in bytes (default 512 KiB, the paper's).
    pub fn message_bytes(&mut self, bytes: u64) -> &mut Self {
        self.message_bytes = bytes;
        self
    }

    /// Offered load as a fraction of the 40 Gb/s host line rate
    /// (default 0.25; the paper's Uniform run averages 23% channel
    /// utilization).
    pub fn offered_load(&mut self, load: f64) -> &mut Self {
        self.offered_load = load;
        self
    }

    /// RNG seed — runs are reproducible.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Stop generating after this time (default: infinite).
    pub fn horizon(&mut self, t: SimTime) -> &mut Self {
        self.horizon = Some(t);
        self
    }

    /// First messages appear after this time (default 0).
    pub fn start(&mut self, t: SimTime) -> &mut Self {
        self.start = t;
        self
    }

    /// Builds the generator.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two hosts or the load is outside
    /// `(0, 1]`.
    pub fn build(&self) -> UniformRandom {
        assert!(self.hosts >= 2, "need at least two hosts");
        assert!(
            self.offered_load > 0.0 && self.offered_load <= 1.0,
            "offered load must be in (0, 1]"
        );
        let bytes_per_sec = load_to_bytes_per_sec(self.offered_load);
        let mean_gap_ps = self.message_bytes as f64 / bytes_per_sec * 1e12;
        let mut w = UniformRandom {
            hosts: self.hosts,
            message_bytes: self.message_bytes,
            mean_gap_ps,
            horizon: self.horizon,
            rng: SmallRng::seed_from_u64(self.seed),
            future: FutureList::new(),
            clock: vec![SimTime::ZERO; self.hosts as usize],
        };
        for h in 0..self.hosts {
            w.schedule_next(h, self.start);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_until(w: &mut UniformRandom, t: SimTime) -> Vec<Message> {
        let mut v = Vec::new();
        while let Some(m) = w.next_message() {
            if m.at > t {
                break;
            }
            v.push(m);
        }
        v
    }

    #[test]
    fn messages_are_time_ordered() {
        let mut w = UniformRandom::builder(16).offered_load(0.3).build();
        let msgs = drain_until(&mut w, SimTime::from_ms(2));
        assert!(msgs.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(msgs.len() > 50);
    }

    #[test]
    fn offered_load_is_calibrated() {
        let mut w = UniformRandom::builder(32)
            .offered_load(0.25)
            .seed(3)
            .build();
        let horizon = SimTime::from_ms(20);
        let bytes: u64 = drain_until(&mut w, horizon).iter().map(|m| m.bytes).sum();
        let rate_gbps = bytes as f64 * 8.0 / horizon.as_secs_f64() / 1e9;
        let expected = 0.25 * 40.0 * 32.0;
        assert!(
            (rate_gbps - expected).abs() / expected < 0.1,
            "offered {rate_gbps:.1} Gb/s vs expected {expected:.1}"
        );
    }

    #[test]
    fn destinations_are_uniform_and_never_self() {
        let mut w = UniformRandom::builder(8).offered_load(0.5).seed(11).build();
        let msgs = drain_until(&mut w, SimTime::from_ms(10));
        let mut counts = [0usize; 8];
        for m in &msgs {
            assert_ne!(m.src, m.dst);
            counts[m.dst.index()] += 1;
        }
        let total: usize = counts.iter().sum();
        for &c in &counts {
            let share = c as f64 / total as f64;
            assert!((share - 0.125).abs() < 0.05, "share {share}");
        }
    }

    #[test]
    fn horizon_exhausts_the_source() {
        let mut w = UniformRandom::builder(4)
            .offered_load(0.5)
            .horizon(SimTime::from_us(500))
            .build();
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some(m) = w.next_message() {
            last = m.at;
            n += 1;
        }
        assert!(n > 0);
        assert!(last <= SimTime::from_us(500));
    }

    #[test]
    fn seeds_reproduce_and_differ() {
        let take = |seed: u64| {
            let mut w = UniformRandom::builder(8).seed(seed).build();
            (0..20)
                .map(|_| w.next_message().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(take(5), take(5));
        assert_ne!(take(5), take(6));
    }

    #[test]
    fn start_offsets_first_message() {
        let mut w = UniformRandom::builder(4).start(SimTime::from_ms(1)).build();
        assert!(w.next_message().unwrap().at > SimTime::from_ms(1));
    }

    #[test]
    #[should_panic(expected = "two hosts")]
    fn one_host_is_rejected() {
        UniformRandom::builder(1).build();
    }
}
