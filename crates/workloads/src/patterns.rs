//! Structured traffic patterns: fixed permutations, incast, and
//! hotspots.
//!
//! These are the classic stress patterns of the interconnection-network
//! literature (the paper's §2.1 notes the flattened butterfly needs
//! "adaptive routing to load balance arbitrary traffic patterns" — a
//! fixed permutation is exactly the arbitrary pattern that punishes
//! minimal routing, and incast is the datacenter storage pathology).

use crate::load_to_bytes_per_sec;
use crate::scheduler::exp_ps;
use epnet_sim::{Message, SimTime, TrafficSource};
use epnet_topology::HostId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Traffic following a fixed permutation: host `i` only ever sends to
/// `perm(i)`.
#[derive(Debug)]
pub struct Permutation {
    dest: Vec<HostId>,
    message_bytes: u64,
    gap: SimTime,
    next: Vec<SimTime>,
    horizon: Option<SimTime>,
    cursor: usize,
}

impl Permutation {
    /// A shift permutation: `i → (i + shift) mod hosts`, offered at
    /// `load` of line rate with fixed message cadence.
    ///
    /// # Panics
    ///
    /// Panics unless `hosts ≥ 2`, `0 < load ≤ 1`, and
    /// `shift % hosts != 0`.
    pub fn shift(hosts: u32, shift: u32, message_bytes: u64, load: f64) -> Self {
        assert!(hosts >= 2, "need at least two hosts");
        assert!(shift % hosts != 0, "shift must move every host");
        let dest = (0..hosts)
            .map(|i| HostId::new((i + shift) % hosts))
            .collect();
        Self::from_destinations(dest, message_bytes, load)
    }

    /// A random permutation drawn from `seed` (guaranteed derangement-
    /// free only in the sense that self-sends are repaired).
    ///
    /// # Panics
    ///
    /// Panics unless `hosts ≥ 2` and `0 < load ≤ 1`.
    pub fn random(hosts: u32, seed: u64, message_bytes: u64, load: f64) -> Self {
        assert!(hosts >= 2, "need at least two hosts");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ids: Vec<u32> = (0..hosts).collect();
        ids.shuffle(&mut rng);
        // Repair self-sends by rotating them with a neighbour.
        for i in 0..hosts as usize {
            if ids[i] == i as u32 {
                let j = (i + 1) % hosts as usize;
                ids.swap(i, j);
            }
        }
        let dest = ids.into_iter().map(HostId::new).collect();
        Self::from_destinations(dest, message_bytes, load)
    }

    fn from_destinations(dest: Vec<HostId>, message_bytes: u64, load: f64) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        let gap_ps = message_bytes as f64 / load_to_bytes_per_sec(load) * 1e12;
        let hosts = dest.len();
        Self {
            dest,
            message_bytes,
            gap: SimTime::from_ps(gap_ps.round().max(1.0) as u64),
            next: vec![SimTime::from_us(1); hosts],
            horizon: None,
            cursor: 0,
        }
    }

    /// Stop generating after this time.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// The destination of a host under this permutation.
    pub fn destination(&self, src: HostId) -> HostId {
        self.dest[src.index()]
    }
}

impl TrafficSource for Permutation {
    fn next_message(&mut self) -> Option<Message> {
        // Hosts emit in lockstep at a fixed cadence: walk the host list
        // round-robin, advancing the round when the cursor wraps.
        let hosts = self.dest.len();
        let src = self.cursor;
        let at = self.next[src];
        if let Some(h) = self.horizon {
            if at > h {
                return None;
            }
        }
        self.next[src] = at + self.gap;
        self.cursor = (self.cursor + 1) % hosts;
        Some(Message {
            at,
            src: HostId::new(src as u32),
            dst: self.dest[src],
            bytes: self.message_bytes,
        })
    }
}

/// Synchronized incast: every `period`, all `sources` send `bytes` to
/// the single `sink` at once — the storage-fan-in pathology.
#[derive(Debug)]
pub struct Incast {
    sources: Vec<HostId>,
    sink: HostId,
    bytes: u64,
    period: SimTime,
    jitter_ps: f64,
    rng: SmallRng,
    round_start: SimTime,
    emitted_in_round: usize,
    last_at: SimTime,
    horizon: Option<SimTime>,
}

impl Incast {
    /// Builds an incast of `fan_in` sources (hosts `sink+1 ..`) into
    /// `sink`, repeating every `period` with a little per-source jitter.
    ///
    /// # Panics
    ///
    /// Panics unless `fan_in ≥ 1` and all hosts fit in `hosts`.
    pub fn new(hosts: u32, sink: HostId, fan_in: u32, bytes: u64, period: SimTime) -> Self {
        assert!(fan_in >= 1, "need at least one source");
        assert!(
            u64::from(sink.raw()) + u64::from(fan_in) < u64::from(hosts),
            "fan-in exceeds host count"
        );
        let sources = (1..=fan_in).map(|i| HostId::new(sink.raw() + i)).collect();
        Self {
            sources,
            sink,
            bytes,
            period,
            jitter_ps: period.as_ps() as f64 * 0.01,
            rng: SmallRng::seed_from_u64(0x1CA57 ^ u64::from(sink.raw())),
            round_start: SimTime::from_us(1),
            emitted_in_round: 0,
            last_at: SimTime::ZERO,
            horizon: None,
        }
    }

    /// Stop generating after this time.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }
}

impl TrafficSource for Incast {
    fn next_message(&mut self) -> Option<Message> {
        if self.emitted_in_round == self.sources.len() {
            self.round_start += self.period;
            self.emitted_in_round = 0;
        }
        let jittered =
            self.round_start + SimTime::from_ps(exp_ps(&mut self.rng, self.jitter_ps.max(1.0)));
        // Keep the stream monotone even though jitter is random.
        let at = jittered.max(self.last_at);
        self.last_at = at;
        if let Some(h) = self.horizon {
            if at > h {
                return None;
            }
        }
        let src = self.sources[self.emitted_in_round];
        self.emitted_in_round += 1;
        Some(Message {
            at,
            src,
            dst: self.sink,
            bytes: self.bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_permutation_is_fixed() {
        let mut p = Permutation::shift(8, 3, 4096, 0.5).with_horizon(SimTime::from_ms(1));
        let mut seen = std::collections::HashMap::new();
        while let Some(m) = p.next_message() {
            let prev = seen.insert(m.src, m.dst);
            if let Some(prev) = prev {
                assert_eq!(prev, m.dst, "destination must never change");
            }
            assert_eq!(m.dst.raw(), (m.src.raw() + 3) % 8);
        }
        assert_eq!(seen.len(), 8, "every host sends");
    }

    #[test]
    fn random_permutation_has_no_self_sends_and_is_a_bijection() {
        for seed in 0..20u64 {
            let p = Permutation::random(16, seed, 4096, 0.5);
            let mut seen = std::collections::HashSet::new();
            for i in 0..16u32 {
                let d = p.destination(HostId::new(i));
                assert_ne!(d.raw(), i, "seed {seed}");
                assert!(seen.insert(d), "duplicate destination, seed {seed}");
            }
        }
    }

    #[test]
    fn permutation_load_is_calibrated() {
        let mut p = Permutation::shift(4, 1, 64 * 1024, 0.25).with_horizon(SimTime::from_ms(20));
        let bytes: u64 = std::iter::from_fn(|| p.next_message())
            .map(|m| m.bytes)
            .sum();
        let load = bytes as f64 * 8.0 / 0.02 / (4.0 * 40e9);
        assert!((load - 0.25).abs() < 0.03, "load {load}");
    }

    #[test]
    fn messages_are_time_ordered() {
        let mut p = Permutation::random(8, 1, 4096, 0.3).with_horizon(SimTime::from_ms(2));
        let msgs: Vec<Message> = std::iter::from_fn(|| p.next_message()).collect();
        assert!(msgs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn incast_converges_on_the_sink() {
        let mut inc = Incast::new(64, HostId::new(5), 8, 128 * 1024, SimTime::from_us(500))
            .with_horizon(SimTime::from_ms(3));
        let msgs: Vec<Message> = std::iter::from_fn(|| inc.next_message()).collect();
        assert!(!msgs.is_empty());
        assert!(msgs.iter().all(|m| m.dst == HostId::new(5)));
        assert!(msgs.iter().all(|m| m.src != m.dst));
        // ~6 rounds of 8 sources.
        assert!(msgs.len() >= 40, "got {}", msgs.len());
        assert!(msgs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    #[should_panic(expected = "fan-in")]
    fn incast_bounds_checked() {
        let _ = Incast::new(8, HostId::new(5), 8, 1024, SimTime::from_us(100));
    }
}
