//! Shared machinery: a lazy, time-ordered emission queue and heavy-tail
//! samplers.

use epnet_sim::{Message, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in the generator's future list: either a concrete message
/// ready to emit, or a wake-up for a per-host state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Item {
    /// Advance host `h`'s state machine.
    Wake(u32),
    /// Emit this message.
    Emit(Message),
}

/// Time-ordered queue with FIFO tie-breaking, mirroring the engine's
/// event queue.
#[derive(Debug, Default)]
pub(crate) struct FutureList {
    heap: BinaryHeap<Reverse<(SimTime, u64, ItemKey)>>,
    items: Vec<Item>,
    /// Slots in `items` freed by pops, reused by pushes, so the side
    /// table stays bounded by the peak pending count instead of growing
    /// one slot per item over the whole run. Reuse cannot perturb heap
    /// order: `seq` is unique, so comparison never reaches the key.
    free: Vec<u32>,
    seq: u64,
}

/// Indirection so the heap key stays `Ord` without requiring it of
/// `Item`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ItemKey(u32);

impl FutureList {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, item: Item) {
        let key = match self.free.pop() {
            Some(slot) => {
                self.items[slot as usize] = item;
                ItemKey(slot)
            }
            None => {
                let slot = self.items.len() as u32;
                self.items.push(item);
                ItemKey(slot)
            }
        };
        self.heap.push(Reverse((at, self.seq, key)));
        self.seq += 1;
    }

    pub fn pop(&mut self) -> Option<(SimTime, Item)> {
        let Reverse((at, _, key)) = self.heap.pop()?;
        self.free.push(key.0);
        Some((at, self.items[key.0 as usize]))
    }

    #[allow(dead_code)] // diagnostic surface, exercised in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Samples an exponential inter-arrival with the given mean, in
/// picoseconds (Poisson process).
pub(crate) fn exp_ps(rng: &mut SmallRng, mean_ps: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-u.ln() * mean_ps).round().max(1.0) as u64
}

/// Samples a bounded Pareto with shape `alpha` on `[min, max]`, the
/// heavy-tailed distribution behind "bursty over a wide range of
/// timescales" (§3.2).
pub(crate) fn bounded_pareto(rng: &mut SmallRng, alpha: f64, min: f64, max: f64) -> f64 {
    debug_assert!(alpha > 0.0 && min > 0.0 && max > min);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let la = min.powf(alpha);
    let ha = max.powf(alpha);
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

/// Mean of the bounded Pareto above (used to calibrate offered load).
pub(crate) fn bounded_pareto_mean(alpha: f64, min: f64, max: f64) -> f64 {
    if (alpha - 1.0).abs() < 1e-9 {
        // α = 1: mean = ln(max/min) · min·max/(max−min)
        let l = min;
        let h = max;
        (l * h / (h - l)) * (h / l).ln()
    } else {
        (la(alpha, min, max) * alpha / (alpha - 1.0))
            * (min.powf(1.0 - alpha) - max.powf(1.0 - alpha))
    }
}

fn la(alpha: f64, min: f64, max: f64) -> f64 {
    min.powf(alpha) / (1.0 - (min / max).powf(alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epnet_topology::HostId;
    use rand::SeedableRng;

    #[test]
    fn future_list_orders_by_time_then_fifo() {
        let mut fl = FutureList::new();
        fl.push(SimTime::from_ns(20), Item::Wake(2));
        fl.push(SimTime::from_ns(10), Item::Wake(1));
        fl.push(SimTime::from_ns(10), Item::Wake(3));
        let order: Vec<u32> = std::iter::from_fn(|| fl.pop())
            .map(|(_, i)| match i {
                Item::Wake(h) => h,
                Item::Emit(_) => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 2]);
        assert!(fl.is_empty());
    }

    #[test]
    fn future_list_carries_messages() {
        let mut fl = FutureList::new();
        let m = Message {
            at: SimTime::from_ns(5),
            src: HostId::new(0),
            dst: HostId::new(1),
            bytes: 42,
        };
        fl.push(m.at, Item::Emit(m));
        let (at, item) = fl.pop().unwrap();
        assert_eq!(at, m.at);
        assert_eq!(item, Item::Emit(m));
    }

    #[test]
    fn future_list_slot_table_is_bounded_by_peak_pending() {
        let mut fl = FutureList::new();
        // Steady state of 4 pending across many push/pop cycles: the
        // side table must stop growing at the high-water mark.
        for h in 0..4u32 {
            fl.push(SimTime::from_ns(u64::from(h)), Item::Wake(h));
        }
        for round in 4..10_000u32 {
            fl.push(SimTime::from_ns(u64::from(round)), Item::Wake(round));
            let _ = fl.pop();
        }
        assert!(
            fl.items.len() <= 5,
            "slot table grew to {} for 5 peak pending",
            fl.items.len()
        );
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mean = 1_000_000.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| exp_ps(&mut rng, mean)).sum();
        let got = sum as f64 / n as f64;
        assert!((got - mean).abs() / mean < 0.05, "mean {got}");
    }

    #[test]
    fn bounded_pareto_stays_in_range_and_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (alpha, min, max) = (1.2, 10.0, 100_000.0);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| bounded_pareto(&mut rng, alpha, min, max))
            .collect();
        assert!(samples.iter().all(|&s| (min..=max).contains(&s)));
        // Heavy tail: the max sample dwarfs the median.
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let top = sorted[sorted.len() - 1];
        assert!(top / median > 100.0, "median {median}, top {top}");
    }

    #[test]
    fn bounded_pareto_mean_matches_samples() {
        let mut rng = SmallRng::seed_from_u64(9);
        let (alpha, min, max) = (1.5, 100.0, 10_000.0);
        let n = 200_000;
        let sum: f64 = (0..n)
            .map(|_| bounded_pareto(&mut rng, alpha, min, max))
            .sum();
        let empirical = sum / n as f64;
        let analytic = bounded_pareto_mean(alpha, min, max);
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical {empirical}, analytic {analytic}"
        );
    }
}
