//! Traced-run smoke check: runs the canonical engine-benchmark scenario
//! with every trace category enabled, then validates the emitted JSONL
//! against the documented schema (DESIGN.md "Observability").
//!
//! ```text
//! tracesmoke [TRACE.jsonl]     (default: target/tracesmoke.jsonl)
//! ```
//!
//! Exits non-zero if any line fails schema validation or if the run
//! produced no controller-decision or link-reactivation events — the
//! two categories the canonical scenario is guaranteed to exercise.
//! `scripts/bench_smoke.sh` and the in-process twin
//! (`tests/tests/bench_smoke.rs`) both lean on this to catch schema
//! drift between the emitters and the validator.

use epnet_bench::enginebench::{canonical_simulator, HORIZON};
use epnet_sim::{TraceCategory, Tracer};
use epnet_telemetry::{summary, validate_jsonl, FileSink};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tracesmoke.jsonl".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let sink = match FileSink::create(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let start = Instant::now();
    let mut sim = canonical_simulator();
    sim.set_tracer(Tracer::new(sink, TraceCategory::ALL_MASK));
    let report = sim.run_until(HORIZON);

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read back {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match validate_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace schema violation in {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{path}: {} schema-valid trace lines", stats.lines);
    for cat in TraceCategory::ALL {
        println!("  {:<13} {}", cat.name(), stats.count(cat));
    }
    for cat in [TraceCategory::Controller, TraceCategory::Reactivation] {
        if stats.count(cat) == 0 {
            eprintln!(
                "canonical scenario produced no '{}' events — emitter regression?",
                cat.name()
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "sim: {} events, {} packets, {} bytes delivered",
        report.events_processed, report.packets_delivered, report.delivered_bytes
    );
    summary::eprint_summary("tracesmoke", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
