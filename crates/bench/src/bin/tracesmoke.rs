//! Traced-run smoke check: runs the canonical engine-benchmark scenario
//! with every trace category enabled, then validates the emitted JSONL
//! against the documented schema (DESIGN.md "Observability").
//!
//! ```text
//! tracesmoke [TRACE.jsonl]     (default: target/tracesmoke.jsonl)
//! ```
//!
//! Exits non-zero if any line fails schema validation or if the run
//! produced no controller-decision or link-reactivation events — the
//! two categories the canonical scenario is guaranteed to exercise.
//! `scripts/bench_smoke.sh` and the in-process twin
//! (`tests/tests/bench_smoke.rs`) both lean on this to catch schema
//! drift between the emitters and the validator.
//!
//! The same scenario then re-runs under `EPNET_PAR=4` into
//! `<path>.par4`, and the merged trace stream must be **line-identical**
//! to the serial trace — the sharded engine's replay step emits every
//! worker's trace bytes in global event order, so even a one-line
//! reordering is a coordinator bug. Only the execution-shape categories
//! are exempt from the comparison: `routes` lines carry wall-clock
//! rebuild nanoseconds (and per-shard tables rebuild independently),
//! and `parallel` lines exist only under `EPNET_PAR` (see
//! `crates/sim/src/par.rs` module docs). The canonical scenario emits
//! no mid-run routes lines, but the filter keeps the contract precise
//! rather than incidental.
//!
//! Finally the chrome-trace exporter runs over both captures: the full
//! serial export must be well-formed JSON whose per-category record
//! counts match the source `TraceStats` (written to `<path>.chrome.json`
//! for loading into Perfetto), and the behavior-only streams (shape
//! categories stripped) of the serial and `EPNET_PAR=4` captures must
//! export to byte-identical JSON.

use epnet_bench::enginebench::{canonical_layout, canonical_simulator, HORIZON};
use epnet_sim::{TraceCategory, Tracer};
use epnet_telemetry::export::{behavior_records, chrome_trace};
use epnet_telemetry::{parse_jsonl, summary, validate_jsonl, FileSink};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tracesmoke.jsonl".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let sink = match FileSink::create(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let start = Instant::now();
    let mut sim = canonical_simulator();
    sim.set_tracer(Tracer::new(sink, TraceCategory::ALL_MASK));
    let report = sim.run_until(HORIZON);

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read back {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match validate_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace schema violation in {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{path}: {} schema-valid trace lines", stats.lines);
    for cat in TraceCategory::ALL {
        println!("  {:<13} {}", cat.name(), stats.count(cat));
    }
    for cat in [TraceCategory::Controller, TraceCategory::Reactivation] {
        if stats.count(cat) == 0 {
            eprintln!(
                "canonical scenario produced no '{}' events — emitter regression?",
                cat.name()
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "sim: {} events, {} packets, {} bytes delivered",
        report.events_processed, report.packets_delivered, report.delivered_bytes
    );

    // The parallel cross-check: the identical scenario under
    // `EPNET_PAR=4` must produce a line-identical merged trace (routes
    // lines excepted — wall-clock build times).
    let par_path = format!("{path}.par4");
    let par_sink = match FileSink::create(&par_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {par_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    std::env::set_var("EPNET_PAR", "4");
    let mut par_sim = canonical_simulator();
    par_sim.set_tracer(Tracer::new(par_sink, TraceCategory::ALL_MASK));
    let par_report = par_sim.run_until(HORIZON);
    std::env::remove_var("EPNET_PAR");
    let par_text = match std::fs::read_to_string(&par_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read back {par_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_jsonl(&par_text) {
        eprintln!("trace schema violation in {par_path}: {e}");
        return ExitCode::FAILURE;
    }
    if par_report.events_processed != report.events_processed
        || par_report.delivered_bytes != report.delivered_bytes
    {
        eprintln!("EPNET_PAR=4 report diverged from serial");
        return ExitCode::FAILURE;
    }
    fn behavior_lines(t: &str) -> Vec<&str> {
        t.lines()
            .filter(|l| !l.contains("\"cat\":\"routes\"") && !l.contains("\"cat\":\"parallel\""))
            .collect()
    }
    let serial_lines = behavior_lines(&text);
    let par_lines = behavior_lines(&par_text);
    if serial_lines != par_lines {
        let diverge = serial_lines
            .iter()
            .zip(&par_lines)
            .position(|(a, b)| a != b)
            .unwrap_or(serial_lines.len().min(par_lines.len()));
        eprintln!(
            "EPNET_PAR=4 trace diverged from serial at line {} ({} vs {} lines)",
            diverge + 1,
            serial_lines.len(),
            par_lines.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{par_path}: EPNET_PAR=4 trace line-identical to serial ({} lines)",
        par_lines.len()
    );
    // The parallel run must actually exercise the new category — a
    // silent emitter regression would otherwise pass the filter above.
    if !par_text.contains("\"cat\":\"parallel\"") {
        eprintln!("EPNET_PAR=4 run emitted no 'parallel' records — emitter regression?");
        return ExitCode::FAILURE;
    }

    // ---- chrome-trace export checks ----
    // Full serial export: well-formed JSON, and the per-category record
    // counts embedded by the exporter must match the source TraceStats
    // exactly — an export that silently drops records fails here.
    let layout = canonical_layout();
    let serial_records = match parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let export = chrome_trace(&serial_records, Some(layout));
    let doc: serde_json::Value = match serde_json::from_str(&export.json) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("chrome-trace export is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n_events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_seq)
        .map_or(0, Vec::len);
    if n_events != export.trace_events + export.metadata_events {
        eprintln!(
            "chrome-trace export event count mismatch: {} in JSON vs {} + {} reported",
            n_events, export.trace_events, export.metadata_events
        );
        return ExitCode::FAILURE;
    }
    for cat in TraceCategory::ALL {
        let want = stats.count(cat);
        let got = export.records.get(cat.name()).copied().unwrap_or(0);
        if want != got {
            eprintln!(
                "chrome-trace export consumed {got} '{}' records, TraceStats says {want}",
                cat.name()
            );
            return ExitCode::FAILURE;
        }
    }
    let chrome_path = format!("{path}.chrome.json");
    if let Err(e) = std::fs::write(&chrome_path, &export.json) {
        eprintln!("cannot write {chrome_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{chrome_path}: {} trace events + {} metadata events, counts match TraceStats",
        export.trace_events, export.metadata_events
    );

    // Behavior-only streams (shape categories stripped) of the serial
    // and parallel captures must export to byte-identical JSON — the
    // export-level form of the line-identity contract.
    let par_records = match parse_jsonl(&par_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{par_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let serial_export = chrome_trace(&behavior_records(&serial_records), Some(layout));
    let par_export = chrome_trace(&behavior_records(&par_records), Some(layout));
    if serial_export.json != par_export.json {
        eprintln!("EPNET_PAR=4 behavior-only chrome-trace export diverged from serial");
        return ExitCode::FAILURE;
    }
    println!("serial and EPNET_PAR=4 behavior-only exports byte-identical");

    summary::eprint_summary("tracesmoke", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
