//! Traced-run smoke check: runs the canonical engine-benchmark scenario
//! with every trace category enabled, then validates the emitted JSONL
//! against the documented schema (DESIGN.md "Observability").
//!
//! ```text
//! tracesmoke [TRACE.jsonl]     (default: target/tracesmoke.jsonl)
//! ```
//!
//! Exits non-zero if any line fails schema validation or if the run
//! produced no controller-decision or link-reactivation events — the
//! two categories the canonical scenario is guaranteed to exercise.
//! `scripts/bench_smoke.sh` and the in-process twin
//! (`tests/tests/bench_smoke.rs`) both lean on this to catch schema
//! drift between the emitters and the validator.
//!
//! The same scenario then re-runs under `EPNET_PAR=4` into
//! `<path>.par4`, and the merged trace stream must be **line-identical**
//! to the serial trace — the sharded engine's replay step emits every
//! worker's trace bytes in global event order, so even a one-line
//! reordering is a coordinator bug. Only `routes` lines are exempt
//! from the comparison: they carry wall-clock rebuild nanoseconds and
//! per-shard tables rebuild independently (see `crates/sim/src/par.rs`
//! module docs). The canonical scenario emits none mid-run, but the
//! filter keeps the contract precise rather than incidental.

use epnet_bench::enginebench::{canonical_simulator, HORIZON};
use epnet_sim::{TraceCategory, Tracer};
use epnet_telemetry::{summary, validate_jsonl, FileSink};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tracesmoke.jsonl".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let sink = match FileSink::create(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let start = Instant::now();
    let mut sim = canonical_simulator();
    sim.set_tracer(Tracer::new(sink, TraceCategory::ALL_MASK));
    let report = sim.run_until(HORIZON);

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read back {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match validate_jsonl(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace schema violation in {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{path}: {} schema-valid trace lines", stats.lines);
    for cat in TraceCategory::ALL {
        println!("  {:<13} {}", cat.name(), stats.count(cat));
    }
    for cat in [TraceCategory::Controller, TraceCategory::Reactivation] {
        if stats.count(cat) == 0 {
            eprintln!(
                "canonical scenario produced no '{}' events — emitter regression?",
                cat.name()
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "sim: {} events, {} packets, {} bytes delivered",
        report.events_processed, report.packets_delivered, report.delivered_bytes
    );

    // The parallel cross-check: the identical scenario under
    // `EPNET_PAR=4` must produce a line-identical merged trace (routes
    // lines excepted — wall-clock build times).
    let par_path = format!("{path}.par4");
    let par_sink = match FileSink::create(&par_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create {par_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    std::env::set_var("EPNET_PAR", "4");
    let mut par_sim = canonical_simulator();
    par_sim.set_tracer(Tracer::new(par_sink, TraceCategory::ALL_MASK));
    let par_report = par_sim.run_until(HORIZON);
    std::env::remove_var("EPNET_PAR");
    let par_text = match std::fs::read_to_string(&par_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read back {par_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_jsonl(&par_text) {
        eprintln!("trace schema violation in {par_path}: {e}");
        return ExitCode::FAILURE;
    }
    if par_report.events_processed != report.events_processed
        || par_report.delivered_bytes != report.delivered_bytes
    {
        eprintln!("EPNET_PAR=4 report diverged from serial");
        return ExitCode::FAILURE;
    }
    fn wallclock_free(t: &str) -> Vec<&str> {
        t.lines()
            .filter(|l| !l.contains("\"cat\":\"routes\""))
            .collect()
    }
    let serial_lines = wallclock_free(&text);
    let par_lines = wallclock_free(&par_text);
    if serial_lines != par_lines {
        let diverge = serial_lines
            .iter()
            .zip(&par_lines)
            .position(|(a, b)| a != b)
            .unwrap_or(serial_lines.len().min(par_lines.len()));
        eprintln!(
            "EPNET_PAR=4 trace diverged from serial at line {} ({} vs {} lines)",
            diverge + 1,
            serial_lines.len(),
            par_lines.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{par_path}: EPNET_PAR=4 trace line-identical to serial ({} lines)",
        par_lines.len()
    );

    summary::eprint_summary("tracesmoke", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
