//! Offered-load scaling benchmark: writes `BENCH_load.json`.
//!
//! ```text
//! cargo run --release -p epnet-bench --bin loadbench [-- --reduced]
//! ```
//!
//! Sweeps offered load from 2.5% to saturation on the fabrics in
//! `epnet_bench::loadbench::sweep`, running each point once per
//! `EPNET_EPOCH` mode, interleaved, and recording throughput plus the
//! controller-work counters. The point of the document is the
//! `decisions_speedup` column: how many times fewer rate decisions the
//! active-set epoch path evaluates per tick than the full sweep. Every
//! point also cross-checks that both modes serialize byte-identical
//! reports — the benchmark doubles as a correctness harness at scales
//! the test suite never reaches.
//!
//! `--reduced` trims the sweep for smoke runs; `--stdout` prints the
//! document instead of writing `BENCH_load.json`.

use epnet_bench::loadbench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reduced = args.iter().any(|a| a == "--reduced");
    let to_stdout = args.iter().any(|a| a == "--stdout");
    if let Some(bad) = args.iter().find(|a| *a != "--reduced" && *a != "--stdout") {
        eprintln!("unknown argument '{bad}' (expected --reduced and/or --stdout)");
        std::process::exit(2);
    }

    let mut runs = Vec::new();
    for point in loadbench::sweep(reduced) {
        let run = loadbench::measure(&point);
        eprintln!(
            "{:<20} ch={:<6} sweep {:>8.1} dec/tick  active {:>8.1} dec/tick  {:>6.1}x  \
             ({:.0} / {:.0} events/s)",
            run.name,
            run.channels,
            run.sweep.decisions_per_tick(),
            run.active.decisions_per_tick(),
            run.decisions_speedup(),
            run.sweep.events_per_sec(),
            run.active.events_per_sec(),
        );
        runs.push(run);
    }

    let doc = loadbench::render(&runs);
    loadbench::validate(&doc).expect("freshly rendered document validates");
    if to_stdout {
        print!("{doc}");
    } else {
        let path = loadbench::output_path();
        std::fs::write(&path, doc).expect("BENCH_load.json written");
        eprintln!("wrote {}", path.display());
    }
}
