//! Topology-scaling benchmark: writes `BENCH_scale.json`.
//!
//! ```text
//! cargo run --release -p epnet-bench --bin scalebench [-- --reduced]
//! ```
//!
//! Sweeps the fabrics in `epnet_bench::scalebench::sweep` under the
//! canonical traffic recipe and records throughput plus steady-state
//! allocator behaviour. The process runs under a counting global
//! allocator (a `std::alloc::System` wrapper — no external crates):
//! every allocation and reallocation bumps an atomic counter and the
//! live-byte high-water mark, and the sweep meters the window from
//! half-horizon to end of each run. A warmed-up engine serves packets,
//! messages, credit buffers, and queue storage from free-lists, so
//! `allocs_per_event` in that window is expected to be ~0 (the smoke
//! suite enforces `< 0.01` at every point).
//!
//! `--reduced` trims the sweep for smoke runs; `--stdout` prints the
//! document instead of writing `BENCH_scale.json`.

use epnet_bench::scalebench::{self, AllocMeter, AllocWindow};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Allocation calls since process start (alloc + realloc).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Live heap bytes right now.
static LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `LIVE` since the last `Meter::begin`.
static PEAK: AtomicU64 = AtomicU64::new(0);
/// `ALLOCS` snapshot taken at `Meter::begin`.
static WINDOW_BASE: AtomicU64 = AtomicU64::new(0);

/// `System`, with every call counted. Relaxed ordering is fine: the
/// sweep is single-threaded and the counters are monotone bookkeeping,
/// not synchronization.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        let live = LIVE.fetch_add(layout.size() as u64, Relaxed) + layout.size() as u64;
        PEAK.fetch_max(live, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        let old = layout.size() as u64;
        let new = new_size as u64;
        if new >= old {
            let live = LIVE.fetch_add(new - old, Relaxed) + (new - old);
            PEAK.fetch_max(live, Relaxed);
        } else {
            LIVE.fetch_sub(old - new, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// The sweep's view of the counters above.
struct Meter;

impl AllocMeter for Meter {
    fn begin(&self) {
        WINDOW_BASE.store(ALLOCS.load(Relaxed), Relaxed);
        PEAK.store(LIVE.load(Relaxed), Relaxed);
    }

    fn end(&self) -> AllocWindow {
        AllocWindow {
            allocs: ALLOCS.load(Relaxed) - WINDOW_BASE.load(Relaxed),
            peak_bytes: PEAK.load(Relaxed),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reduced = args.iter().any(|a| a == "--reduced");
    let to_stdout = args.iter().any(|a| a == "--stdout");
    if let Some(bad) = args.iter().find(|a| *a != "--reduced" && *a != "--stdout") {
        eprintln!("unknown argument '{bad}' (expected --reduced and/or --stdout)");
        std::process::exit(2);
    }

    let points = scalebench::sweep(reduced);
    let mut runs = Vec::new();
    for point in &points {
        let run = scalebench::measure(point, &Meter);
        eprintln!(
            "{:<14} hosts={:<5} {:>10.0} events/s  allocs/event={:.6} peak={} B",
            run.name,
            run.hosts,
            run.events_per_sec(),
            run.allocs_per_event(),
            run.peak_alloc_bytes,
        );
        runs.push(run);
    }

    // The threads axis: serial baseline then every `EPNET_PAR` width,
    // each report asserted byte-identical to serial before its timing
    // counts. The full sweep measures the paper-scale 15-ary 2-flat
    // (the fabric the parallel engine exists for) — the last *packet*
    // point, since the hybrid tail has its own axis below; the reduced
    // smoke uses the canonical point to stay seconds-long.
    let axis_point = if reduced {
        &points[0]
    } else {
        scalebench::axis_point(&points)
    };
    let axis = scalebench::measure_threads(axis_point);
    let baseline = axis.runs[0].wall_ms;
    for r in &axis.runs {
        eprintln!(
            "{:<14} threads={:<2} {:>10.0} events/s  speedup={:.2}x (of {} hw threads)",
            axis.point,
            r.threads,
            r.events_per_sec(),
            baseline / r.wall_ms,
            axis.hw_threads,
        );
    }

    // The hybrid threads axis: the million-host hybrid point re-run
    // serially and at widths {1, 2, 4}, byte-identity asserted at each
    // width before its timing is recorded.
    let hybrid_axis = scalebench::measure_threads_over(
        scalebench::hybrid_axis_point(&points),
        &scalebench::HYBRID_THREAD_WIDTHS,
    );
    let hybrid_baseline = hybrid_axis.runs[0].wall_ms;
    for r in &hybrid_axis.runs {
        eprintln!(
            "{:<14} threads={:<2} {:>10.0} events/s  speedup={:.2}x (of {} hw threads)",
            hybrid_axis.point,
            r.threads,
            r.events_per_sec(),
            hybrid_baseline / r.wall_ms,
            hybrid_axis.hw_threads,
        );
    }

    // The lookahead probe: pairwise matrix vs the legacy global bound,
    // byte-identity asserted, window shapes compared. In the full
    // sweep it runs on the grouped 3-flat, where cross-shard links are
    // optical and the pairwise bound has real heterogeneity to
    // exploit.
    let lookahead = scalebench::measure_lookahead(scalebench::lookahead_point(&points));
    for m in [&lookahead.pairwise, &lookahead.global] {
        eprintln!(
            "{:<14} lookahead={:<8} windows={:<8} {:>8.1} events/window  bound={} ps",
            lookahead.point,
            m.mode,
            m.windows,
            m.mean_events_per_window(),
            m.lookahead_ps,
        );
    }
    eprintln!(
        "{:<14} barrier amortization pairwise/global = {:.2}x",
        lookahead.point,
        lookahead.amortization_ratio(),
    );

    // The models axis: every packet point re-run under both models at
    // the reduced horizon, hybrid-vs-packet agreement asserted within
    // the documented tolerance before anything is written.
    let models = scalebench::measure_models(&points);
    for r in &models.runs {
        eprintln!(
            "{:<14} models: bytes_err={:.4} power_err={:.4} wall packet={:.0}ms hybrid={:.0}ms",
            r.point,
            r.bytes_rel_err(),
            r.power_abs_err(),
            r.packet_wall_ms,
            r.hybrid_wall_ms,
        );
    }

    let doc = scalebench::render(&runs, &axis, &hybrid_axis, &lookahead, &models);
    scalebench::validate(&doc).expect("freshly rendered document validates");
    if to_stdout {
        print!("{doc}");
    } else {
        let path = scalebench::output_path();
        std::fs::write(&path, doc).expect("BENCH_scale.json written");
        eprintln!("wrote {}", path.display());
    }
}
