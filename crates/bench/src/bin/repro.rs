//! Regenerates every table and figure of *Energy Proportional
//! Datacenter Networks* (ISCA 2010).
//!
//! ```text
//! repro [--scale tiny|quick|paper] [--json FILE] [TARGET...]
//!
//! TARGET: table1 table2 figure1 figure5 figure6 figure7 figure8
//!         figure9a figure9b costs   (default: all)
//! ```
//!
//! `--scale quick` (default) runs a 512-host 8-ary 3-flat for 5 ms per
//! experiment; `--scale paper` runs the paper's 15-ary 3-flat (3,375
//! hosts, 20 ms per run — budget roughly an hour for the full suite).

use epnet::exp::{figures, EvalScale};
use epnet_bench::{parse_scale, TARGETS};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let started_all = Instant::now();
    let mut scale = EvalScale::quick();
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next() else {
                    eprintln!("--scale needs a value");
                    return ExitCode::FAILURE;
                };
                match parse_scale(&v) {
                    Ok(s) => scale = s,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => {
                let Some(v) = args.next() else {
                    eprintln!("--json needs a file path");
                    return ExitCode::FAILURE;
                };
                json_path = Some(v);
            }
            "--csv-dir" => {
                let Some(v) = args.next() else {
                    eprintln!("--csv-dir needs a directory");
                    return ExitCode::FAILURE;
                };
                csv_dir = Some(v);
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale tiny|quick|paper] [--json FILE] [--csv-dir DIR] [TARGET...]\nTARGETS: {} all",
                    TARGETS.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            t => targets.push(t.trim_start_matches("--").to_owned()),
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        // The sensitivity grid is ~40 simulations; run it only when
        // asked for by name.
        targets = TARGETS
            .iter()
            .filter(|t| **t != "sensitivity")
            .map(|s| (*s).to_owned())
            .collect();
    }

    println!("# Energy Proportional Datacenter Networks (ISCA 2010) reproduction",);
    println!(
        "# scale: {} hosts ({}-ary {}-flat, c={}), {} per run\n",
        scale.hosts(),
        scale.radix,
        scale.flat_n,
        scale.concentration,
        scale.duration,
    );

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut json = BTreeMap::new();
    for target in &targets {
        let started = Instant::now();
        let Some(value) = run_target(target, scale, csv_dir.as_deref()) else {
            eprintln!("unknown target '{target}' (see --help)");
            return ExitCode::FAILURE;
        };
        println!("  [{target} took {:.1?}]\n", started.elapsed());
        json.insert(target.clone(), value);
    }

    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&json) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed to serialize results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // One line of run totals on stderr (suppress with EPNET_QUIET=1);
    // stdout stays clean for the tables and JSON above.
    epnet_telemetry::summary::eprint_summary("repro", started_all.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

/// Runs one target, prints its table, and returns its JSON value.
fn run_target(target: &str, scale: EvalScale, csv_dir: Option<&str>) -> Option<serde_json::Value> {
    let json = |v: serde_json::Value| Some(v);
    let write_csv = |name: &str, body: String| {
        if let Some(dir) = csv_dir {
            let path = format!("{dir}/{name}.csv");
            match std::fs::write(&path, body) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    };
    match target {
        "table1" => {
            let t = figures::table1();
            println!("Table 1: topology power comparison (fixed bisection bandwidth)");
            print!("{}", t.to_table());
            json(serde_json::to_value(&t).ok()?)
        }
        "table2" => {
            let t = figures::table2();
            println!("Table 2: InfiniBand data rates");
            for (name, gbps) in &t {
                println!("{name:<8} {gbps:>5.1} Gb/s");
            }
            json(serde_json::to_value(&t).ok()?)
        }
        "figure1" => {
            let f = figures::figure1();
            print!("{}", f.to_table());
            json(serde_json::to_value(&f).ok()?)
        }
        "figure5" => {
            let f = figures::figure5();
            print!("{}", f.to_table());
            json(serde_json::to_value(&f).ok()?)
        }
        "figure6" => {
            let f = figures::figure6();
            println!("Figure 6: ITRS bandwidth trends");
            println!(
                "{:<6} {:>12} {:>14} {:>10}",
                "Year", "I/O (Tb/s)", "Clock (Gb/s)", "Pins (k)"
            );
            for s in &f {
                println!(
                    "{:<6} {:>12.1} {:>14.1} {:>10.1}",
                    s.year, s.io_bandwidth_tbps, s.offchip_clock_gbps, s.package_pins_thousands
                );
            }
            json(serde_json::to_value(&f).ok()?)
        }
        "figure7" => {
            let f = figures::figure7(scale);
            print!("{}", f.to_table());
            write_csv("figure7", epnet_bench::csv::figure7_csv(&f));
            json(serde_json::to_value(&f).ok()?)
        }
        "figure8" => {
            let f = figures::figure8(scale);
            print!("{}", f.to_table());
            write_csv("figure8", epnet_bench::csv::figure8_csv(&f));
            json(serde_json::to_value(&f).ok()?)
        }
        "figure9a" => {
            let cells = figures::figure9a(scale);
            write_csv("figure9a", epnet_bench::csv::figure9a_csv(&cells));
            print!(
                "{}",
                figures::figure9_table(
                    "Figure 9(a): added mean latency vs target utilization (1 us reactivation)",
                    "us",
                    [25, 50, 75].iter().map(|t| format!("{t}%")),
                    cells
                        .iter()
                        .map(|c| (c.workload.as_str(), c.added_latency_us)),
                )
            );
            json(serde_json::to_value(&cells).ok()?)
        }
        "figure9b" => {
            let cells = figures::figure9b(scale);
            write_csv("figure9b", epnet_bench::csv::figure9b_csv(&cells));
            print!(
                "{}",
                figures::figure9_table(
                    "Figure 9(b): added mean latency vs reactivation time (50% target)",
                    "us",
                    ["100ns", "1us", "10us", "100us"]
                        .iter()
                        .map(|s| (*s).to_owned()),
                    cells
                        .iter()
                        .map(|c| (c.workload.as_str(), c.added_latency_us)),
                )
            );
            json(serde_json::to_value(&cells).ok()?)
        }
        "sensitivity" => {
            use epnet::exp::sweep::{sweep_tables, SensitivitySweep};
            use epnet::exp::WorkloadKind;
            let mut all = Vec::new();
            for kind in WorkloadKind::ALL {
                let cells = SensitivitySweep::paper_grid(scale, kind).run();
                print!("{}", sweep_tables(kind.name(), &cells));
                println!();
                all.extend(cells);
            }
            json(serde_json::to_value(&all).ok()?)
        }
        "topology-sim" => {
            let t = figures::simulated_topology_comparison(scale);
            print!("{}", t.to_table());
            json(serde_json::to_value(&t).ok()?)
        }
        "costs" => {
            let c = figures::cost_summary();
            print!("{}", c.to_table());
            json(serde_json::to_value(&c).ok()?)
        }
        _ => None,
    }
}
