//! Post-hoc trace toolkit: Perfetto export and offline analyses.
//!
//! ```text
//! tracetool export TRACE.jsonl OUT.json [--layout HOSTS,PORTS]
//! tracetool residency TRACE.jsonl [--csv]
//! tracetool churn TRACE.jsonl [--csv] [--top N]
//! tracetool reactivation TRACE.jsonl [--csv]
//! tracetool credit TRACE.jsonl [--csv] [--top N]
//! tracetool outcomes TRACE.jsonl [--csv]
//! ```
//!
//! `export` converts an `EPNET_TRACE` JSONL capture to the Chrome
//! Trace Event JSON object format; open the output at
//! <https://ui.perfetto.dev> (or `chrome://tracing`). `--layout`
//! supplies the fabric's host count and ports-per-switch so channel
//! tracks group into one process per switch — for the canonical
//! tracesmoke fabric that is `--layout 16,8`.
//!
//! The analysis commands print a table to stdout, or CSV with `--csv`
//! (headers pinned by `epnet-bench::csv` unit tests, so downstream
//! plots can rely on them). `residency` reproduces the
//! `render --trace` residency numbers exactly — both call the same
//! derivation. `--top N` truncates the table form of the per-channel
//! reports; CSV always carries every row.

use epnet_bench::csv;
use epnet_report::analysis;
use epnet_telemetry::export::{chrome_trace, TrackLayout};
use epnet_telemetry::{parse_jsonl, TraceRecord};
use std::process::ExitCode;

const USAGE: &str = "usage: tracetool export TRACE.jsonl OUT.json [--layout HOSTS,PORTS]\n       \
                     tracetool residency|churn|reactivation|credit|outcomes TRACE.jsonl \
                     [--csv] [--top N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tracetool: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let [cmd, trace_path, rest @ ..] = args else {
        return Err(USAGE.to_string());
    };
    if cmd == "export" {
        let [out_path, opts @ ..] = rest else {
            return Err(USAGE.to_string());
        };
        let layout = parse_layout(opts)?;
        let records = load(trace_path)?;
        let out = chrome_trace(&records, layout);
        std::fs::write(out_path, &out.json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
        eprintln!(
            "wrote {out_path}: {} trace events + {} metadata events from {} records",
            out.trace_events,
            out.metadata_events,
            out.records.values().sum::<usize>()
        );
        return Ok(());
    }
    let (want_csv, top) = parse_flags(rest)?;
    let records = load(trace_path)?;
    let text = match cmd.as_str() {
        "residency" => {
            let r = analysis::residency(&records);
            if want_csv {
                csv::residency_csv(&r)
            } else {
                analysis::format_residency(&r)
            }
        }
        "churn" => {
            let rows = analysis::churn(&records);
            if want_csv {
                csv::churn_csv(&rows)
            } else {
                analysis::format_churn(&rows, top)
            }
        }
        "reactivation" => {
            let s = analysis::reactivation_latency(&records);
            if want_csv {
                csv::reactivation_csv(&s)
            } else {
                analysis::format_reactivation(&s)
            }
        }
        "credit" => {
            let rows = analysis::credit_stalls(&records);
            if want_csv {
                csv::credit_csv(&rows)
            } else {
                analysis::format_credit(&rows, top)
            }
        }
        "outcomes" => {
            let rows = analysis::outcomes(&records);
            if want_csv {
                csv::outcomes_csv(&rows)
            } else {
                analysis::format_outcomes(&rows)
            }
        }
        other => return Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    print!("{text}");
    Ok(())
}

fn load(path: &str) -> Result<Vec<TraceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parses `[--layout HOSTS,PORTS]` from an export's trailing options.
fn parse_layout(opts: &[String]) -> Result<Option<TrackLayout>, String> {
    match opts {
        [] => Ok(None),
        [flag, value] if flag == "--layout" => {
            let (hosts, ports) = value
                .split_once(',')
                .ok_or_else(|| format!("--layout wants HOSTS,PORTS, got '{value}'"))?;
            let parse = |s: &str| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("--layout wants HOSTS,PORTS, got '{value}'"))
            };
            let (hosts, ports) = (parse(hosts)?, parse(ports)?);
            if ports == 0 {
                return Err("--layout ports must be positive".to_string());
            }
            Ok(Some(TrackLayout {
                hosts,
                ports_per_switch: ports,
            }))
        }
        _ => Err(USAGE.to_string()),
    }
}

/// Parses `[--csv] [--top N]` in any order. `top == 0` means "all".
fn parse_flags(opts: &[String]) -> Result<(bool, usize), String> {
    let mut want_csv = false;
    let mut top = 0usize;
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--csv" => want_csv = true,
            "--top" => {
                let n = it.next().ok_or("--top wants a count")?;
                top = n
                    .parse()
                    .map_err(|_| format!("--top wants a count, got '{n}'"))?;
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok((want_csv, top))
}
