//! The canonical engine-throughput benchmark behind `BENCH_engine.json`.
//!
//! One fixed scenario — an FBFLY(2,8,2) fabric (16 hosts, 8 switches)
//! under merged uniform-random (30% load) and search-like bursty
//! traffic for 10 ms of simulated time, default §4.1 configuration —
//! run once per route mode: precomputed route tables (the default) and
//! the per-hop reference path (`EPNET_ROUTES=dynamic`). Each run
//! reports wall clock, engine events popped, and delivered bytes, from
//! which the two throughput figures in EXPERIMENTS.md derive:
//! events/second and delivered bytes/second.
//!
//! The scenario is intentionally small enough to finish in well under a
//! second per mode, so the smoke suite (`scripts/bench_smoke.sh` and
//! its in-process twin `tests/tests/bench_smoke.rs`) can afford to run
//! it on every invocation.

use epnet_sim::{MergedSource, SimConfig, SimTime, Simulator};
use epnet_topology::{FlattenedButterfly, RoutingTopology};
use epnet_workloads::{ServiceTrace, ServiceTraceConfig, UniformRandom};
use serde_json::Value;
use std::time::Instant;

/// Schema tag written into `BENCH_engine.json`.
pub const SCHEMA: &str = "epnet-bench-engine/v1";

/// Simulated horizon of the canonical run.
pub const HORIZON: SimTime = SimTime::from_ms(10);

/// The canonical scenario's traffic source.
pub type CanonicalSource = MergedSource<UniformRandom, ServiceTrace>;

/// Builds the canonical FBFLY(2,8,2) scenario (see module docs), ready
/// to run for [`HORIZON`] of simulated time. Shared by the throughput
/// benchmark and the `tracesmoke` trace-schema check so both exercise
/// the exact same configuration.
pub fn canonical_simulator() -> Simulator<CanonicalSource> {
    let build_start = Instant::now();
    let fabric = FlattenedButterfly::new(2, 8, 2)
        .expect("fixed canonical shape")
        .build_fabric();
    let topology_wall = build_start.elapsed();
    let hosts = fabric.num_hosts() as u32;
    let source = MergedSource::new(
        UniformRandom::builder(hosts)
            .offered_load(0.3)
            .horizon(HORIZON)
            .build(),
        ServiceTrace::builder(hosts, ServiceTraceConfig::search_like())
            .horizon(HORIZON)
            .build(),
    );
    let mut sim = Simulator::new(fabric, SimConfig::default(), source);
    sim.record_phase("topology_build", topology_wall);
    sim
}

/// The canonical fabric's positional channel layout, for grouping
/// chrome-trace channel tracks by switch (FBFLY(2,8,2): 16 host
/// injection channels, then 9 output channels per switch).
pub fn canonical_layout() -> epnet_telemetry::TrackLayout {
    let spec = FlattenedButterfly::new(2, 8, 2).expect("fixed canonical shape");
    epnet_telemetry::TrackLayout {
        hosts: spec.num_hosts() as u32,
        ports_per_switch: u32::from(spec.ports_per_switch()),
    }
}

/// One measured run of the canonical scenario.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Route-mode label: `route_table` or `dynamic_routes`.
    pub name: &'static str,
    /// Wall-clock duration of the run, in milliseconds.
    pub wall_ms: f64,
    /// Events popped by the engine's scheduler.
    pub sim_events: u64,
    /// Packets delivered end to end.
    pub sim_packets: u64,
    /// Bytes delivered end to end.
    pub sim_delivered_bytes: u64,
}

impl EngineRun {
    /// Engine events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.sim_events as f64 * 1e3 / self.wall_ms
    }

    /// Delivered payload bytes per wall-clock second.
    pub fn delivered_bytes_per_sec(&self) -> f64 {
        self.sim_delivered_bytes as f64 * 1e3 / self.wall_ms
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".into(), Value::Str(self.name.into())),
            ("events_per_sec".into(), Value::F64(self.events_per_sec())),
            (
                "delivered_bytes_per_sec".into(),
                Value::F64(self.delivered_bytes_per_sec()),
            ),
            ("sim_events".into(), Value::U64(self.sim_events)),
            ("sim_packets".into(), Value::U64(self.sim_packets)),
            (
                "sim_delivered_bytes".into(),
                Value::U64(self.sim_delivered_bytes),
            ),
            ("wall_ms".into(), Value::F64(self.wall_ms)),
        ])
    }
}

/// Runs the canonical scenario once under the current `EPNET_ROUTES`
/// setting and measures it.
pub fn measure(name: &'static str) -> EngineRun {
    let sim = canonical_simulator();
    let start = Instant::now();
    let report = sim.run_until(HORIZON);
    let wall = start.elapsed();
    EngineRun {
        name,
        wall_ms: wall.as_secs_f64() * 1e3,
        sim_events: report.events_processed,
        sim_packets: report.packets_delivered,
        sim_delivered_bytes: report.delivered_bytes,
    }
}

/// Measures both route modes: the precomputed-table default, then the
/// per-hop reference with `EPNET_ROUTES=dynamic`.
///
/// Restores the prior `EPNET_ROUTES` value afterwards, so callers that
/// pinned a mode (or tests holding an env lock) see it unchanged.
pub fn measure_both_modes() -> Vec<EngineRun> {
    let prior = std::env::var("EPNET_ROUTES").ok();
    std::env::remove_var("EPNET_ROUTES");
    let table = measure("route_table");
    std::env::set_var("EPNET_ROUTES", "dynamic");
    let dynamic = measure("dynamic_routes");
    match prior {
        Some(v) => std::env::set_var("EPNET_ROUTES", v),
        None => std::env::remove_var("EPNET_ROUTES"),
    }
    vec![table, dynamic]
}

/// Renders runs as the `BENCH_engine.json` document.
pub fn render(runs: &[EngineRun]) -> String {
    let doc = Value::Map(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        (
            "scenario".into(),
            Value::Str("fbfly_2x8x2_uniform30+search_10ms".into()),
        ),
        (
            "benches".into(),
            Value::Seq(runs.iter().map(EngineRun::to_value).collect()),
        ),
    ]);
    let mut out = serde_json::to_string_pretty(&doc).expect("value tree serializes");
    out.push('\n');
    out
}

/// Path of `BENCH_engine.json` at the repository root.
pub fn output_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Validates a `BENCH_engine.json` document; returns its bench names.
///
/// # Errors
///
/// Describes the first missing or mistyped field.
pub fn validate(doc: &str) -> Result<Vec<String>, String> {
    let v: Value = serde_json::from_str(doc).map_err(|e| format!("not JSON: {e}"))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema '{other}'")),
        None => return Err("missing 'schema'".into()),
    }
    let benches = v
        .get("benches")
        .and_then(Value::as_seq)
        .ok_or("missing 'benches' array")?;
    if benches.is_empty() {
        return Err("'benches' is empty".into());
    }
    let mut names = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or("bench missing 'name'")?;
        for field in ["events_per_sec", "delivered_bytes_per_sec", "wall_ms"] {
            let rate = b
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("bench '{name}' missing '{field}'"))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(format!("bench '{name}' has non-positive '{field}'"));
            }
        }
        for field in ["sim_events", "sim_packets", "sim_delivered_bytes"] {
            if b.get(field).and_then(Value::as_u64).is_none() {
                return Err(format!("bench '{name}' missing '{field}'"));
            }
        }
        names.push(name.to_string());
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_document_validates() {
        let runs = vec![
            EngineRun {
                name: "route_table",
                wall_ms: 12.5,
                sim_events: 1_000,
                sim_packets: 100,
                sim_delivered_bytes: 64_000,
            },
            EngineRun {
                name: "dynamic_routes",
                wall_ms: 14.0,
                sim_events: 1_000,
                sim_packets: 100,
                sim_delivered_bytes: 64_000,
            },
        ];
        let doc = render(&runs);
        let names = validate(&doc).expect("schema holds");
        assert_eq!(names, vec!["route_table", "dynamic_routes"]);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"schema": "epnet-bench-engine/v1"}"#).is_err());
        assert!(
            validate(r#"{"schema": "epnet-bench-engine/v1", "benches": []}"#).is_err(),
            "empty bench list must be rejected"
        );
    }
}
