//! CSV export of reproduction results and trace analyses, for
//! plotting with external tools (gnuplot, matplotlib, a spreadsheet).

use epnet::exp::figures::{Figure7, Figure8, Figure9aCell, Figure9bCell};
use epnet_power::RATE_LADDER;
use epnet_report::analysis::{
    ChurnRow, CreditStallRow, OutcomeRow, RateResidency, ReactivationStats,
};
use std::fmt::Write as _;

/// Figure 7 as CSV: `speed_gbps,paired,independent`.
pub fn figure7_csv(f: &Figure7) -> String {
    let mut s = String::from("speed_gbps,paired,independent\n");
    for rate in RATE_LADDER.iter().rev() {
        let _ = writeln!(
            s,
            "{},{:.6},{:.6}",
            rate.gbps(),
            f.paired[rate.index()],
            f.independent[rate.index()]
        );
    }
    s
}

/// Figure 8 as CSV:
/// `profile,workload,paired_pct,independent_pct,ideal_floor_pct`.
pub fn figure8_csv(f: &Figure8) -> String {
    let mut s = String::from("profile,workload,paired_pct,independent_pct,ideal_floor_pct\n");
    for (profile, rows) in [("measured", &f.measured), ("ideal", &f.ideal)] {
        for r in rows {
            let _ = writeln!(
                s,
                "{},{},{:.3},{:.3},{:.3}",
                profile, r.workload, r.paired_pct, r.independent_pct, r.ideal_floor_pct
            );
        }
    }
    s
}

/// Figure 9(a) as CSV: `workload,target,added_latency_us`.
pub fn figure9a_csv(cells: &[Figure9aCell]) -> String {
    let mut s = String::from("workload,target,added_latency_us\n");
    for c in cells {
        let _ = writeln!(s, "{},{},{:.3}", c.workload, c.target, c.added_latency_us);
    }
    s
}

/// Figure 9(b) as CSV: `workload,reactivation_ns,added_latency_us`.
pub fn figure9b_csv(cells: &[Figure9bCell]) -> String {
    let mut s = String::from("workload,reactivation_ns,added_latency_us\n");
    for c in cells {
        let _ = writeln!(
            s,
            "{},{},{:.3}",
            c.workload, c.reactivation_ns, c.added_latency_us
        );
    }
    s
}

/// Trace residency as CSV: `rate,fraction`.
pub fn residency_csv(r: &RateResidency) -> String {
    let mut s = String::from("rate,fraction\n");
    for row in &r.rows {
        let _ = writeln!(s, "{},{:.9}", row.rate, row.fraction);
    }
    s
}

/// Trace churn as CSV:
/// `channel,decisions,transitions,upshifts,downshifts,reversals`.
pub fn churn_csv(rows: &[ChurnRow]) -> String {
    let mut s = String::from("channel,decisions,transitions,upshifts,downshifts,reversals\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{}",
            r.channel, r.decisions, r.transitions, r.upshifts, r.downshifts, r.reversals
        );
    }
    s
}

/// Reactivation-latency distribution as CSV (one data row):
/// `count,unmatched,min_ps,p50_ps,p90_ps,p99_ps,max_ps,mean_ps`.
pub fn reactivation_csv(s: &ReactivationStats) -> String {
    format!(
        "count,unmatched,min_ps,p50_ps,p90_ps,p99_ps,max_ps,mean_ps\n\
         {},{},{},{},{},{},{},{}\n",
        s.count, s.unmatched, s.min_ps, s.p50_ps, s.p90_ps, s.p99_ps, s.max_ps, s.mean_ps
    )
}

/// Credit-stall attribution as CSV:
/// `channel,stalls,total_ps,max_ps,unmatched`.
pub fn credit_csv(rows: &[CreditStallRow]) -> String {
    let mut s = String::from("channel,stalls,total_ps,max_ps,unmatched\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{}",
            r.channel, r.stalls, r.total_ps, r.max_ps, r.unmatched
        );
    }
    s
}

/// Controller outcome breakdown as CSV: `reason,count,share`.
pub fn outcomes_csv(rows: &[OutcomeRow]) -> String {
    let mut s = String::from("reason,count,share\n");
    for r in rows {
        let _ = writeln!(s, "{},{},{:.9}", r.reason, r.count, r.share);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_csv_shape() {
        let f = Figure7 {
            paired: [0.5, 0.2, 0.1, 0.1, 0.1],
            independent: [0.7, 0.1, 0.1, 0.05, 0.05],
        };
        let csv = figure7_csv(&f);
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("speed_gbps,"));
        assert!(csv.contains("40,0.1"), "{csv}");
        assert!(csv.contains("2.5,0.5"));
    }

    #[test]
    fn figure9_csvs() {
        let a = vec![Figure9aCell {
            workload: "Search".into(),
            target: 0.5,
            added_latency_us: 26.1,
        }];
        assert!(figure9a_csv(&a).contains("Search,0.5,26.100"));
        let b = vec![Figure9bCell {
            workload: "Advert".into(),
            reactivation_ns: 1000,
            added_latency_us: 26.7,
        }];
        assert!(figure9b_csv(&b).contains("Advert,1000,26.700"));
    }

    #[test]
    fn analysis_csvs_have_pinned_headers_and_row_shapes() {
        let res = RateResidency {
            rows: vec![epnet_report::analysis::ResidencyRow {
                rate: "40 Gb/s".into(),
                fraction: 0.25,
            }],
            channels: 3,
            horizon_ps: 1_000,
        };
        let csv = residency_csv(&res);
        assert!(csv.starts_with("rate,fraction\n"));
        assert!(csv.contains("40 Gb/s,0.250000000"));

        let churn = vec![ChurnRow {
            channel: 7,
            decisions: 10,
            transitions: 4,
            upshifts: 2,
            downshifts: 2,
            reversals: 3,
        }];
        let csv = churn_csv(&churn);
        assert!(csv.starts_with("channel,decisions,transitions,upshifts,downshifts,reversals\n"));
        assert!(csv.contains("7,10,4,2,2,3"));

        let stats = ReactivationStats {
            count: 5,
            unmatched: 1,
            min_ps: 10,
            max_ps: 90,
            mean_ps: 50,
            p50_ps: 45,
            p90_ps: 85,
            p99_ps: 90,
        };
        let csv = reactivation_csv(&stats);
        assert_eq!(csv.lines().count(), 2, "header + one data row");
        assert!(csv.contains("5,1,10,45,85,90,90,50"));

        let credit = vec![CreditStallRow {
            channel: 2,
            stalls: 3,
            unmatched: 0,
            total_ps: 600,
            max_ps: 400,
        }];
        let csv = credit_csv(&credit);
        assert!(csv.starts_with("channel,stalls,total_ps,max_ps,unmatched\n"));
        assert!(csv.contains("2,3,600,400,0"));

        let out = vec![OutcomeRow {
            reason: "hold".into(),
            count: 9,
            share: 0.9,
        }];
        let csv = outcomes_csv(&out);
        assert!(csv.starts_with("reason,count,share\n"));
        assert!(csv.contains("hold,9,0.900000000"));
    }
}
