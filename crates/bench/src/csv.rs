//! CSV export of reproduction results, for plotting with external
//! tools (gnuplot, matplotlib, a spreadsheet).

use epnet::exp::figures::{Figure7, Figure8, Figure9aCell, Figure9bCell};
use epnet_power::RATE_LADDER;
use std::fmt::Write as _;

/// Figure 7 as CSV: `speed_gbps,paired,independent`.
pub fn figure7_csv(f: &Figure7) -> String {
    let mut s = String::from("speed_gbps,paired,independent\n");
    for rate in RATE_LADDER.iter().rev() {
        let _ = writeln!(
            s,
            "{},{:.6},{:.6}",
            rate.gbps(),
            f.paired[rate.index()],
            f.independent[rate.index()]
        );
    }
    s
}

/// Figure 8 as CSV:
/// `profile,workload,paired_pct,independent_pct,ideal_floor_pct`.
pub fn figure8_csv(f: &Figure8) -> String {
    let mut s = String::from("profile,workload,paired_pct,independent_pct,ideal_floor_pct\n");
    for (profile, rows) in [("measured", &f.measured), ("ideal", &f.ideal)] {
        for r in rows {
            let _ = writeln!(
                s,
                "{},{},{:.3},{:.3},{:.3}",
                profile, r.workload, r.paired_pct, r.independent_pct, r.ideal_floor_pct
            );
        }
    }
    s
}

/// Figure 9(a) as CSV: `workload,target,added_latency_us`.
pub fn figure9a_csv(cells: &[Figure9aCell]) -> String {
    let mut s = String::from("workload,target,added_latency_us\n");
    for c in cells {
        let _ = writeln!(s, "{},{},{:.3}", c.workload, c.target, c.added_latency_us);
    }
    s
}

/// Figure 9(b) as CSV: `workload,reactivation_ns,added_latency_us`.
pub fn figure9b_csv(cells: &[Figure9bCell]) -> String {
    let mut s = String::from("workload,reactivation_ns,added_latency_us\n");
    for c in cells {
        let _ = writeln!(
            s,
            "{},{},{:.3}",
            c.workload, c.reactivation_ns, c.added_latency_us
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_csv_shape() {
        let f = Figure7 {
            paired: [0.5, 0.2, 0.1, 0.1, 0.1],
            independent: [0.7, 0.1, 0.1, 0.05, 0.05],
        };
        let csv = figure7_csv(&f);
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("speed_gbps,"));
        assert!(csv.contains("40,0.1"), "{csv}");
        assert!(csv.contains("2.5,0.5"));
    }

    #[test]
    fn figure9_csvs() {
        let a = vec![Figure9aCell {
            workload: "Search".into(),
            target: 0.5,
            added_latency_us: 26.1,
        }];
        assert!(figure9a_csv(&a).contains("Search,0.5,26.100"));
        let b = vec![Figure9bCell {
            workload: "Advert".into(),
            reactivation_ns: 1000,
            added_latency_us: 26.7,
        }];
        assert!(figure9b_csv(&b).contains("Advert,1000,26.700"));
    }
}
