//! The offered-load scaling benchmark behind `BENCH_load.json`.
//!
//! The activity-proportional epoch controller claims O(active) work
//! per tick instead of O(topology); this sweep quantifies the claim.
//! Each point runs the bursty uniform-random workload (512 KiB
//! messages, exponential gaps — the paper's §4.2 recipe) at one
//! offered-load fraction, once per `EPNET_EPOCH` mode, *interleaved*
//! (sweep then active for each point in turn) so slow wall-clock drift
//! hits both modes equally. Per mode it records wall time, engine
//! throughput (events/s), the controller-phase wall time from
//! `SimReport.phases`, and the controller-work counters
//! (`epoch_ticks`, `controller_decisions`). The headline quotient —
//! sweep decisions/tick over active decisions/tick — is the measured
//! epoch-work reduction; at low load on the paper-scale 15-ary 2-flat
//! it should be well over 5×, and at saturation it approaches 1×
//! (every channel is busy, so the active set *is* the topology).
//!
//! The two runs of a point must also serialize byte-identical reports
//! — [`measure`] asserts it, making every benchmark run a cross-check
//! of the `EPNET_EPOCH` contract at scales the test suite never
//! reaches.

use epnet_sim::{SimConfig, SimTime, Simulator};
use epnet_topology::{FlattenedButterfly, RoutingTopology};
use epnet_workloads::UniformRandom;
use serde_json::Value;
use std::time::Instant;

/// Schema tag written into `BENCH_load.json`.
pub const SCHEMA: &str = "epnet-bench-load/v1";

/// Simulated horizon for the toy fabric (matches the canonical bench).
pub const SMALL_HORIZON: SimTime = SimTime::from_ms(10);

/// Simulated horizon for the paper-scale 15-ary 2-flat: 200 epochs —
/// enough for the active set to settle and the counters to dominate
/// startup — while keeping the full sweep's wall time in check.
pub const PAPER_HORIZON: SimTime = SimTime::from_ms(2);

/// Simulated horizon of the reduced (smoke) sweep.
pub const REDUCED_HORIZON: SimTime = SimTime::from_ms(2);

/// One point of the sweep: a fabric shape at one offered load.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Stable point name used in `BENCH_load.json`.
    pub name: String,
    /// `FlattenedButterfly::new(c, k, n)` shape.
    pub shape: (u16, u16, usize),
    /// Offered load as a fraction of each host's 40 Gb/s injection rate.
    pub load: f64,
    /// Simulated end time.
    pub horizon: SimTime,
}

/// The sweep: the toy FBFLY(2,8,2) across the full load range, plus
/// the paper-scale FBFLY(15,15,2) at the low loads where activity
/// proportionality pays. `reduced` trims it to two toy points for the
/// smoke suite.
pub fn sweep(reduced: bool) -> Vec<LoadPoint> {
    let point = |shape: (u16, u16, usize), load: f64, horizon| {
        let (c, k, n) = shape;
        LoadPoint {
            name: format!("fbfly_{c}x{k}x{n}@{}%", load * 100.0),
            shape,
            load,
            horizon,
        }
    };
    if reduced {
        return vec![
            point((2, 8, 2), 0.025, REDUCED_HORIZON),
            point((2, 8, 2), 0.25, REDUCED_HORIZON),
        ];
    }
    let mut points: Vec<LoadPoint> = [0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|load| point((2, 8, 2), load, SMALL_HORIZON))
        .collect();
    points.extend(
        [0.025, 0.05, 0.1, 0.25]
            .into_iter()
            .map(|load| point((15, 15, 2), load, PAPER_HORIZON)),
    );
    points
}

/// One epoch mode's measurements at one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ModeRun {
    /// Wall-clock duration of the run, in milliseconds.
    pub wall_ms: f64,
    /// Events popped by the engine's scheduler.
    pub sim_events: u64,
    /// Epoch ticks processed.
    pub epoch_ticks: u64,
    /// Controller rate decisions evaluated across the run.
    pub controller_decisions: u64,
    /// Wall time attributed to the "controller" phase, in milliseconds.
    pub controller_wall_ms: f64,
}

impl ModeRun {
    /// Engine events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.sim_events as f64 * 1e3 / self.wall_ms
    }

    /// Mean controller decisions per epoch tick — the O(·) being
    /// measured.
    pub fn decisions_per_tick(&self) -> f64 {
        if self.epoch_ticks == 0 {
            return 0.0;
        }
        self.controller_decisions as f64 / self.epoch_ticks as f64
    }

    fn to_value(self) -> Value {
        Value::Map(vec![
            ("wall_ms".into(), Value::F64(self.wall_ms)),
            ("events_per_sec".into(), Value::F64(self.events_per_sec())),
            (
                "decisions_per_tick".into(),
                Value::F64(self.decisions_per_tick()),
            ),
            ("epoch_ticks".into(), Value::U64(self.epoch_ticks)),
            (
                "controller_decisions".into(),
                Value::U64(self.controller_decisions),
            ),
            (
                "controller_wall_ms".into(),
                Value::F64(self.controller_wall_ms),
            ),
            ("sim_events".into(), Value::U64(self.sim_events)),
        ])
    }
}

/// One measured sweep point: both epoch modes, interleaved.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Point name.
    pub name: String,
    /// Host count of the fabric.
    pub hosts: u64,
    /// Channel count of the fabric.
    pub channels: u64,
    /// Offered load fraction.
    pub load: f64,
    /// The `EPNET_EPOCH=sweep` reference run.
    pub sweep: ModeRun,
    /// The active-set (default) run.
    pub active: ModeRun,
}

impl LoadRun {
    /// Sweep decisions/tick over active decisions/tick: how many times
    /// less controller work the active set does per epoch.
    pub fn decisions_speedup(&self) -> f64 {
        let active = self.active.decisions_per_tick();
        if active == 0.0 {
            // A fully quiescent active run: report the sweep's work as
            // the factor (it did that many decisions to the set's 0).
            return self.sweep.decisions_per_tick().max(1.0);
        }
        self.sweep.decisions_per_tick() / active
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("hosts".into(), Value::U64(self.hosts)),
            ("channels".into(), Value::U64(self.channels)),
            ("offered_load".into(), Value::F64(self.load)),
            ("sweep".into(), self.sweep.to_value()),
            ("active".into(), self.active.to_value()),
            (
                "decisions_speedup".into(),
                Value::F64(self.decisions_speedup()),
            ),
        ])
    }
}

fn run_mode(point: &LoadPoint, mode: &str) -> (ModeRun, String) {
    // Selection happens at `Simulator::new`; the benchmark owns the
    // process, so setting the variable here is race-free.
    std::env::set_var("EPNET_EPOCH", mode);
    let (c, k, n) = point.shape;
    let fabric = FlattenedButterfly::new(c, k, n)
        .expect("sweep shapes are valid")
        .build_fabric();
    let hosts = fabric.num_hosts() as u32;
    let source = UniformRandom::builder(hosts)
        .offered_load(point.load)
        .horizon(point.horizon)
        .build();
    let sim = Simulator::new(fabric, SimConfig::default(), source);
    let start = Instant::now();
    let report = sim.run_until(point.horizon);
    let wall = start.elapsed();
    std::env::remove_var("EPNET_EPOCH");
    let controller_wall_ms = report
        .phases
        .iter()
        .filter(|p| p.name == "controller")
        .map(|p| p.wall_ns as f64 / 1e6)
        .sum();
    let run = ModeRun {
        wall_ms: wall.as_secs_f64() * 1e3,
        sim_events: report.events_processed,
        epoch_ticks: report.epoch_ticks,
        controller_decisions: report.controller_decisions,
        controller_wall_ms,
    };
    let serialized = serde_json::to_string_pretty(&report).expect("report serializes");
    (run, serialized)
}

/// Runs one sweep point in both epoch modes (sweep first) and asserts
/// their serialized reports agree byte for byte.
///
/// # Panics
///
/// Panics if the two modes' reports differ — that is a correctness bug
/// in the active-set path, and a benchmark of it would be meaningless.
pub fn measure(point: &LoadPoint) -> LoadRun {
    let (c, k, n) = point.shape;
    let fabric = FlattenedButterfly::new(c, k, n)
        .expect("sweep shapes are valid")
        .build_fabric();
    let (hosts, channels) = (fabric.num_hosts() as u64, fabric.num_channels() as u64);
    drop(fabric);
    let (swept, swept_report) = run_mode(point, "sweep");
    let (active, active_report) = run_mode(point, "active");
    assert_eq!(
        swept_report, active_report,
        "{}: epoch modes must serialize byte-identical reports",
        point.name
    );
    LoadRun {
        name: point.name.clone(),
        hosts,
        channels,
        load: point.load,
        sweep: swept,
        active,
    }
}

/// Renders runs as the `BENCH_load.json` document.
pub fn render(runs: &[LoadRun]) -> String {
    let doc = Value::Map(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        (
            "scenario".into(),
            Value::Str(
                "uniform-random 512KiB load sweep, EPNET_EPOCH sweep vs active-set, interleaved"
                    .into(),
            ),
        ),
        (
            "benches".into(),
            Value::Seq(runs.iter().map(LoadRun::to_value).collect()),
        ),
    ]);
    let mut out = serde_json::to_string_pretty(&doc).expect("value tree serializes");
    out.push('\n');
    out
}

/// Path of `BENCH_load.json` at the repository root.
pub fn output_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_load.json")
}

/// Validates a `BENCH_load.json` document; returns its bench names.
///
/// # Errors
///
/// Describes the first missing or mistyped field.
pub fn validate(doc: &str) -> Result<Vec<String>, String> {
    let v: Value = serde_json::from_str(doc).map_err(|e| format!("not JSON: {e}"))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema '{other}'")),
        None => return Err("missing 'schema'".into()),
    }
    let benches = v
        .get("benches")
        .and_then(Value::as_seq)
        .ok_or("missing 'benches' array")?;
    if benches.is_empty() {
        return Err("'benches' is empty".into());
    }
    let mut names = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or("bench missing 'name'")?;
        let load = b
            .get("offered_load")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench '{name}' missing 'offered_load'"))?;
        if !(load > 0.0 && load <= 1.0) {
            return Err(format!("bench '{name}' has out-of-range 'offered_load'"));
        }
        for field in ["hosts", "channels"] {
            if b.get(field).and_then(Value::as_u64).is_none() {
                return Err(format!("bench '{name}' missing '{field}'"));
            }
        }
        for mode in ["sweep", "active"] {
            let m = b
                .get(mode)
                .ok_or_else(|| format!("bench '{name}' missing '{mode}'"))?;
            for field in ["wall_ms", "events_per_sec"] {
                let rate = m
                    .get(field)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("bench '{name}' {mode} missing '{field}'"))?;
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("bench '{name}' {mode} has non-positive '{field}'"));
                }
            }
            for field in ["decisions_per_tick", "controller_wall_ms"] {
                let x = m
                    .get(field)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("bench '{name}' {mode} missing '{field}'"))?;
                if !(x.is_finite() && x >= 0.0) {
                    return Err(format!("bench '{name}' {mode} has invalid '{field}'"));
                }
            }
            for field in ["epoch_ticks", "controller_decisions", "sim_events"] {
                if m.get(field).and_then(Value::as_u64).is_none() {
                    return Err(format!("bench '{name}' {mode} missing '{field}'"));
                }
            }
            if m.get("epoch_ticks").and_then(Value::as_u64) == Some(0) {
                return Err(format!("bench '{name}' {mode} processed no epochs"));
            }
        }
        let speedup = b
            .get("decisions_speedup")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench '{name}' missing 'decisions_speedup'"))?;
        if !(speedup.is_finite() && speedup > 0.0) {
            return Err(format!("bench '{name}' has invalid 'decisions_speedup'"));
        }
        names.push(name.to_string());
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mode(decisions: u64) -> ModeRun {
        ModeRun {
            wall_ms: 10.0,
            sim_events: 1_000,
            epoch_ticks: 100,
            controller_decisions: decisions,
            controller_wall_ms: 0.5,
        }
    }

    fn sample_run(name: &str) -> LoadRun {
        LoadRun {
            name: name.to_string(),
            hosts: 16,
            channels: 88,
            load: 0.025,
            sweep: sample_mode(8_800),
            active: sample_mode(880),
        }
    }

    #[test]
    fn rendered_document_validates() {
        let runs = vec![
            sample_run("fbfly_2x8x2@2.5%"),
            sample_run("fbfly_2x8x2@25%"),
        ];
        let doc = render(&runs);
        let names = validate(&doc).expect("schema holds");
        assert_eq!(names, vec!["fbfly_2x8x2@2.5%", "fbfly_2x8x2@25%"]);
    }

    #[test]
    fn speedup_is_the_decisions_quotient() {
        let run = sample_run("x");
        assert_eq!(run.sweep.decisions_per_tick(), 88.0);
        assert_eq!(run.active.decisions_per_tick(), 8.8);
        assert!((run.decisions_speedup() - 10.0).abs() < 1e-12);
        // A fully quiescent active run reports the sweep's work.
        let mut q = sample_run("q");
        q.active.controller_decisions = 0;
        assert_eq!(q.decisions_speedup(), 88.0);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"schema": "epnet-bench-load/v1"}"#).is_err());
        assert!(
            validate(r#"{"schema": "epnet-bench-load/v1", "benches": []}"#).is_err(),
            "empty bench list must be rejected"
        );
        // Dropping either mode object must fail.
        let doc = render(&[sample_run("x")]);
        let broken = doc.replace("\"active\"", "\"inactive\"");
        assert!(validate(&broken).is_err());
    }

    #[test]
    fn sweep_covers_low_load_on_the_paper_fabric() {
        let full = sweep(false);
        assert!(full.iter().any(|p| p.shape == (15, 15, 2) && p.load <= 0.1));
        assert!(full.iter().any(|p| p.shape == (2, 8, 2) && p.load == 1.0));
        let reduced = sweep(true);
        assert!(reduced.len() < full.len());
        assert!(reduced.iter().all(|p| p.shape == (2, 8, 2)));
    }
}
