//! The topology-scaling benchmark behind `BENCH_scale.json`.
//!
//! Where `enginebench` pins one canonical scenario, this sweep grows
//! the fabric from the toy FBFLY(2,8,2) up to the paper's 15-ary
//! 2-flat (225 hosts, Figure 7/8 scale) plus the bisection-comparable
//! [`TwoTierClos`], running the same merged uniform-random + search
//! traffic recipe at every point. Each point reports throughput
//! (events/s, delivered bytes/s) *and* allocator behaviour: the run is
//! split at half the horizon via the engine's phased
//! `prime`/`advance_until`/`finalize` API, and a counting global
//! allocator (installed by the `scalebench` binary — `std::alloc`
//! only, no external crates) measures heap allocations across the
//! second half. A warmed-up engine recycles packets, messages, credit
//! buffers, and queue storage from free-lists, so allocations per
//! event in that window should be ~0; `BENCH_scale.json` records the
//! figure and the smoke suite schema-validates it.

use crate::enginebench::CanonicalSource;
use epnet_power::LinkPowerProfile;
use epnet_sim::{MergedSource, Message, SimConfig, SimModel, SimTime, Simulator, TrafficSource};
use epnet_topology::{FlattenedButterfly, RoutingTopology, TwoTierClos};
use epnet_workloads::{ServiceTrace, ServiceTraceConfig, UniformRandom};
use serde_json::Value;
use std::time::Instant;

/// Schema tag written into `BENCH_scale.json`. `v2` added the
/// `threads` axis (the `EPNET_PAR` sweep on the canonical point); `v3`
/// renamed its `hardware_threads` field to `hw_threads` and added the
/// `lookahead` probe (window-shape diagnostics comparing the pairwise
/// lookahead matrix against the legacy global bound); `v4` added the
/// hybrid flow/packet model: a `model` field on every bench, hybrid
/// sweep points at Solnushkin scale (10^5+ hosts), and the `models`
/// validation axis comparing delivered bytes and relative power
/// between the two models on every small packet-mode point; `v5` added
/// the parallel hybrid engine: the [`MILLION_HOSTS`]
/// `hybrid_fbfly_32x32x4` sweep point (with pinned peak-heap-per-host
/// and wall-clock budgets) and the `hybrid_threads` axis — the
/// `EPNET_PAR` sweep on that million-host point, byte-identity
/// asserted at every width.
pub const SCHEMA: &str = "epnet-bench-scale/v5";

/// Worker widths measured by the threads axis, matching the
/// determinism matrix in `tests/tests/par_modes.rs`. Width 0 stands
/// for the serial engine (`EPNET_PAR` unset) and is always measured
/// first as the speedup baseline.
pub const THREAD_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Worker widths measured by the `hybrid_threads` axis. Narrower than
/// [`THREAD_WIDTHS`]: every run simulates the [`MILLION_HOSTS`] fabric
/// end to end, and width 8 adds no information a 1–4 sweep does not
/// already give about the coordinator's per-width overhead.
pub const HYBRID_THREAD_WIDTHS: [usize; 3] = [1, 2, 4];

/// Host count of the `hybrid_fbfly_32x32x4` sweep point — the first
/// true 10^6-host measured point (`FlattenedButterfly::grouped(32, 32,
/// 4)`: 2^20 hosts on 32,768 switches).
pub const MILLION_HOSTS: u64 = 1 << 20;

/// Peak live heap per host the hybrid benches must stay under, in
/// bytes. The million-host point measures 1,203 B/host (the channel
/// state dominates: ~4.9 channels/host at ~230 B each); the bound
/// leaves ~3.4× headroom for state growth without letting per-host
/// memory drift back toward packet-simulation territory.
pub const HYBRID_PEAK_HEAP_PER_HOST: u64 = 4096;

/// Wall-clock budget of the million-host hybrid bench, milliseconds.
/// The measured serial run completes its full 2 ms horizon in ~25 s on
/// the reference container; the budget leaves ~5× headroom for slower
/// hardware while still catching a complexity regression (a packet
/// simulation of the same point would be hours, not minutes).
pub const MILLION_HOST_WALL_BUDGET_MS: f64 = 120_000.0;

/// Simulated horizon of the full sweep (matches the canonical bench).
pub const FULL_HORIZON: SimTime = SimTime::from_ms(10);

/// Simulated horizon of the reduced (smoke) sweep. Long enough that
/// every free-list reaches its high-water mark before the half-horizon
/// allocation-meter window opens — the search-like workload keeps
/// producing never-seen-before burst sizes for the first millisecond
/// or so.
pub const REDUCED_HORIZON: SimTime = SimTime::from_ms(2);

/// Message size of the [`Recipe::BulkFlows`] workload: well past the
/// engine's 64 KiB absorption threshold, so the hybrid model carries
/// essentially all of the traffic as fluid flows.
pub const BULK_MESSAGE_BYTES: u64 = 4 * 1024 * 1024;

/// Offered load of the [`Recipe::BulkFlows`] workload, as a fraction
/// of the 40 Gb/s host line rate. Low enough that the Solnushkin-scale
/// points stay uncongested (no packet demotions), high enough that the
/// epoch controller sees real utilization.
pub const BULK_LOAD: f64 = 0.05;

/// One topology in the sweep.
#[derive(Debug, Clone, Copy)]
pub enum ScaleTopo {
    /// `FlattenedButterfly::new(c, k, n)`.
    Fbfly {
        /// Concentration (hosts per switch).
        c: u16,
        /// Radix of each dimension.
        k: u16,
        /// Flat dimension count.
        n: usize,
    },
    /// `FlattenedButterfly::grouped(c, k, n)` — the Solnushkin-style
    /// scale targets (same construction, named for intent: grouped
    /// racks at 10^3–10^5 hosts).
    FbflyGrouped {
        /// Concentration (hosts per switch).
        c: u16,
        /// Radix of each dimension.
        k: u16,
        /// Flat dimension count.
        n: usize,
    },
    /// `TwoTierClos::non_blocking(c)`.
    ClosNonBlocking {
        /// Concentration (hosts per leaf).
        c: u16,
    },
    /// `TwoTierClos::multi_pod(c, pods)` — the multi-pod datacenter
    /// Clos scale target.
    ClosMultiPod {
        /// Concentration (hosts per leaf).
        c: u16,
        /// Pod count (each pod is `c` leaves).
        pods: u32,
    },
}

/// Traffic recipe of a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recipe {
    /// The canonical mix: 30% uniform-random merged with search-like
    /// bursts — every packet-mode point runs this.
    Canonical,
    /// Bulk steady flows: uniform-random [`BULK_MESSAGE_BYTES`]
    /// messages at [`BULK_LOAD`] load — the Solnushkin-scale recipe
    /// whose long transfers the hybrid model aggregates into fluid
    /// flow state.
    BulkFlows,
}

/// One point of the sweep: a topology plus its simulated horizon,
/// traffic recipe, and simulation model.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Stable point name used in `BENCH_scale.json`.
    pub name: String,
    /// The fabric to build.
    pub topo: ScaleTopo,
    /// Simulated end time.
    pub horizon: SimTime,
    /// Traffic recipe to run.
    pub recipe: Recipe,
    /// Simulation model ([`SimModel::Packet`] or [`SimModel::Hybrid`]).
    pub model: SimModel,
}

/// Stable lowercase name of a model, as written into
/// `BENCH_scale.json` (matches the `EPNET_MODEL` values).
pub fn model_name(model: SimModel) -> &'static str {
    match model {
        SimModel::Packet => "packet",
        SimModel::Hybrid => "hybrid",
    }
}

/// The sweep: canonical toy up to the paper-scale 15-ary 2-flat, plus
/// the non-blocking two-tier Clos, followed by the hybrid-model
/// Solnushkin-scale points (appended last so every packet point keeps
/// its historical position). `reduced` trims the packet points to the
/// smallest three at a 2 ms horizon for the smoke suite but keeps the
/// ≥10^5-host hybrid point — reaching that scale is the hybrid
/// model's acceptance criterion, and only the flow abstraction makes
/// it affordable.
pub fn sweep(reduced: bool) -> Vec<ScalePoint> {
    let horizon = if reduced {
        REDUCED_HORIZON
    } else {
        FULL_HORIZON
    };
    let point = |name: &str, topo| ScalePoint {
        name: name.to_string(),
        topo,
        horizon,
        recipe: Recipe::Canonical,
        model: SimModel::Packet,
    };
    let hybrid = |name: &str, topo| ScalePoint {
        name: name.to_string(),
        topo,
        // Hybrid points always run the reduced horizon: the fluid
        // regime reaches steady state within a few hundred epochs, and
        // the point of these entries is scale, not duration.
        horizon: REDUCED_HORIZON,
        recipe: Recipe::BulkFlows,
        model: SimModel::Hybrid,
    };
    let mut points = vec![
        point("fbfly_2x8x2", ScaleTopo::Fbfly { c: 2, k: 8, n: 2 }),
        point("fbfly_4x8x2", ScaleTopo::Fbfly { c: 4, k: 8, n: 2 }),
        point("clos_nb4", ScaleTopo::ClosNonBlocking { c: 4 }),
    ];
    if !reduced {
        points.push(point("fbfly_8x8x2", ScaleTopo::Fbfly { c: 8, k: 8, n: 2 }));
        // The grouped 3-flat: two switch dimensions, so dimension-1
        // links are optical while dimension-0 stays electrical — the
        // link heterogeneity the pairwise lookahead matrix exploits
        // (contiguous shards cut only the optical dimension). This is
        // the lookahead probe's point in the full sweep.
        points.push(point("fbfly_8x4x3", ScaleTopo::Fbfly { c: 8, k: 4, n: 3 }));
        points.push(point("clos_nb8", ScaleTopo::ClosNonBlocking { c: 8 }));
        points.push(point(
            "fbfly_15x15x2",
            ScaleTopo::Fbfly { c: 15, k: 15, n: 2 },
        ));
    }
    // Hybrid-model scale points, smallest first: the 960-host grouped
    // 3-flat (cheap enough for the in-process smoke twin), the 4,096-
    // host multi-pod Clos (full sweep only), the 131,072-host grouped
    // 4-flat — past the 10^5-host Solnushkin threshold that a packet
    // simulation cannot reach — and the 2^20-host grouped 4-flat, the
    // first true million-host measured point.
    points.push(hybrid(
        "hybrid_fbfly_15x8x3",
        ScaleTopo::FbflyGrouped { c: 15, k: 8, n: 3 },
    ));
    if !reduced {
        points.push(hybrid(
            "hybrid_clos_16p16",
            ScaleTopo::ClosMultiPod { c: 16, pods: 16 },
        ));
    }
    points.push(hybrid(
        "hybrid_fbfly_32x16x4",
        ScaleTopo::FbflyGrouped { c: 32, k: 16, n: 4 },
    ));
    points.push(hybrid(
        "hybrid_fbfly_32x32x4",
        ScaleTopo::FbflyGrouped { c: 32, k: 32, n: 4 },
    ));
    points
}

/// The sweep point the packet-model threads axis and the lookahead
/// probe run on: the last *packet-model* point. The hybrid tail has
/// its own axis ([`hybrid_axis_point`]) — mixing models here would
/// make the two speedup columns incomparable across schema versions.
///
/// # Panics
///
/// Panics if the sweep has no packet-model point.
pub fn axis_point(points: &[ScalePoint]) -> &ScalePoint {
    points
        .iter()
        .rev()
        .find(|p| p.model == SimModel::Packet)
        .expect("sweep always has packet points")
}

/// The sweep point the `hybrid_threads` axis runs on: the last hybrid
/// point — the million-host grouped flat in both the full and reduced
/// sweeps.
///
/// # Panics
///
/// Panics if the sweep has no hybrid-model point.
pub fn hybrid_axis_point(points: &[ScalePoint]) -> &ScalePoint {
    points
        .iter()
        .rev()
        .find(|p| p.model == SimModel::Hybrid)
        .expect("sweep always has hybrid points")
}

/// The sweep point the lookahead probe runs on: the grouped 3-flat in
/// the full sweep (where cross-shard links are optical and the
/// pairwise bound is 6× the global floor), the first point under
/// `--reduced`.
pub fn lookahead_point(points: &[ScalePoint]) -> &ScalePoint {
    points
        .iter()
        .find(|p| p.name == "fbfly_8x4x3")
        .unwrap_or(&points[0])
}

/// A sweep point's traffic source: one variant per [`Recipe`].
#[derive(Debug)]
pub enum ScaleSource {
    /// [`Recipe::Canonical`] — the merged uniform + search mix
    /// (boxed: the merged generator dwarfs the bulk variant).
    Canonical(Box<CanonicalSource>),
    /// [`Recipe::BulkFlows`] — bulk uniform-random transfers.
    Bulk(UniformRandom),
}

impl TrafficSource for ScaleSource {
    fn next_message(&mut self) -> Option<Message> {
        match self {
            ScaleSource::Canonical(s) => s.next_message(),
            ScaleSource::Bulk(s) => s.next_message(),
        }
    }
}

/// Builds a simulator for one sweep point: the point's topology,
/// recipe (scaled to its host count), and simulation model.
pub fn simulator_for(point: &ScalePoint) -> Simulator<ScaleSource> {
    let fabric = match point.topo {
        ScaleTopo::Fbfly { c, k, n } => FlattenedButterfly::new(c, k, n)
            .expect("sweep shapes are valid")
            .build_fabric(),
        ScaleTopo::FbflyGrouped { c, k, n } => FlattenedButterfly::grouped(c, k, n)
            .expect("sweep shapes are valid")
            .build_fabric(),
        ScaleTopo::ClosNonBlocking { c } => TwoTierClos::non_blocking(c)
            .expect("sweep shapes are valid")
            .build_fabric(),
        ScaleTopo::ClosMultiPod { c, pods } => TwoTierClos::multi_pod(c, pods)
            .expect("sweep shapes are valid")
            .build_fabric(),
    };
    let hosts = fabric.num_hosts() as u32;
    let source = match point.recipe {
        Recipe::Canonical => ScaleSource::Canonical(Box::new(MergedSource::new(
            UniformRandom::builder(hosts)
                .offered_load(0.3)
                .horizon(point.horizon)
                .build(),
            ServiceTrace::builder(hosts, ServiceTraceConfig::search_like())
                .horizon(point.horizon)
                .build(),
        ))),
        Recipe::BulkFlows => ScaleSource::Bulk(
            UniformRandom::builder(hosts)
                .message_bytes(BULK_MESSAGE_BYTES)
                .offered_load(BULK_LOAD)
                .horizon(point.horizon)
                .build(),
        ),
    };
    Simulator::with_model(fabric, SimConfig::default(), source, point.model)
}

/// Heap-allocation counts over a measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocWindow {
    /// Allocation calls (alloc + realloc) inside the window.
    pub allocs: u64,
    /// Peak bytes live at any instant inside the window.
    pub peak_bytes: u64,
}

/// Hook pair around the steady-state measurement window, implemented
/// by whoever owns the process's counting allocator (the `scalebench`
/// binary, or a test harness). [`NoopMeter`] reports zeros for callers
/// without one.
pub trait AllocMeter {
    /// Marks the start of the window (typically: snapshot the counter
    /// and reset the peak to the current live size).
    fn begin(&self);
    /// Closes the window and returns its counts.
    fn end(&self) -> AllocWindow;
}

/// An [`AllocMeter`] for processes without a counting allocator.
pub struct NoopMeter;

impl AllocMeter for NoopMeter {
    fn begin(&self) {}
    fn end(&self) -> AllocWindow {
        AllocWindow::default()
    }
}

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Point name.
    pub name: String,
    /// Simulation model the point ran under.
    pub model: SimModel,
    /// Host count of the fabric.
    pub hosts: u64,
    /// Channel count of the fabric.
    pub channels: u64,
    /// Wall-clock duration of the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Events popped by the engine's scheduler.
    pub sim_events: u64,
    /// Packets delivered end to end.
    pub sim_packets: u64,
    /// Bytes delivered end to end.
    pub sim_delivered_bytes: u64,
    /// Events inside the steady-state (second-half) window.
    pub measured_events: u64,
    /// Heap allocations inside that window.
    pub measured_allocs: u64,
    /// Peak live heap bytes inside that window.
    pub peak_alloc_bytes: u64,
}

impl ScaleRun {
    /// Engine events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.sim_events as f64 * 1e3 / self.wall_ms
    }

    /// Delivered payload bytes per wall-clock second.
    pub fn delivered_bytes_per_sec(&self) -> f64 {
        self.sim_delivered_bytes as f64 * 1e3 / self.wall_ms
    }

    /// Heap allocations per event in the steady-state window.
    pub fn allocs_per_event(&self) -> f64 {
        if self.measured_events == 0 {
            return 0.0;
        }
        self.measured_allocs as f64 / self.measured_events as f64
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("model".into(), Value::Str(model_name(self.model).into())),
            ("hosts".into(), Value::U64(self.hosts)),
            ("channels".into(), Value::U64(self.channels)),
            ("events_per_sec".into(), Value::F64(self.events_per_sec())),
            (
                "delivered_bytes_per_sec".into(),
                Value::F64(self.delivered_bytes_per_sec()),
            ),
            (
                "allocs_per_event".into(),
                Value::F64(self.allocs_per_event()),
            ),
            ("peak_alloc_bytes".into(), Value::U64(self.peak_alloc_bytes)),
            ("measured_events".into(), Value::U64(self.measured_events)),
            ("measured_allocs".into(), Value::U64(self.measured_allocs)),
            ("sim_events".into(), Value::U64(self.sim_events)),
            ("sim_packets".into(), Value::U64(self.sim_packets)),
            (
                "sim_delivered_bytes".into(),
                Value::U64(self.sim_delivered_bytes),
            ),
            ("wall_ms".into(), Value::F64(self.wall_ms)),
        ])
    }
}

/// One width of the threads axis.
#[derive(Debug, Clone, Copy)]
pub struct ThreadsRun {
    /// Worker width (`EPNET_PAR`); 0 is the serial engine.
    pub threads: u64,
    /// Wall-clock duration of the run, in milliseconds.
    pub wall_ms: f64,
    /// Events popped by the engine (identical at every width — the
    /// reports are asserted byte-identical before this is recorded).
    pub sim_events: u64,
}

impl ThreadsRun {
    /// Engine events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.sim_events as f64 * 1e3 / self.wall_ms
    }
}

/// The threads axis: one sweep point re-run at every `EPNET_PAR`
/// width, against the serial engine as baseline.
#[derive(Debug, Clone)]
pub struct ThreadsAxis {
    /// Name of the sweep point the axis ran on.
    pub point: String,
    /// Hardware threads the host actually offers — the honest context
    /// for the speedup column (a 1-hardware-thread container cannot
    /// speed up, it can only measure determinism overhead).
    pub hw_threads: u64,
    /// Serial baseline first, then one entry per width.
    pub runs: Vec<ThreadsRun>,
}

/// Measures the threads axis on `point` at [`THREAD_WIDTHS`]; see
/// [`measure_threads_over`].
pub fn measure_threads(point: &ScalePoint) -> ThreadsAxis {
    measure_threads_over(point, &THREAD_WIDTHS)
}

/// Measures a threads axis on `point`: the serial engine first, then
/// `EPNET_PAR` at each of `widths`, each a fresh full run of the
/// identical scenario.
///
/// Every parallel report is asserted **byte-identical** to the serial
/// one before its timing is recorded — a wrong-but-fast engine never
/// makes it into `BENCH_scale.json`. The prior `EPNET_PAR` value is
/// restored on return.
///
/// # Panics
///
/// Panics if any width's serialized report differs from serial.
pub fn measure_threads_over(point: &ScalePoint, widths: &[usize]) -> ThreadsAxis {
    let prior = std::env::var("EPNET_PAR").ok();
    std::env::remove_var("EPNET_PAR");
    let one = |threads: u64| -> (ThreadsRun, String) {
        let sim = simulator_for(point);
        let start = Instant::now();
        let report = sim.run_until(point.horizon);
        let wall = start.elapsed();
        let doc = serde_json::to_string_pretty(&report).expect("report serializes");
        (
            ThreadsRun {
                threads,
                wall_ms: wall.as_secs_f64() * 1e3,
                sim_events: report.events_processed,
            },
            doc,
        )
    };
    let (serial, serial_doc) = one(0);
    let mut runs = vec![serial];
    for &width in widths {
        std::env::set_var("EPNET_PAR", width.to_string());
        let (run, doc) = one(width as u64);
        assert_eq!(
            doc, serial_doc,
            "{}: EPNET_PAR={width} report diverged from serial",
            point.name
        );
        runs.push(run);
    }
    match prior {
        Some(v) => std::env::set_var("EPNET_PAR", v),
        None => std::env::remove_var("EPNET_PAR"),
    }
    ThreadsAxis {
        point: point.name.clone(),
        hw_threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        runs,
    }
}

/// Window-shape diagnostics of one parallel run under one lookahead
/// mode, lifted from [`SimReport::diagnostics`].
///
/// [`SimReport::diagnostics`]: epnet_sim::SimReport::diagnostics
#[derive(Debug, Clone)]
pub struct LookaheadRun {
    /// `"pairwise"` or `"global"` (the `EPNET_PAR_LOOKAHEAD` value).
    pub mode: &'static str,
    /// Coordinator windows executed.
    pub windows: u64,
    /// Events executed inside those windows.
    pub window_events: u64,
    /// Exec-log records walked by the barrier replay.
    pub replay_events: u64,
    /// Per-(sender, receiver) cross-shard mirror batches applied.
    pub cross_batches: u64,
    /// Cross-shard events inside those batches.
    pub cross_events: u64,
    /// Tightest window bound in effect, in picoseconds (0 = unbounded).
    pub lookahead_ps: u64,
    /// Wall-clock duration of the run, in milliseconds.
    pub wall_ms: f64,
}

impl LookaheadRun {
    /// Mean events executed per window — the barrier-amortization
    /// figure the pairwise matrix exists to raise.
    pub fn mean_events_per_window(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.window_events as f64 / self.windows as f64
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("mode".into(), Value::Str(self.mode.into())),
            ("windows".into(), Value::U64(self.windows)),
            ("window_events".into(), Value::U64(self.window_events)),
            (
                "mean_events_per_window".into(),
                Value::F64(self.mean_events_per_window()),
            ),
            ("replay_events".into(), Value::U64(self.replay_events)),
            ("cross_batches".into(), Value::U64(self.cross_batches)),
            ("cross_events".into(), Value::U64(self.cross_events)),
            ("lookahead_ps".into(), Value::U64(self.lookahead_ps)),
            ("wall_ms".into(), Value::F64(self.wall_ms)),
        ])
    }
}

/// The lookahead probe: the same point run at a fixed width under the
/// pairwise matrix (the default) and the legacy global bound, reports
/// asserted byte-identical, window shapes compared.
#[derive(Debug, Clone)]
pub struct LookaheadAxis {
    /// Name of the sweep point the probe ran on.
    pub point: String,
    /// Worker width (`EPNET_PAR`) used for both runs.
    pub width: u64,
    /// The pairwise-matrix run (default mode).
    pub pairwise: LookaheadRun,
    /// The fabric-wide-minimum run (`EPNET_PAR_LOOKAHEAD=global`).
    pub global: LookaheadRun,
}

impl LookaheadAxis {
    /// How many more events each barrier amortizes under the pairwise
    /// matrix than under the global bound.
    pub fn amortization_ratio(&self) -> f64 {
        let g = self.global.mean_events_per_window();
        if g == 0.0 {
            return 0.0;
        }
        self.pairwise.mean_events_per_window() / g
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("point".into(), Value::Str(self.point.clone())),
            ("width".into(), Value::U64(self.width)),
            (
                "amortization_ratio".into(),
                Value::F64(self.amortization_ratio()),
            ),
            (
                "modes".into(),
                Value::Seq(vec![self.pairwise.to_value(), self.global.to_value()]),
            ),
        ])
    }
}

/// Worker width the lookahead probe runs at.
pub const LOOKAHEAD_WIDTH: usize = 4;

/// Measures the lookahead probe on `point` at [`LOOKAHEAD_WIDTH`]
/// shards: pairwise (default) first, then `EPNET_PAR_LOOKAHEAD=global`.
/// Prior values of both env vars are restored on return.
///
/// # Panics
///
/// Panics if the two serialized reports differ — the lookahead mode
/// must only change window shapes, never bytes.
pub fn measure_lookahead(point: &ScalePoint) -> LookaheadAxis {
    let prior_par = std::env::var("EPNET_PAR").ok();
    let prior_mode = std::env::var("EPNET_PAR_LOOKAHEAD").ok();
    std::env::set_var("EPNET_PAR", LOOKAHEAD_WIDTH.to_string());
    let one = |mode: &'static str| -> (LookaheadRun, String) {
        let sim = simulator_for(point);
        let start = Instant::now();
        let report = sim.run_until(point.horizon);
        let wall = start.elapsed();
        let doc = serde_json::to_string_pretty(&report).expect("report serializes");
        let d = |k: &str| *report.diagnostics.get(k).unwrap_or(&0);
        (
            LookaheadRun {
                mode,
                windows: d("par_windows"),
                window_events: d("par_window_events"),
                replay_events: d("par_replay_events"),
                cross_batches: d("par_cross_batches"),
                cross_events: d("par_cross_events"),
                lookahead_ps: d("par_lookahead_ps"),
                wall_ms: wall.as_secs_f64() * 1e3,
            },
            doc,
        )
    };
    std::env::remove_var("EPNET_PAR_LOOKAHEAD");
    let (pairwise, pairwise_doc) = one("pairwise");
    std::env::set_var("EPNET_PAR_LOOKAHEAD", "global");
    let (global, global_doc) = one("global");
    match prior_par {
        Some(v) => std::env::set_var("EPNET_PAR", v),
        None => std::env::remove_var("EPNET_PAR"),
    }
    match prior_mode {
        Some(v) => std::env::set_var("EPNET_PAR_LOOKAHEAD", v),
        None => std::env::remove_var("EPNET_PAR_LOOKAHEAD"),
    }
    assert_eq!(
        pairwise_doc, global_doc,
        "{}: lookahead mode changed the serialized report",
        point.name
    );
    LookaheadAxis {
        point: point.name.clone(),
        width: LOOKAHEAD_WIDTH as u64,
        pairwise,
        global,
    }
}

impl ThreadsAxis {
    fn to_value(&self) -> Value {
        let baseline = self.runs[0].wall_ms;
        Value::Map(vec![
            ("point".into(), Value::Str(self.point.clone())),
            ("hw_threads".into(), Value::U64(self.hw_threads)),
            (
                "runs".into(),
                Value::Seq(
                    self.runs
                        .iter()
                        .map(|r| {
                            Value::Map(vec![
                                ("threads".into(), Value::U64(r.threads)),
                                ("wall_ms".into(), Value::F64(r.wall_ms)),
                                ("events_per_sec".into(), Value::F64(r.events_per_sec())),
                                ("speedup_vs_serial".into(), Value::F64(baseline / r.wall_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs one sweep point, metering allocations across the second half
/// of the horizon (well past the engine's 50 µs statistical warmup, so
/// every free-list has reached its high-water mark).
pub fn measure(point: &ScalePoint, meter: &dyn AllocMeter) -> ScaleRun {
    let mut sim = simulator_for(point);
    let hosts = sim.fabric().num_hosts() as u64;
    let channels = sim.fabric().num_channels() as u64;
    let boundary = SimTime::from_ps(point.horizon.as_ps() / 2);
    let start = Instant::now();
    sim.prime(point.horizon);
    sim.advance_until(boundary);
    let warm_events = sim.events_processed();
    meter.begin();
    sim.advance_until(point.horizon);
    let window = meter.end();
    let measured_events = sim.events_processed() - warm_events;
    let report = sim.finalize();
    let wall = start.elapsed();
    ScaleRun {
        name: point.name.clone(),
        model: point.model,
        hosts,
        channels,
        wall_ms: wall.as_secs_f64() * 1e3,
        sim_events: report.events_processed,
        sim_packets: report.packets_delivered,
        sim_delivered_bytes: report.delivered_bytes,
        measured_events,
        measured_allocs: window.allocs,
        peak_alloc_bytes: window.peak_bytes,
    }
}

/// Documented agreement tolerance between the hybrid and packet models
/// on the small validation points: delivered-bytes relative error and
/// relative-power absolute error must both stay under this bound.
///
/// The residual disagreement is structural, not noise: the fluid
/// regime delivers a flow's bytes at the path fair share with no
/// queueing, serialization, or adaptive detours, while the packet
/// regime pays all three. Measured on the reduced sweep's canonical
/// recipe the errors sit near 1% (bytes ≤ 1.2%, relative power
/// ≤ 1.6%); the bound leaves ~3× headroom for workload drift. See
/// DESIGN.md ("Hybrid flow/packet model") for the methodology.
pub const HYBRID_TOLERANCE: f64 = 0.05;

/// One point of the models axis: the same fabric and traffic run under
/// both simulation models.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Name of the sweep point both models ran.
    pub point: String,
    /// Host count of the fabric.
    pub hosts: u64,
    /// End-to-end bytes delivered by the packet model.
    pub packet_delivered_bytes: u64,
    /// End-to-end bytes delivered by the hybrid model.
    pub hybrid_delivered_bytes: u64,
    /// Network power relative to baseline under the packet model
    /// (measured profile).
    pub packet_relative_power: f64,
    /// Network power relative to baseline under the hybrid model.
    pub hybrid_relative_power: f64,
    /// Wall-clock duration of the packet run, milliseconds.
    pub packet_wall_ms: f64,
    /// Wall-clock duration of the hybrid run, milliseconds.
    pub hybrid_wall_ms: f64,
}

impl ModelRun {
    /// Relative delivered-bytes error of the hybrid model against the
    /// packet baseline.
    pub fn bytes_rel_err(&self) -> f64 {
        if self.packet_delivered_bytes == 0 {
            return if self.hybrid_delivered_bytes == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.hybrid_delivered_bytes as f64 - self.packet_delivered_bytes as f64).abs()
            / self.packet_delivered_bytes as f64
    }

    /// Absolute relative-power error of the hybrid model against the
    /// packet baseline (both are already normalized to [0, 1]).
    pub fn power_abs_err(&self) -> f64 {
        (self.hybrid_relative_power - self.packet_relative_power).abs()
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("point".into(), Value::Str(self.point.clone())),
            ("hosts".into(), Value::U64(self.hosts)),
            (
                "packet_delivered_bytes".into(),
                Value::U64(self.packet_delivered_bytes),
            ),
            (
                "hybrid_delivered_bytes".into(),
                Value::U64(self.hybrid_delivered_bytes),
            ),
            ("bytes_rel_err".into(), Value::F64(self.bytes_rel_err())),
            (
                "packet_relative_power".into(),
                Value::F64(self.packet_relative_power),
            ),
            (
                "hybrid_relative_power".into(),
                Value::F64(self.hybrid_relative_power),
            ),
            ("power_abs_err".into(), Value::F64(self.power_abs_err())),
            ("packet_wall_ms".into(), Value::F64(self.packet_wall_ms)),
            ("hybrid_wall_ms".into(), Value::F64(self.hybrid_wall_ms)),
        ])
    }
}

/// The models validation axis: every small packet-mode sweep point
/// re-run under both models, with the agreement errors and the
/// documented tolerance they were checked against.
#[derive(Debug, Clone)]
pub struct ModelAxis {
    /// The tolerance the errors were asserted under
    /// ([`HYBRID_TOLERANCE`]).
    pub tolerance: f64,
    /// One entry per validation point.
    pub runs: Vec<ModelRun>,
}

impl ModelAxis {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("tolerance".into(), Value::F64(self.tolerance)),
            (
                "runs".into(),
                Value::Seq(self.runs.iter().map(ModelRun::to_value).collect()),
            ),
        ])
    }
}

/// Measures the models axis: every packet-model point of the sweep is
/// run under both models — same fabric, same traffic — and the
/// delivered-bytes and relative-power agreement is recorded.
/// Validation always runs at [`REDUCED_HORIZON`]: agreement is a
/// property of the models, not the horizon, and the packet runs
/// dominate the sweep's wall-clock cost.
///
/// # Panics
///
/// Panics if any point's delivered-bytes relative error or
/// relative-power absolute error exceeds [`HYBRID_TOLERANCE`] — a
/// hybrid model that drifts from packet ground truth never makes it
/// into `BENCH_scale.json`.
pub fn measure_models(points: &[ScalePoint]) -> ModelAxis {
    let mut runs = Vec::new();
    for point in points.iter().filter(|p| p.model == SimModel::Packet) {
        let one = |model: SimModel| {
            let p = ScalePoint {
                horizon: REDUCED_HORIZON,
                model,
                ..point.clone()
            };
            let sim = simulator_for(&p);
            let hosts = sim.fabric().num_hosts() as u64;
            let start = Instant::now();
            let report = sim.run_until(p.horizon);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            (hosts, report, wall_ms)
        };
        let (hosts, packet, packet_wall_ms) = one(SimModel::Packet);
        let (_, hybrid, hybrid_wall_ms) = one(SimModel::Hybrid);
        let run = ModelRun {
            point: point.name.clone(),
            hosts,
            packet_delivered_bytes: packet.delivered_bytes,
            hybrid_delivered_bytes: hybrid.delivered_bytes,
            packet_relative_power: packet.relative_power(&LinkPowerProfile::Measured),
            hybrid_relative_power: hybrid.relative_power(&LinkPowerProfile::Measured),
            packet_wall_ms,
            hybrid_wall_ms,
        };
        assert!(
            run.bytes_rel_err() <= HYBRID_TOLERANCE,
            "{}: hybrid delivered-bytes error {:.4} exceeds tolerance {}",
            point.name,
            run.bytes_rel_err(),
            HYBRID_TOLERANCE
        );
        assert!(
            run.power_abs_err() <= HYBRID_TOLERANCE,
            "{}: hybrid relative-power error {:.4} exceeds tolerance {}",
            point.name,
            run.power_abs_err(),
            HYBRID_TOLERANCE
        );
        runs.push(run);
    }
    ModelAxis {
        tolerance: HYBRID_TOLERANCE,
        runs,
    }
}

/// Renders runs plus the threads, hybrid-threads, lookahead, and
/// models axes as the `BENCH_scale.json` document.
pub fn render(
    runs: &[ScaleRun],
    threads: &ThreadsAxis,
    hybrid_threads: &ThreadsAxis,
    lookahead: &LookaheadAxis,
    models: &ModelAxis,
) -> String {
    let doc = Value::Map(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        (
            "scenario".into(),
            Value::Str(
                "uniform30+search sweep + hybrid bulk-flow scale points, \
                 steady-state alloc meter"
                    .into(),
            ),
        ),
        (
            "benches".into(),
            Value::Seq(runs.iter().map(ScaleRun::to_value).collect()),
        ),
        ("threads".into(), threads.to_value()),
        ("hybrid_threads".into(), hybrid_threads.to_value()),
        ("lookahead".into(), lookahead.to_value()),
        ("models".into(), models.to_value()),
    ]);
    let mut out = serde_json::to_string_pretty(&doc).expect("value tree serializes");
    out.push('\n');
    out
}

/// Path of `BENCH_scale.json` at the repository root.
pub fn output_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json")
}

/// Validates one threads-shaped axis (`threads` or `hybrid_threads`)
/// of a `BENCH_scale.json` document: present, serial baseline first,
/// positive timings at every width.
fn check_threads_axis(v: &Value, key: &str) -> Result<(), String> {
    let threads = v.get(key).ok_or_else(|| format!("missing '{key}' axis"))?;
    threads
        .get("point")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{key} axis missing 'point'"))?;
    let hw = threads
        .get("hw_threads")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{key} axis missing 'hw_threads'"))?;
    if hw == 0 {
        return Err(format!("{key} axis reports zero hardware threads"));
    }
    let truns = threads
        .get("runs")
        .and_then(Value::as_seq)
        .ok_or_else(|| format!("{key} axis missing 'runs' array"))?;
    if truns.len() < 2 {
        return Err(format!(
            "{key} axis needs the serial baseline plus at least one width"
        ));
    }
    for (i, r) in truns.iter().enumerate() {
        let t = r
            .get("threads")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{key} run missing 'threads'"))?;
        if i == 0 && t != 0 {
            return Err(format!(
                "first {key} run must be the serial baseline (threads=0)"
            ));
        }
        for field in ["wall_ms", "events_per_sec", "speedup_vs_serial"] {
            let x = r
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{key} run {t} missing '{field}'"))?;
            if !(x.is_finite() && x > 0.0) {
                return Err(format!("{key} run {t} has non-positive '{field}'"));
            }
        }
    }
    Ok(())
}

/// Validates a `BENCH_scale.json` document; returns its bench names.
///
/// # Errors
///
/// Describes the first missing or mistyped field.
pub fn validate(doc: &str) -> Result<Vec<String>, String> {
    let v: Value = serde_json::from_str(doc).map_err(|e| format!("not JSON: {e}"))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema '{other}'")),
        None => return Err("missing 'schema'".into()),
    }
    let benches = v
        .get("benches")
        .and_then(Value::as_seq)
        .ok_or("missing 'benches' array")?;
    if benches.is_empty() {
        return Err("'benches' is empty".into());
    }
    let mut names = Vec::new();
    let mut million_point = false;
    for b in benches {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or("bench missing 'name'")?;
        let model = match b.get("model").and_then(Value::as_str) {
            Some(m @ ("packet" | "hybrid")) => m,
            Some(other) => {
                return Err(format!("bench '{name}' has unknown model '{other}'"));
            }
            None => return Err(format!("bench '{name}' missing 'model'")),
        };
        let mut wall_ms = 0.0;
        for field in ["events_per_sec", "delivered_bytes_per_sec", "wall_ms"] {
            let rate = b
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("bench '{name}' missing '{field}'"))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(format!("bench '{name}' has non-positive '{field}'"));
            }
            if field == "wall_ms" {
                wall_ms = rate;
            }
        }
        let ape = b
            .get("allocs_per_event")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench '{name}' missing 'allocs_per_event'"))?;
        if !(ape.is_finite() && ape >= 0.0) {
            return Err(format!("bench '{name}' has invalid 'allocs_per_event'"));
        }
        for field in [
            "hosts",
            "channels",
            "peak_alloc_bytes",
            "measured_events",
            "measured_allocs",
            "sim_events",
            "sim_packets",
            "sim_delivered_bytes",
        ] {
            if b.get(field).and_then(Value::as_u64).is_none() {
                return Err(format!("bench '{name}' missing '{field}'"));
            }
        }
        if model == "hybrid" {
            let hosts = b.get("hosts").and_then(Value::as_u64).unwrap_or(0).max(1);
            let peak = b.get("peak_alloc_bytes").and_then(Value::as_u64).unwrap_or(0);
            if peak > hosts.saturating_mul(HYBRID_PEAK_HEAP_PER_HOST) {
                return Err(format!(
                    "bench '{name}': peak heap {} B/host exceeds the {} B/host bound",
                    peak / hosts,
                    HYBRID_PEAK_HEAP_PER_HOST
                ));
            }
            if hosts >= MILLION_HOSTS {
                million_point = true;
                if wall_ms > MILLION_HOST_WALL_BUDGET_MS {
                    return Err(format!(
                        "bench '{name}': wall {wall_ms:.0} ms exceeds the million-host \
                         budget of {MILLION_HOST_WALL_BUDGET_MS:.0} ms"
                    ));
                }
            }
        }
        names.push(name.to_string());
    }
    if !million_point {
        return Err(format!(
            "no hybrid bench at >= {MILLION_HOSTS} hosts (v5 requires the million-host point)"
        ));
    }
    check_threads_axis(&v, "threads")?;
    check_threads_axis(&v, "hybrid_threads")?;
    let lookahead = v.get("lookahead").ok_or("missing 'lookahead' probe")?;
    lookahead
        .get("point")
        .and_then(Value::as_str)
        .ok_or("lookahead probe missing 'point'")?;
    match lookahead.get("width").and_then(Value::as_u64) {
        Some(w) if w >= 1 => {}
        _ => return Err("lookahead probe needs 'width' >= 1".into()),
    }
    let ratio = lookahead
        .get("amortization_ratio")
        .and_then(Value::as_f64)
        .ok_or("lookahead probe missing 'amortization_ratio'")?;
    if !(ratio.is_finite() && ratio > 0.0) {
        return Err("lookahead probe has non-positive 'amortization_ratio'".into());
    }
    let modes = lookahead
        .get("modes")
        .and_then(Value::as_seq)
        .ok_or("lookahead probe missing 'modes' array")?;
    let mode_names: Vec<&str> = modes
        .iter()
        .map(|m| m.get("mode").and_then(Value::as_str).unwrap_or(""))
        .collect();
    if mode_names != ["pairwise", "global"] {
        return Err(format!(
            "lookahead probe must record [pairwise, global], got {mode_names:?}"
        ));
    }
    for m in modes {
        let name = m.get("mode").and_then(Value::as_str).unwrap_or("?");
        for field in [
            "windows",
            "window_events",
            "replay_events",
            "cross_batches",
            "cross_events",
            "lookahead_ps",
        ] {
            if m.get(field).and_then(Value::as_u64).is_none() {
                return Err(format!("lookahead mode '{name}' missing '{field}'"));
            }
        }
        if m.get("windows").and_then(Value::as_u64) == Some(0) {
            return Err(format!("lookahead mode '{name}' executed zero windows"));
        }
        for field in ["mean_events_per_window", "wall_ms"] {
            let x = m
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("lookahead mode '{name}' missing '{field}'"))?;
            if !(x.is_finite() && x > 0.0) {
                return Err(format!(
                    "lookahead mode '{name}' has non-positive '{field}'"
                ));
            }
        }
    }
    let models = v.get("models").ok_or("missing 'models' axis")?;
    let tolerance = models
        .get("tolerance")
        .and_then(Value::as_f64)
        .ok_or("models axis missing 'tolerance'")?;
    if !(tolerance.is_finite() && tolerance > 0.0) {
        return Err("models axis has non-positive 'tolerance'".into());
    }
    let mruns = models
        .get("runs")
        .and_then(Value::as_seq)
        .ok_or("models axis missing 'runs' array")?;
    if mruns.is_empty() {
        return Err("models axis has no validation points".into());
    }
    for r in mruns {
        let point = r
            .get("point")
            .and_then(Value::as_str)
            .ok_or("models run missing 'point'")?;
        for field in ["hosts", "packet_delivered_bytes", "hybrid_delivered_bytes"] {
            if r.get(field).and_then(Value::as_u64).is_none() {
                return Err(format!("models run '{point}' missing '{field}'"));
            }
        }
        for field in [
            "packet_relative_power",
            "hybrid_relative_power",
            "packet_wall_ms",
            "hybrid_wall_ms",
        ] {
            let x = r
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("models run '{point}' missing '{field}'"))?;
            if !(x.is_finite() && x >= 0.0) {
                return Err(format!("models run '{point}' has invalid '{field}'"));
            }
        }
        for field in ["bytes_rel_err", "power_abs_err"] {
            let err = r
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("models run '{point}' missing '{field}'"))?;
            if !(err.is_finite() && err >= 0.0) {
                return Err(format!("models run '{point}' has invalid '{field}'"));
            }
            if err > tolerance {
                return Err(format!(
                    "models run '{point}': '{field}' {err} exceeds tolerance {tolerance}"
                ));
            }
        }
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(name: &str) -> ScaleRun {
        ScaleRun {
            name: name.to_string(),
            model: SimModel::Packet,
            hosts: 16,
            channels: 88,
            wall_ms: 10.0,
            sim_events: 1_000,
            sim_packets: 100,
            sim_delivered_bytes: 64_000,
            measured_events: 500,
            measured_allocs: 0,
            peak_alloc_bytes: 1 << 20,
        }
    }

    /// A hybrid bench at [`MILLION_HOSTS`] inside both pinned budgets;
    /// v5 documents are invalid without one.
    fn sample_million_run() -> ScaleRun {
        ScaleRun {
            name: "hybrid_fbfly_32x32x4".to_string(),
            model: SimModel::Hybrid,
            hosts: MILLION_HOSTS,
            channels: 5_144_576,
            wall_ms: 20_000.0,
            sim_events: 1_000_000,
            sim_packets: 0,
            sim_delivered_bytes: 1 << 40,
            measured_events: 500_000,
            measured_allocs: 0,
            peak_alloc_bytes: MILLION_HOSTS * 1200,
        }
    }

    fn sample_axis() -> ThreadsAxis {
        ThreadsAxis {
            point: "fbfly_2x8x2".to_string(),
            hw_threads: 4,
            runs: vec![
                ThreadsRun {
                    threads: 0,
                    wall_ms: 10.0,
                    sim_events: 1_000,
                },
                ThreadsRun {
                    threads: 2,
                    wall_ms: 8.0,
                    sim_events: 1_000,
                },
            ],
        }
    }

    fn sample_hybrid_axis() -> ThreadsAxis {
        ThreadsAxis {
            point: "hybrid_fbfly_32x32x4".to_string(),
            hw_threads: 4,
            runs: vec![
                ThreadsRun {
                    threads: 0,
                    wall_ms: 20_000.0,
                    sim_events: 1_000_000,
                },
                ThreadsRun {
                    threads: 2,
                    wall_ms: 25_000.0,
                    sim_events: 1_000_000,
                },
            ],
        }
    }

    fn sample_lookahead_run(mode: &'static str, windows: u64) -> LookaheadRun {
        LookaheadRun {
            mode,
            windows,
            window_events: 1_000,
            replay_events: 1_100,
            cross_batches: 40,
            cross_events: 80,
            lookahead_ps: 125_000,
            wall_ms: 5.0,
        }
    }

    fn sample_lookahead() -> LookaheadAxis {
        LookaheadAxis {
            point: "fbfly_2x8x2".to_string(),
            width: 4,
            pairwise: sample_lookahead_run("pairwise", 20),
            global: sample_lookahead_run("global", 100),
        }
    }

    fn sample_model_run(point: &str) -> ModelRun {
        ModelRun {
            point: point.to_string(),
            hosts: 16,
            packet_delivered_bytes: 64_000,
            hybrid_delivered_bytes: 63_000,
            packet_relative_power: 0.6,
            hybrid_relative_power: 0.58,
            packet_wall_ms: 10.0,
            hybrid_wall_ms: 2.0,
        }
    }

    fn sample_models() -> ModelAxis {
        ModelAxis {
            tolerance: HYBRID_TOLERANCE,
            runs: vec![sample_model_run("fbfly_2x8x2")],
        }
    }

    /// Renders `runs` with the full set of sample axes.
    fn render_sample(runs: &[ScaleRun]) -> String {
        render(
            runs,
            &sample_axis(),
            &sample_hybrid_axis(),
            &sample_lookahead(),
            &sample_models(),
        )
    }

    #[test]
    fn rendered_document_validates() {
        let runs = vec![
            sample_run("fbfly_2x8x2"),
            sample_run("clos_nb4"),
            sample_million_run(),
        ];
        let doc = render_sample(&runs);
        let names = validate(&doc).expect("schema holds");
        assert_eq!(names, vec!["fbfly_2x8x2", "clos_nb4", "hybrid_fbfly_32x32x4"]);
    }

    #[test]
    fn validate_requires_the_threads_axes() {
        let runs = vec![sample_run("fbfly_2x8x2"), sample_million_run()];
        let doc = render_sample(&runs);
        // Strip each threads-shaped section: the schema must reject it.
        for key in ["threads", "hybrid_threads"] {
            let mut v: Value = serde_json::from_str(&doc).unwrap();
            if let Value::Map(entries) = &mut v {
                entries.retain(|(k, _)| k != key);
            }
            let stripped = serde_json::to_string_pretty(&v).unwrap();
            assert!(validate(&stripped).is_err(), "{key} axis is required");
        }

        // And a baseline-less axis must be rejected too.
        let mut axis = sample_axis();
        axis.runs.remove(0);
        let doc = render(
            &runs,
            &axis,
            &sample_hybrid_axis(),
            &sample_lookahead(),
            &sample_models(),
        );
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn validate_enforces_the_million_host_budgets() {
        // A document whose only hybrid bench is below 2^20 hosts is a
        // v4-shaped sweep and must be rejected.
        let small_only = vec![sample_run("fbfly_2x8x2")];
        assert!(
            validate(&render_sample(&small_only))
                .unwrap_err()
                .contains("million-host"),
            "the million-host point is required"
        );

        // Per-host peak heap over the pinned bound.
        let mut fat = sample_million_run();
        fat.peak_alloc_bytes = MILLION_HOSTS * (HYBRID_PEAK_HEAP_PER_HOST + 1);
        let err = validate(&render_sample(&[sample_run("fbfly_2x8x2"), fat])).unwrap_err();
        assert!(err.contains("B/host"), "{err}");

        // Wall clock over the pinned budget.
        let mut slow = sample_million_run();
        slow.wall_ms = MILLION_HOST_WALL_BUDGET_MS * 2.0;
        let err = validate(&render_sample(&[sample_run("fbfly_2x8x2"), slow])).unwrap_err();
        assert!(err.contains("budget"), "{err}");
    }

    #[test]
    fn validate_requires_the_lookahead_probe() {
        let runs = vec![sample_run("fbfly_2x8x2"), sample_million_run()];
        let doc = render_sample(&runs);
        assert!(validate(&doc).is_ok());

        // Strip the probe entirely.
        let mut v: Value = serde_json::from_str(&doc).unwrap();
        if let Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "lookahead");
        }
        let stripped = serde_json::to_string_pretty(&v).unwrap();
        assert!(validate(&stripped).is_err(), "lookahead probe is required");

        // A v2-style axis keyed `hardware_threads` must be rejected.
        let renamed = doc.replace("hw_threads", "hardware_threads");
        assert!(validate(&renamed).is_err(), "v2 field name must fail");

        // Zero windows means the probe never actually ran parallel.
        let mut dead = sample_lookahead();
        dead.global = sample_lookahead_run("global", 0);
        let doc = render(
            &runs,
            &sample_axis(),
            &sample_hybrid_axis(),
            &dead,
            &sample_models(),
        );
        assert!(validate(&doc).is_err());

        // Mode order is part of the schema (pairwise first).
        let mut swapped = sample_lookahead();
        std::mem::swap(&mut swapped.pairwise, &mut swapped.global);
        let doc = render(
            &runs,
            &sample_axis(),
            &sample_hybrid_axis(),
            &swapped,
            &sample_models(),
        );
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn validate_requires_the_models_axis() {
        let runs = vec![sample_run("fbfly_2x8x2"), sample_million_run()];
        let doc = render_sample(&runs);
        assert!(validate(&doc).is_ok());

        // Strip the models axis entirely.
        let mut v: Value = serde_json::from_str(&doc).unwrap();
        if let Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "models");
        }
        let stripped = serde_json::to_string_pretty(&v).unwrap();
        assert!(validate(&stripped).is_err(), "models axis is required");

        // An empty validation set must be rejected.
        let empty = ModelAxis {
            tolerance: HYBRID_TOLERANCE,
            runs: Vec::new(),
        };
        let doc_empty = render(
            &runs,
            &sample_axis(),
            &sample_hybrid_axis(),
            &sample_lookahead(),
            &empty,
        );
        assert!(validate(&doc_empty).is_err());

        // An out-of-tolerance point must be rejected even if the
        // producer forgot to assert.
        let mut drifted = sample_models();
        drifted.runs[0].hybrid_delivered_bytes = 1;
        let doc_drifted = render(
            &runs,
            &sample_axis(),
            &sample_hybrid_axis(),
            &sample_lookahead(),
            &drifted,
        );
        assert!(validate(&doc_drifted).is_err());

        // Benches without a model tag are pre-v4 documents.
        let untagged = doc.replace("\"model\": \"packet\",", "");
        assert!(validate(&untagged).is_err(), "model tag is required");
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"schema": "epnet-bench-scale/v1"}"#).is_err());
        assert!(
            validate(r#"{"schema": "epnet-bench-scale/v1", "benches": []}"#).is_err(),
            "empty bench list must be rejected"
        );
        // A document without allocator fields (e.g. an engine-bench
        // doc under the wrong name) must not pass.
        let engine_shaped = crate::enginebench::render(&[crate::enginebench::EngineRun {
            name: "route_table",
            wall_ms: 1.0,
            sim_events: 1,
            sim_packets: 1,
            sim_delivered_bytes: 1,
        }])
        .replace(crate::enginebench::SCHEMA, SCHEMA);
        assert!(validate(&engine_shaped).is_err());
    }

    #[test]
    fn sweep_scales_from_canonical_to_paper() {
        let full = sweep(false);
        assert_eq!(full.first().map(|p| p.name.as_str()), Some("fbfly_2x8x2"));
        assert!(full.iter().any(|p| p.name == "fbfly_15x15x2"));
        assert!(full.iter().any(|p| p.name.starts_with("clos")));
        let reduced = sweep(true);
        assert!(reduced.len() < full.len());
        assert!(reduced.iter().all(|p| p.horizon == REDUCED_HORIZON));
    }

    #[test]
    fn sweep_reaches_solnushkin_scale_under_the_hybrid_model() {
        for reduced in [false, true] {
            let points = sweep(reduced);
            // Every hybrid point runs the bulk-flow recipe; every
            // packet point runs the canonical mix.
            for p in &points {
                let expect = match p.model {
                    SimModel::Packet => Recipe::Canonical,
                    SimModel::Hybrid => Recipe::BulkFlows,
                };
                assert_eq!(p.recipe, expect, "{}", p.name);
                assert_eq!(p.name.starts_with("hybrid_"), p.model == SimModel::Hybrid);
            }
            // The acceptance point: a >= 10^5-host fabric, present even
            // under --reduced (only the hybrid model makes it cheap).
            let big = points
                .iter()
                .find(|p| p.name == "hybrid_fbfly_32x16x4")
                .expect("scale point present");
            assert_eq!(big.model, SimModel::Hybrid);
            let hosts = simulator_for_hosts(big);
            assert!(hosts >= 100_000, "{hosts} hosts");
            // The v5 acceptance point: a true 2^20-host fabric, present
            // even under --reduced.
            let million = points
                .iter()
                .find(|p| p.name == "hybrid_fbfly_32x32x4")
                .expect("million-host point present");
            assert_eq!(million.model, SimModel::Hybrid);
            assert_eq!(simulator_for_hosts(million), MILLION_HOSTS);
        }
    }

    /// Host count of a point's fabric without running it.
    fn simulator_for_hosts(point: &ScalePoint) -> u64 {
        match point.topo {
            ScaleTopo::Fbfly { c, k, n } | ScaleTopo::FbflyGrouped { c, k, n } => {
                let switches = (k as u64).pow(n as u32 - 1);
                c as u64 * switches
            }
            ScaleTopo::ClosNonBlocking { c } => 2 * (c as u64) * (c as u64),
            ScaleTopo::ClosMultiPod { c, pods } => pods as u64 * (c as u64) * (c as u64),
        }
    }

    #[test]
    fn axis_point_skips_the_hybrid_tail() {
        let full = sweep(false);
        assert_eq!(axis_point(&full).name, "fbfly_15x15x2");
        let reduced = sweep(true);
        assert_eq!(axis_point(&reduced).name, "clos_nb4");
    }

    #[test]
    fn hybrid_axis_point_is_the_million_host_flat() {
        for reduced in [false, true] {
            let points = sweep(reduced);
            assert_eq!(hybrid_axis_point(&points).name, "hybrid_fbfly_32x32x4");
        }
    }

    #[test]
    fn lookahead_probe_targets_the_grouped_flat() {
        let full = sweep(false);
        assert_eq!(lookahead_point(&full).name, "fbfly_8x4x3");
        let reduced = sweep(true);
        assert_eq!(lookahead_point(&reduced).name, "fbfly_2x8x2");
    }
}
