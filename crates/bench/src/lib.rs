//! Shared helpers for the `repro` harness and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod enginebench;
pub mod loadbench;
pub mod scalebench;

use epnet::exp::EvalScale;

/// Parses a scale name (`tiny` / `quick` / `paper`).
///
/// # Errors
///
/// Returns the unrecognized input on failure.
pub fn parse_scale(name: &str) -> Result<EvalScale, String> {
    match name {
        "tiny" => Ok(EvalScale::tiny()),
        "quick" => Ok(EvalScale::quick()),
        "paper" | "full" => Ok(EvalScale::paper()),
        other => Err(format!("unknown scale '{other}' (tiny|quick|paper)")),
    }
}

/// The reproduction targets the harness understands.
pub const TARGETS: &[&str] = &[
    "table1",
    "table2",
    "figure1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9a",
    "figure9b",
    "costs",
    "topology-sim",
    "sensitivity",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(parse_scale("tiny").unwrap().hosts(), 64);
        assert_eq!(parse_scale("quick").unwrap().hosts(), 512);
        assert_eq!(parse_scale("paper").unwrap().hosts(), 3375);
        assert_eq!(parse_scale("full").unwrap().hosts(), 3375);
        assert!(parse_scale("nope").is_err());
    }

    #[test]
    fn target_list_is_complete() {
        assert_eq!(TARGETS.len(), 12);
    }
}
