//! Benches for the analytical tables and figures (Table 1, Table 2,
//! Figure 1, Figure 5, Figure 6, and the cost model). These regenerate
//! the paper's closed-form results; each iteration computes the full
//! artifact from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use epnet::exp::figures;
use std::hint::black_box;

fn table1_topology_power(c: &mut Criterion) {
    c.bench_function("table1_topology_power", |b| {
        b.iter(|| {
            let t = figures::table1();
            assert_eq!(t.savings_watts(), 409_600.0);
            black_box(t)
        })
    });
}

fn table2_infiniband_rates(c: &mut Criterion) {
    c.bench_function("table2_infiniband_rates", |b| {
        b.iter(|| black_box(figures::table2()))
    });
}

fn fig1_datacenter_power(c: &mut Criterion) {
    c.bench_function("fig1_datacenter_power", |b| {
        b.iter(|| {
            let f = figures::figure1();
            assert_eq!(f.scenarios.len(), 3);
            black_box(f)
        })
    });
}

fn fig5_power_profile(c: &mut Criterion) {
    c.bench_function("fig5_power_profile", |b| {
        b.iter(|| black_box(figures::figure5()))
    });
}

fn fig6_itrs_trends(c: &mut Criterion) {
    c.bench_function("fig6_itrs_trends", |b| {
        b.iter(|| black_box(figures::figure6()))
    });
}

fn cost_model(c: &mut Criterion) {
    c.bench_function("cost_model_headlines", |b| {
        b.iter(|| black_box(figures::cost_summary()))
    });
}

criterion_group!(
    tables,
    table1_topology_power,
    table2_infiniband_rates,
    fig1_datacenter_power,
    fig5_power_profile,
    fig6_itrs_trends,
    cost_model
);
criterion_main!(tables);
