//! Event-scheduler microbenchmarks and the end-to-end sweep
//! wall-clock benchmark.
//!
//! The scheduler benches drive the classic *hold model* — pop the
//! earliest event, schedule a replacement a random increment later —
//! at steady pending-set sizes from 1k to 1M events, once per backend
//! (calendar queue vs the reference binary heap). Hold throughput is
//! what the simulator's hot loop sees, so this is the number behind
//! EXPERIMENTS.md's "Performance" section.
//!
//! The `sweep` group times `SensitivitySweep::run` at tiny scale for
//! thread counts {1, 2, 4}, pinned via the `EPNET_THREADS` override.
//!
//! Benchmarks whose name contains `smoke` form the seconds-long subset
//! `scripts/bench_smoke.sh` runs:
//!
//! ```text
//! cargo bench -p epnet-bench --bench scheduler -- smoke
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use epnet::exp::sweep::SensitivitySweep;
use epnet::exp::{EvalScale, WorkloadKind};
use epnet_sim::{Backend, Scheduler, SimTime};
use std::hint::black_box;
use std::time::Duration;

/// Deterministic SplitMix64 — cheap enough to vanish next to queue ops.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Builds a queue holding `pending` events with exponential-ish gaps
/// (mean ~2 µs), mimicking the engine's mix of near-future TxDone /
/// Arrive events.
fn prefill(backend: Backend, pending: usize) -> (Scheduler<u64>, Mix, SimTime) {
    let mut q = Scheduler::with_backend(backend);
    let mut rng = Mix(42);
    let mut horizon = SimTime::ZERO;
    for i in 0..pending {
        let at = SimTime::from_ps(rng.next() % 4_000_000);
        horizon = horizon.max(at);
        q.schedule(at, i as u64);
    }
    (q, rng, horizon)
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Calendar => "calendar",
        Backend::BinaryHeap => "heap",
    }
}

/// Hold model: one pop + one schedule per operation at a steady
/// pending-set size. Reported throughput is hold operations
/// (event pairs) per second.
fn scheduler_hold(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_hold");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(1));
    for pending in [1_000usize, 10_000, 100_000, 1_000_000] {
        for backend in [Backend::Calendar, Backend::BinaryHeap] {
            let label = format!("{}/{}k", backend_name(backend), pending / 1_000);
            let (mut q, mut rng, _) = prefill(backend, pending);
            g.bench_function(label, |b| {
                b.iter(|| {
                    let (t, tag) = q.pop().expect("hold model never drains");
                    // Replacement lands 0–4 µs later: monotone, like
                    // the engine's schedules.
                    let at = SimTime::from_ps(t.as_ps() + (rng.next() % 4_000_000));
                    q.schedule(at, tag);
                    black_box(t)
                })
            });
        }
    }
    g.finish();
}

/// Fill-then-drain churn: `n` schedules followed by `n` pops.
/// Stresses the calendar's resize policy (it grows and shrinks across
/// three orders of magnitude per iteration).
fn scheduler_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_churn");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        for backend in [Backend::Calendar, Backend::BinaryHeap] {
            let label = format!("{}/{}k", backend_name(backend), n / 1_000);
            g.bench_function(label, |b| {
                b.iter(|| {
                    let mut q = Scheduler::with_backend(backend);
                    let mut rng = Mix(7);
                    for i in 0..n {
                        q.schedule(SimTime::from_ps(rng.next() % 40_000_000), i as u64);
                    }
                    let mut last = SimTime::ZERO;
                    while let Some((t, _)) = q.pop() {
                        last = t;
                    }
                    black_box(last)
                })
            });
        }
    }
    g.finish();
}

/// Seconds-long subset for `scripts/bench_smoke.sh`: one hold-model
/// point per backend at 100k pending events.
fn scheduler_smoke(c: &mut Criterion) {
    let mut g = c.benchmark_group("smoke_sched");
    g.sample_size(5)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    g.throughput(Throughput::Elements(1));
    for backend in [Backend::Calendar, Backend::BinaryHeap] {
        let (mut q, mut rng, _) = prefill(backend, 100_000);
        g.bench_function(format!("hold_100k/{}", backend_name(backend)), |b| {
            b.iter(|| {
                let (t, tag) = q.pop().expect("hold model never drains");
                let at = SimTime::from_ps(t.as_ps() + (rng.next() % 4_000_000));
                q.schedule(at, tag);
                black_box(t)
            })
        });
    }
    g.finish();
}

fn tiny_sweep() -> SensitivitySweep {
    let mut scale = EvalScale::tiny();
    scale.duration = SimTime::from_ms(1);
    let mut sweep = SensitivitySweep::paper_grid(scale, WorkloadKind::Search);
    sweep.targets = vec![0.25, 0.75];
    sweep.reactivations = vec![SimTime::from_us(1), SimTime::from_us(10)];
    sweep
}

/// End-to-end sweep wall clock at 1/2/4 worker threads over a 16-cell
/// grid — enough similarly-sized jobs that the pool can load-balance,
/// so measured scaling reflects the machinery rather than one dominant
/// cell.
fn sweep_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_scaling");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let mut sweep = tiny_sweep();
    sweep.targets = vec![0.2, 0.4, 0.6, 0.8];
    sweep.reactivations = vec![
        SimTime::from_us(1),
        SimTime::from_us(3),
        SimTime::from_us(10),
        SimTime::from_us(30),
    ];
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("tiny_search/threads_{threads}"), |b| {
            std::env::set_var("EPNET_THREADS", threads.to_string());
            b.iter(|| black_box(sweep.run()));
            std::env::remove_var("EPNET_THREADS");
        });
    }
    g.finish();
}

/// Smoke subset: the tiny sweep once, serial vs 4 threads.
fn sweep_smoke(c: &mut Criterion) {
    let mut g = c.benchmark_group("smoke_sweep");
    g.sample_size(2)
        .warm_up_time(Duration::from_millis(10))
        .measurement_time(Duration::from_millis(100));
    let sweep = tiny_sweep();
    for threads in [1usize, 4] {
        g.bench_function(format!("tiny_search/threads_{threads}"), |b| {
            std::env::set_var("EPNET_THREADS", threads.to_string());
            b.iter(|| black_box(sweep.run()));
            std::env::remove_var("EPNET_THREADS");
        });
    }
    g.finish();
}

criterion_group!(
    scheduler,
    scheduler_hold,
    scheduler_churn,
    scheduler_smoke,
    sweep_scaling,
    sweep_smoke,
);
criterion_main!(scheduler);
