//! Microbenches of the simulator's building blocks: topology
//! elaboration, routing, workload generation, and raw event throughput.
//!
//! The `smoke_engine` group is the seconds-long subset behind
//! `scripts/bench_smoke.sh`: it runs the canonical
//! [`epnet_bench::enginebench`] scenario under both route modes and
//! writes `BENCH_engine.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use epnet::prelude::*;
use epnet_bench::enginebench;
use epnet_workloads::UniformRandom;
use std::hint::black_box;
use std::time::Duration;

fn fabric_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_construction");
    for (label, conc, k, n) in [("64-host", 4u16, 4u16, 3usize), ("3375-host", 15, 15, 3)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let f = FlattenedButterfly::new(conc, k, n).unwrap();
                black_box(f.build_fabric())
            })
        });
    }
    g.finish();
}

fn route_candidates(c: &mut Criterion) {
    let fabric = FlattenedButterfly::new(15, 15, 3).unwrap().build_fabric();
    let mut out = Vec::new();
    let mut g = c.benchmark_group("routing");
    g.throughput(Throughput::Elements(1));
    g.bench_function("candidate_ports_15ary3flat", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let at = SwitchId::new(i % 225);
            let dest = HostId::new((i * 7 + 13) % 3375);
            fabric.candidate_ports(at, dest, &mut out);
            i = i.wrapping_add(1);
            black_box(out.len())
        })
    });
    g.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.throughput(Throughput::Elements(1));
    g.bench_function("uniform_next_message", |b| {
        let mut w = UniformRandom::builder(3375).offered_load(0.23).build();
        b.iter(|| black_box(w.next_message()))
    });
    g.bench_function("search_trace_next_message", |b| {
        let mut w = ServiceTrace::builder(3375, ServiceTraceConfig::search_like()).build();
        b.iter(|| black_box(w.next_message()))
    });
    g.finish();
}

/// End-to-end event throughput: packets through a saturated baseline
/// fabric per wall-clock second.
fn event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    let end = SimTime::from_ms(1);
    g.bench_function("baseline_uniform_64host_1ms", |b| {
        b.iter(|| {
            let fabric = FlattenedButterfly::new(4, 4, 3).unwrap().build_fabric();
            let w = UniformRandom::builder(64)
                .offered_load(0.5)
                .horizon(end)
                .build();
            let report = Simulator::new(fabric, SimConfig::baseline(), w).run_until(end);
            black_box(report.packets_delivered)
        })
    });
    g.bench_function("ep_uniform_64host_1ms", |b| {
        b.iter(|| {
            let fabric = FlattenedButterfly::new(4, 4, 3).unwrap().build_fabric();
            let w = UniformRandom::builder(64)
                .offered_load(0.5)
                .horizon(end)
                .build();
            let report = Simulator::new(fabric, SimConfig::default(), w).run_until(end);
            black_box(report.packets_delivered)
        })
    });
    g.finish();
}

/// Smoke subset: measures the canonical engine scenario once per route
/// mode, emits `BENCH_engine.json`, then spins on schema validation so
/// criterion has a timed body.
fn engine_json_smoke(c: &mut Criterion) {
    let mut g = c.benchmark_group("smoke_engine");
    g.sample_size(2)
        .warm_up_time(Duration::from_millis(10))
        .measurement_time(Duration::from_millis(50));
    g.bench_function("json_report", |b| {
        let runs = enginebench::measure_both_modes();
        for r in &runs {
            println!(
                "{:>14}: {:>7.2} M events/s, {:>7.2} M delivered B/s ({} events, {:.1} ms wall)",
                r.name,
                r.events_per_sec() / 1e6,
                r.delivered_bytes_per_sec() / 1e6,
                r.sim_events,
                r.wall_ms
            );
        }
        let doc = enginebench::render(&runs);
        std::fs::write(enginebench::output_path(), &doc).expect("write BENCH_engine.json");
        let wall_secs = runs.iter().map(|r| r.wall_ms).sum::<f64>() / 1e3;
        epnet_telemetry::summary::eprint_summary("smoke_engine", wall_secs);
        b.iter(|| {
            black_box(
                enginebench::validate(&doc)
                    .expect("rendered schema holds")
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    engine,
    fabric_construction,
    route_candidates,
    workload_generation,
    event_throughput,
    engine_json_smoke
);
criterion_main!(engine);
