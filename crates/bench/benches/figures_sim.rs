//! Benches regenerating the simulation-backed figures (7, 8, 9) at the
//! tiny evaluation scale — each iteration is one full event-driven
//! simulation of a 64-host flattened butterfly.
//!
//! (`repro --scale quick|paper` produces the figures at evaluation
//! scale; these benches track the simulator's end-to-end throughput on
//! each figure's configuration.)

use criterion::{criterion_group, criterion_main, Criterion};
use epnet::exp::{EvalScale, Experiment, WorkloadKind};
use epnet::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn scale() -> EvalScale {
    let mut s = EvalScale::tiny();
    s.duration = SimTime::from_ms(1);
    s
}

fn tune(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    g
}

/// Figure 7: time-at-speed under Search with paired-link control.
fn fig7_time_at_speed(c: &mut Criterion) {
    let mut g = tune(c);
    g.bench_function("fig7_time_at_speed", |b| {
        b.iter(|| {
            let report = Experiment::new(scale(), WorkloadKind::Search).run_ep();
            let fr = report.time_at_speed_fractions();
            assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            black_box(fr)
        })
    });
    g.finish();
}

/// Figure 8: relative network power per workload (independent channels).
fn fig8_network_power(c: &mut Criterion) {
    let mut g = tune(c);
    for kind in WorkloadKind::ALL {
        g.bench_function(format!("fig8_network_power/{}", kind.name()), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder();
                cfg.control(ControlMode::IndependentChannel);
                let report = Experiment::new(scale(), kind)
                    .with_config(cfg.build())
                    .run_ep();
                let p = report.relative_power(&LinkPowerProfile::Ideal);
                assert!(p < 1.0);
                black_box(p)
            })
        });
    }
    g.finish();
}

/// Figure 9(a): one latency-vs-target cell (75% target, Search).
fn fig9a_target_utilization(c: &mut Criterion) {
    let mut g = tune(c);
    g.bench_function("fig9a_target_utilization", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::builder();
            cfg.target_utilization(0.75);
            let report = Experiment::new(scale(), WorkloadKind::Search)
                .with_config(cfg.build())
                .run_ep();
            black_box(report.mean_packet_latency)
        })
    });
    g.finish();
}

/// Figure 9(b): one latency-vs-reactivation cell (10 µs, Search).
fn fig9b_reactivation(c: &mut Criterion) {
    let mut g = tune(c);
    g.bench_function("fig9b_reactivation", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::builder();
            cfg.reactivation(SimTime::from_us(10));
            let report = Experiment::new(scale(), WorkloadKind::Search)
                .with_config(cfg.build())
                .run_ep();
            black_box(report.mean_packet_latency)
        })
    });
    g.finish();
}

criterion_group!(
    figures_sim,
    fig7_time_at_speed,
    fig8_network_power,
    fig9a_target_utilization,
    fig9b_reactivation
);
criterion_main!(figures_sim);
