//! Ablation benches for the design choices called out in DESIGN.md:
//! rate policy (§3.3 vs §5.1 alternatives), channel-control granularity
//! (§3.3.1), and the dynamic-topology extension (§5.2).
//!
//! Criterion measures wall-clock; each bench also asserts the *quality*
//! relation the ablation is about (power or delivery), so a regression
//! in behaviour fails loudly here too.

use criterion::{criterion_group, criterion_main, Criterion};
use epnet::exp::{EvalScale, Experiment, WorkloadKind};
use epnet::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn scale() -> EvalScale {
    let mut s = EvalScale::tiny();
    s.duration = SimTime::from_ms(1);
    s
}

fn tune(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    g
}

/// §3.3's halve/double vs §5.1's jump-to-extremes vs hysteresis.
fn ablation_heuristics(c: &mut Criterion) {
    let mut g = tune(c);
    for (name, policy) in [
        ("halve_double", RatePolicy::HalveDouble),
        ("jump_to_extremes", RatePolicy::JumpToExtremes),
        (
            "hysteresis",
            RatePolicy::Hysteresis {
                low: 0.2,
                high: 0.8,
            },
        ),
        ("lane_aware", RatePolicy::LaneAware),
    ] {
        g.bench_function(format!("heuristic/{name}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder();
                cfg.policy(policy);
                let report = Experiment::new(scale(), WorkloadKind::Search)
                    .with_config(cfg.build())
                    .run_ep();
                let p = report.relative_power(&LinkPowerProfile::Ideal);
                assert!(p < 1.0, "{name} must save power");
                black_box(p)
            })
        });
    }
    g.finish();
}

/// §3.3.1: paired link pairs vs independent unidirectional channels.
fn ablation_channel_control(c: &mut Criterion) {
    let mut g = tune(c);
    for (name, mode) in [
        ("paired", ControlMode::PairedLink),
        ("independent", ControlMode::IndependentChannel),
    ] {
        g.bench_function(format!("channel_control/{name}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder();
                cfg.control(mode);
                let report = Experiment::new(scale(), WorkloadKind::Search)
                    .with_config(cfg.build())
                    .run_ep();
                black_box(report.relative_power(&LinkPowerProfile::Ideal))
            })
        });
    }
    g.finish();
}

/// §5.2: rate tuning alone vs rate tuning + link power-off.
fn ablation_dynamic_topology(c: &mut Criterion) {
    let mut g = tune(c);
    let s = scale();
    for with_dt in [false, true] {
        let name = if with_dt {
            "rate_plus_poweroff"
        } else {
            "rate_only"
        };
        g.bench_function(format!("dynamic_topology/{name}"), |b| {
            b.iter(|| {
                let fabric = s.fabric();
                let source = WorkloadKind::Advert.source(s.hosts() as u32, s.seed, s.duration);
                let mut sim = Simulator::new(fabric.clone(), SimConfig::default(), source);
                if with_dt {
                    sim.enable_dynamic_topology(DynamicTopology::new(
                        &fabric,
                        DynamicTopologyConfig::default(),
                    ));
                }
                let report = sim.run_until(s.duration);
                // A 1 ms window can cut off a large in-flight chunk of
                // the bursty trace; only guard against collapse.
                assert!(
                    report.delivery_ratio() > 0.6,
                    "ratio {}",
                    report.delivery_ratio()
                );
                black_box(report.relative_power(&LinkPowerProfile::Measured))
            })
        });
    }
    g.finish();
}

/// §3.2: route-around vs drain-first reactivation tolerance.
fn ablation_reactivation_strategy(c: &mut Criterion) {
    let mut g = tune(c);
    for (name, strategy) in [
        (
            "route_around",
            epnet::sim::ReactivationStrategy::RouteAround,
        ),
        ("drain_first", epnet::sim::ReactivationStrategy::DrainFirst),
    ] {
        g.bench_function(format!("reactivation/{name}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder();
                cfg.reactivation_strategy(strategy);
                let report = Experiment::new(scale(), WorkloadKind::Search)
                    .with_config(cfg.build())
                    .run_ep();
                assert!(report.delivery_ratio() > 0.9);
                black_box(report.mean_packet_latency)
            })
        });
    }
    g.finish();
}

/// §2.1: minimal-adaptive vs UGAL non-minimal routing.
fn ablation_routing(c: &mut Criterion) {
    let mut g = tune(c);
    for (name, ugal) in [("minimal", false), ("ugal", true)] {
        g.bench_function(format!("routing/{name}"), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::builder();
                if ugal {
                    cfg.ugal();
                }
                let report = Experiment::new(scale(), WorkloadKind::Uniform)
                    .with_config(cfg.build())
                    .run_ep();
                black_box(report.mean_packet_latency)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablation,
    ablation_heuristics,
    ablation_channel_control,
    ablation_dynamic_topology,
    ablation_reactivation_strategy,
    ablation_routing
);
criterion_main!(ablation);
