//! Property-based tests over topology invariants.

use epnet_topology::{
    FabricGraph, FlattenedButterfly, HostId, LinkId, LinkMask, Medium, PortIndex, PortTarget,
    RouteTable, RoutingTopology, SubtopologyKind, SwitchId, TwoTierClos,
};
use proptest::prelude::*;

/// Strategy producing small but varied flattened butterflies.
fn fbfly_strategy() -> impl Strategy<Value = FlattenedButterfly> {
    (1u16..6, 2u16..7, 2usize..5)
        .prop_map(|(c, k, n)| FlattenedButterfly::new(c, k, n).expect("params in valid range"))
}

/// Deterministic SplitMix64 for seed-derived masks and destinations.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Disables ~1/4 of the links of `g`, derived from `seed`.
fn random_mask(g: &FabricGraph, seed: u64) -> LinkMask {
    let mut rng = seed;
    let mut mask = LinkMask::all_enabled(g);
    for l in 0..g.num_links() {
        if splitmix(&mut rng) % 4 == 0 {
            mask.disable(LinkId::new(l as u32));
        }
    }
    mask
}

/// Every `RouteTable` row must equal the on-the-fly enumeration for a
/// handful of seed-derived destinations, from every switch.
fn assert_table_matches(g: &FabricGraph, mask: Option<&LinkMask>, dst_seed: u64) {
    let table = RouteTable::build(g, mask);
    let mut rng = dst_seed;
    let mut dynamic = Vec::new();
    for _ in 0..8 {
        let dest = HostId::new((splitmix(&mut rng) % g.num_hosts() as u64) as u32);
        let dst_switch = g.host_switch(dest);
        for at in 0..g.num_switches() {
            let at = SwitchId::new(at as u32);
            if at == dst_switch {
                continue;
            }
            g.candidate_ports_masked(at, dest, mask, &mut dynamic);
            assert_eq!(
                table.candidates(at, dst_switch),
                &dynamic[..],
                "minimal candidates diverge at {at} toward {dst_switch}"
            );
            g.detour_ports_masked(at, dst_switch, mask, &mut dynamic);
            assert_eq!(
                table.detours(at, dst_switch),
                &dynamic[..],
                "detour candidates diverge at {at} toward {dst_switch}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn port_budget_is_exact(f in fbfly_strategy()) {
        // Every switch port is either a host port or one end of exactly one
        // inter-switch link.
        let total_ports = f.num_switches() * f.ports_per_switch() as usize;
        prop_assert_eq!(total_ports, f.num_hosts() + 2 * f.inter_switch_links());
    }

    #[test]
    fn link_media_partition_all_links(f in fbfly_strategy()) {
        prop_assert_eq!(
            f.link_count(Medium::Electrical) + f.link_count(Medium::Optical),
            f.total_links()
        );
    }

    #[test]
    fn fabric_matches_analytical_counts(f in fbfly_strategy()) {
        let g = f.build_fabric();
        prop_assert_eq!(g.num_hosts(), f.num_hosts());
        prop_assert_eq!(g.num_switches(), f.num_switches());
        prop_assert_eq!(g.num_links(), f.total_links());
        prop_assert_eq!(g.num_channels(), 2 * g.num_links());
    }

    #[test]
    fn links_are_involutions(f in fbfly_strategy()) {
        let g = f.build_fabric();
        for ch in 0..g.num_channels() {
            let ch = epnet_topology::ChannelId::new(ch as u32);
            prop_assert_eq!(g.reverse_channel(g.reverse_channel(ch)), ch);
            prop_assert_ne!(g.reverse_channel(ch), ch);
        }
    }

    #[test]
    fn greedy_routing_always_terminates(
        f in fbfly_strategy(),
        src_seed in any::<u32>(),
        dst_seed in any::<u32>(),
    ) {
        let g = f.build_fabric();
        let hosts = g.num_hosts() as u32;
        let src = HostId::new(src_seed % hosts);
        let dst = HostId::new(dst_seed % hosts);
        let mut at = g.host_switch(src);
        let mut out = Vec::new();
        let mut hops = 0usize;
        loop {
            g.candidate_ports(at, dst, &mut out);
            prop_assert!(!out.is_empty());
            let p = out[0];
            match g.port_target(at, p) {
                PortTarget::Host(h) => {
                    prop_assert_eq!(h, dst);
                    break;
                }
                PortTarget::Switch { switch, .. } => at = switch,
            }
            hops += 1;
            prop_assert!(hops <= f.switch_dims() + 1, "minimal routing exceeded dims");
        }
    }

    #[test]
    fn every_candidate_leads_minimal(f in fbfly_strategy(), seed in any::<u32>()) {
        let g = f.build_fabric();
        let dst = HostId::new(seed % g.num_hosts() as u32);
        let dst_switch = g.host_switch(dst);
        let mut out = Vec::new();
        for s in 0..g.num_switches() {
            let at = SwitchId::new(s as u32);
            g.candidate_ports(at, dst, &mut out);
            let d = f.hop_distance(at, dst_switch);
            if at == dst_switch {
                prop_assert_eq!(out.clone(), vec![g.host_port(dst)]);
            } else {
                prop_assert_eq!(out.len(), d);
                for &p in &out {
                    let PortTarget::Switch { switch, .. } = g.port_target(at, p) else {
                        panic!("expected switch hop")
                    };
                    prop_assert_eq!(f.hop_distance(switch, dst_switch), d - 1);
                }
            }
        }
    }

    #[test]
    fn mesh_mask_keeps_fabric_connected(f in fbfly_strategy(), seed in any::<u32>()) {
        let g = f.build_fabric();
        let mask = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
        let dst = HostId::new(seed % g.num_hosts() as u32);
        let dst_switch = g.host_switch(dst);
        let mut out = Vec::new();
        for s in 0..g.num_switches() {
            let mut at = SwitchId::new(s as u32);
            let mut hops = 0usize;
            let bound = g.switch_dims() * f.radix() as usize + 1;
            while at != dst_switch {
                g.candidate_ports_masked(at, dst, Some(&mask), &mut out);
                prop_assert!(!out.is_empty(), "mesh stranded a switch");
                let PortTarget::Switch { switch, .. } = g.port_target(at, out[0]) else {
                    panic!("expected switch hop")
                };
                at = switch;
                hops += 1;
                prop_assert!(hops <= bound, "mesh routing cycled");
            }
        }
    }

    #[test]
    fn torus_routing_never_longer_than_mesh(f in fbfly_strategy(), seed in any::<u32>()) {
        let g = f.build_fabric();
        let mesh = LinkMask::subtopology(&g, SubtopologyKind::Mesh);
        let torus = LinkMask::subtopology(&g, SubtopologyKind::Torus);
        let dst = HostId::new(seed % g.num_hosts() as u32);
        let dst_switch = g.host_switch(dst);

        let walk = |mask: &LinkMask, from: SwitchId| -> usize {
            let mut at = from;
            let mut out = Vec::new();
            let mut hops = 0;
            while at != dst_switch {
                g.candidate_ports_masked(at, dst, Some(mask), &mut out);
                let PortTarget::Switch { switch, .. } = g.port_target(at, out[0]) else {
                    panic!("expected switch hop")
                };
                at = switch;
                hops += 1;
            }
            hops
        };
        for s in 0..g.num_switches().min(16) {
            let from = SwitchId::new(s as u32);
            prop_assert!(walk(&torus, from) <= walk(&mesh, from));
        }
    }

    #[test]
    fn host_attachment_is_a_bijection(f in fbfly_strategy()) {
        let g = f.build_fabric();
        let mut seen = vec![false; g.num_hosts()];
        for s in 0..g.num_switches() {
            for p in 0..f.concentration() as usize {
                let PortTarget::Host(h) =
                    g.port_target(SwitchId::new(s as u32), PortIndex::new(p as u16))
                else {
                    panic!("host port range must map to hosts")
                };
                prop_assert!(!seen[h.index()], "host attached twice");
                seen[h.index()] = true;
                prop_assert_eq!(g.host_switch(h).index(), s);
                prop_assert_eq!(g.host_port(h).index(), p);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn link_ids_are_dense_and_total(f in fbfly_strategy()) {
        let g = f.build_fabric();
        let mut counts = vec![0u8; g.num_links()];
        for ch in 0..g.num_channels() {
            let l = g.link_of(epnet_topology::ChannelId::new(ch as u32));
            counts[l.index()] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == 2), "each link owns exactly two channels");
        // Link channel table agrees with link_of.
        for l in 0..g.num_links() {
            let link = LinkId::new(l as u32);
            let (a, b) = g.link_channels(link);
            prop_assert_eq!(g.link_of(a), link);
            prop_assert_eq!(g.link_of(b), link);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn route_table_matches_dynamic_routing(
        f in fbfly_strategy(),
        mask_seed in any::<u64>(),
        dst_seed in any::<u64>(),
    ) {
        let g = f.build_fabric();
        // Maskless and randomly-degraded tables both agree with the
        // on-the-fly enumeration.
        assert_table_matches(&g, None, dst_seed);
        let mut mask = random_mask(&g, mask_seed);
        assert_table_matches(&g, Some(&mask), dst_seed);

        // Mutating the mask bumps its generation, staling any table
        // built against the old one; a rebuild must agree again.
        let table = RouteTable::build(&g, Some(&mask));
        prop_assert!(table.is_current(Some(&mask)));
        mask.enable(LinkId::new(0));
        prop_assert!(!table.is_current(Some(&mask)));
        assert_table_matches(&g, Some(&mask), dst_seed ^ 0xDEAD_BEEF);
    }

    #[test]
    fn clos_route_table_matches_dynamic_routing(
        c in 1u16..5,
        s in 1u32..5,
        dst_seed in any::<u64>(),
    ) {
        let clos = TwoTierClos::new(c, s, u32::from(c) + s).expect("leaves = conc + spines");
        let g = clos.build_fabric();
        assert_table_matches(&g, None, dst_seed);
    }
}
