//! Path analytics over the flattened butterfly: minimal path counts,
//! hop distributions, and diversity — the quantities behind the paper's
//! claims that the topology has enough path diversity for traffic to
//! "be redirected to other paths" during reactivation (§3.2).

use crate::{FlattenedButterfly, HostId, SwitchId};

/// Distribution of minimal inter-switch hop counts over all host pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct HopHistogram {
    /// `counts[h]` = ordered host pairs whose minimal route takes `h`
    /// inter-switch hops.
    pub counts: Vec<u64>,
}

impl HopHistogram {
    /// Mean inter-switch hops over all ordered host pairs.
    pub fn mean(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(h, &c)| h as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Network diameter in inter-switch hops.
    pub fn diameter(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

impl FlattenedButterfly {
    /// Hop histogram over all ordered host pairs (excluding self-pairs),
    /// computed analytically: the probability that a dimension differs
    /// is `(k−1)/k` per dimension.
    pub fn hop_histogram(&self) -> HopHistogram {
        let dims = self.switch_dims();
        let k = self.radix() as u64;
        let switches = self.num_switches() as u64;
        let c = u64::from(self.concentration());
        // Ordered switch pairs at hop distance h: C(dims, h)·(k−1)^h per
        // source switch; weight by host pairs (c² between distinct
        // switches, c·(c−1) within one).
        let mut counts = vec![0u64; dims + 1];
        for (h, count) in counts.iter_mut().enumerate() {
            let ways = binomial(dims as u64, h as u64) * (k - 1).pow(h as u32);
            *count = if h == 0 {
                switches * c * (c - 1)
            } else {
                switches * ways * c * c
            };
        }
        HopHistogram { counts }
    }

    /// Number of distinct minimal switch paths between two hosts:
    /// `d!` orderings of the `d` differing dimensions.
    pub fn minimal_path_count(&self, src: HostId, dst: HostId) -> u64 {
        let d = self.hop_distance(self.host_switch(src), self.host_switch(dst)) as u64;
        factorial(d)
    }

    /// Edge-disjoint path diversity between two *switches*: the number
    /// of alternatives the adaptive router can spread across when one
    /// link deactivates. For switches differing in `d ≥ 1` dimensions
    /// this is `d` at the first hop; with one allowed detour
    /// (UGAL-style) it grows to `d + (k − 2)·d`.
    pub fn first_hop_choices(&self, a: SwitchId, b: SwitchId, with_detours: bool) -> u64 {
        let d = self.hop_distance(a, b) as u64;
        if d == 0 {
            return 0;
        }
        if with_detours {
            d + u64::from(self.radix() - 2) * d
        } else {
            d
        }
    }
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

fn factorial(n: u64) -> u64 {
    (1..=n).product::<u64>().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingTopology;

    #[test]
    fn histogram_totals_match_pair_count() {
        for (c, k, n) in [(2u16, 4u16, 3usize), (15, 15, 3), (8, 8, 5)] {
            let f = FlattenedButterfly::new(c, k, n).unwrap();
            let h = f.hop_histogram();
            let total: u64 = h.counts.iter().sum();
            let hosts = f.num_hosts() as u64;
            assert_eq!(total, hosts * (hosts - 1), "({c},{k},{n})");
        }
    }

    #[test]
    fn histogram_matches_exhaustive_enumeration() {
        let f = FlattenedButterfly::new(2, 3, 3).unwrap();
        let g = f.build_fabric();
        let mut counts = vec![0u64; f.switch_dims() + 1];
        for a in 0..g.num_hosts() as u32 {
            for b in 0..g.num_hosts() as u32 {
                if a == b {
                    continue;
                }
                let d =
                    f.hop_distance(g.host_switch(HostId::new(a)), g.host_switch(HostId::new(b)));
                counts[d] += 1;
            }
        }
        assert_eq!(f.hop_histogram().counts, counts);
    }

    #[test]
    fn paper_evaluation_mean_hops() {
        // 15-ary 3-flat: 2 dims, each differs w.p. 14/15 over uniform
        // pairs between distinct switches; host concentration shifts it
        // slightly. Mean must sit a bit below 2·14/15 ≈ 1.867.
        let f = FlattenedButterfly::paper_evaluation();
        let mean = f.hop_histogram().mean();
        assert!((1.8..1.87).contains(&mean), "mean hops {mean}");
        assert_eq!(f.hop_histogram().diameter(), 2);
    }

    #[test]
    fn minimal_paths_are_permutations_of_dimensions() {
        let f = FlattenedButterfly::new(2, 4, 4).unwrap();
        // Hosts on switches differing in all 3 dimensions: 3! = 6 paths.
        let src = HostId::new(0); // switch 0 = (0,0,0)
        let dst = HostId::new((f.num_hosts() - 1) as u32); // switch 63 = (3,3,3)
        assert_eq!(f.minimal_path_count(src, dst), 6);
        // Same switch: single (zero-hop) path.
        assert_eq!(f.minimal_path_count(HostId::new(0), HostId::new(1)), 1);
    }

    #[test]
    fn detours_multiply_first_hop_choices() {
        let f = FlattenedButterfly::paper_evaluation(); // k = 15
        let a = SwitchId::new(0);
        let b = SwitchId::new(224); // differs in both dimensions
        assert_eq!(f.first_hop_choices(a, b, false), 2);
        assert_eq!(f.first_hop_choices(a, b, true), 2 + 13 * 2);
        assert_eq!(f.first_hop_choices(a, a, true), 0);
    }

    #[test]
    fn binomial_and_factorial() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(4), 24);
    }
}
